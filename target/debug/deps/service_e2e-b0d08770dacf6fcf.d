/root/repo/target/debug/deps/service_e2e-b0d08770dacf6fcf.d: crates/numarck-serve/tests/service_e2e.rs crates/numarck-serve/tests/util/mod.rs

/root/repo/target/debug/deps/libservice_e2e-b0d08770dacf6fcf.rmeta: crates/numarck-serve/tests/service_e2e.rs crates/numarck-serve/tests/util/mod.rs

crates/numarck-serve/tests/service_e2e.rs:
crates/numarck-serve/tests/util/mod.rs:
