//! 3-D block tiling with six-face guard exchange (two-phase, parallel).

use rayon::prelude::*;

use crate::block::NCONS;
use crate::dim3::block3::{Block3, Face3};
use crate::dim3::euler3;
use crate::eos::GammaLaw;

/// Domain boundary condition for the 3-D mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Boundary3 {
    /// Zero-gradient outflow.
    Outflow,
    /// Periodic wrap-around.
    Periodic,
}

/// A `bx × by × bz` tiling of `n³`-ish blocks over the unit cube.
#[derive(Debug, Clone)]
pub struct Mesh3 {
    blocks: Vec<Block3>,
    scratch: Vec<Block3>,
    bx: usize,
    by: usize,
    bz: usize,
    nx: usize,
    ny: usize,
    nz: usize,
    dx: f64,
    dy: f64,
    dz: f64,
    boundary: Boundary3,
}

impl Mesh3 {
    /// Build a mesh covering the unit cube.
    ///
    /// # Panics
    /// Panics on zero block counts.
    pub fn new(
        (bx, by, bz): (usize, usize, usize),
        (nx, ny, nz): (usize, usize, usize),
        boundary: Boundary3,
    ) -> Self {
        assert!(bx > 0 && by > 0 && bz > 0, "need at least one block per axis");
        let blocks = vec![Block3::new(nx, ny, nz); bx * by * bz];
        let scratch = blocks.clone();
        Self {
            blocks,
            scratch,
            bx,
            by,
            bz,
            nx,
            ny,
            nz,
            dx: 1.0 / (bx * nx) as f64,
            dy: 1.0 / (by * ny) as f64,
            dz: 1.0 / (bz * nz) as f64,
            boundary,
        }
    }

    /// Blocks per axis.
    pub fn block_counts(&self) -> (usize, usize, usize) {
        (self.bx, self.by, self.bz)
    }

    /// Interior cells per block.
    pub fn block_dims(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// Cell sizes.
    pub fn cell_sizes(&self) -> (f64, f64, f64) {
        (self.dx, self.dy, self.dz)
    }

    /// Total interior cells.
    pub fn num_cells(&self) -> usize {
        self.bx * self.by * self.bz * self.nx * self.ny * self.nz
    }

    fn block_index(&self, bi: usize, bj: usize, bk: usize) -> usize {
        (bk * self.by + bj) * self.bx + bi
    }

    /// Immutable block access.
    pub fn block(&self, bi: usize, bj: usize, bk: usize) -> &Block3 {
        &self.blocks[self.block_index(bi, bj, bk)]
    }

    /// Mutable block access.
    pub fn block_mut(&mut self, bi: usize, bj: usize, bk: usize) -> &mut Block3 {
        let idx = self.block_index(bi, bj, bk);
        &mut self.blocks[idx]
    }

    /// Physical centre of interior cell `(i, j, k)` of block
    /// `(bi, bj, bk)`.
    pub fn cell_center(
        &self,
        (bi, bj, bk): (usize, usize, usize),
        (i, j, k): (usize, usize, usize),
    ) -> (f64, f64, f64) {
        (
            ((bi * self.nx + i) as f64 + 0.5) * self.dx,
            ((bj * self.ny + j) as f64 + 0.5) * self.dy,
            ((bk * self.nz + k) as f64 + 0.5) * self.dz,
        )
    }

    /// Initialise every interior cell from its physical centre.
    pub fn fill(&mut self, f: impl Fn(f64, f64, f64) -> [f64; NCONS] + Sync) {
        let (bxn, nx, ny, nz) = (self.bx, self.nx, self.ny, self.nz);
        let byn = self.by;
        let (dx, dy, dz) = (self.dx, self.dy, self.dz);
        self.blocks.par_iter_mut().enumerate().for_each(|(flat, block)| {
            let bi = flat % bxn;
            let bj = (flat / bxn) % byn;
            let bk = flat / (bxn * byn);
            for k in 0..nz {
                for j in 0..ny {
                    for i in 0..nx {
                        let x = ((bi * nx + i) as f64 + 0.5) * dx;
                        let y = ((bj * ny + j) as f64 + 0.5) * dy;
                        let z = ((bk * nz + k) as f64 + 0.5) * dz;
                        block.set_state(i as isize, j as isize, k as isize, f(x, y, z));
                    }
                }
            }
        });
    }

    /// Fill all guard cells from neighbours / the boundary condition.
    pub fn exchange_guards(&mut self) {
        let faces = Face3::all();
        // Phase A: export all face strips.
        let strips: Vec<Vec<Vec<f64>>> = self
            .blocks
            .par_iter()
            .map(|b| faces.iter().map(|&f| b.export_face(f)).collect())
            .collect();
        let face_idx = |f: Face3| faces.iter().position(|&x| x == f).expect("in list");
        let (bxn, byn, bzn) = (self.bx, self.by, self.bz);
        let boundary = self.boundary;
        // Phase B: import.
        self.blocks.par_iter_mut().enumerate().for_each(|(flat, block)| {
            let bi = (flat % bxn) as isize;
            let bj = ((flat / bxn) % byn) as isize;
            let bk = (flat / (bxn * byn)) as isize;
            for &face in &faces {
                let (di, dj, dk) = face.offset();
                let (ni, nj, nk) = (bi + di, bj + dj, bk + dk);
                let inside = ni >= 0
                    && ni < bxn as isize
                    && nj >= 0
                    && nj < byn as isize
                    && nk >= 0
                    && nk < bzn as isize;
                if inside {
                    let n = ((nk as usize * byn) + nj as usize) * bxn + ni as usize;
                    block.import_face(face, &strips[n][face_idx(face.opposite())]);
                } else {
                    match boundary {
                        Boundary3::Outflow => block.outflow_face(face),
                        Boundary3::Periodic => {
                            let wi = ni.rem_euclid(bxn as isize) as usize;
                            let wj = nj.rem_euclid(byn as isize) as usize;
                            let wk = nk.rem_euclid(bzn as isize) as usize;
                            let n = (wk * byn + wj) * bxn + wi;
                            block.import_face(face, &strips[n][face_idx(face.opposite())]);
                        }
                    }
                }
            }
        });
    }

    /// Global maximum wave speed.
    pub fn max_wave_speed(&self, eos: &GammaLaw) -> f64 {
        self.blocks
            .par_iter()
            .map(|b| euler3::max_wave_speed3(b, eos))
            .reduce(|| 0.0, f64::max)
    }

    /// Advance every block by `dt` (guards must be current).
    pub fn advance(&mut self, dt: f64, eos: &GammaLaw) {
        let (dx, dy, dz) = (self.dx, self.dy, self.dz);
        self.scratch
            .par_iter_mut()
            .zip(self.blocks.par_iter())
            .for_each(|(out, b)| euler3::update_block3(b, out, dt, dx, dy, dz, eos));
        std::mem::swap(&mut self.blocks, &mut self.scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::cons;
    use crate::euler::{to_conserved, Primitive};

    #[test]
    fn guard_exchange_is_seamless_in_all_axes() {
        let eos = GammaLaw::AIR;
        let mut m = Mesh3::new((2, 2, 2), (4, 4, 4), Boundary3::Outflow);
        m.fill(|x, y, z| {
            to_conserved(
                &Primitive { rho: 1.0 + x + 10.0 * y + 100.0 * z, u: 0.0, v: 0.0, w: 0.0, p: 1.0 },
                &eos,
            )
        });
        m.exchange_guards();
        // Block (0,0,0)'s +x guard = block (1,0,0)'s interior.
        assert_eq!(
            m.block(0, 0, 0).get(cons::RHO, 4, 2, 2),
            m.block(1, 0, 0).get(cons::RHO, 0, 2, 2)
        );
        // +y neighbour.
        assert_eq!(
            m.block(0, 0, 0).get(cons::RHO, 2, 4, 1),
            m.block(0, 1, 0).get(cons::RHO, 2, 0, 1)
        );
        // +z neighbour.
        assert_eq!(
            m.block(0, 0, 0).get(cons::RHO, 1, 3, 4),
            m.block(0, 0, 1).get(cons::RHO, 1, 3, 0)
        );
    }

    #[test]
    fn periodic_wraps_in_z() {
        let eos = GammaLaw::AIR;
        let mut m = Mesh3::new((1, 1, 2), (4, 4, 4), Boundary3::Periodic);
        m.fill(|_, _, z| {
            to_conserved(&Primitive { rho: 1.0 + z, u: 0.0, v: 0.0, w: 0.0, p: 1.0 }, &eos)
        });
        m.exchange_guards();
        // Down guard of the bottom block = top block's top interior layer.
        assert_eq!(
            m.block(0, 0, 0).get(cons::RHO, 2, 2, -1),
            m.block(0, 0, 1).get(cons::RHO, 2, 2, 3)
        );
    }

    #[test]
    fn uniform_flow_is_preserved() {
        let eos = GammaLaw::AIR;
        let mut m = Mesh3::new((2, 1, 1), (4, 4, 4), Boundary3::Periodic);
        let pr = Primitive { rho: 1.0, u: 0.2, v: 0.1, w: -0.15, p: 1.0 };
        m.fill(|_, _, _| to_conserved(&pr, &eos));
        for _ in 0..4 {
            m.exchange_guards();
            m.advance(0.004, &eos);
        }
        let want = to_conserved(&pr, &eos);
        for bi in 0..2 {
            for k in 0..4isize {
                let got = m.block(bi, 0, 0).state(2, 2, k);
                for c in 0..NCONS {
                    assert!((got[c] - want[c]).abs() < 1e-12, "block {bi} comp {c}");
                }
            }
        }
    }

    #[test]
    fn periodic_advance_conserves_mass() {
        let eos = GammaLaw::AIR;
        let mut m = Mesh3::new((2, 2, 2), (4, 4, 4), Boundary3::Periodic);
        m.fill(|x, y, z| {
            to_conserved(
                &Primitive {
                    rho: 1.0 + 0.2 * (std::f64::consts::TAU * (x + y + z)).sin(),
                    u: 0.1,
                    v: -0.05,
                    w: 0.07,
                    p: 1.0,
                },
                &eos,
            )
        });
        let total = |m: &Mesh3| -> f64 {
            let mut t = 0.0;
            for bk in 0..2 {
                for bj in 0..2 {
                    for bi in 0..2 {
                        for k in 0..4isize {
                            for j in 0..4isize {
                                for i in 0..4isize {
                                    t += m.block(bi, bj, bk).state(i, j, k)[cons::RHO];
                                }
                            }
                        }
                    }
                }
            }
            t
        };
        let m0 = total(&m);
        for _ in 0..10 {
            m.exchange_guards();
            m.advance(0.002, &eos);
        }
        let m1 = total(&m);
        assert!((m0 - m1).abs() < 1e-10 * m0, "{m0} -> {m1}");
    }

    #[test]
    fn cell_centers_and_counts() {
        let m = Mesh3::new((2, 3, 1), (4, 2, 8), Boundary3::Outflow);
        assert_eq!(m.num_cells(), 2 * 3 * 4 * 2 * 8);
        let (x, y, z) = m.cell_center((1, 2, 0), (0, 0, 0));
        assert!((x - (4.0 + 0.5) / 8.0).abs() < 1e-12);
        assert!((y - (4.0 + 0.5) / 6.0).abs() < 1e-12);
        assert!((z - 0.5 / 8.0).abs() < 1e-12);
    }
}
