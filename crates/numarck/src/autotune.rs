//! Automatic precision selection.
//!
//! The paper shows (Fig. 6) that the right index width `B` is sharply
//! data-dependent: 8 bits leaves 60% of `rlds` incompressible while 10
//! bits compresses everything — but paying 10 bits on a variable that
//! needs 6 wastes a sixth of the compressed size. This module picks the
//! smallest `B` whose incompressible ratio meets a target, exploiting
//! the monotonicity of γ in `B` (more representatives can only cover
//! more ratios) for a binary search, and estimating each candidate's γ
//! on a strided sample so the search costs a fraction of one full
//! encode.

use crate::config::Config;
use crate::encode::{self, CompressedIteration, IterationStats};
use crate::error::NumarckError;
use crate::strategy::Strategy;

/// Tuning options.
#[derive(Debug, Clone, Copy)]
pub struct AutotuneOptions {
    /// Smallest precision to consider.
    pub min_bits: u8,
    /// Largest precision to consider.
    pub max_bits: u8,
    /// Accept the smallest `B` with (estimated) incompressible ratio at
    /// or below this.
    pub target_gamma: f64,
    /// Evaluate candidates on every `sample_stride`-th point (1 = use
    /// all points).
    pub sample_stride: usize,
}

impl Default for AutotuneOptions {
    fn default() -> Self {
        Self { min_bits: 4, max_bits: 12, target_gamma: 0.05, sample_stride: 7 }
    }
}

/// Outcome of a tuning run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutotuneResult {
    /// The chosen precision.
    pub bits: u8,
    /// Estimated incompressible ratio at that precision (on the sample).
    pub estimated_gamma: f64,
    /// Whether the target was met ( `false` ⇒ even `max_bits` missed it
    /// and `bits == max_bits`).
    pub target_met: bool,
}

/// Pick the smallest `B ∈ [min_bits, max_bits]` whose sampled γ meets
/// the target for the transition `prev → curr`.
pub fn choose_bits(
    prev: &[f64],
    curr: &[f64],
    tolerance: f64,
    strategy: Strategy,
    opts: &AutotuneOptions,
) -> Result<AutotuneResult, NumarckError> {
    if opts.min_bits > opts.max_bits {
        return Err(NumarckError::InvalidConfig(format!(
            "min_bits {} > max_bits {}",
            opts.min_bits, opts.max_bits
        )));
    }
    if prev.len() != curr.len() {
        return Err(NumarckError::LengthMismatch { prev: prev.len(), curr: curr.len() });
    }
    let stride = opts.sample_stride.max(1);
    let sample_prev: Vec<f64> = prev.iter().step_by(stride).copied().collect();
    let sample_curr: Vec<f64> = curr.iter().step_by(stride).copied().collect();

    let gamma_at = |bits: u8| -> Result<f64, NumarckError> {
        let config = Config::new(bits, tolerance, strategy)?;
        let (_, stats) = encode::encode(&sample_prev, &sample_curr, &config)?;
        Ok(stats.incompressible_ratio)
    };

    // Binary search on the monotone (non-increasing) γ(B).
    let mut lo = opts.min_bits;
    let mut hi = opts.max_bits;
    // First check the cheap end: maybe min_bits already suffices.
    let g_lo = gamma_at(lo)?;
    if g_lo <= opts.target_gamma {
        return Ok(AutotuneResult { bits: lo, estimated_gamma: g_lo, target_met: true });
    }
    let g_hi = gamma_at(hi)?;
    if g_hi > opts.target_gamma {
        return Ok(AutotuneResult { bits: hi, estimated_gamma: g_hi, target_met: false });
    }
    let mut best = (hi, g_hi);
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        let g = gamma_at(mid)?;
        if g <= opts.target_gamma {
            best = (mid, g);
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Ok(AutotuneResult { bits: best.0, estimated_gamma: best.1, target_met: true })
}

/// Tune, then encode the full transition at the chosen precision.
pub fn compress_autotuned(
    prev: &[f64],
    curr: &[f64],
    tolerance: f64,
    strategy: Strategy,
    opts: &AutotuneOptions,
) -> Result<(AutotuneResult, CompressedIteration, IterationStats), NumarckError> {
    let tuned = choose_bits(prev, curr, tolerance, strategy, opts)?;
    let config = Config::new(tuned.bits, tolerance, strategy)?;
    let (block, stats) = encode::encode(prev, curr, &config)?;
    Ok((tuned, block, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> AutotuneOptions {
        AutotuneOptions { sample_stride: 3, ..Default::default() }
    }

    /// Transition whose ratios take exactly `distinct` different values,
    /// spaced further apart than 2E so bins can't merge them.
    fn distinct_ratio_pair(n: usize, distinct: usize) -> (Vec<f64>, Vec<f64>) {
        let prev = vec![10.0f64; n];
        let curr: Vec<f64> =
            (0..n).map(|i| 10.0 * (1.0 + 0.01 + 0.01 * (i % distinct) as f64)).collect();
        (prev, curr)
    }

    #[test]
    fn easy_data_gets_the_minimum_bits() {
        // Three distinct ratios: even 4 bits (15 representatives) covers
        // them perfectly.
        let (prev, curr) = distinct_ratio_pair(3000, 3);
        let r = choose_bits(&prev, &curr, 0.001, Strategy::Clustering, &opts()).unwrap();
        assert_eq!(r.bits, 4);
        assert!(r.target_met);
        assert_eq!(r.estimated_gamma, 0.0);
    }

    #[test]
    fn wide_data_needs_more_bits() {
        // 200 distinct well-separated ratios: 4 bits (15 reps) cannot
        // cover them, 8 bits (255 reps) can.
        let (prev, curr) = distinct_ratio_pair(6000, 200);
        let r = choose_bits(&prev, &curr, 0.001, Strategy::Clustering, &opts()).unwrap();
        assert!(r.bits > 4, "chose {}", r.bits);
        assert!(r.bits <= 9, "chose {}", r.bits);
        assert!(r.target_met);
    }

    #[test]
    fn minimality_of_the_choice() {
        // One bit less than the chosen precision must miss the target
        // (on the same sample the tuner used).
        let (prev, curr) = distinct_ratio_pair(6000, 60);
        let o = opts();
        let r = choose_bits(&prev, &curr, 0.001, Strategy::Clustering, &o).unwrap();
        assert!(r.target_met);
        if r.bits > o.min_bits {
            let sample_prev: Vec<f64> = prev.iter().step_by(3).copied().collect();
            let sample_curr: Vec<f64> = curr.iter().step_by(3).copied().collect();
            let config = Config::new(r.bits - 1, 0.001, Strategy::Clustering).unwrap();
            let (_, stats) = encode::encode(&sample_prev, &sample_curr, &config).unwrap();
            assert!(
                stats.incompressible_ratio > o.target_gamma,
                "B-1 = {} already meets the target; tuner over-chose",
                r.bits - 1
            );
        }
    }

    #[test]
    fn impossible_target_reports_failure_with_max_bits() {
        // prev = 0 everywhere: every point is incompressible at any B.
        let prev = vec![0.0; 500];
        let curr: Vec<f64> = (0..500).map(|i| i as f64 + 1.0).collect();
        let r = choose_bits(&prev, &curr, 0.001, Strategy::EqualWidth, &opts()).unwrap();
        assert!(!r.target_met);
        assert_eq!(r.bits, opts().max_bits);
        assert_eq!(r.estimated_gamma, 1.0);
    }

    #[test]
    fn compress_autotuned_encodes_at_the_chosen_bits() {
        let (prev, curr) = distinct_ratio_pair(4000, 3);
        let (tuned, block, stats) =
            compress_autotuned(&prev, &curr, 0.001, Strategy::Clustering, &opts()).unwrap();
        assert_eq!(block.bits, tuned.bits);
        assert_eq!(stats.num_points, 4000);
        assert!(stats.max_error_rate <= 0.001 + 1e-12);
    }

    #[test]
    fn invalid_bounds_rejected() {
        let bad = AutotuneOptions { min_bits: 10, max_bits: 8, ..Default::default() };
        assert!(choose_bits(&[1.0], &[1.0], 0.001, Strategy::Clustering, &bad).is_err());
    }

    #[test]
    fn stride_one_uses_all_points() {
        let (prev, curr) = distinct_ratio_pair(1000, 3);
        let o = AutotuneOptions { sample_stride: 1, ..opts() };
        let r = choose_bits(&prev, &curr, 0.001, Strategy::Clustering, &o).unwrap();
        assert!(r.target_met);
    }
}
