/root/repo/target/debug/deps/numarck_cli-d9790a2b40e8a462.d: crates/numarck-cli/src/lib.rs crates/numarck-cli/src/args.rs crates/numarck-cli/src/chainfile.rs crates/numarck-cli/src/commands.rs crates/numarck-cli/src/seqfile.rs crates/numarck-cli/src/serve_cmd.rs

/root/repo/target/debug/deps/libnumarck_cli-d9790a2b40e8a462.rmeta: crates/numarck-cli/src/lib.rs crates/numarck-cli/src/args.rs crates/numarck-cli/src/chainfile.rs crates/numarck-cli/src/commands.rs crates/numarck-cli/src/seqfile.rs crates/numarck-cli/src/serve_cmd.rs

crates/numarck-cli/src/lib.rs:
crates/numarck-cli/src/args.rs:
crates/numarck-cli/src/chainfile.rs:
crates/numarck-cli/src/commands.rs:
crates/numarck-cli/src/seqfile.rs:
crates/numarck-cli/src/serve_cmd.rs:
