/root/repo/target/debug/deps/ext4_group-164e1e32cd9431a9.d: crates/numarck-bench/src/bin/ext4_group.rs

/root/repo/target/debug/deps/libext4_group-164e1e32cd9431a9.rmeta: crates/numarck-bench/src/bin/ext4_group.rs

crates/numarck-bench/src/bin/ext4_group.rs:
