/root/repo/target/debug/deps/fig6-f9dd1f6bae516905.d: crates/numarck-bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-f9dd1f6bae516905: crates/numarck-bench/src/bin/fig6.rs

crates/numarck-bench/src/bin/fig6.rs:
