/root/repo/target/debug/examples/flash_checkpointing-955305f6a184ed60.d: examples/flash_checkpointing.rs

/root/repo/target/debug/examples/flash_checkpointing-955305f6a184ed60: examples/flash_checkpointing.rs

examples/flash_checkpointing.rs:
