//! Alignment-guaranteed checkpoint bytes: `mmap(2)` or an aligned copy.
//!
//! The v2 container lays every section on a 64-byte boundary so decode
//! can reinterpret bitmap/index/exact sections in place (`&[u8]` →
//! `&[u64]`/`&[f64]`) and feed the SIMD unpack kernels straight from the
//! file. That only works if the *base* of the buffer is at least 8-byte
//! aligned, which a plain `Vec<u8>` from `fs::read` does not promise.
//! [`AlignedBytes`] does, two ways:
//!
//! * **Mapped** (unix): the file `mmap`ed read-only — page-aligned, no
//!   copy at all. Uses raw `extern "C"` declarations for
//!   `mmap`/`munmap`, the same no-libc-crate trick the cluster poller
//!   uses for `epoll` and serve uses for `signal(2)`.
//! * **Owned**: bytes copied once into a `u64`-backed buffer — 8-byte
//!   aligned by construction. This is the portable fallback and the path
//!   every non-filesystem [`StorageBackend`](crate::backend::StorageBackend)
//!   (replicated, fault-injecting) takes, so fault schedules keep
//!   applying to reads.
//!
//! Either way the decoder sees the same thing: a `Deref<Target = [u8]>`
//! whose base is 8-byte aligned, which together with the container's
//! 64-byte section offsets makes every section slice reinterpretable.

use std::ops::Deref;
use std::path::Path;

#[cfg(unix)]
mod sys {
    use std::os::unix::io::AsRawFd;

    pub const PROT_READ: i32 = 0x1;
    pub const MAP_PRIVATE: i32 = 0x2;
    /// Linux: pre-fault the whole mapping at `mmap` time. Checkpoint
    /// decode touches every page anyway (the open validates the
    /// whole-file CRC), so one bulk populate beats a page fault per 4 KiB
    /// of section data. Other unixes don't define it; 0 is a no-op flag.
    #[cfg(target_os = "linux")]
    pub const MAP_POPULATE: i32 = 0x8000;
    #[cfg(not(target_os = "linux"))]
    pub const MAP_POPULATE: i32 = 0;

    extern "C" {
        fn mmap(
            addr: *mut std::ffi::c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut std::ffi::c_void;
        fn munmap(addr: *mut std::ffi::c_void, len: usize) -> i32;
    }

    /// Map `len` bytes of `file` read-only. `len` must be > 0.
    pub fn map_readonly(file: &std::fs::File, len: usize) -> std::io::Result<*const u8> {
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ,
                MAP_PRIVATE | MAP_POPULATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 || ptr.is_null() {
            return Err(std::io::Error::last_os_error());
        }
        Ok(ptr as *const u8)
    }

    /// Unmap a region produced by [`map_readonly`].
    pub fn unmap(ptr: *const u8, len: usize) {
        // Failure here is unrecoverable and harmless to ignore: the
        // region stays mapped until process exit.
        let _ = unsafe { munmap(ptr as *mut std::ffi::c_void, len) };
    }
}

/// Read-only checkpoint bytes with an 8-byte-aligned base. See the
/// module docs for the two variants.
#[derive(Debug)]
pub struct AlignedBytes {
    inner: Inner,
}

#[derive(Debug)]
enum Inner {
    #[cfg(unix)]
    Mapped { ptr: *const u8, len: usize },
    Owned { buf: Vec<u64>, len: usize },
}

// The mapped region is immutable (PROT_READ, MAP_PRIVATE) and owned
// exclusively by this value, so sharing across threads is safe.
unsafe impl Send for AlignedBytes {}
unsafe impl Sync for AlignedBytes {}

impl AlignedBytes {
    /// Copy `bytes` into an aligned owned buffer.
    pub fn from_vec(bytes: Vec<u8>) -> Self {
        let len = bytes.len();
        let mut buf = vec![0u64; len.div_ceil(8)];
        // Safety: the u64 buffer spans at least `len` bytes.
        unsafe {
            std::ptr::copy_nonoverlapping(bytes.as_ptr(), buf.as_mut_ptr() as *mut u8, len);
        }
        Self { inner: Inner::Owned { buf, len } }
    }

    /// Map the file at `path` read-only (unix), falling back to an
    /// aligned read everywhere else. Empty files come back as an empty
    /// owned buffer (zero-length mappings are not a thing).
    pub fn map_file(path: &Path) -> std::io::Result<Self> {
        #[cfg(unix)]
        {
            let file = std::fs::File::open(path)?;
            let len = file.metadata()?.len();
            if len == 0 {
                return Ok(Self::from_vec(Vec::new()));
            }
            let len = usize::try_from(len).map_err(|_| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "file too large to map")
            })?;
            let ptr = sys::map_readonly(&file, len)?;
            Ok(Self { inner: Inner::Mapped { ptr, len } })
        }
        #[cfg(not(unix))]
        {
            std::fs::read(path).map(Self::from_vec)
        }
    }

    /// True when the bytes are a live file mapping (as opposed to an
    /// aligned in-memory copy).
    pub fn is_mapped(&self) -> bool {
        match &self.inner {
            #[cfg(unix)]
            Inner::Mapped { .. } => true,
            Inner::Owned { .. } => false,
        }
    }
}

impl Deref for AlignedBytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match &self.inner {
            #[cfg(unix)]
            Inner::Mapped { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Inner::Owned { buf, len } => unsafe {
                std::slice::from_raw_parts(buf.as_ptr() as *const u8, *len)
            },
        }
    }
}

impl Drop for AlignedBytes {
    fn drop(&mut self) {
        match &self.inner {
            #[cfg(unix)]
            Inner::Mapped { ptr, len } => sys::unmap(*ptr, *len),
            Inner::Owned { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::testutil::TempDir;

    #[test]
    fn owned_copy_is_aligned_and_faithful() {
        for n in [0usize, 1, 7, 8, 9, 63, 64, 65, 1000] {
            let bytes: Vec<u8> = (0..n).map(|i| (i * 37) as u8).collect();
            let a = AlignedBytes::from_vec(bytes.clone());
            assert_eq!(&*a, &bytes[..]);
            assert_eq!(a.as_ptr() as usize % 8, 0, "base not 8-byte aligned");
            assert!(!a.is_mapped());
        }
    }

    #[test]
    fn mapped_file_matches_its_contents() {
        let tmp = TempDir::new("mmapio");
        let path = tmp.0.join("blob");
        let bytes: Vec<u8> = (0..4096 + 17).map(|i| (i % 251) as u8).collect();
        std::fs::write(&path, &bytes).unwrap();
        let a = AlignedBytes::map_file(&path).unwrap();
        assert_eq!(&*a, &bytes[..]);
        assert_eq!(a.as_ptr() as usize % 8, 0);
        #[cfg(unix)]
        assert!(a.is_mapped());
    }

    #[test]
    fn empty_file_maps_to_empty_bytes() {
        let tmp = TempDir::new("mmapio-empty");
        let path = tmp.0.join("empty");
        std::fs::write(&path, b"").unwrap();
        let a = AlignedBytes::map_file(&path).unwrap();
        assert!(a.is_empty());
    }

    #[test]
    fn missing_file_errors() {
        assert!(AlignedBytes::map_file(Path::new("/nonexistent/numarck-map")).is_err());
    }
}
