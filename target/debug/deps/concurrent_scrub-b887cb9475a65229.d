/root/repo/target/debug/deps/concurrent_scrub-b887cb9475a65229.d: crates/numarck-serve/tests/concurrent_scrub.rs crates/numarck-serve/tests/util/mod.rs Cargo.toml

/root/repo/target/debug/deps/libconcurrent_scrub-b887cb9475a65229.rmeta: crates/numarck-serve/tests/concurrent_scrub.rs crates/numarck-serve/tests/util/mod.rs Cargo.toml

crates/numarck-serve/tests/concurrent_scrub.rs:
crates/numarck-serve/tests/util/mod.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
