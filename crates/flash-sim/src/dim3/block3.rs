//! 3-D mesh block: `nx × ny × nz` interior cells with [`crate::block::GUARD`]
//! guard cells on every face.

use crate::block::{GUARD, NCONS};

/// Face identifier for guard exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Face3 {
    /// −x
    West,
    /// +x
    East,
    /// −y
    South,
    /// +y
    North,
    /// −z
    Down,
    /// +z
    Up,
}

impl Face3 {
    /// All six faces.
    pub fn all() -> [Face3; 6] {
        [Face3::West, Face3::East, Face3::South, Face3::North, Face3::Down, Face3::Up]
    }

    /// The opposite face.
    pub fn opposite(&self) -> Face3 {
        match self {
            Face3::West => Face3::East,
            Face3::East => Face3::West,
            Face3::South => Face3::North,
            Face3::North => Face3::South,
            Face3::Down => Face3::Up,
            Face3::Up => Face3::Down,
        }
    }

    /// Unit offset `(dx, dy, dz)` toward the neighbouring block.
    pub fn offset(&self) -> (isize, isize, isize) {
        match self {
            Face3::West => (-1, 0, 0),
            Face3::East => (1, 0, 0),
            Face3::South => (0, -1, 0),
            Face3::North => (0, 1, 0),
            Face3::Down => (0, 0, -1),
            Face3::Up => (0, 0, 1),
        }
    }
}

/// A 3-D block (structure-of-arrays over the conserved components).
#[derive(Debug, Clone, PartialEq)]
pub struct Block3 {
    nx: usize,
    ny: usize,
    nz: usize,
    sx: usize,
    sy: usize,
    data: [Vec<f64>; NCONS],
}

impl Block3 {
    /// Zero block with `nx × ny × nz` interior cells.
    ///
    /// # Panics
    /// Panics if any dimension is zero.
    pub fn new(nx: usize, ny: usize, nz: usize) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0, "block dimensions must be positive");
        let sx = nx + 2 * GUARD;
        let sy = ny + 2 * GUARD;
        let len = sx * sy * (nz + 2 * GUARD);
        Self { nx, ny, nz, sx, sy, data: std::array::from_fn(|_| vec![0.0; len]) }
    }

    /// Interior extents `(nx, ny, nz)`.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// Flat offset of interior coordinate `(i, j, k)`; guards addressed
    /// with negatives down to `-GUARD`.
    #[inline]
    pub fn offset(&self, i: isize, j: isize, k: isize) -> usize {
        debug_assert!(i >= -(GUARD as isize) && i < (self.nx + GUARD) as isize);
        debug_assert!(j >= -(GUARD as isize) && j < (self.ny + GUARD) as isize);
        debug_assert!(k >= -(GUARD as isize) && k < (self.nz + GUARD) as isize);
        let ii = (i + GUARD as isize) as usize;
        let jj = (j + GUARD as isize) as usize;
        let kk = (k + GUARD as isize) as usize;
        (kk * self.sy + jj) * self.sx + ii
    }

    /// Read component `c` at `(i, j, k)`.
    #[inline]
    pub fn get(&self, c: usize, i: isize, j: isize, k: isize) -> f64 {
        self.data[c][self.offset(i, j, k)]
    }

    /// All conserved components at `(i, j, k)`.
    #[inline]
    pub fn state(&self, i: isize, j: isize, k: isize) -> [f64; NCONS] {
        let o = self.offset(i, j, k);
        std::array::from_fn(|c| self.data[c][o])
    }

    /// Overwrite all conserved components at `(i, j, k)`.
    #[inline]
    pub fn set_state(&mut self, i: isize, j: isize, k: isize, u: [f64; NCONS]) {
        let o = self.offset(i, j, k);
        for (c, v) in u.into_iter().enumerate() {
            self.data[c][o] = v;
        }
    }

    /// Ranges `(is, js, ks)` of the interior strip a neighbour across
    /// `face` needs.
    fn interior_range(
        &self,
        face: Face3,
    ) -> (std::ops::Range<isize>, std::ops::Range<isize>, std::ops::Range<isize>) {
        let g = GUARD as isize;
        let (nx, ny, nz) = (self.nx as isize, self.ny as isize, self.nz as isize);
        match face {
            Face3::West => (0..g, 0..ny, 0..nz),
            Face3::East => (nx - g..nx, 0..ny, 0..nz),
            Face3::South => (0..nx, 0..g, 0..nz),
            Face3::North => (0..nx, ny - g..ny, 0..nz),
            Face3::Down => (0..nx, 0..ny, 0..g),
            Face3::Up => (0..nx, 0..ny, nz - g..nz),
        }
    }

    /// Guard ranges on `face`.
    fn guard_range(
        &self,
        face: Face3,
    ) -> (std::ops::Range<isize>, std::ops::Range<isize>, std::ops::Range<isize>) {
        let g = GUARD as isize;
        let (nx, ny, nz) = (self.nx as isize, self.ny as isize, self.nz as isize);
        match face {
            Face3::West => (-g..0, 0..ny, 0..nz),
            Face3::East => (nx..nx + g, 0..ny, 0..nz),
            Face3::South => (0..nx, -g..0, 0..nz),
            Face3::North => (0..nx, ny..ny + g, 0..nz),
            Face3::Down => (0..nx, 0..ny, -g..0),
            Face3::Up => (0..nx, 0..ny, nz..nz + g),
        }
    }

    /// Export the interior strip a neighbour across `face` needs.
    pub fn export_face(&self, face: Face3) -> Vec<f64> {
        let (is, js, ks) = self.interior_range(face);
        let mut out =
            Vec::with_capacity(NCONS * is.len() * js.len() * ks.len());
        for c in 0..NCONS {
            for k in ks.clone() {
                for j in js.clone() {
                    for i in is.clone() {
                        out.push(self.get(c, i, j, k));
                    }
                }
            }
        }
        out
    }

    /// Import a neighbour's exported strip into this block's guards on
    /// `face`.
    pub fn import_face(&mut self, face: Face3, strip: &[f64]) {
        let (is, js, ks) = self.guard_range(face);
        debug_assert_eq!(strip.len(), NCONS * is.len() * js.len() * ks.len());
        let mut it = strip.iter();
        for c in 0..NCONS {
            for k in ks.clone() {
                for j in js.clone() {
                    for i in is.clone() {
                        let o = self.offset(i, j, k);
                        self.data[c][o] = *it.next().expect("sized to fit");
                    }
                }
            }
        }
    }

    /// Zero-gradient outflow guards on `face`.
    pub fn outflow_face(&mut self, face: Face3) {
        let (is, js, ks) = self.guard_range(face);
        for c in 0..NCONS {
            for k in ks.clone() {
                for j in js.clone() {
                    for i in is.clone() {
                        let ci = i.clamp(0, self.nx as isize - 1);
                        let cj = j.clamp(0, self.ny as isize - 1);
                        let ck = k.clamp(0, self.nz as isize - 1);
                        let v = self.get(c, ci, cj, ck);
                        let o = self.offset(i, j, k);
                        self.data[c][o] = v;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::cons;

    #[test]
    fn get_set_roundtrip() {
        let mut b = Block3::new(4, 5, 6);
        b.set_state(0, 0, 0, [1.0, 2.0, 3.0, 4.0, 5.0]);
        b.set_state(3, 4, 5, [6.0, 7.0, 8.0, 9.0, 10.0]);
        b.set_state(-4, -4, -4, [0.5; 5]);
        assert_eq!(b.state(0, 0, 0), [1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(b.state(3, 4, 5), [6.0, 7.0, 8.0, 9.0, 10.0]);
        assert_eq!(b.state(-4, -4, -4), [0.5; 5]);
        assert_eq!(b.dims(), (4, 5, 6));
    }

    #[test]
    fn offsets_are_unique() {
        let b = Block3::new(3, 4, 5);
        let g = GUARD as isize;
        let mut seen = std::collections::HashSet::new();
        for k in -g..(5 + g) {
            for j in -g..(4 + g) {
                for i in -g..(3 + g) {
                    assert!(seen.insert(b.offset(i, j, k)), "collision at ({i},{j},{k})");
                }
            }
        }
    }

    #[test]
    fn face_export_import_lines_up() {
        let n = 6usize;
        let mut a = Block3::new(n, n, n);
        for k in 0..n as isize {
            for j in 0..n as isize {
                for i in 0..n as isize {
                    a.set_state(i, j, k, [(i * 100 + j * 10 + k) as f64; 5]);
                }
            }
        }
        for face in Face3::all() {
            let strip = a.export_face(face);
            let mut b = Block3::new(n, n, n);
            b.import_face(face.opposite(), &strip);
            // Spot-check one guard cell per face: the neighbour's guard
            // at distance 1 outside must equal a's interior edge cell.
            let (di, dj, dk) = face.offset();
            // a's interior cell on the `face` side, centre of the face:
            let (ci, cj, ck) = (
                if di < 0 { 0 } else if di > 0 { n as isize - 1 } else { 2 },
                if dj < 0 { 0 } else if dj > 0 { n as isize - 1 } else { 2 },
                if dk < 0 { 0 } else if dk > 0 { n as isize - 1 } else { 2 },
            );
            // In b (the neighbour across `face`), that cell appears in the
            // guard across the *opposite* face, one cell outside.
            let (gi, gj, gk) = (
                if di < 0 { n as isize } else if di > 0 { -1 } else { 2 },
                if dj < 0 { n as isize } else if dj > 0 { -1 } else { 2 },
                if dk < 0 { n as isize } else if dk > 0 { -1 } else { 2 },
            );
            assert_eq!(
                b.get(cons::RHO, gi, gj, gk),
                a.get(cons::RHO, ci, cj, ck),
                "face {face:?}"
            );
        }
    }

    #[test]
    fn outflow_extends_edges() {
        let mut b = Block3::new(4, 4, 4);
        for k in 0..4isize {
            for j in 0..4isize {
                for i in 0..4isize {
                    b.set_state(i, j, k, [(k + 1) as f64; 5]);
                }
            }
        }
        b.outflow_face(Face3::Down);
        b.outflow_face(Face3::Up);
        assert_eq!(b.get(cons::RHO, 2, 2, -3), 1.0);
        assert_eq!(b.get(cons::RHO, 2, 2, 6), 4.0);
    }

    #[test]
    fn faces_opposites() {
        for f in Face3::all() {
            assert_eq!(f.opposite().opposite(), f);
            let (a, b, c) = f.offset();
            let (oa, ob, oc) = f.opposite().offset();
            assert_eq!((a + oa, b + ob, c + oc), (0, 0, 0));
        }
    }
}
