//! Kernel 1: the change-ratio transform `(cur − prev) / prev`.
//!
//! Writes the raw IEEE ratio for every point — a zero or tiny previous
//! value produces `±inf`/`NaN`, which downstream classification treats as
//! "undefined, store exactly", so no special-casing is needed in the lane
//! code itself. What *is* checked in the same pass is input validity: the
//! encoder rejects non-finite *inputs* with the offending index, and
//! fusing that check here removes the two dedicated validation sweeps the
//! transform used to make over `prev` and `curr`.
//!
//! IEEE subtraction and division are exactly rounded, so all three levels
//! produce bit-identical ratios by construction; the oracle tests pin it.

use crate::Level;

/// First non-finite input found in a block, reported per source array so
/// the caller can preserve "first bad index in `prev`, else first bad
/// index in `curr`" error ordering across blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NonFinite {
    /// Block-local index of the first non-finite value in `prev`.
    pub prev: Option<usize>,
    /// Block-local index of the first non-finite value in `curr`.
    pub curr: Option<usize>,
}

/// Dispatched change-ratio transform: `out[i] = (curr[i] − prev[i]) /
/// prev[i]`. Returns `Some(NonFinite)` if any input is non-finite (the
/// ratios written in that case are unspecified).
///
/// # Panics
/// Panics if the three slices differ in length.
#[inline]
pub fn change_ratios(prev: &[f64], curr: &[f64], out: &mut [f64]) -> Option<NonFinite> {
    change_ratios_with(crate::active_level(), prev, curr, out)
}

/// [`change_ratios`] at an explicit level (oracle sweeps).
pub fn change_ratios_with(
    level: Level,
    prev: &[f64],
    curr: &[f64],
    out: &mut [f64],
) -> Option<NonFinite> {
    assert_eq!(prev.len(), curr.len(), "prev and curr must align");
    assert_eq!(prev.len(), out.len(), "output must align with input");
    match level {
        Level::Scalar => change_ratios_scalar(prev, curr, out),
        Level::Unrolled => change_ratios_unrolled(prev, curr, out),
        #[cfg(target_arch = "x86_64")]
        Level::Avx2 => unsafe { change_ratios_avx2(prev, curr, out) },
        #[cfg(not(target_arch = "x86_64"))]
        Level::Avx2 => change_ratios_unrolled(prev, curr, out),
    }
}

/// Scan both inputs for their first non-finite entries (bad path only).
fn find_non_finite(prev: &[f64], curr: &[f64]) -> Option<NonFinite> {
    let p = prev.iter().position(|x| !x.is_finite());
    let c = curr.iter().position(|x| !x.is_finite());
    if p.is_none() && c.is_none() {
        None
    } else {
        Some(NonFinite { prev: p, curr: c })
    }
}

/// Scalar reference implementation (the oracle).
pub fn change_ratios_scalar(prev: &[f64], curr: &[f64], out: &mut [f64]) -> Option<NonFinite> {
    let mut any_bad = false;
    for ((&p, &c), o) in prev.iter().zip(curr).zip(out.iter_mut()) {
        any_bad |= !p.is_finite() || !c.is_finite();
        *o = (c - p) / p;
    }
    if any_bad {
        find_non_finite(prev, curr)
    } else {
        None
    }
}

/// Portable chunks-of-8 unrolled variant.
pub fn change_ratios_unrolled(prev: &[f64], curr: &[f64], out: &mut [f64]) -> Option<NonFinite> {
    let mut any_bad = false;
    let mut p8 = prev.chunks_exact(8);
    let mut c8 = curr.chunks_exact(8);
    let mut o8 = out.chunks_exact_mut(8);
    for ((p, c), o) in (&mut p8).zip(&mut c8).zip(&mut o8) {
        // Eight independent divides per iteration; finiteness folded in
        // bulk (|x| < inf, false for NaN) without branching per lane.
        let mut ok = true;
        for k in 0..8 {
            ok &= p[k].abs() < f64::INFINITY && c[k].abs() < f64::INFINITY;
            o[k] = (c[k] - p[k]) / p[k];
        }
        any_bad |= !ok;
    }
    for ((&p, &c), o) in p8.remainder().iter().zip(c8.remainder()).zip(o8.into_remainder()) {
        any_bad |= !p.is_finite() || !c.is_finite();
        *o = (c - p) / p;
    }
    if any_bad {
        find_non_finite(prev, curr)
    } else {
        None
    }
}

/// AVX2 variant: 4 f64 lanes per step.
///
/// # Safety
/// Requires the `avx2` CPU feature.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
pub unsafe fn change_ratios_avx2(
    prev: &[f64],
    curr: &[f64],
    out: &mut [f64],
) -> Option<NonFinite> {
    use std::arch::x86_64::*;
    let n = prev.len();
    let lanes = n - n % 4;
    let abs_mask = _mm256_castsi256_pd(_mm256_set1_epi64x(0x7FFF_FFFF_FFFF_FFFFu64 as i64));
    let inf = _mm256_set1_pd(f64::INFINITY);
    let mut bad = 0i32;
    let mut i = 0;
    while i < lanes {
        let p = _mm256_loadu_pd(prev.as_ptr().add(i));
        let c = _mm256_loadu_pd(curr.as_ptr().add(i));
        // finite(x) ⇔ |x| < inf (ordered compare: false for NaN too).
        let p_fin = _mm256_cmp_pd::<_CMP_LT_OQ>(_mm256_and_pd(p, abs_mask), inf);
        let c_fin = _mm256_cmp_pd::<_CMP_LT_OQ>(_mm256_and_pd(c, abs_mask), inf);
        bad |= _mm256_movemask_pd(_mm256_and_pd(p_fin, c_fin)) ^ 0xF;
        let r = _mm256_div_pd(_mm256_sub_pd(c, p), p);
        _mm256_storeu_pd(out.as_mut_ptr().add(i), r);
        i += 4;
    }
    let mut any_bad = bad != 0;
    for j in lanes..n {
        let (p, c) = (prev[j], curr[j]);
        any_bad |= !p.is_finite() || !c.is_finite();
        out[j] = (c - p) / p;
    }
    if any_bad {
        find_non_finite(prev, curr)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: usize) -> (Vec<f64>, Vec<f64>) {
        let prev: Vec<f64> = (0..n)
            .map(|i| if i % 13 == 0 { 0.0 } else { 1.0 + ((i * 37) % 101) as f64 / 7.0 })
            .collect();
        let curr: Vec<f64> =
            prev.iter().enumerate().map(|(i, v)| v * (1.0 + 0.003 * ((i % 9) as f64 - 4.0))).collect();
        (prev, curr)
    }

    #[test]
    fn all_levels_are_bit_identical_across_lane_boundaries() {
        for n in [0usize, 1, 3, 4, 5, 7, 8, 9, 31, 32, 33, 63, 64, 65, 1000, 1024, 1025] {
            let (prev, curr) = data(n);
            let mut oracle = vec![0.0f64; n];
            assert_eq!(change_ratios_scalar(&prev, &curr, &mut oracle), None);
            for level in Level::all_supported() {
                let mut got = vec![f64::NAN; n];
                assert_eq!(change_ratios_with(level, &prev, &curr, &mut got), None);
                for j in 0..n {
                    assert_eq!(
                        got[j].to_bits(),
                        oracle[j].to_bits(),
                        "level {} n {n} point {j}",
                        level.name()
                    );
                }
            }
        }
    }

    #[test]
    fn zero_prev_yields_non_finite_ratio_not_an_error() {
        let prev = [0.0, 1.0, 0.0];
        let curr = [5.0, 1.1, 0.0];
        for level in Level::all_supported() {
            let mut out = [0.0f64; 3];
            assert_eq!(change_ratios_with(level, &prev, &curr, &mut out), None);
            assert!(!out[0].is_finite());
            assert!(out[2].is_nan(), "0/0 is NaN");
        }
    }

    #[test]
    fn non_finite_inputs_reported_per_array() {
        let n = 70; // spans the lane remainder
        let (mut prev, mut curr) = data(n);
        prev[41] = f64::NAN;
        curr[7] = f64::INFINITY;
        for level in Level::all_supported() {
            let mut out = vec![0.0f64; n];
            let bad = change_ratios_with(level, &prev, &curr, &mut out).unwrap();
            assert_eq!(bad.prev, Some(41), "level {}", level.name());
            assert_eq!(bad.curr, Some(7), "level {}", level.name());
        }
    }

    #[test]
    fn non_finite_in_tail_remainder_is_caught() {
        for n in [5usize, 9, 65] {
            let (mut prev, curr) = data(n);
            prev[n - 1] = f64::NEG_INFINITY;
            for level in Level::all_supported() {
                let mut out = vec![0.0f64; n];
                let bad = change_ratios_with(level, &prev, &curr, &mut out).unwrap();
                assert_eq!(bad.prev, Some(n - 1), "level {} n {n}", level.name());
            }
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn levels_match_oracle(
                pairs in proptest::collection::vec((-1e9f64..1e9, -1e9f64..1e9), 0..300)
            ) {
                let prev: Vec<f64> = pairs.iter().map(|p| p.0).collect();
                let curr: Vec<f64> = pairs.iter().map(|p| p.1).collect();
                let mut oracle = vec![0.0f64; prev.len()];
                let r0 = change_ratios_scalar(&prev, &curr, &mut oracle);
                for level in Level::all_supported() {
                    let mut got = vec![0.0f64; prev.len()];
                    let r = change_ratios_with(level, &prev, &curr, &mut got);
                    prop_assert_eq!(r, r0);
                    for j in 0..prev.len() {
                        prop_assert_eq!(got[j].to_bits(), oracle[j].to_bits());
                    }
                }
            }
        }
    }
}
