/root/repo/target/debug/deps/numarck_suite-e2cbd4200d83de3d.d: src/lib.rs

/root/repo/target/debug/deps/numarck_suite-e2cbd4200d83de3d: src/lib.rs

src/lib.rs:
