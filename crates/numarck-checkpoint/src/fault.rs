//! Fault injection for recovery testing.
//!
//! Checkpointing exists to survive faults, so the test suite must
//! exercise the failure paths: torn writes, bit rot, vanished files.
//! These helpers mutate stored checkpoint files in controlled ways and
//! [`verify_store`] reports which iterations remain restartable.

use std::fs;
use std::path::Path;

use crate::restart::RestartEngine;
use crate::store::CheckpointStore;

/// A way to damage a checkpoint file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Truncate the file to `keep` bytes.
    Truncate {
        /// Bytes to keep.
        keep: usize,
    },
    /// XOR the byte at `offset` with `mask`.
    BitFlip {
        /// Byte offset (clamped to the file).
        offset: usize,
        /// Mask to XOR in (0 is a no-op).
        mask: u8,
    },
    /// Delete the file entirely.
    Delete,
}

/// Apply `fault` to the file at `path`.
pub fn inject(path: &Path, fault: Fault) -> std::io::Result<()> {
    match fault {
        Fault::Truncate { keep } => {
            let data = fs::read(path)?;
            fs::write(path, &data[..keep.min(data.len())])
        }
        Fault::BitFlip { offset, mask } => {
            let mut data = fs::read(path)?;
            if data.is_empty() {
                return Ok(());
            }
            let o = offset.min(data.len() - 1);
            data[o] ^= mask;
            fs::write(path, data)
        }
        Fault::Delete => fs::remove_file(path),
    }
}

/// Health report for one iteration in a store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IterationHealth {
    /// Iteration number.
    pub iteration: u64,
    /// Whether [`RestartEngine::restart_at`] succeeds for it.
    pub restartable: bool,
}

/// Try to restart at every checkpointed iteration and report which ones
/// survive. Fault-tolerant diagnosis: one damaged delta makes every
/// later iteration (up to the next full) unrestartable, which this
/// report makes visible.
pub fn verify_store(store: &CheckpointStore) -> std::io::Result<Vec<IterationHealth>> {
    Ok(diagnose_store(store)?
        .into_iter()
        .map(|d| IterationHealth { iteration: d.iteration, restartable: d.error.is_none() })
        .collect())
}

/// [`IterationHealth`] with the *reason* an iteration is broken — what
/// the CLI's `verify --store` prints so an operator knows whether to
/// reach for `scrub`/`repair` or for the backups.
#[derive(Debug, Clone)]
pub struct IterationDiagnosis {
    /// Iteration number.
    pub iteration: u64,
    /// Whether this iteration's own file is a full checkpoint.
    pub is_full: bool,
    /// `None` when the iteration restarts cleanly; otherwise the error
    /// that stops it.
    pub error: Option<String>,
}

/// Like [`verify_store`], but keeps the error text per broken iteration.
pub fn diagnose_store(store: &CheckpointStore) -> std::io::Result<Vec<IterationDiagnosis>> {
    let engine = RestartEngine::new(store.clone());
    Ok(store
        .list()?
        .into_iter()
        .map(|e| IterationDiagnosis {
            iteration: e.iteration,
            is_full: e.is_full,
            error: engine.restart_at(e.iteration).err().map(|err| err.to_string()),
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::{CheckpointManager, ManagerPolicy};
    use crate::store::testutil::TempDir;
    use crate::VariableSet;
    use numarck::{Config, Strategy};

    fn build(tmp: &TempDir, iters: u64, full_interval: u64) -> CheckpointStore {
        let store = CheckpointStore::open(&tmp.0).unwrap();
        let cfg = Config::new(8, 0.001, Strategy::Clustering).unwrap();
        let mut mgr =
            CheckpointManager::new(store.clone(), cfg, ManagerPolicy::fixed(full_interval));
        let mut state: Vec<f64> = (0..200).map(|i| 1.0 + (i % 9) as f64).collect();
        for it in 0..iters {
            if it > 0 {
                for v in state.iter_mut() {
                    *v *= 1.002;
                }
            }
            let mut vars = VariableSet::new();
            vars.insert("x".into(), state.clone());
            mgr.checkpoint(it, &vars).unwrap();
        }
        store
    }

    #[test]
    fn healthy_store_is_fully_restartable() {
        let tmp = TempDir::new("fault-healthy");
        let store = build(&tmp, 10, 4);
        let health = verify_store(&store).unwrap();
        assert_eq!(health.len(), 10);
        assert!(health.iter().all(|h| h.restartable));
    }

    #[test]
    fn corrupt_delta_breaks_only_its_chain_segment() {
        let tmp = TempDir::new("fault-delta");
        let store = build(&tmp, 12, 4);
        // Corrupt delta at iteration 5 (fulls at 0, 4, 8).
        inject(&store.path_of(5, false), Fault::BitFlip { offset: 40, mask: 0x08 }).unwrap();
        let health = verify_store(&store).unwrap();
        let map: std::collections::BTreeMap<u64, bool> =
            health.iter().map(|h| (h.iteration, h.restartable)).collect();
        // 0..=4 fine; 5..=7 broken; 8.. fine again.
        for it in 0..=4u64 {
            assert!(map[&it], "iteration {it} should survive");
        }
        for it in 5..=7u64 {
            assert!(!map[&it], "iteration {it} should be broken");
        }
        for it in 8..=11u64 {
            assert!(map[&it], "iteration {it} should survive");
        }
    }

    #[test]
    fn truncated_full_breaks_until_next_full() {
        let tmp = TempDir::new("fault-full");
        let store = build(&tmp, 9, 4);
        inject(&store.path_of(4, true), Fault::Truncate { keep: 64 }).unwrap();
        let health = verify_store(&store).unwrap();
        let map: std::collections::BTreeMap<u64, bool> =
            health.iter().map(|h| (h.iteration, h.restartable)).collect();
        for it in 0..=3u64 {
            assert!(map[&it]);
        }
        for it in 4..=7u64 {
            assert!(!map[&it], "iteration {it} depends on the damaged full");
        }
        assert!(map[&8]);
    }

    #[test]
    fn deleted_base_detected() {
        let tmp = TempDir::new("fault-delete");
        let store = build(&tmp, 4, 10);
        inject(&store.path_of(0, true), Fault::Delete).unwrap();
        let health = verify_store(&store).unwrap();
        assert!(health.iter().all(|h| !h.restartable));
    }

    #[test]
    fn diagnosis_carries_the_reason() {
        let tmp = TempDir::new("fault-diagnose");
        let store = build(&tmp, 6, 10);
        inject(&store.path_of(2, false), Fault::Truncate { keep: 10 }).unwrap();
        let report = diagnose_store(&store).unwrap();
        assert_eq!(report.len(), 6);
        assert!(report[0].is_full && report[0].error.is_none());
        assert!(report[1].error.is_none());
        for d in &report[2..] {
            let err = d.error.as_ref().expect("chain through truncated delta is broken");
            assert!(!err.is_empty());
            assert!(!d.is_full);
        }
    }

    #[test]
    fn zero_mask_bitflip_is_harmless() {
        let tmp = TempDir::new("fault-noop");
        let store = build(&tmp, 3, 10);
        inject(&store.path_of(1, false), Fault::BitFlip { offset: 10, mask: 0 }).unwrap();
        assert!(verify_store(&store).unwrap().iter().all(|h| h.restartable));
    }
}
