/root/repo/target/debug/deps/ext6_dim3-198f177db59dfea4.d: crates/numarck-bench/src/bin/ext6_dim3.rs

/root/repo/target/debug/deps/ext6_dim3-198f177db59dfea4: crates/numarck-bench/src/bin/ext6_dim3.rs

crates/numarck-bench/src/bin/ext6_dim3.rs:
