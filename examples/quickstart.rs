//! Quickstart: compress one checkpoint transition, inspect the stats,
//! reconstruct, and verify the per-point error bound.
//!
//! Run with: `cargo run --release --example quickstart`

use numarck::{decode, serialize, Compressor, Config, Strategy};

fn main() {
    // Two consecutive "checkpoints" of a synthetic variable: a smooth
    // field where most points drift by ~0.2% and a few jump by ~5%.
    let n = 100_000;
    let prev: Vec<f64> = (0..n).map(|i| 50.0 + (i as f64 * 0.001).sin() * 10.0).collect();
    let curr: Vec<f64> = prev
        .iter()
        .enumerate()
        .map(|(i, v)| if i % 97 == 0 { v * 1.05 } else { v * 1.002 })
        .collect();

    // The paper's two user parameters: B index bits and tolerance E.
    let config = Config::new(8, 0.001, Strategy::Clustering).expect("valid parameters");
    let compressor = Compressor::new(config);
    let (block, stats) = compressor.compress(&prev, &curr).expect("finite input");

    println!("points                 : {}", stats.num_points);
    println!("compressible           : {}", stats.num_compressible);
    println!("stored exact (escaped) : {}", stats.num_incompressible);
    println!("representatives learned: {}", stats.table_len);
    println!("incompressible ratio γ : {:.4}%", stats.incompressible_ratio * 100.0);
    println!("compression (Eq. 3)    : {:.2}%", stats.compression_ratio_eq3 * 100.0);
    println!("compression (on disk)  : {:.2}%", stats.compression_ratio_actual * 100.0);
    println!("mean |Δ' − Δ|          : {:.6}%", stats.mean_error_rate * 100.0);
    println!("max  |Δ' − Δ|          : {:.6}%", stats.max_error_rate * 100.0);

    // Serialise to bytes (what a checkpoint file would store)...
    let bytes = serialize::to_bytes(&block);
    println!("serialized bytes       : {} ({} raw)", bytes.len(), n * 8);

    // ...read back and reconstruct.
    let wire = serialize::from_bytes(&bytes).expect("round trip");
    let restored = decode::reconstruct(&prev, &wire).expect("valid block");

    // The guarantee: every point's change ratio is within E.
    let mut worst: f64 = 0.0;
    for ((&p, &c), &r) in prev.iter().zip(&curr).zip(&restored) {
        let true_ratio = (c - p) / p;
        let approx_ratio = (r - p) / p;
        worst = worst.max((true_ratio - approx_ratio).abs());
    }
    println!("worst change-ratio error: {:.8} (bound {})", worst, config.tolerance());
    assert!(worst <= config.tolerance() + 1e-12);
    println!("error bound holds ✓");
}
