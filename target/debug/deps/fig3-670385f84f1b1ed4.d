/root/repo/target/debug/deps/fig3-670385f84f1b1ed4.d: crates/numarck-bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-670385f84f1b1ed4: crates/numarck-bench/src/bin/fig3.rs

crates/numarck-bench/src/bin/fig3.rs:
