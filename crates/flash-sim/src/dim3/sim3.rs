//! The 3-D simulation driver with the same checkpoint interface as the
//! 2-D driver.

use std::collections::BTreeMap;

use crate::dim3::mesh3::{Boundary3, Mesh3};
use crate::eos::GammaLaw;
use crate::euler::{to_conserved, to_primitive, Primitive};
use crate::vars::FlashVar;

/// 3-D test problems.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Problem3 {
    /// Sod shock tube along x (uniform in y, z).
    SodX,
    /// Spherical Sedov-like blast at the domain centre.
    SedovBlast,
}

impl Problem3 {
    /// Primitive state at `(x, y, z)` in the unit cube.
    pub fn initial_state(&self, x: f64, y: f64, z: f64) -> Primitive {
        // Smooth non-zero w so all ten variables are live from step one.
        // Unlike the 2-D solver's passive velz, w is dynamically coupled
        // here, so the seed is mirror-symmetric in every axis (cosines
        // only) to preserve the blast problems' symmetry.
        let w = 0.05
            + 0.01
                * (std::f64::consts::TAU * x).cos()
                * (std::f64::consts::TAU * y).cos()
                * (std::f64::consts::TAU * z).cos();
        match self {
            Problem3::SodX => {
                if x < 0.5 {
                    Primitive { rho: 1.0, u: 0.0, v: 0.0, w, p: 1.0 }
                } else {
                    Primitive { rho: 0.125, u: 0.0, v: 0.0, w, p: 0.1 }
                }
            }
            Problem3::SedovBlast => {
                let r2 = (x - 0.5).powi(2) + (y - 0.5).powi(2) + (z - 0.5).powi(2);
                let p = if r2 < 0.01 { 10.0 } else { 0.01 };
                Primitive { rho: 1.0, u: 0.0, v: 0.0, w, p }
            }
        }
    }

    /// Boundary each problem runs with.
    pub fn boundary(&self) -> Boundary3 {
        Boundary3::Outflow
    }
}

/// A running 3-D simulation.
#[derive(Debug, Clone)]
pub struct FlashSimulation3 {
    mesh: Mesh3,
    eos: GammaLaw,
    cfl: f64,
    time: f64,
    steps: u64,
}

impl FlashSimulation3 {
    /// Initialise `problem` on `blocks³` blocks of `cells³` cells.
    pub fn new(problem: Problem3, blocks: usize, cells: usize) -> Self {
        let mut mesh =
            Mesh3::new((blocks, blocks, blocks), (cells, cells, cells), problem.boundary());
        let eos = GammaLaw::AIR;
        mesh.fill(|x, y, z| to_conserved(&problem.initial_state(x, y, z), &eos));
        Self { mesh, eos, cfl: 0.35, time: 0.0, steps: 0 }
    }

    /// The paper's geometry: 16³-cell blocks.
    pub fn paper_default(problem: Problem3, blocks: usize) -> Self {
        Self::new(problem, blocks, 16)
    }

    /// Simulation time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Steps taken.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Interior cells (points per checkpoint variable).
    pub fn num_cells(&self) -> usize {
        self.mesh.num_cells()
    }

    /// Advance one CFL-limited step; returns `dt`.
    pub fn step(&mut self) -> f64 {
        self.mesh.exchange_guards();
        let smax = self.mesh.max_wave_speed(&self.eos).max(1e-12);
        let (dx, dy, dz) = self.mesh.cell_sizes();
        let dt = self.cfl * dx.min(dy).min(dz) / smax;
        self.mesh.advance(dt, &self.eos);
        self.time += dt;
        self.steps += 1;
        dt
    }

    /// Advance `n` steps.
    pub fn run_steps(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Extract the ten checkpoint variables (block-major, z-major
    /// interior order).
    pub fn checkpoint(&self) -> BTreeMap<FlashVar, Vec<f64>> {
        let n = self.num_cells();
        let (bxn, byn, bzn) = self.mesh.block_counts();
        let (nx, ny, nz) = self.mesh.block_dims();
        let mut vars: BTreeMap<FlashVar, Vec<f64>> =
            FlashVar::all().into_iter().map(|v| (v, vec![0.0; n])).collect();
        let mut idx = 0usize;
        for bk in 0..bzn {
            for bj in 0..byn {
                for bi in 0..bxn {
                    let block = self.mesh.block(bi, bj, bk);
                    for k in 0..nz as isize {
                        for j in 0..ny as isize {
                            for i in 0..nx as isize {
                                let pr = to_primitive(&block.state(i, j, k), &self.eos);
                                let eint = self.eos.internal_energy(pr.rho, pr.p);
                                let ener =
                                    eint + 0.5 * (pr.u * pr.u + pr.v * pr.v + pr.w * pr.w);
                                for v in FlashVar::all() {
                                    let val = match v {
                                        FlashVar::Dens => pr.rho,
                                        FlashVar::Eint => eint,
                                        FlashVar::Ener => ener,
                                        FlashVar::Gamc | FlashVar::Game => self.eos.gamma,
                                        FlashVar::Pres => pr.p,
                                        FlashVar::Temp => {
                                            self.eos.temperature(pr.rho, pr.p)
                                        }
                                        FlashVar::Velx => pr.u,
                                        FlashVar::Vely => pr.v,
                                        FlashVar::Velz => pr.w,
                                    };
                                    vars.get_mut(&v).expect("present")[idx] = val;
                                }
                                idx += 1;
                            }
                        }
                    }
                }
            }
        }
        vars
    }

    /// Restore from checkpoint variables (primary set: dens, velocities,
    /// pres).
    pub fn restore(&mut self, vars: &BTreeMap<FlashVar, Vec<f64>>) -> Result<(), String> {
        let n = self.num_cells();
        for v in [FlashVar::Dens, FlashVar::Velx, FlashVar::Vely, FlashVar::Velz, FlashVar::Pres]
        {
            let data = vars.get(&v).ok_or_else(|| format!("missing variable {v}"))?;
            if data.len() != n {
                return Err(format!("variable {v}: {} points, expected {n}", data.len()));
            }
        }
        let (bxn, byn, bzn) = self.mesh.block_counts();
        let (nx, ny, nz) = self.mesh.block_dims();
        let eos = self.eos;
        let mut idx = 0usize;
        for bk in 0..bzn {
            for bj in 0..byn {
                for bi in 0..bxn {
                    let block = self.mesh.block_mut(bi, bj, bk);
                    for k in 0..nz as isize {
                        for j in 0..ny as isize {
                            for i in 0..nx as isize {
                                let pr = Primitive {
                                    rho: vars[&FlashVar::Dens][idx],
                                    u: vars[&FlashVar::Velx][idx],
                                    v: vars[&FlashVar::Vely][idx],
                                    w: vars[&FlashVar::Velz][idx],
                                    p: vars[&FlashVar::Pres][idx],
                                };
                                block.set_state(i, j, k, to_conserved(&pr, &eos));
                                idx += 1;
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_shape_and_sanity() {
        let sim = FlashSimulation3::new(Problem3::SedovBlast, 2, 6);
        let cp = sim.checkpoint();
        assert_eq!(cp.len(), 10);
        for (v, data) in &cp {
            assert_eq!(data.len(), 8 * 216, "{v}");
            assert!(data.iter().all(|x| x.is_finite()));
        }
        assert!(cp[&FlashVar::Velz].iter().all(|&w| w.abs() > 0.01));
    }

    #[test]
    fn blast_stays_physical_and_symmetric() {
        let mut sim = FlashSimulation3::new(Problem3::SedovBlast, 2, 8);
        sim.run_steps(15);
        let cp = sim.checkpoint();
        assert!(cp[&FlashVar::Dens].iter().all(|&d| d > 0.0));
        assert!(cp[&FlashVar::Pres].iter().all(|&p| p > 0.0));
        // Mirror symmetry about the x mid-plane: rebuild global indexing
        // (block-major then z-major interior).
        let n = 16usize;
        let global = |gx: usize, gy: usize, gz: usize| -> f64 {
            let (bi, i) = (gx / 8, gx % 8);
            let (bj, j) = (gy / 8, gy % 8);
            let (bk, k) = (gz / 8, gz % 8);
            let block = (bk * 2 + bj) * 2 + bi;
            cp[&FlashVar::Dens][block * 512 + ((k * 8) + j) * 8 + i]
        };
        for gz in [4usize, 8, 12] {
            for gy in [3usize, 9] {
                for gx in 0..n {
                    let a = global(gx, gy, gz);
                    let b = global(n - 1 - gx, gy, gz);
                    assert!((a - b).abs() < 1e-9 * a.abs().max(1.0), "asym at {gx},{gy},{gz}");
                }
            }
        }
    }

    #[test]
    fn sod3_shock_progresses() {
        let mut sim = FlashSimulation3::new(Problem3::SodX, 2, 8);
        let before = sim.checkpoint();
        sim.run_steps(20);
        let after = sim.checkpoint();
        let mid_band = |d: &[f64]| d.iter().filter(|&&x| x > 0.15 && x < 0.9).count();
        assert!(mid_band(&after[&FlashVar::Dens]) > mid_band(&before[&FlashVar::Dens]));
    }

    #[test]
    fn restore_roundtrip_and_deterministic_continuation() {
        let mut reference = FlashSimulation3::new(Problem3::SodX, 2, 6);
        reference.run_steps(6);
        let cp = reference.checkpoint();
        let mut restarted = FlashSimulation3::new(Problem3::SodX, 2, 6);
        restarted.restore(&cp).unwrap();
        reference.run_steps(4);
        restarted.run_steps(4);
        let a = reference.checkpoint();
        let b = restarted.checkpoint();
        for v in FlashVar::all() {
            let scale = a[&v].iter().fold(0.0f64, |m, x| m.max(x.abs())).max(1e-30);
            for (x, y) in a[&v].iter().zip(&b[&v]) {
                assert!((x - y).abs() <= 1e-9 * scale, "{v}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn restore_validates() {
        let mut sim = FlashSimulation3::new(Problem3::SodX, 2, 4);
        let mut cp = sim.checkpoint();
        cp.remove(&FlashVar::Velz);
        assert!(sim.restore(&cp).is_err());
    }

    #[test]
    fn change_ratios_are_banded_like_the_2d_solver() {
        // The compression-relevant property carries over to 3-D.
        let mut sim = FlashSimulation3::new(Problem3::SedovBlast, 2, 8);
        sim.run_steps(20);
        let a = sim.checkpoint();
        sim.run_steps(1);
        let b = sim.checkpoint();
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for (x, y) in a[&FlashVar::Dens].iter().zip(&b[&FlashVar::Dens]) {
            let r = (y - x) / x;
            lo = lo.min(r);
            hi = hi.max(r);
        }
        assert!(hi - lo < 0.5, "band [{lo:.4}, {hi:.4}]");
    }
}
