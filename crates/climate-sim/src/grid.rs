//! The lat/lon grid the paper's CMIP5 variables live on.

/// A regular longitude × latitude grid. The paper's resolution is 2.5°
/// (lon) by 2° (lat): 144 × 90 points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grid {
    nlon: usize,
    nlat: usize,
}

impl Grid {
    /// The paper's CMIP5 grid: 144 × 90.
    pub fn cmip5() -> Self {
        Self::new(144, 90)
    }

    /// Arbitrary grid (used by tests and scaled-down benches).
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(nlon: usize, nlat: usize) -> Self {
        assert!(nlon > 0 && nlat > 0, "grid dimensions must be positive");
        Self { nlon, nlat }
    }

    /// Longitude points.
    #[inline]
    pub fn nlon(&self) -> usize {
        self.nlon
    }

    /// Latitude points.
    #[inline]
    pub fn nlat(&self) -> usize {
        self.nlat
    }

    /// Total points.
    #[inline]
    pub fn len(&self) -> usize {
        self.nlon * self.nlat
    }

    /// True for a degenerate grid (never constructible; kept for the
    /// conventional pairing with `len`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flat index of `(lon index, lat index)`, longitude-fastest.
    #[inline]
    pub fn index(&self, ilon: usize, ilat: usize) -> usize {
        debug_assert!(ilon < self.nlon && ilat < self.nlat);
        ilat * self.nlon + ilon
    }

    /// Inverse of [`Grid::index`].
    #[inline]
    pub fn coords(&self, idx: usize) -> (usize, usize) {
        (idx % self.nlon, idx / self.nlon)
    }

    /// Latitude of row `ilat` in radians, from −π/2 (row 0) to +π/2.
    #[inline]
    pub fn latitude(&self, ilat: usize) -> f64 {
        if self.nlat == 1 {
            return 0.0;
        }
        (ilat as f64 / (self.nlat - 1) as f64 - 0.5) * std::f64::consts::PI
    }

    /// Longitude of column `ilon` in radians, `[0, 2π)`.
    #[inline]
    pub fn longitude(&self, ilon: usize) -> f64 {
        ilon as f64 / self.nlon as f64 * std::f64::consts::TAU
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmip5_grid_matches_paper_resolution() {
        let g = Grid::cmip5();
        assert_eq!(g.nlon(), 144); // 360° / 2.5°
        assert_eq!(g.nlat(), 90); // 180° / 2°
        assert_eq!(g.len(), 12960);
    }

    #[test]
    fn index_coords_roundtrip() {
        let g = Grid::new(10, 7);
        for idx in 0..g.len() {
            let (i, j) = g.coords(idx);
            assert_eq!(g.index(i, j), idx);
        }
    }

    #[test]
    fn latitude_spans_poles() {
        let g = Grid::cmip5();
        assert!((g.latitude(0) + std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!((g.latitude(89) - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!(g.latitude(44).abs() < 0.05);
    }

    #[test]
    fn longitude_wraps() {
        let g = Grid::cmip5();
        assert_eq!(g.longitude(0), 0.0);
        assert!(g.longitude(143) < std::f64::consts::TAU);
    }
}
