/root/repo/target/debug/deps/numarck_suite-140e8dd16c0a630c.d: src/lib.rs

/root/repo/target/debug/deps/libnumarck_suite-140e8dd16c0a630c.rlib: src/lib.rs

/root/repo/target/debug/deps/libnumarck_suite-140e8dd16c0a630c.rmeta: src/lib.rs

src/lib.rs:
