//! Spatially correlated random fields.
//!
//! Climate anomalies are smooth in space: neighbouring grid cells move
//! together. We build such fields by box-blurring white noise a few
//! times (each pass convolves with a top-hat; three passes approximate a
//! Gaussian kernel well) and re-normalising to unit variance. Longitude
//! wraps around; latitude clamps at the poles.

use crate::grid::Grid;
use numarck_par::rng::Xoshiro256PlusPlus;

/// White standard-normal field.
pub fn white_noise(grid: Grid, rng: &mut Xoshiro256PlusPlus) -> Vec<f64> {
    (0..grid.len()).map(|_| rng.normal()).collect()
}

/// One separable box-blur pass with radius `r` (longitude wraps,
/// latitude clamps).
pub fn box_blur(grid: Grid, field: &[f64], r: usize) -> Vec<f64> {
    assert_eq!(field.len(), grid.len());
    let (nlon, nlat) = (grid.nlon(), grid.nlat());
    let w = (2 * r + 1) as f64;
    // Longitude pass (wrapping).
    let mut tmp = vec![0.0; field.len()];
    for ilat in 0..nlat {
        for ilon in 0..nlon {
            let mut s = 0.0;
            for d in -(r as isize)..=(r as isize) {
                let li = (ilon as isize + d).rem_euclid(nlon as isize) as usize;
                s += field[grid.index(li, ilat)];
            }
            tmp[grid.index(ilon, ilat)] = s / w;
        }
    }
    // Latitude pass (clamping).
    let mut out = vec![0.0; field.len()];
    for ilat in 0..nlat {
        for ilon in 0..nlon {
            let mut s = 0.0;
            for d in -(r as isize)..=(r as isize) {
                let lj = (ilat as isize + d).clamp(0, nlat as isize - 1) as usize;
                s += tmp[grid.index(ilon, lj)];
            }
            out[grid.index(ilon, ilat)] = s / w;
        }
    }
    out
}

/// Smooth unit-variance, zero-mean correlated noise: white noise blurred
/// `passes` times with radius `radius`, then re-standardised.
pub fn correlated_noise(
    grid: Grid,
    rng: &mut Xoshiro256PlusPlus,
    radius: usize,
    passes: usize,
) -> Vec<f64> {
    let mut f = white_noise(grid, rng);
    for _ in 0..passes {
        f = box_blur(grid, &f, radius);
    }
    standardize(&mut f);
    f
}

/// In-place shift/scale to zero mean, unit variance (no-op for a
/// constant field).
pub fn standardize(field: &mut [f64]) {
    if field.is_empty() {
        return;
    }
    let n = field.len() as f64;
    let mean = field.iter().sum::<f64>() / n;
    let var = field.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    let sd = var.sqrt();
    if sd == 0.0 {
        for x in field.iter_mut() {
            *x -= mean;
        }
        return;
    }
    for x in field.iter_mut() {
        *x = (*x - mean) / sd;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Xoshiro256PlusPlus {
        Xoshiro256PlusPlus::seed_from_u64(42)
    }

    #[test]
    fn white_noise_has_unit_moments() {
        let g = Grid::new(100, 100);
        let f = white_noise(g, &mut rng());
        let mean = f.iter().sum::<f64>() / f.len() as f64;
        let var = f.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / f.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn blur_preserves_mean() {
        let g = Grid::new(32, 24);
        let f = white_noise(g, &mut rng());
        let b = box_blur(g, &f, 2);
        let mf = f.iter().sum::<f64>() / f.len() as f64;
        let mb = b.iter().sum::<f64>() / b.len() as f64;
        // Latitude clamping redistributes but longitude wrap conserves;
        // means agree loosely.
        assert!((mf - mb).abs() < 0.05, "{mf} vs {mb}");
    }

    #[test]
    fn blur_reduces_variance() {
        let g = Grid::new(64, 48);
        let f = white_noise(g, &mut rng());
        let b = box_blur(g, &f, 2);
        let var = |v: &[f64]| {
            let m = v.iter().sum::<f64>() / v.len() as f64;
            v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64
        };
        assert!(var(&b) < 0.5 * var(&f));
    }

    #[test]
    fn correlated_noise_is_smooth_and_standardised() {
        let g = Grid::new(72, 45);
        let f = correlated_noise(g, &mut rng(), 2, 3);
        let mean = f.iter().sum::<f64>() / f.len() as f64;
        let var = f.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / f.len() as f64;
        assert!(mean.abs() < 1e-10);
        assert!((var - 1.0).abs() < 1e-10);
        // Smoothness: neighbour correlation well above white noise.
        let mut num = 0.0;
        let mut count = 0.0;
        for ilat in 0..g.nlat() {
            for ilon in 0..g.nlon() - 1 {
                num += f[g.index(ilon, ilat)] * f[g.index(ilon + 1, ilat)];
                count += 1.0;
            }
        }
        let corr = num / count;
        assert!(corr > 0.7, "neighbour correlation {corr} too low");
    }

    #[test]
    fn longitude_blur_wraps_seamlessly() {
        let g = Grid::new(16, 4);
        // Impulse at lon 0: blur must leak to lon 15 via the wrap.
        let mut f = vec![0.0; g.len()];
        f[g.index(0, 2)] = 1.0;
        let b = box_blur(g, &f, 1);
        assert!(b[g.index(15, 2)] > 0.0, "no wrap-around leakage");
        assert!(b[g.index(1, 2)] > 0.0);
    }

    #[test]
    fn standardize_constant_field() {
        let mut f = vec![3.0; 10];
        standardize(&mut f);
        assert!(f.iter().all(|&x| x == 0.0));
        let mut e: Vec<f64> = vec![];
        standardize(&mut e); // must not panic
    }

    #[test]
    fn deterministic_for_seed() {
        let g = Grid::new(20, 20);
        let a = correlated_noise(g, &mut Xoshiro256PlusPlus::seed_from_u64(7), 2, 2);
        let b = correlated_noise(g, &mut Xoshiro256PlusPlus::seed_from_u64(7), 2, 2);
        assert_eq!(a, b);
    }
}
