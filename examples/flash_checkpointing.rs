//! Checkpoint a running FLASH-style hydrodynamics simulation through the
//! full manager/store pipeline, then restart mid-chain and compare
//! storage cost against raw checkpointing.
//!
//! Run with: `cargo run --release --example flash_checkpointing`

use flash_sim::{FlashSimulation, Problem};
use numarck::{Config, Strategy};
use numarck_checkpoint::{
    CheckpointManager, CheckpointStore, ManagerPolicy, RestartEngine, VariableSet,
};

fn main() {
    let dir = std::env::temp_dir().join(format!("numarck-flash-example-{}", std::process::id()));
    let store = CheckpointStore::open(&dir).expect("temp dir is writable");
    let config = Config::new(8, 0.001, Strategy::Clustering).expect("valid parameters");
    let mut manager =
        CheckpointManager::new(store.clone(), config, ManagerPolicy::fixed(8));

    // Run the blast problem, checkpointing every 2 solver steps.
    let mut sim = FlashSimulation::paper_default(Problem::SedovBlast, 4, 4);
    sim.run_steps(40); // past the launch transient
    let mut truth: Vec<VariableSet> = Vec::new();
    for iteration in 0..16u64 {
        if iteration > 0 {
            sim.run_steps(2);
        }
        let vars: VariableSet =
            sim.checkpoint().into_iter().map(|(v, data)| (v.name().to_string(), data)).collect();
        match manager.checkpoint(iteration, &vars).expect("checkpoint write") {
            numarck_checkpoint::manager::CheckpointOutcome::Full
            | numarck_checkpoint::manager::CheckpointOutcome::FullOnDrift { .. } => {
                println!("iteration {iteration:2}: FULL checkpoint");
            }
            numarck_checkpoint::manager::CheckpointOutcome::Delta(stats) => {
                let gamma = stats.values().map(|s| s.incompressible_ratio).sum::<f64>()
                    / stats.len() as f64;
                let ratio = stats.values().map(|s| s.compression_ratio_actual).sum::<f64>()
                    / stats.len() as f64;
                println!(
                    "iteration {iteration:2}: delta  (mean γ {:5.2}%, on-disk compression {:5.2}%)",
                    gamma * 100.0,
                    ratio * 100.0
                );
            }
        }
        truth.push(vars);
    }

    // Storage accounting.
    let mut stored: u64 = 0;
    for entry in store.list().expect("list") {
        stored += std::fs::metadata(store.path_of(entry.iteration, entry.is_full))
            .expect("file exists")
            .len();
    }
    let raw: u64 = truth
        .iter()
        .map(|vars| vars.values().map(|v| v.len() as u64 * 8).sum::<u64>())
        .sum();
    println!("\nstored {stored} bytes vs {raw} raw ({:.1}% saved)", (1.0 - stored as f64 / raw as f64) * 100.0);

    // Restart mid-chain and verify the error bound chain-compounds.
    let engine = RestartEngine::new(store);
    let target = 13u64;
    let restart = engine.restart_at(target).expect("restartable");
    println!(
        "\nrestarted at iteration {target}: base full = {}, deltas applied = {}",
        restart.base_iteration, restart.deltas_applied
    );
    let mut worst: f64 = 0.0;
    for (name, exact) in &truth[target as usize] {
        for (a, b) in exact.iter().zip(&restart.vars[name]) {
            if *a != 0.0 {
                worst = worst.max(((a - b) / a).abs());
            }
        }
    }
    let budget = (1.0 + config.tolerance()).powi(restart.deltas_applied as i32) - 1.0;
    println!("worst restart error {:.6}% (chain budget {:.6}%)", worst * 100.0, budget * 100.0);
    assert!(worst <= budget + 1e-9);
    println!("restart within the accumulated error budget ✓");

    let _ = std::fs::remove_dir_all(&dir);
}
