/root/repo/target/release/deps/numarck_checkpoint-28a8a16c80c2f954.d: crates/numarck-checkpoint/src/lib.rs crates/numarck-checkpoint/src/backend.rs crates/numarck-checkpoint/src/fault.rs crates/numarck-checkpoint/src/format.rs crates/numarck-checkpoint/src/manager.rs crates/numarck-checkpoint/src/obs.rs crates/numarck-checkpoint/src/replicated.rs crates/numarck-checkpoint/src/restart.rs crates/numarck-checkpoint/src/scrub.rs crates/numarck-checkpoint/src/store.rs

/root/repo/target/release/deps/libnumarck_checkpoint-28a8a16c80c2f954.rlib: crates/numarck-checkpoint/src/lib.rs crates/numarck-checkpoint/src/backend.rs crates/numarck-checkpoint/src/fault.rs crates/numarck-checkpoint/src/format.rs crates/numarck-checkpoint/src/manager.rs crates/numarck-checkpoint/src/obs.rs crates/numarck-checkpoint/src/replicated.rs crates/numarck-checkpoint/src/restart.rs crates/numarck-checkpoint/src/scrub.rs crates/numarck-checkpoint/src/store.rs

/root/repo/target/release/deps/libnumarck_checkpoint-28a8a16c80c2f954.rmeta: crates/numarck-checkpoint/src/lib.rs crates/numarck-checkpoint/src/backend.rs crates/numarck-checkpoint/src/fault.rs crates/numarck-checkpoint/src/format.rs crates/numarck-checkpoint/src/manager.rs crates/numarck-checkpoint/src/obs.rs crates/numarck-checkpoint/src/replicated.rs crates/numarck-checkpoint/src/restart.rs crates/numarck-checkpoint/src/scrub.rs crates/numarck-checkpoint/src/store.rs

crates/numarck-checkpoint/src/lib.rs:
crates/numarck-checkpoint/src/backend.rs:
crates/numarck-checkpoint/src/fault.rs:
crates/numarck-checkpoint/src/format.rs:
crates/numarck-checkpoint/src/manager.rs:
crates/numarck-checkpoint/src/obs.rs:
crates/numarck-checkpoint/src/replicated.rs:
crates/numarck-checkpoint/src/restart.rs:
crates/numarck-checkpoint/src/scrub.rs:
crates/numarck-checkpoint/src/store.rs:
