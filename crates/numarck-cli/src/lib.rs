//! The `numarck` command-line tool.
//!
//! A thin, dependency-free front-end over the library for working with
//! *iteration sequence* files (`.f64s`, a trivial raw container defined
//! in [`seqfile`]) and NUMARCK *chain* files (`.nmkc`, a full base
//! checkpoint plus compressed deltas, defined in [`chainfile`]):
//!
//! ```text
//! numarck gen  --source climate:rlus --iterations 20 --out data.f64s
//! numarck compress data.f64s --out data.nmkc --bits 8 --tolerance 0.001
//! numarck decompress data.nmkc --out restored.f64s
//! numarck inspect data.nmkc
//! numarck verify data.f64s restored.f64s
//! ```
//!
//! All command logic lives in this library crate so it is unit-testable;
//! `main.rs` only forwards `std::env::args`.

pub mod args;
pub mod chainfile;
pub mod commands;
pub mod compact_cmd;
pub mod router_cmd;
pub mod seqfile;
pub mod serve_cmd;

/// Process exit codes, stable for scripts and CI to branch on.
pub mod exit_code {
    /// Unclassified failure (I/O, compression internals, ...).
    pub const GENERIC: i32 = 1;
    /// Bad invocation: unknown command, unknown flag, malformed value.
    pub const USAGE: i32 = 2;
    /// The thing asked about is absent: store directory or input file
    /// missing, store empty, no restartable iteration, unknown session.
    pub const MISSING: i32 = 3;
    /// Data exists but is damaged: verify FAIL, CRC/parse corruption.
    pub const CORRUPT: i32 = 4;
    /// A scrub quarantined files (damage was found *and* acted on).
    pub const QUARANTINED: i32 = 5;
    /// The server's bounded queue rejected the request; retry later.
    pub const BUSY: i32 = 6;
}

/// A CLI failure: the message for stderr plus the process exit code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    /// Process exit code (see [`exit_code`]).
    pub code: i32,
    /// Message printed to stderr.
    pub message: String,
}

impl CliError {
    /// Bad invocation ([`exit_code::USAGE`]).
    pub fn usage(message: impl Into<String>) -> Self {
        Self { code: exit_code::USAGE, message: message.into() }
    }

    /// Absent target ([`exit_code::MISSING`]).
    pub fn missing(message: impl Into<String>) -> Self {
        Self { code: exit_code::MISSING, message: message.into() }
    }

    /// Damaged data ([`exit_code::CORRUPT`]).
    pub fn corrupt(message: impl Into<String>) -> Self {
        Self { code: exit_code::CORRUPT, message: message.into() }
    }

    /// Damage found and quarantined ([`exit_code::QUARANTINED`]).
    pub fn quarantined(message: impl Into<String>) -> Self {
        Self { code: exit_code::QUARANTINED, message: message.into() }
    }

    /// Server backpressure ([`exit_code::BUSY`]).
    pub fn busy(message: impl Into<String>) -> Self {
        Self { code: exit_code::BUSY, message: message.into() }
    }

    /// Shorthand used all over the tests.
    pub fn contains(&self, needle: &str) -> bool {
        self.message.contains(needle)
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl From<String> for CliError {
    fn from(message: String) -> Self {
        Self { code: exit_code::GENERIC, message }
    }
}

impl From<&str> for CliError {
    fn from(message: &str) -> Self {
        Self { code: exit_code::GENERIC, message: message.to_string() }
    }
}

/// Exit status for the binary: `Ok(report)` printed to stdout, `Err`
/// printed to stderr with its [`CliError::code`] as the exit code.
pub type CliResult = Result<String, CliError>;

/// Entry point shared by `main.rs` and the tests.
pub fn run(args: &[String]) -> CliResult {
    let Some(command) = args.first() else {
        return Err(CliError::usage(usage()));
    };
    match command.as_str() {
        "gen" => commands::gen(&args[1..]),
        "compress" => commands::compress(&args[1..]),
        "decompress" => commands::decompress(&args[1..]),
        "inspect" => commands::inspect(&args[1..]),
        "verify" => commands::verify(&args[1..]),
        "anomaly-scan" => commands::anomaly_scan(&args[1..]),
        "drift" => commands::drift(&args[1..]),
        "scrub" => commands::scrub(&args[1..]),
        "repair" => commands::repair(&args[1..]),
        "compact" => compact_cmd::compact(&args[1..]),
        "chain" => compact_cmd::chain(&args[1..]),
        "serve" => serve_cmd::serve(&args[1..]),
        "router" => router_cmd::router(&args[1..]),
        "stats" => serve_cmd::stats(&args[1..]),
        "client" => serve_cmd::client(&args[1..]),
        "--help" | "-h" | "help" => Ok(usage()),
        other => Err(CliError::usage(format!("unknown command '{other}'\n\n{}", usage()))),
    }
}

/// The usage text.
pub fn usage() -> String {
    "numarck — error-bounded checkpoint compression (NUMARCK, SC'14)

USAGE:
  numarck gen        --source <climate:VAR | flash:VAR> --iterations <N> --out <file.f64s>
  numarck compress   <in.f64s>  --out <file.nmkc> [--bits B] [--tolerance E]
                     [--strategy equal-width|log-scale|clustering] [--closed-loop] [--entropy]
  numarck decompress <in.nmkc>  --out <file.f64s>
  numarck inspect    <in.nmkc>
  numarck verify     <a.f64s> <b.f64s> [--tolerance E]
  numarck verify     --store <ckpt-dir> [--replicas N]
  numarck anomaly-scan <in.f64s> [--fence-multiplier K]
  numarck drift        <in.f64s> [--tolerance E] [--cap C]
  numarck scrub      <ckpt-dir> [--replicas N]
  numarck repair     <ckpt-dir> [--replicas N]
  numarck compact    <ckpt-dir> [--window K] [--slo-ms MS] [--keep-fulls N]
                     [--keep-every K] [--min-age-secs S] [--replicas N]
  numarck chain      <ckpt-dir> [--replicas N]
  numarck serve      --root <dir> [--addr HOST:PORT] [--workers N] [--queue N]
                     [--bits B] [--tolerance E] [--full-interval K]
                     [--metrics-addr HOST:PORT] [--replicas N]
                     [--compact-interval-secs S] [--compact-window K]
                     [--restart-slo-ms MS] [--gc-keep-fulls N]
                     [--gc-keep-every K] [--gc-min-age-secs S]
  numarck router     --shards HOST:PORT,HOST:PORT,... [--addr HOST:PORT]
                     [--replication N] [--vnodes V] [--metrics-addr HOST:PORT]
                     [--probe-interval-ms MS] [--markdown-after K] [--max-conns N]
  numarck stats      --addr HOST:PORT [--prometheus | --json]
  numarck client     ingest   --addr HOST:PORT --session NAME <in.f64s>
  numarck client     replay   --addr HOST:PORT --session NAME --out <file.f64s>
  numarck client     restart  --addr HOST:PORT --session NAME [--at N] --out <file.f64s>
  numarck client     stats    --addr HOST:PORT [--prometheus | --json]
  numarck client     scrub    --addr HOST:PORT --session NAME [--repair]
  numarck client     shutdown --addr HOST:PORT

Defaults: --bits 8, --tolerance 0.001 (0.1%), --strategy clustering.
Recovery: 'verify --store' reports restartability per iteration; 'scrub'
quarantines files that fail CRC validation; 'repair' additionally drops
orphaned chain segments and re-anchors with a fresh full checkpoint.
Maintenance: 'compact' merges runs of consecutive deltas bit-exactly
(--window), promotes full checkpoints until the modeled worst-case
restart meets --slo-ms, and (with --keep-fulls) garbage-collects
superseded files; 'chain' prints the stored layout and modeled restart
cost per iteration.
Durability: '--replicas N' stores every file N ways (majority write
quorum) under @replica-{i} subdirectories; scrub cross-compares the
copies and read-repairs missing or divergent ones. 'serve' journals
every ingest intent and recovers half-applied writes on startup.
Observability: 'serve --metrics-addr' exposes a plain-HTTP GET /metrics
endpoint (Prometheus text); 'stats --prometheus|--json' renders the wire
stats reply in the same formats.
Cluster: 'router' fronts N 'serve' shards, placing sessions by
consistent hashing and replicating ingest (factor --replication); every
'client' subcommand accepts --via-router HOST:PORT as a synonym for
--addr to target the gateway.
Exit codes: 0 ok · 1 error · 2 usage · 3 missing · 4 corrupt ·
5 quarantined-by-scrub · 6 server-busy."
        .to_string()
}

#[cfg(test)]
pub(crate) mod testutil {
    use std::path::PathBuf;

    pub struct TempDir(pub PathBuf);

    impl TempDir {
        pub fn new(tag: &str) -> Self {
            let path = std::env::temp_dir().join(format!(
                "numarck-cli-{tag}-{}-{}",
                std::process::id(),
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .expect("after epoch")
                    .as_nanos()
            ));
            std::fs::create_dir_all(&path).expect("mkdir");
            Self(path)
        }

        pub fn path(&self, name: &str) -> String {
            self.0.join(name).display().to_string()
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    pub fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::{argv, TempDir};
    use super::*;

    #[test]
    fn no_args_shows_usage_as_error() {
        assert!(run(&[]).is_err());
    }

    #[test]
    fn help_is_ok() {
        assert!(run(&argv(&["--help"])).unwrap().contains("USAGE"));
    }

    #[test]
    fn unknown_command_is_error_with_usage() {
        let err = run(&argv(&["frobnicate"])).unwrap_err();
        assert!(err.contains("unknown command"));
        assert!(err.contains("USAGE"));
        assert_eq!(err.code, exit_code::USAGE);
    }

    #[test]
    fn usage_errors_carry_the_usage_exit_code() {
        // Unknown flag.
        let err = run(&argv(&["inspect", "--bogus", "x"])).unwrap_err();
        assert_eq!(err.code, exit_code::USAGE, "{err}");
        // Wrong positional count.
        let err = run(&argv(&["verify", "only-one.f64s"])).unwrap_err();
        assert_eq!(err.code, exit_code::USAGE, "{err}");
        // Missing required flag.
        let err = run(&argv(&["gen", "--source", "climate:rlus"])).unwrap_err();
        assert_eq!(err.code, exit_code::USAGE, "{err}");
        // A malformed *value* is a generic error, not a usage error.
        let err = run(&argv(&["gen", "--source", "nope", "--out", "/tmp/x"])).unwrap_err();
        assert_eq!(err.code, exit_code::GENERIC, "{err}");
    }

    #[test]
    fn full_pipeline_roundtrip() {
        let tmp = TempDir::new("pipeline");
        let data = tmp.path("data.f64s");
        let chain = tmp.path("data.nmkc");
        let restored = tmp.path("restored.f64s");

        let out = run(&argv(&[
            "gen", "--source", "climate:rlus", "--iterations", "5", "--grid", "24x16",
            "--out", &data,
        ]))
        .unwrap();
        assert!(out.contains("5 iterations"), "{out}");

        let out = run(&argv(&[
            "compress", &data, "--out", &chain, "--bits", "8", "--tolerance", "0.001",
        ]))
        .unwrap();
        assert!(out.contains("compression"), "{out}");

        let out = run(&argv(&["decompress", &chain, "--out", &restored])).unwrap();
        assert!(out.contains("5 iterations"), "{out}");

        let out = run(&argv(&["verify", &data, &restored, "--tolerance", "0.001"])).unwrap();
        assert!(out.contains("PASS"), "{out}");

        let out = run(&argv(&["inspect", &chain])).unwrap();
        assert!(out.contains("deltas"), "{out}");
    }

    #[test]
    fn closed_loop_pipeline_roundtrip() {
        let tmp = TempDir::new("closed");
        let data = tmp.path("d.f64s");
        let chain = tmp.path("d.nmkc");
        let restored = tmp.path("r.f64s");
        run(&argv(&[
            "gen", "--source", "flash:dens", "--iterations", "4", "--out", &data,
        ]))
        .unwrap();
        run(&argv(&["compress", &data, "--out", &chain, "--closed-loop"])).unwrap();
        run(&argv(&["decompress", &chain, "--out", &restored])).unwrap();
        let out = run(&argv(&["verify", &data, &restored])).unwrap();
        assert!(out.contains("PASS"), "{out}");
    }

    #[test]
    fn entropy_pipeline_roundtrip_is_smaller() {
        let tmp = TempDir::new("entropy");
        let data = tmp.path("d.f64s");
        let plain = tmp.path("p.nmkc");
        let packed = tmp.path("e.nmkc");
        let restored = tmp.path("r.f64s");
        run(&argv(&["gen", "--source", "flash:dens", "--iterations", "6", "--out", &data])).unwrap();
        run(&argv(&["compress", &data, "--out", &plain])).unwrap();
        run(&argv(&["compress", &data, "--out", &packed, "--entropy"])).unwrap();
        let plain_len = std::fs::metadata(&plain).unwrap().len();
        let packed_len = std::fs::metadata(&packed).unwrap().len();
        assert!(packed_len < plain_len, "entropy {packed_len} vs plain {plain_len}");
        run(&argv(&["decompress", &packed, "--out", &restored])).unwrap();
        let out = run(&argv(&["verify", &data, &restored])).unwrap();
        assert!(out.contains("PASS"), "{out}");
    }

    #[test]
    fn verify_fails_on_mismatched_data() {
        let tmp = TempDir::new("verify-fail");
        let a = tmp.path("a.f64s");
        let b = tmp.path("b.f64s");
        run(&argv(&["gen", "--source", "climate:mc", "--iterations", "3", "--grid", "16x8", "--out", &a])).unwrap();
        run(&argv(&["gen", "--source", "climate:mrro", "--iterations", "3", "--grid", "16x8", "--out", &b])).unwrap();
        let err = run(&argv(&["verify", &a, &b, "--tolerance", "0.001"])).unwrap_err();
        assert!(err.contains("FAIL"), "{err}");
        assert_eq!(err.code, exit_code::CORRUPT);
    }

    #[test]
    fn anomaly_scan_flags_injected_corruption() {
        let tmp = TempDir::new("anomaly");
        let data = tmp.path("d.f64s");
        run(&argv(&["gen", "--source", "climate:rlus", "--iterations", "4", "--grid", "32x20", "--out", &data])).unwrap();
        // Clean scan first.
        let out = run(&argv(&["anomaly-scan", &data])).unwrap();
        assert!(out.contains("total suspect points: 0"), "{out}");
        // Corrupt one value in iteration 2 (smash the exponent).
        let mut seq = crate::seqfile::read(std::path::Path::new(&data)).unwrap();
        seq[2][100] *= 1e9;
        crate::seqfile::write(std::path::Path::new(&data), &seq).unwrap();
        let out = run(&argv(&["anomaly-scan", &data])).unwrap();
        assert!(out.contains("point      100"), "{out}");
        // The same corrupt value is an outlier in two transitions (in and
        // out of iteration 2).
        assert!(out.contains("total suspect points: 2"), "{out}");
    }

    #[test]
    fn drift_prints_series() {
        let tmp = TempDir::new("drift");
        let data = tmp.path("d.f64s");
        run(&argv(&["gen", "--source", "climate:mc", "--iterations", "5", "--grid", "32x20", "--out", &data])).unwrap();
        let out = run(&argv(&["drift", &data])).unwrap();
        assert!(out.contains("L1"), "{out}");
        // 4 transitions -> 3 drift rows.
        assert_eq!(out.lines().count(), 4, "{out}");
    }

    #[test]
    fn missing_file_is_a_clean_error() {
        let err = run(&argv(&["inspect", "/nonexistent/x.nmkc"])).unwrap_err();
        assert!(err.contains("cannot"), "{err}");
    }

    #[test]
    fn gen_unknown_flash_variable_is_a_clean_error() {
        let tmp = TempDir::new("gen-badvar");
        let out = tmp.path("x.f64s");
        let err = run(&argv(&[
            "gen", "--source", "flash:nosuchvar", "--iterations", "2", "--out", &out,
        ]))
        .unwrap_err();
        assert!(err.contains("nosuchvar"), "{err}");
    }

    /// Build a small checkpoint store for the recovery-command tests.
    fn build_store(dir: &std::path::Path, iters: u64) -> numarck_checkpoint::CheckpointStore {
        use numarck_checkpoint::{CheckpointManager, CheckpointStore, ManagerPolicy};
        let store = CheckpointStore::open(dir).unwrap();
        let cfg = numarck::Config::new(8, 0.001, numarck::Strategy::Clustering).unwrap();
        let mut mgr = CheckpointManager::new(store.clone(), cfg, ManagerPolicy::fixed(4));
        let mut state: Vec<f64> = (0..120).map(|i| 1.0 + (i % 7) as f64).collect();
        for it in 0..iters {
            if it > 0 {
                for v in state.iter_mut() {
                    *v *= 1.002;
                }
            }
            let mut vars = std::collections::BTreeMap::new();
            vars.insert("x".to_string(), state.clone());
            mgr.checkpoint(it, &vars).unwrap();
        }
        store
    }

    #[test]
    fn verify_store_reports_health() {
        let tmp = TempDir::new("verify-store");
        let store = build_store(&tmp.0, 6);
        let dir = tmp.0.display().to_string();
        let out = run(&argv(&["verify", "--store", &dir])).unwrap();
        assert!(out.contains("PASS"), "{out}");
        // Break a delta: verify now fails and points at scrub/repair.
        numarck_checkpoint::fault::inject(
            &store.path_of(5, false),
            numarck_checkpoint::fault::Fault::Truncate { keep: 10 },
        )
        .unwrap();
        let err = run(&argv(&["verify", "--store", &dir])).unwrap_err();
        assert!(err.contains("FAIL"), "{err}");
        assert!(err.contains("scrub"), "{err}");
        assert_eq!(err.code, exit_code::CORRUPT);
    }

    #[test]
    fn scrub_then_repair_restores_the_store() {
        let tmp = TempDir::new("scrub-repair");
        let store = build_store(&tmp.0, 7);
        numarck_checkpoint::fault::inject(
            &store.path_of(5, false),
            numarck_checkpoint::fault::Fault::BitFlip { offset: 30, mask: 0x10 },
        )
        .unwrap();
        let dir = tmp.0.display().to_string();
        // A scrub that quarantines exits with the dedicated code so
        // operators/CI can distinguish "found damage" from "clean".
        let err = run(&argv(&["scrub", &dir])).unwrap_err();
        assert_eq!(err.code, exit_code::QUARANTINED, "{err}");
        assert!(err.contains("quarantined iteration 5"), "{err}");
        let out = run(&argv(&["repair", &dir])).unwrap();
        assert!(out.contains("lost iteration 6"), "{out}");
        let out = run(&argv(&["verify", "--store", &dir])).unwrap();
        assert!(out.contains("PASS"), "{out}");
    }

    #[test]
    fn scrub_of_clean_store_says_so() {
        let tmp = TempDir::new("scrub-clean-cli");
        build_store(&tmp.0, 4);
        let out = run(&argv(&["scrub", &tmp.0.display().to_string()])).unwrap();
        assert!(out.contains("clean"), "{out}");
    }

    /// Build a 3-way replicated store (majority write quorum) under
    /// `dir`, the layout `serve --replicas 3` and
    /// `scrub --replicas 3` operate on.
    fn build_replicated_store(
        dir: &std::path::Path,
        iters: u64,
    ) -> numarck_checkpoint::CheckpointStore {
        use numarck_checkpoint::{
            CheckpointManager, CheckpointStore, ManagerPolicy, ReplicatedBackend,
        };
        let backend = ReplicatedBackend::with_fs_replicas(dir, 3, 2).unwrap();
        let store = CheckpointStore::open_with(dir, std::sync::Arc::new(backend)).unwrap();
        let cfg = numarck::Config::new(8, 0.001, numarck::Strategy::Clustering).unwrap();
        let mut mgr = CheckpointManager::new(store.clone(), cfg, ManagerPolicy::fixed(4));
        let mut state: Vec<f64> = (0..120).map(|i| 1.0 + (i % 7) as f64).collect();
        for it in 0..iters {
            if it > 0 {
                for v in state.iter_mut() {
                    *v *= 1.002;
                }
            }
            let mut vars = std::collections::BTreeMap::new();
            vars.insert("x".to_string(), state.clone());
            mgr.checkpoint(it, &vars).unwrap();
        }
        store
    }

    #[test]
    fn replicated_scrub_read_repairs_a_lost_replica_copy() {
        let tmp = TempDir::new("scrub-replicas");
        let store = build_replicated_store(&tmp.0, 6);
        let dir = tmp.0.display().to_string();
        // Lose replica 1's copy of the first full and bit-rot its copy
        // of a delta: the other two replicas still agree.
        let full = store.path_of(0, true).file_name().unwrap().to_owned();
        let delta = store.path_of(2, false).file_name().unwrap().to_owned();
        let victim = tmp.0.join("@replica-1");
        std::fs::remove_file(victim.join(&full)).unwrap();
        numarck_checkpoint::fault::inject(
            &victim.join(&delta),
            numarck_checkpoint::fault::Fault::BitFlip { offset: 25, mask: 0x40 },
        )
        .unwrap();

        // Quorum reads keep every iteration restartable despite the
        // damaged replica.
        let out = run(&argv(&["verify", "--store", &dir, "--replicas", "3"])).unwrap();
        assert!(out.contains("PASS"), "{out}");

        // One scrub pass restores full replication and says so.
        let out = run(&argv(&["scrub", &dir, "--replicas", "3"])).unwrap();
        assert!(out.contains("clean"), "{out}");
        assert!(out.contains("2 read-repair(s)"), "{out}");
        assert!(victim.join(&full).exists(), "deleted replica copy must be rewritten");

        // Replica 1's copies now match replica 0's byte-for-byte.
        for name in [&full, &delta] {
            assert_eq!(
                std::fs::read(victim.join(name)).unwrap(),
                std::fs::read(tmp.0.join("@replica-0").join(name)).unwrap(),
            );
        }

        // A second pass has nothing left to fix.
        let out = run(&argv(&["scrub", &dir, "--replicas", "3"])).unwrap();
        assert!(out.contains("0 read-repair(s)"), "{out}");
    }

    /// Cold-start edge cases: the recovery commands must produce typed
    /// reports (exit codes), never panic, on stores that barely exist.
    #[test]
    fn scrub_cold_start_edge_cases_yield_typed_reports() {
        // 1. An empty session directory: nothing to check, nothing to
        // repair — scrub is clean, verify/repair report MISSING.
        let tmp = TempDir::new("cold-empty");
        let dir = tmp.0.display().to_string();
        let out = run(&argv(&["scrub", &dir])).unwrap();
        assert!(out.contains("0 file(s) checked"), "{out}");
        let err = run(&argv(&["verify", "--store", &dir])).unwrap_err();
        assert_eq!(err.code, exit_code::MISSING, "{err}");
        let err = run(&argv(&["repair", &dir])).unwrap_err();
        assert_eq!(err.code, exit_code::MISSING, "{err}");
        assert!(err.contains("no restartable iteration"), "{err}");

        // 2. A session holding only crash debris: a temp file that never
        // reached its rename (ignored by the store listing) and a
        // half-renamed file full of garbage (quarantined, then MISSING
        // on repair since nothing restartable remains).
        let tmp = TempDir::new("cold-debris");
        let dir = tmp.0.display().to_string();
        std::fs::write(tmp.0.join("ckpt_0000000000.tmp"), b"half a write").unwrap();
        let out = run(&argv(&["scrub", &dir])).unwrap();
        assert!(out.contains("0 file(s) checked"), "{out}");
        std::fs::write(tmp.0.join("ckpt_0000000000.full"), b"torn rename garbage").unwrap();
        let err = run(&argv(&["scrub", &dir])).unwrap_err();
        assert_eq!(err.code, exit_code::QUARANTINED, "{err}");
        let err = run(&argv(&["repair", &dir])).unwrap_err();
        assert_eq!(err.code, exit_code::MISSING, "{err}");
        assert!(err.contains("no restartable iteration"), "{err}");

        // 3. A chain whose first full is gone: the deltas are intact
        // bytes but restart from nothing — verify reports them broken
        // (CORRUPT), repair reports nothing restartable (MISSING).
        let tmp = TempDir::new("cold-headless");
        let store = build_store(&tmp.0, 3);
        std::fs::remove_file(store.path_of(0, true)).unwrap();
        let dir = tmp.0.display().to_string();
        let err = run(&argv(&["verify", "--store", &dir])).unwrap_err();
        assert_eq!(err.code, exit_code::CORRUPT, "{err}");
        assert!(err.contains("BROKEN"), "{err}");
        let err = run(&argv(&["repair", &dir])).unwrap_err();
        assert_eq!(err.code, exit_code::MISSING, "{err}");
    }

    #[test]
    fn replicas_flag_rejects_zero() {
        let tmp = TempDir::new("replicas-zero");
        build_store(&tmp.0, 2);
        let dir = tmp.0.display().to_string();
        for args in [
            vec!["scrub", &dir, "--replicas", "0"],
            vec!["repair", &dir, "--replicas", "0"],
            vec!["verify", "--store", &dir, "--replicas", "0"],
        ] {
            let err = run(&argv(&args)).unwrap_err();
            assert_eq!(err.code, exit_code::USAGE, "{args:?}: {err}");
        }
    }

    #[test]
    fn recovery_commands_reject_missing_directory() {
        for cmd in ["scrub", "repair"] {
            let err = run(&argv(&[cmd, "/nonexistent/store"])).unwrap_err();
            assert!(err.contains("does not exist"), "{cmd}: {err}");
            assert_eq!(err.code, exit_code::MISSING, "{cmd}: {err}");
        }
        let err = run(&argv(&["verify", "--store", "/nonexistent/store"])).unwrap_err();
        assert!(err.contains("does not exist"), "{err}");
        assert_eq!(err.code, exit_code::MISSING);
    }
}
