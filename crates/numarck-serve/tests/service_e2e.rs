//! End-to-end service tests: concurrent sessions, drain + restart with
//! bit-exact recovery, and provable bounded-queue backpressure.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use numarck::{Config, Strategy};
use numarck_checkpoint::VariableSet;
use numarck_serve::{Client, ClientError, Server, ServerConfig, WrittenKind};

mod util;
use util::TempDir;

const TIMEOUT: Duration = Duration::from_secs(10);

fn test_config() -> Config {
    Config::new(8, 0.001, Strategy::Clustering).unwrap()
}

/// Deterministic per-session truth data: `iters` iterations of two
/// smoothly-evolving variables.
fn truth(session: usize, iters: u64, points: usize) -> Vec<VariableSet> {
    let mut out = Vec::new();
    let mut u: Vec<f64> =
        (0..points).map(|j| (1.0 + session as f64 * 0.1) * (1.0 + (j % 7) as f64)).collect();
    let mut v: Vec<f64> =
        (0..points).map(|j| (2.0 + session as f64 * 0.2) * (1.0 + (j % 5) as f64)).collect();
    for it in 0..iters {
        if it > 0 {
            for (j, x) in u.iter_mut().enumerate() {
                *x *= 1.0 + 0.004 * (((j as u64 + it) % 9) as f64 - 4.0) / 4.0;
            }
            for (j, x) in v.iter_mut().enumerate() {
                *x *= 1.0 - 0.003 * (((j as u64 + 2 * it) % 5) as f64 - 2.0) / 2.0;
            }
        }
        let mut vars = VariableSet::new();
        vars.insert("u".into(), u.clone());
        vars.insert("v".into(), v.clone());
        out.push(vars);
    }
    out
}

/// The local reference the acceptance criteria call for: re-encode the
/// run from the exact data of the last server-acked full checkpoint at
/// or before `target` and replay it open-loop — exactly the manager's
/// encode discipline (one group-encoded table per iteration, change
/// ratios against exact previous data) and the restart engine's replay
/// (each delta applied to the reconstructed state).
fn expected_at(
    exact: &[VariableSet],
    kinds: &BTreeMap<u64, WrittenKind>,
    target: u64,
    config: Config,
) -> VariableSet {
    let base_iter = kinds
        .iter()
        .filter(|(it, kind)| **it <= target && !matches!(kind, WrittenKind::Delta))
        .map(|(it, _)| *it)
        .max()
        .expect("at least one full checkpoint acked");
    let names: Vec<String> = exact[base_iter as usize].keys().cloned().collect();
    let mut state = exact[base_iter as usize].clone();
    for it in base_iter + 1..=target {
        let prev_exact = &exact[it as usize - 1];
        let curr_exact = &exact[it as usize];
        let pairs: Vec<(&[f64], &[f64])> = names
            .iter()
            .map(|n| (prev_exact[n].as_slice(), curr_exact[n].as_slice()))
            .collect();
        let (blocks, _) = numarck::group::encode_group(&pairs, &config).unwrap();
        for (n, block) in names.iter().zip(blocks) {
            let prev = state.get_mut(n).expect("variable sets are uniform");
            *prev = numarck::decode::reconstruct(prev, &block).unwrap();
        }
    }
    state
}

fn assert_bit_exact(got: &VariableSet, want: &VariableSet, context: &str) {
    assert_eq!(got.len(), want.len(), "{context}: variable sets differ");
    for (name, want_vals) in want {
        let got_vals = &got[name];
        assert_eq!(got_vals.len(), want_vals.len(), "{context}/{name}: length");
        for (j, (g, w)) in got_vals.iter().zip(want_vals).enumerate() {
            assert_eq!(
                g.to_bits(),
                w.to_bits(),
                "{context}/{name}[{j}]: {g} != {w} (not bit-exact)"
            );
        }
    }
}

/// The tentpole acceptance scenario: 4 concurrent clients ingest 16
/// iterations each into separate sessions, the server is drained halfway
/// through and restarted, and every session's restart is bit-identical
/// to the local re-encode reference.
#[test]
fn concurrent_sessions_survive_drain_and_restart_bit_exact() {
    const SESSIONS: usize = 4;
    const ITERS: u64 = 16;
    const SPLIT: u64 = 8; // server is drained after this many iterations
    const POINTS: usize = 256;

    let tmp = TempDir::new("serve-e2e");
    let config = test_config();
    let mut server_config = ServerConfig::new(tmp.0.join("root"), config);
    server_config.full_interval = 5;
    server_config.io_timeout = TIMEOUT;

    let data: Vec<Vec<VariableSet>> =
        (0..SESSIONS).map(|s| truth(s, ITERS, POINTS)).collect();
    let data = Arc::new(data);

    // Runs one client thread per session, ingesting iterations
    // `range` and returning the acked per-iteration outcome kinds.
    let ingest_phase = |addr: std::net::SocketAddr,
                        range: std::ops::Range<u64>|
     -> Vec<BTreeMap<u64, WrittenKind>> {
        let handles: Vec<_> = (0..SESSIONS)
            .map(|s| {
                let data = Arc::clone(&data);
                let range = range.clone();
                thread::spawn(move || {
                    let mut client = Client::connect(addr, TIMEOUT).unwrap();
                    let session = client.open_session(&format!("sess-{s}")).unwrap();
                    let mut kinds = BTreeMap::new();
                    for it in range {
                        let outcome =
                            client.put_iteration(session, it, &data[s][it as usize]).unwrap();
                        assert_eq!(outcome.iteration, it);
                        kinds.insert(it, outcome.kind);
                    }
                    kinds
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    };

    // Phase 1: first half of every session's run.
    let server = Server::spawn("127.0.0.1:0", server_config.clone()).unwrap();
    let addr = server.addr();
    let mut kinds_per_session = ingest_phase(addr, 0..SPLIT);
    for kinds in &kinds_per_session {
        assert_eq!(kinds[&0], WrittenKind::Full, "first checkpoint must be full");
    }

    // Drain mid-run via the protocol, then wait for a full stop.
    let mut control = Client::connect(addr, TIMEOUT).unwrap();
    control.shutdown().unwrap();
    server.join();
    assert!(
        Client::connect(addr, Duration::from_millis(500)).is_err(),
        "drained server must not accept connections"
    );

    // Phase 2: a fresh server process over the same root; sessions are
    // re-opened by name and the runs continue where they left off.
    let server = Server::spawn("127.0.0.1:0", server_config).unwrap();
    let addr = server.addr();
    for (s, kinds) in ingest_phase(addr, SPLIT..ITERS).into_iter().enumerate() {
        assert_eq!(
            kinds[&SPLIT],
            WrittenKind::Full,
            "first post-restart checkpoint must re-anchor with a full"
        );
        kinds_per_session[s].extend(kinds);
    }

    // Every session restarts bit-exactly at the final iteration and at
    // an arbitrary mid-chain one.
    let mut client = Client::connect(addr, TIMEOUT).unwrap();
    for s in 0..SESSIONS {
        let session = client.open_session(&format!("sess-{s}")).unwrap();
        for target in [ITERS - 1, SPLIT + 1, 3] {
            let reply = client.restart(session, target).unwrap();
            assert_eq!(reply.achieved, target, "session {s}: restart must be exact");
            assert_eq!(reply.lost, 0);
            let want = expected_at(&data[s], &kinds_per_session[s], target, config);
            assert_bit_exact(&reply.vars, &want, &format!("sess-{s}@{target}"));
        }
    }

    // Stats sees all sessions with their full chains restartable.
    let stats = client.stats().unwrap();
    assert_eq!(stats.sessions.len(), SESSIONS);
    for sess in &stats.sessions {
        assert_eq!(sess.latest_restartable, Some(ITERS - 1), "{}", sess.name);
        assert_eq!(sess.files, ITERS as u32, "{}: files from both phases", sess.name);
    }
    assert_eq!(stats.iterations_ingested, SESSIONS as u64 * SPLIT);
    server.shutdown();
}

/// Overloading the bounded hand-off queue returns a typed `Busy`
/// response instead of stalling or deadlocking. Deterministic setup:
/// one worker (pinned by a connection it is actively serving) + a
/// one-slot queue (filled by a second idle connection) means a third
/// connection must be rejected.
#[test]
fn bounded_queue_overload_returns_busy() {
    let tmp = TempDir::new("serve-busy");
    let mut config = ServerConfig::new(tmp.0.join("root"), test_config());
    config.workers = 1;
    config.queue_depth = 1;
    config.io_timeout = TIMEOUT;
    let server = Server::spawn("127.0.0.1:0", config).unwrap();
    let addr = server.addr();

    // Conn A: a completed round-trip proves the single worker has taken
    // this connection off the queue and is now parked serving it.
    let mut conn_a = Client::connect(addr, TIMEOUT).unwrap();
    conn_a.stats().unwrap();

    // Conn B: accepted into the single queue slot (never served while
    // the worker is on A). Give the acceptor a beat to enqueue it.
    let _conn_b = Client::connect(addr, TIMEOUT).unwrap();
    thread::sleep(Duration::from_millis(100));

    // Conn C: queue full — the acceptor must answer Busy, promptly.
    let mut conn_c = Client::connect(addr, TIMEOUT).unwrap();
    match conn_c.stats() {
        Err(ClientError::Busy) => {}
        other => panic!("expected Busy, got {other:?}"),
    }

    // The rejection is counted, and the server is still fully alive:
    // conn A keeps working.
    let stats = conn_a.stats().unwrap();
    assert_eq!(stats.busy_rejected, 1);
    assert_eq!(stats.accepted, 2, "A and B accepted, C rejected");
    server.shutdown();
}

/// The observability extension: request latencies ride the stats
/// reply, counters agree with the client's own request history, and
/// the merged metrics snapshot exposes the server's instruments next
/// to the process-global (encoder/checkpoint) ones.
#[test]
fn stats_extension_and_metrics_snapshot_agree_with_traffic() {
    let tmp = TempDir::new("serve-obs");
    let mut config = ServerConfig::new(tmp.0.join("root"), test_config());
    config.io_timeout = TIMEOUT;
    let server = Server::spawn("127.0.0.1:0", config).unwrap();
    let mut client = Client::connect(server.addr(), TIMEOUT).unwrap();

    let session = client.open_session("obs").unwrap();
    let data = truth(0, 4, 64);
    for (it, vars) in data.iter().enumerate() {
        client.put_iteration(session, it as u64, vars).unwrap();
    }

    let stats = client.stats().unwrap();
    assert_eq!(stats.iterations_ingested, 4);
    let lat = |name: &str| {
        stats
            .latencies
            .iter()
            .find(|l| l.name == name)
            .unwrap_or_else(|| panic!("latency {name} missing from stats extension"))
            .summary
    };
    assert_eq!(lat("nsrv_request_open_ns").count, 1);
    assert_eq!(lat("nsrv_request_put_ns").count, 4);
    assert!(lat("nsrv_request_put_ns").sum > 0, "puts take nonzero time");
    // The stats request being answered is itself still in flight, so
    // its own span has not recorded yet.
    assert_eq!(lat("nsrv_request_stats_ns").count, 0);
    assert_eq!(stats.queue_depth, 0, "no queued connections at rest");

    let snap = server.metrics_snapshot();
    let counter = |name: &str| {
        snap.counters
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("counter {name} missing from snapshot"))
            .1
    };
    assert_eq!(counter("nsrv_iterations_ingested_total"), 4);
    assert_eq!(counter("nsrv_accepted_total"), 1);
    assert!(snap.histograms.iter().any(|(n, _)| n == "nsrv_request_put_ns"));
    // Global-registry instruments (checkpoint manager outcomes from the
    // ingest above) ride along in the merge.
    assert!(
        snap.counters.iter().any(|(n, _)| n.starts_with("ckpt_")),
        "merged snapshot must include global ckpt_ metrics"
    );
    // Server startup resolves the lane-kernel dispatch level, so every
    // scrape reports which instruction set encode/decode are running on.
    assert!(
        snap.gauges.iter().any(|(n, _)| n == "simd_dispatch_level"),
        "merged snapshot must report simd_dispatch_level"
    );
    // The ingest above serialised checkpoints, which stamps the
    // container version those writes used.
    assert!(
        snap.gauges.iter().any(|(n, v)| n == "nck_format_version" && *v == 2),
        "merged snapshot must report nck_format_version = 2"
    );
    server.shutdown();
}

/// Session lifecycle and error surfaces: idempotent open, unknown ids,
/// invalid names, close semantics, and restart on an empty session.
#[test]
fn session_lifecycle_and_typed_errors() {
    let tmp = TempDir::new("serve-session");
    let mut config = ServerConfig::new(tmp.0.join("root"), test_config());
    config.io_timeout = TIMEOUT;
    let server = Server::spawn("127.0.0.1:0", config).unwrap();
    let mut client = Client::connect(server.addr(), TIMEOUT).unwrap();

    let id = client.open_session("alpha").unwrap();
    assert_eq!(client.open_session("alpha").unwrap(), id, "open is idempotent");
    let other = client.open_session("beta").unwrap();
    assert_ne!(id, other);

    // Invalid names are rejected, not created.
    for bad in ["", "..", "a/b", "x".repeat(65).as_str()] {
        match client.open_session(bad) {
            Err(ClientError::Server { code, .. }) => {
                assert_eq!(code, numarck_serve::ErrorCode::BadRequest, "{bad:?}")
            }
            other => panic!("open({bad:?}): expected BadRequest, got {other:?}"),
        }
    }

    // Unknown session ids are typed errors.
    match client.restart(9999, 0) {
        Err(ClientError::Server { code, .. }) => {
            assert_eq!(code, numarck_serve::ErrorCode::UnknownSession)
        }
        other => panic!("expected UnknownSession, got {other:?}"),
    }

    // Restarting an empty (but open) session: nothing restartable.
    match client.restart(id, u64::MAX) {
        Err(ClientError::Server { code, .. }) => {
            assert_eq!(code, numarck_serve::ErrorCode::NotFound)
        }
        other => panic!("expected NotFound, got {other:?}"),
    }

    // Empty batches are rejected.
    match client.put_iterations(id, Vec::new()) {
        Err(ClientError::Server { code, .. }) => {
            assert_eq!(code, numarck_serve::ErrorCode::BadRequest)
        }
        other => panic!("expected BadRequest, got {other:?}"),
    }

    // Close, then the id is gone; the name can be re-opened (new id).
    client.close_session(id).unwrap();
    match client.close_session(id) {
        Err(ClientError::Server { code, .. }) => {
            assert_eq!(code, numarck_serve::ErrorCode::UnknownSession)
        }
        other => panic!("expected UnknownSession, got {other:?}"),
    }
    let reopened = client.open_session("alpha").unwrap();
    assert_ne!(reopened, id, "closed ids are not recycled");
    server.shutdown();
}

/// Batched ingest equals one-at-a-time ingest: same outcome kinds, same
/// bit-exact restart.
#[test]
fn batched_ingest_matches_single_puts() {
    let tmp = TempDir::new("serve-batch");
    let config = test_config();
    let mut server_config = ServerConfig::new(tmp.0.join("root"), config);
    server_config.full_interval = 4;
    server_config.io_timeout = TIMEOUT;
    let server = Server::spawn("127.0.0.1:0", server_config).unwrap();
    let mut client = Client::connect(server.addr(), TIMEOUT).unwrap();

    let data = truth(0, 10, 128);
    let session = client.open_session("batched").unwrap();
    let batch: Vec<(u64, VariableSet)> =
        data.iter().enumerate().map(|(it, vars)| (it as u64, vars.clone())).collect();
    let outcomes = client.put_iterations(session, batch).unwrap();
    assert_eq!(outcomes.len(), 10);
    let kinds: BTreeMap<u64, WrittenKind> =
        outcomes.iter().map(|o| (o.iteration, o.kind)).collect();
    assert_eq!(kinds[&0], WrittenKind::Full);
    assert_eq!(kinds[&4], WrittenKind::Full);
    assert_eq!(kinds[&8], WrittenKind::Full);
    assert_eq!(kinds[&7], WrittenKind::Delta);

    let reply = client.restart(session, 9).unwrap();
    assert_eq!(reply.achieved, 9);
    let want = expected_at(&data, &kinds, 9, config);
    assert_bit_exact(&reply.vars, &want, "batched@9");
    server.shutdown();
}
