/root/repo/target/release/deps/bytes-11def23fa6551365.d: .stubs/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-11def23fa6551365.rlib: .stubs/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-11def23fa6551365.rmeta: .stubs/bytes/src/lib.rs

.stubs/bytes/src/lib.rs:
