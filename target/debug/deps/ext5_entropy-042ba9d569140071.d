/root/repo/target/debug/deps/ext5_entropy-042ba9d569140071.d: crates/numarck-bench/src/bin/ext5_entropy.rs

/root/repo/target/debug/deps/ext5_entropy-042ba9d569140071: crates/numarck-bench/src/bin/ext5_entropy.rs

crates/numarck-bench/src/bin/ext5_entropy.rs:
