/root/repo/target/debug/deps/fig8-9d32e4c2891d6637.d: crates/numarck-bench/src/bin/fig8.rs

/root/repo/target/debug/deps/libfig8-9d32e4c2891d6637.rmeta: crates/numarck-bench/src/bin/fig8.rs

crates/numarck-bench/src/bin/fig8.rs:
