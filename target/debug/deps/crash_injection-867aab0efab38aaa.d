/root/repo/target/debug/deps/crash_injection-867aab0efab38aaa.d: crates/numarck-cli/tests/crash_injection.rs

/root/repo/target/debug/deps/crash_injection-867aab0efab38aaa: crates/numarck-cli/tests/crash_injection.rs

crates/numarck-cli/tests/crash_injection.rs:

# env-dep:CARGO_BIN_EXE_numarck=/root/repo/target/debug/numarck
