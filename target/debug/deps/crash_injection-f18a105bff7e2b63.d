/root/repo/target/debug/deps/crash_injection-f18a105bff7e2b63.d: crates/numarck-cli/tests/crash_injection.rs

/root/repo/target/debug/deps/libcrash_injection-f18a105bff7e2b63.rmeta: crates/numarck-cli/tests/crash_injection.rs

crates/numarck-cli/tests/crash_injection.rs:

# env-dep:CARGO_BIN_EXE_numarck=placeholder:numarck
