/root/repo/target/debug/deps/ext7_solver_order-8cbcbef3cb9b92fb.d: crates/numarck-bench/src/bin/ext7_solver_order.rs

/root/repo/target/debug/deps/ext7_solver_order-8cbcbef3cb9b92fb: crates/numarck-bench/src/bin/ext7_solver_order.rs

crates/numarck-bench/src/bin/ext7_solver_order.rs:
