//! Acceptance tests for the self-healing checkpoint store.
//!
//! Faults are injected at the storage backend (the syscall boundary):
//! ENOSPC on the Nth write, torn writes, silent torn writes that survive
//! the rename, and read bit rot. The system under test must complete
//! checkpointing via bounded retries, quarantine exactly the damaged
//! files, re-anchor the chain, and degrade restarts loudly — and must
//! never panic, whatever the damage.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use numarck_checkpoint::backend::{FaultSchedule, FaultyBackend, ReadFault, WriteFault};
use numarck_checkpoint::fault::{inject, verify_store, Fault};
use numarck_checkpoint::{
    repair, scrub, CheckpointManager, CheckpointStore, Clock, ManagerPolicy, RestartEngine,
    RetryPolicy, VariableSet,
};

/// Self-cleaning unique temp directory.
struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "numarck-faultrec-{tag}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .expect("after epoch")
                .as_nanos()
        ));
        std::fs::create_dir_all(&path).expect("mkdir");
        Self(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Records requested sleeps instead of performing them — retry tests run
/// in microseconds of wall time.
#[derive(Debug, Default)]
struct RecordingClock(Mutex<Vec<Duration>>);

impl Clock for RecordingClock {
    fn sleep(&self, d: Duration) {
        self.0.lock().unwrap().push(d);
    }
}

fn vars_at(state: &[f64]) -> VariableSet {
    let mut vars = VariableSet::new();
    vars.insert("x".into(), state.to_vec());
    vars
}

fn evolve(state: &mut [f64]) {
    for (i, v) in state.iter_mut().enumerate() {
        *v *= 1.0 + 0.002 * (((i % 5) as f64) - 2.0) / 2.0;
    }
}

fn config() -> numarck::Config {
    numarck::Config::new(8, 0.001, numarck::Strategy::Clustering).expect("valid config")
}

/// Drive `iters` iterations through a manager over a faulty backend,
/// recording backoff instead of sleeping. Returns everything a scenario
/// needs to assert on.
fn run_simulation(
    tmp: &TempDir,
    schedule: FaultSchedule,
    iters: u64,
    points: usize,
) -> (CheckpointStore, Arc<FaultyBackend>, Arc<RecordingClock>, Vec<VariableSet>, u32) {
    let backend = Arc::new(FaultyBackend::new(schedule));
    let store = CheckpointStore::open_with(&tmp.0, backend.clone()).expect("open store");
    let clock = Arc::new(RecordingClock::default());
    let mut mgr = CheckpointManager::with_retry(
        store.clone(),
        config(),
        ManagerPolicy::fixed(4),
        RetryPolicy::default(),
        clock.clone(),
    );
    let mut state: Vec<f64> = (0..points).map(|i| 1.0 + (i % 11) as f64).collect();
    let mut truth = Vec::new();
    let mut total_retries = 0;
    for it in 0..iters {
        if it > 0 {
            evolve(&mut state);
        }
        let vars = vars_at(&state);
        let report = mgr.checkpoint_with_report(it, &vars).expect("checkpoint survives faults");
        total_retries += report.retries;
        truth.push(vars);
    }
    (store, backend, clock, truth, total_retries)
}

#[test]
fn enospc_on_nth_write_is_absorbed_by_retries() {
    let tmp = TempDir::new("enospc");
    // The 3rd and (shifted by its retry) 6th write attempts hit ENOSPC.
    let schedule = FaultSchedule::new()
        .fail_write(3, WriteFault::Error(std::io::ErrorKind::StorageFull))
        .fail_write(6, WriteFault::Error(std::io::ErrorKind::StorageFull));
    let (store, backend, clock, truth, retries) = run_simulation(&tmp, schedule, 8, 100);
    assert_eq!(retries, 2, "each ENOSPC absorbed by exactly one retry");
    assert_eq!(backend.writes_attempted(), 10, "8 checkpoints + 2 retries");
    // Backoff was recorded, not slept, and used the base delay each time
    // (each fault cleared on the first retry).
    let sleeps = clock.0.lock().unwrap().clone();
    assert_eq!(sleeps, vec![Duration::from_millis(10); 2]);
    // The store is complete and every iteration restarts exactly within
    // budget (spot-check the fulls as exact).
    assert!(verify_store(&store).unwrap().iter().all(|h| h.restartable));
    let engine = RestartEngine::new(store);
    assert_eq!(engine.restart_at(4).unwrap().vars["x"], truth[4]["x"]);
}

#[test]
fn torn_write_is_retried_and_leaves_no_damage() {
    let tmp = TempDir::new("torn");
    let schedule = FaultSchedule::new().fail_write(2, WriteFault::Torn { keep: 20 });
    let (store, _backend, _clock, truth, retries) = run_simulation(&tmp, schedule, 6, 80);
    assert_eq!(retries, 1);
    // The retry overwrote the partial temp file; scrub finds nothing.
    assert!(scrub(&store).unwrap().is_clean());
    let engine = RestartEngine::new(store);
    let r = engine.restart_at_or_before(5).unwrap();
    assert!(r.is_exact());
    assert_eq!(r.result.base_iteration, 4);
    let budget = 0.0011;
    for (a, b) in truth[5]["x"].iter().zip(&r.result.vars["x"]) {
        assert!(((a - b) / a).abs() <= budget);
    }
}

#[test]
fn silent_torn_write_is_caught_by_scrub_and_repaired() {
    let tmp = TempDir::new("silent-torn");
    // Write ordinals: it0→1, it1→2, it2→3 (ENOSPC) + 4 (retry), it3→5,
    // it4→6, it5→7 — so iteration 5's delta is silently torn: the write
    // reports success, the rename happens, the file is garbage.
    let schedule = FaultSchedule::new()
        .fail_write(3, WriteFault::Error(std::io::ErrorKind::StorageFull))
        .fail_write(7, WriteFault::SilentTorn { keep: 64 });
    let (store, _backend, _clock, truth, _retries) = run_simulation(&tmp, schedule, 12, 100);
    // The manager couldn't see the tear; the store looks complete.
    assert_eq!(store.list().unwrap().len(), 12);
    // Scrub quarantines exactly the torn file.
    let report = scrub(&store).unwrap();
    assert_eq!(report.checked, 12);
    let bad: Vec<u64> = report.quarantined.iter().map(|f| f.entry.iteration).collect();
    assert_eq!(bad, vec![5], "exactly the silently-torn delta");
    // Repair drops the orphaned 6 and 7 (their chain ran through 5) and
    // re-anchors with a fresh full at the newest restartable iteration.
    let rep = repair(&store).unwrap();
    let lost: Vec<u64> = rep.lost.iter().map(|l| l.iteration).collect();
    assert_eq!(lost, vec![7, 6]);
    assert_eq!(rep.anchored_at, Some(11));
    assert!(rep.wrote_full, "11 was a delta; repair materialized a full there");
    assert!(verify_store(&store).unwrap().iter().all(|h| h.restartable));
    // Degraded restart around the crater: asking for 7 lands on 4.
    let engine = RestartEngine::new(store);
    let d = engine.restart_at_or_before(7).unwrap();
    assert_eq!(d.achieved(), 4);
    assert_eq!(d.result.vars["x"], truth[4]["x"], "full checkpoint restores exactly");
    assert!(!d.is_exact());
    assert!(d.lost.iter().any(|l| l.iteration == 7));
}

#[test]
fn read_bit_rot_fails_one_restart_then_clears() {
    let tmp = TempDir::new("bit-rot");
    let backend = Arc::new(FaultyBackend::new(
        // The first read of any file returns a flipped byte; the file on
        // disk stays intact, so the next read is clean.
        FaultSchedule::new().fail_read(1, ReadFault::BitRot { offset: 37, mask: 0x20 }),
    ));
    let store = CheckpointStore::open_with(&tmp.0, backend).expect("open store");
    let mut mgr = CheckpointManager::new(store.clone(), config(), ManagerPolicy::fixed(4));
    let mut state: Vec<f64> = (0..90).map(|i| 2.0 + (i % 7) as f64).collect();
    for it in 0..6u64 {
        if it > 0 {
            evolve(&mut state);
        }
        mgr.checkpoint(it, &vars_at(&state)).unwrap();
    }
    let engine = RestartEngine::new(store);
    // First attempt reads rotted bytes: the CRC rejects them loudly.
    let err = engine.restart_at(0).unwrap_err();
    assert!(matches!(err, numarck::error::NumarckError::Corrupt(_)), "got {err:?}");
    // The rot was transient (a bad DMA, not a bad disk): retry succeeds.
    assert!(engine.restart_at(0).is_ok());
}

#[test]
fn exhaustive_single_bit_flip_sweep_never_panics_or_lies() {
    let tmp = TempDir::new("bit-sweep");
    let store = CheckpointStore::open(&tmp.0).expect("open store");
    let mut mgr = CheckpointManager::new(store.clone(), config(), ManagerPolicy::fixed(4));
    // Small variables keep the delta file small enough to sweep fully.
    let mut state: Vec<f64> = (0..16).map(|i| 1.0 + (i % 5) as f64).collect();
    for it in 0..8u64 {
        if it > 0 {
            evolve(&mut state);
        }
        mgr.checkpoint(it, &vars_at(&state)).unwrap();
    }
    let engine = RestartEngine::new(store.clone());
    // Expected reconstructions on the healthy store. Replay is
    // deterministic, so a degraded restart that lands on iteration i
    // must reproduce these bytes exactly.
    let expected: Vec<VariableSet> =
        (0..8u64).map(|it| engine.restart_at(it).unwrap().vars).collect();
    let target_path = store.path_of(5, false);
    let pristine = std::fs::read(&target_path).unwrap();
    let mut flips = 0usize;
    for offset in 0..pristine.len() {
        for bit in 0..8u8 {
            inject(&target_path, Fault::BitFlip { offset, mask: 1 << bit }).unwrap();
            // CRC32 catches every single-bit flip: chains through the
            // damaged delta must fail loudly, never return wrong data.
            for t in 5..8u64 {
                assert!(
                    engine.restart_at(t).is_err(),
                    "flip at byte {offset} bit {bit}: restart_at({t}) accepted corrupt data"
                );
            }
            // Degraded restart must recover the newest intact iteration
            // (4, the full) with byte-exact data and a full loss report.
            let d = engine
                .restart_at_or_before(7)
                .unwrap_or_else(|e| panic!("flip at byte {offset} bit {bit}: {e}"));
            assert_eq!(d.achieved(), 4);
            assert_eq!(d.result.vars, expected[4]);
            let lost: Vec<u64> = d.lost.iter().map(|l| l.iteration).collect();
            assert_eq!(lost, vec![7, 6, 5]);
            // Undo the flip; the store must be whole again.
            std::fs::write(&target_path, &pristine).unwrap();
            flips += 1;
        }
    }
    assert_eq!(flips, pristine.len() * 8);
    assert!(engine.restart_at(7).is_ok(), "sweep left the store damaged");
}

#[test]
fn combined_fault_storm_end_to_end() {
    let tmp = TempDir::new("storm");
    // One simulated run that sees everything at once: a transient
    // ENOSPC, a torn-and-retried write, and a silent tear.
    let schedule = FaultSchedule::new()
        .fail_write(2, WriteFault::Error(std::io::ErrorKind::StorageFull))
        .fail_write(5, WriteFault::Torn { keep: 16 })
        // Ordinals shift once per consumed retry: write 10 is iteration 7.
        .fail_write(10, WriteFault::SilentTorn { keep: 40 });
    let (store, _backend, _clock, truth, retries) = run_simulation(&tmp, schedule, 12, 60);
    assert_eq!(retries, 2, "ENOSPC and the torn write each cost one retry");
    // After-the-fact damage on top: delete one delta, bit-flip another.
    inject(&store.path_of(2, false), Fault::Delete).unwrap();
    inject(&store.path_of(10, false), Fault::BitFlip { offset: 25, mask: 0x04 }).unwrap();
    // Repair: scrub quarantines the silent tear (7) and the bit-flip
    // (10); the deletion of 2 orphans iteration 3.
    let rep = repair(&store).unwrap();
    let quarantined: Vec<u64> =
        rep.scrub.quarantined.iter().map(|f| f.entry.iteration).collect();
    assert_eq!(quarantined, vec![7, 10]);
    let lost: Vec<u64> = rep.lost.iter().map(|l| l.iteration).collect();
    assert_eq!(lost, vec![11, 3]);
    assert_eq!(rep.anchored_at, Some(9));
    assert!(rep.wrote_full);
    // Whatever survives restarts cleanly, and degraded restarts land on
    // the documented fallbacks with exact full-checkpoint data.
    assert!(verify_store(&store).unwrap().iter().all(|h| h.restartable));
    let engine = RestartEngine::new(store);
    assert_eq!(engine.restart_at_or_before(3).unwrap().achieved(), 1);
    let d = engine.restart_at_or_before(11).unwrap();
    assert_eq!(d.achieved(), 9);
    assert_eq!(engine.restart_at(8).unwrap().vars["x"], truth[8]["x"]);
}
