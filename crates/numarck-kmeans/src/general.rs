//! General dense d-dimensional K-means.
//!
//! Not on NUMARCK's hot path (change ratios are 1-D), but kept for two
//! reasons: it is the oracle the specialised 1-D implementation is tested
//! against (d = 1 must agree), and it lets downstream users cluster
//! multi-variable checkpoint records (e.g. joint `(pres, temp)` ratios,
//! one of the paper's future-work directions).

use rayon::prelude::*;

use numarck_par::chunk::chunk_size_for;
use numarck_par::rng::Xoshiro256PlusPlus;

use crate::KMeansOptions;

/// Row-major view of `n` points in `dim` dimensions.
#[derive(Debug, Clone, Copy)]
pub struct Points<'a> {
    data: &'a [f64],
    dim: usize,
}

impl<'a> Points<'a> {
    /// Wrap a row-major buffer.
    ///
    /// # Panics
    /// Panics if `dim == 0` or the buffer length is not a multiple of
    /// `dim`.
    pub fn new(data: &'a [f64], dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert_eq!(data.len() % dim, 0, "buffer length must be a multiple of dim");
        Self { data, dim }
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// True when there are no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The `i`-th point.
    #[inline]
    pub fn point(&self, i: usize) -> &'a [f64] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }
}

/// Result of a dense K-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Row-major centres, `k × dim`.
    pub centers: Vec<f64>,
    /// Dimensionality of each centre.
    pub dim: usize,
    /// Cluster index per point.
    pub assignments: Vec<u32>,
    /// Points per cluster.
    pub counts: Vec<u64>,
    /// Lloyd iterations executed.
    pub iterations: usize,
    /// Sum of squared distances to assigned centres.
    pub inertia: f64,
    /// Whether the membership-change criterion was met.
    pub converged: bool,
}

impl KMeansResult {
    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centers.len().checked_div(self.dim).unwrap_or(0)
    }

    /// The `c`-th centre.
    pub fn center(&self, c: usize) -> &[f64] {
        &self.centers[c * self.dim..(c + 1) * self.dim]
    }
}

#[inline]
fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut s = 0.0;
    for (x, y) in a.iter().zip(b) {
        let d = x - y;
        s += d * d;
    }
    s
}

fn nearest_center(centers: &[f64], dim: usize, p: &[f64]) -> (usize, f64) {
    let k = centers.len() / dim;
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for c in 0..k {
        let d = dist_sq(p, &centers[c * dim..(c + 1) * dim]);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    (best, best_d)
}

/// Dense K-means with k-means++ initialisation.
pub fn kmeans(points: Points<'_>, k: usize, opts: &KMeansOptions) -> KMeansResult {
    assert!(k >= 1, "k must be >= 1");
    let dim = points.dim();
    let n = points.len();
    if n == 0 {
        return KMeansResult {
            centers: Vec::new(),
            dim,
            assignments: Vec::new(),
            counts: Vec::new(),
            iterations: 0,
            inertia: 0.0,
            converged: true,
        };
    }
    let k = k.min(n);
    let mut centers = kmeanspp(points, k, opts.seed);
    let kk = centers.len() / dim;
    let mut assignments = vec![0u32; n];
    let mut iterations = 0;
    let mut converged = false;

    assign_all(points, &centers, &mut assignments);
    while iterations < opts.max_iterations {
        iterations += 1;
        let (sums, counts) = cluster_sums(points, &assignments, kk);
        for c in 0..kk {
            if counts[c] > 0 {
                for d in 0..dim {
                    centers[c * dim + d] = sums[c * dim + d] / counts[c] as f64;
                }
            }
        }
        let changed = reassign(points, &centers, &mut assignments);
        if (changed as f64) / (n as f64) < opts.change_threshold {
            converged = true;
            break;
        }
    }

    let (_, counts) = cluster_sums(points, &assignments, kk);
    let inertia = total_inertia(points, &centers, &assignments);
    KMeansResult { centers, dim, assignments, counts, iterations, inertia, converged }
}

fn kmeanspp(points: Points<'_>, k: usize, seed: u64) -> Vec<f64> {
    let dim = points.dim();
    let n = points.len();
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
    let mut centers: Vec<f64> = Vec::with_capacity(k * dim);
    let first = rng.below(n);
    centers.extend_from_slice(points.point(first));
    let mut d2: Vec<f64> = (0..n).map(|i| dist_sq(points.point(i), points.point(first))).collect();
    while centers.len() / dim < k {
        let total: f64 = d2.iter().sum();
        if total <= 0.0 {
            break;
        }
        let target = rng.next_f64() * total;
        let mut acc = 0.0;
        let mut chosen = n - 1;
        for (i, &w) in d2.iter().enumerate() {
            acc += w;
            if acc >= target {
                chosen = i;
                break;
            }
        }
        let start = centers.len();
        centers.extend_from_slice(points.point(chosen));
        let newc = centers[start..].to_vec();
        for i in 0..n {
            let nd = dist_sq(points.point(i), &newc);
            if nd < d2[i] {
                d2[i] = nd;
            }
        }
    }
    centers
}

fn assign_all(points: Points<'_>, centers: &[f64], out: &mut [u32]) {
    let dim = points.dim();
    let chunk = chunk_size_for(points.len());
    out.par_chunks_mut(chunk).enumerate().for_each(|(ci, o)| {
        let base = ci * chunk;
        for (j, oi) in o.iter_mut().enumerate() {
            *oi = nearest_center(centers, dim, points.point(base + j)).0 as u32;
        }
    });
}

fn reassign(points: Points<'_>, centers: &[f64], assignments: &mut [u32]) -> usize {
    let dim = points.dim();
    let chunk = chunk_size_for(points.len());
    assignments
        .par_chunks_mut(chunk)
        .enumerate()
        .map(|(ci, a)| {
            let base = ci * chunk;
            let mut changed = 0;
            for (j, ai) in a.iter_mut().enumerate() {
                let n = nearest_center(centers, dim, points.point(base + j)).0 as u32;
                if n != *ai {
                    changed += 1;
                    *ai = n;
                }
            }
            changed
        })
        .sum()
}

fn cluster_sums(points: Points<'_>, assignments: &[u32], k: usize) -> (Vec<f64>, Vec<u64>) {
    let dim = points.dim();
    let chunk = chunk_size_for(points.len());
    let n = points.len();
    let ranges: Vec<(usize, usize)> =
        numarck_par::chunk::chunk_ranges(n, chunk).collect();
    let partials: Vec<(Vec<f64>, Vec<u64>)> = ranges
        .par_iter()
        .map(|&(s, e)| {
            let mut sums = vec![0.0; k * dim];
            let mut counts = vec![0u64; k];
            for i in s..e {
                let c = assignments[i] as usize;
                counts[c] += 1;
                let p = points.point(i);
                for d in 0..dim {
                    sums[c * dim + d] += p[d];
                }
            }
            (sums, counts)
        })
        .collect();
    let mut sums = vec![0.0; k * dim];
    let mut counts = vec![0u64; k];
    for (ps, pc) in &partials {
        for i in 0..k * dim {
            sums[i] += ps[i];
        }
        for i in 0..k {
            counts[i] += pc[i];
        }
    }
    (sums, counts)
}

fn total_inertia(points: Points<'_>, centers: &[f64], assignments: &[u32]) -> f64 {
    let dim = points.dim();
    (0..points.len())
        .into_par_iter()
        .map(|i| {
            let c = assignments[i] as usize;
            dist_sq(points.point(i), &centers[c * dim..(c + 1) * dim])
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn points_accessors() {
        let buf = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let p = Points::new(&buf, 2);
        assert_eq!(p.len(), 3);
        assert_eq!(p.point(1), &[3.0, 4.0]);
        assert_eq!(p.dim(), 2);
    }

    #[test]
    #[should_panic(expected = "multiple of dim")]
    fn bad_buffer_length_panics() {
        Points::new(&[1.0, 2.0, 3.0], 2);
    }

    #[test]
    fn two_gaussian_blobs_2d() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        let mut buf = Vec::new();
        for _ in 0..500 {
            buf.push(rng.normal_with(0.0, 0.5));
            buf.push(rng.normal_with(0.0, 0.5));
        }
        for _ in 0..500 {
            buf.push(rng.normal_with(20.0, 0.5));
            buf.push(rng.normal_with(20.0, 0.5));
        }
        let res = kmeans(Points::new(&buf, 2), 2, &KMeansOptions::default());
        assert_eq!(res.k(), 2);
        assert!(res.converged);
        let mut means: Vec<f64> = (0..2).map(|c| res.center(c)[0]).collect();
        means.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(means[0].abs() < 1.0, "blob at origin: {means:?}");
        assert!((means[1] - 20.0).abs() < 1.0, "blob at 20: {means:?}");
        assert_eq!(res.counts.iter().sum::<u64>(), 1000);
    }

    #[test]
    fn one_dimensional_agrees_with_specialised_path() {
        let data: Vec<f64> = (0..2000)
            .map(|i| if i % 2 == 0 { (i % 13) as f64 } else { 500.0 + (i % 13) as f64 })
            .collect();
        let dense = kmeans(Points::new(&data, 1), 2, &KMeansOptions::default());
        let fast = crate::KMeans1D::new(2).fit(&data);
        let mut dc: Vec<f64> = dense.centers.clone();
        dc.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let fc = fast.centers.centers();
        for (a, b) in dc.iter().zip(fc) {
            assert!((a - b).abs() < 1e-6, "dense {dc:?} vs fast {fc:?}");
        }
        assert!((dense.inertia - fast.inertia).abs() < 1e-6 * dense.inertia.max(1.0));
    }

    #[test]
    fn k_capped_at_n() {
        let buf = [0.0, 1.0, 2.0, 3.0];
        let res = kmeans(Points::new(&buf, 2), 10, &KMeansOptions::default());
        assert!(res.k() <= 2);
    }

    #[test]
    fn empty_input() {
        let res = kmeans(Points::new(&[], 3), 4, &KMeansOptions::default());
        assert_eq!(res.k(), 0);
        assert!(res.converged);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(9);
        let buf: Vec<f64> = (0..600).map(|_| rng.normal()).collect();
        let a = kmeans(Points::new(&buf, 3), 4, &KMeansOptions::default());
        let b = kmeans(Points::new(&buf, 3), 4, &KMeansOptions::default());
        assert_eq!(a.centers, b.centers);
        assert_eq!(a.assignments, b.assignments);
    }
}
