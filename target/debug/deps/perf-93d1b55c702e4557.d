/root/repo/target/debug/deps/perf-93d1b55c702e4557.d: crates/numarck-bench/src/bin/perf.rs

/root/repo/target/debug/deps/perf-93d1b55c702e4557: crates/numarck-bench/src/bin/perf.rs

crates/numarck-bench/src/bin/perf.rs:
