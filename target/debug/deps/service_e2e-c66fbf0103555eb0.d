/root/repo/target/debug/deps/service_e2e-c66fbf0103555eb0.d: crates/numarck-serve/tests/service_e2e.rs crates/numarck-serve/tests/util/mod.rs Cargo.toml

/root/repo/target/debug/deps/libservice_e2e-c66fbf0103555eb0.rmeta: crates/numarck-serve/tests/service_e2e.rs crates/numarck-serve/tests/util/mod.rs Cargo.toml

crates/numarck-serve/tests/service_e2e.rs:
crates/numarck-serve/tests/util/mod.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
