/root/repo/target/release/deps/numarck_linalg-763fffa6b27ed445.d: crates/numarck-linalg/src/lib.rs crates/numarck-linalg/src/banded.rs crates/numarck-linalg/src/bspline.rs crates/numarck-linalg/src/tridiag.rs

/root/repo/target/release/deps/libnumarck_linalg-763fffa6b27ed445.rlib: crates/numarck-linalg/src/lib.rs crates/numarck-linalg/src/banded.rs crates/numarck-linalg/src/bspline.rs crates/numarck-linalg/src/tridiag.rs

/root/repo/target/release/deps/libnumarck_linalg-763fffa6b27ed445.rmeta: crates/numarck-linalg/src/lib.rs crates/numarck-linalg/src/banded.rs crates/numarck-linalg/src/bspline.rs crates/numarck-linalg/src/tridiag.rs

crates/numarck-linalg/src/lib.rs:
crates/numarck-linalg/src/banded.rs:
crates/numarck-linalg/src/bspline.rs:
crates/numarck-linalg/src/tridiag.rs:
