//! Ablation: K-means initialisation methods (paper §II-C.3 — "the choice
//! of initial clustering centroids has been proved to influence
//! significantly the performance of the algorithm and quality of the
//! results").
//!
//! Times a full fit per initialiser; the one-shot quality comparison
//! (final inertia + iterations to converge) is printed to stderr once so
//! the timing numbers can be read next to the quality numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use numarck_kmeans::{Init1D, KMeans1D};
use numarck_par::rng::Xoshiro256PlusPlus;

fn multimodal(n: usize) -> Vec<f64> {
    // Three modes of very different mass plus a heavy tail — the regime
    // where initialisation matters.
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(17);
    (0..n)
        .map(|_| {
            let u = rng.next_f64();
            if u < 0.6 {
                rng.normal_with(0.0, 0.001)
            } else if u < 0.9 {
                rng.normal_with(0.02, 0.002)
            } else if u < 0.99 {
                rng.normal_with(-0.05, 0.005)
            } else {
                rng.normal_with(0.0, 0.5)
            }
        })
        .collect()
}

fn bench_inits(c: &mut Criterion) {
    let n = 1 << 18;
    let data = multimodal(n);
    let inits =
        [Init1D::Histogram, Init1D::KMeansPlusPlus, Init1D::UniformSpread];

    // One-shot quality report.
    eprintln!("\nkmeans init quality on multimodal change ratios (k = 255):");
    for init in inits {
        let res = KMeans1D::new(255).with_init(init).fit(&data);
        eprintln!(
            "  {init:?}: inertia {:.6e}, iterations {}, converged {}",
            res.inertia, res.iterations, res.converged
        );
    }

    let mut group = c.benchmark_group("kmeans_init");
    group.throughput(Throughput::Elements(n as u64));
    group.sample_size(10);
    for init in inits {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{init:?}")),
            &init,
            |b, &init| {
                b.iter(|| KMeans1D::new(255).with_init(init).fit(&data));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_inits);
criterion_main!(benches);
