//! Oracle tests for the rank-partitioned parallel packer.
//!
//! The hard requirement: [`numarck::encode::pack_codes_parallel`] must
//! produce sections *bit-identical* to the sequential reference packer
//! [`numarck::encode::pack_codes_serial`] — for any input length, any
//! index width `B ∈ 1..=16`, any escape density, and any thread count.
//! The deterministic sweeps below enforce it exhaustively over a seeded
//! grid (and run everywhere); the proptest widens the net on hosts with a
//! real proptest.

use numarck::config::Config;
use numarck::decode;
use numarck::encode::{self, pack_codes_parallel, pack_codes_serial, PackedSections, ESCAPE};
use numarck::strategy::Strategy;
use numarck_par::pool::build_pool;

/// Deterministic xorshift64* generator (no external RNG dependencies).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Random code array of length `n`: escaped with probability
/// `escape_per_mille / 1000`, otherwise a uniform `bits`-wide value.
/// `curr` values are distinct per point so misplaced exacts are caught.
fn gen_input(n: usize, bits: u8, escape_per_mille: u64, seed: u64) -> (Vec<u32>, Vec<f64>) {
    let mut rng = Rng(seed | 1);
    let mask = if bits == 32 { u32::MAX } else { (1u32 << bits) - 1 };
    let codes: Vec<u32> = (0..n)
        .map(|_| {
            if rng.next() % 1000 < escape_per_mille {
                ESCAPE
            } else {
                (rng.next() as u32) & mask
            }
        })
        .collect();
    let curr: Vec<f64> = (0..n).map(|j| j as f64 + 0.25).collect();
    (codes, curr)
}

fn assert_sections_identical(serial: &PackedSections, parallel: &PackedSections, ctx: &str) {
    assert_eq!(serial.bitmap, parallel.bitmap, "{ctx}: bitmap");
    assert_eq!(serial.index_words, parallel.index_words, "{ctx}: index words");
    assert_eq!(serial.exact_values, parallel.exact_values, "{ctx}: exact values");
    assert_eq!(serial.num_compressible, parallel.num_compressible, "{ctx}: compressible count");
    assert_eq!(serial.num_small, parallel.num_small, "{ctx}: small count");
}

/// The headline sweep: every B, the three escape densities named by the
/// acceptance criteria (0%, 50%, 100%), awkward lengths around word and
/// chunk boundaries, under forced 1-thread and 8-thread pools.
#[test]
fn parallel_packer_is_bit_identical_to_serial_across_the_grid() {
    let lens = [0usize, 1, 63, 64, 65, 127, 1000, 4096, 4097, 20_000];
    let densities = [0u64, 500, 1000]; // per-mille: 0%, 50%, 100%
    let pools = [build_pool(1), build_pool(8)];
    for &n in &lens {
        for bits in 1u8..=16 {
            for &density in &densities {
                let seed = (n as u64) << 20 | (bits as u64) << 12 | density;
                let (codes, curr) = gen_input(n, bits, density, seed ^ 0x9E37_79B9);
                let serial = pack_codes_serial(&codes, &curr, bits);
                for pool in &pools {
                    let parallel = pool.install(|| pack_codes_parallel(&codes, &curr, bits));
                    let ctx = format!(
                        "n={n} bits={bits} density={density}‰ threads={}",
                        pool.current_num_threads()
                    );
                    assert_sections_identical(&serial, &parallel, &ctx);
                }
            }
        }
    }
}

/// All-escape and no-escape edges with every code equal (degenerate
/// streams stress the rank arithmetic at the extremes).
#[test]
fn degenerate_streams_match() {
    for &n in &[1usize, 64, 65, 4097] {
        for bits in [1u8, 7, 16] {
            let curr: Vec<f64> = (0..n).map(|j| -(j as f64)).collect();
            for codes in [vec![0u32; n], vec![(1u32 << bits) - 1; n], vec![ESCAPE; n]] {
                let serial = pack_codes_serial(&codes, &curr, bits);
                let parallel = build_pool(8).install(|| pack_codes_parallel(&codes, &curr, bits));
                assert_sections_identical(&serial, &parallel, &format!("n={n} bits={bits}"));
            }
        }
    }
}

/// End-to-end determinism: the full encoder must emit byte-identical
/// blocks under 1 and 8 threads, and both must decode to the same values.
#[test]
fn encoder_output_is_thread_count_invariant() {
    let n = 50_000;
    let mut rng = Rng(0xBEEF_CAFE_F00D_D00D);
    let prev: Vec<f64> = (0..n)
        .map(|_| if rng.next().is_multiple_of(31) { 0.0 } else { 1.0 + (rng.next() % 512) as f64 / 64.0 })
        .collect();
    let curr: Vec<f64> = prev
        .iter()
        .map(|&v| {
            if v == 0.0 {
                3.5
            } else {
                let r = match rng.next() % 4 {
                    0 => (rng.next() % 800) as f64 * 1e-6, // below E
                    1 => 0.015 + (rng.next() % 400) as f64 * 1e-6,
                    2 => -0.008 - (rng.next() % 400) as f64 * 1e-6,
                    _ => 2.0 + (rng.next() % 100) as f64, // likely escape
                };
                v * (1.0 + r)
            }
        })
        .collect();
    for s in Strategy::all() {
        let cfg = Config::new(8, 0.001, s).unwrap();
        let (block1, stats1) = build_pool(1).install(|| encode::encode(&prev, &curr, &cfg)).unwrap();
        let (block8, stats8) = build_pool(8).install(|| encode::encode(&prev, &curr, &cfg)).unwrap();
        assert_eq!(block1, block8, "{s}: blocks differ across thread counts");
        assert_eq!(stats1.max_error_rate, stats8.max_error_rate, "{s}");
        assert_eq!(stats1.num_compressible, stats8.num_compressible, "{s}");
        let dec1 = build_pool(1).install(|| decode::reconstruct(&prev, &block1)).unwrap();
        let dec8 = build_pool(8).install(|| decode::reconstruct(&prev, &block8)).unwrap();
        assert_eq!(dec1, dec8, "{s}: decodes differ across thread counts");
        let seq = decode::reconstruct_seq(&prev, &block1).unwrap();
        assert_eq!(dec1, seq, "{s}: parallel decode differs from sequential oracle");
    }
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Random lengths, widths, and per-case escape densities drawn
        /// from {0%, 50%, 100%}, checked under forced 1- and 8-thread
        /// pools.
        #[test]
        fn packer_oracle_property(
            n in 0usize..6000,
            bits in 1u8..=16,
            density_pick in 0usize..3,
            seed in any::<u64>()
        ) {
            let density = [0u64, 500, 1000][density_pick];
            let (codes, curr) = gen_input(n, bits, density, seed);
            let serial = pack_codes_serial(&codes, &curr, bits);
            for threads in [1usize, 8] {
                let parallel =
                    build_pool(threads).install(|| pack_codes_parallel(&codes, &curr, bits));
                prop_assert_eq!(&serial, &parallel);
            }
        }
    }
}
