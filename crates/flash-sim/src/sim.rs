//! The simulation driver with FLASH-style checkpoint/restart hooks.

use std::collections::BTreeMap;

use crate::block::cons;
use crate::eos::GammaLaw;
use crate::euler::Scheme;
use crate::euler::{to_conserved, to_primitive, Primitive};
use crate::mesh::Mesh;
use crate::problems::Problem;
use crate::vars::FlashVar;

/// A checkpoint: one flat array per variable, block-major then row-major
/// over each block's interior (the order FLASH's collective writes use).
pub type Checkpoint = BTreeMap<FlashVar, Vec<f64>>;

/// A running FLASH-substitute simulation.
#[derive(Debug, Clone)]
pub struct FlashSimulation {
    mesh: Mesh,
    eos: GammaLaw,
    cfl: f64,
    time: f64,
    steps: u64,
    problem: Problem,
    scheme: Scheme,
}

impl FlashSimulation {
    /// Initialise `problem` on a `blocks_x × blocks_y` tiling of
    /// `nx × ny` blocks over the unit square.
    pub fn new(problem: Problem, blocks_x: usize, blocks_y: usize, nx: usize, ny: usize) -> Self {
        let mut mesh = Mesh::new(blocks_x, blocks_y, nx, ny, 1.0, 1.0, problem.boundary());
        let eos = GammaLaw::AIR;
        mesh.fill(|x, y| to_conserved(&problem.initial_state(x, y), &eos));
        Self { mesh, eos, cfl: 0.4, time: 0.0, steps: 0, problem, scheme: Scheme::FirstOrder }
    }

    /// Switch the spatial reconstruction scheme (chainable).
    pub fn with_scheme(mut self, scheme: Scheme) -> Self {
        self.scheme = scheme;
        // Second-order fronts are steeper; a slightly tighter CFL keeps
        // the forward-Euler time integrator comfortably stable.
        if scheme == Scheme::Muscl {
            self.cfl = 0.3;
        }
        self
    }

    /// The active reconstruction scheme.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// The paper's configuration: 16×16 blocks (the 2-D analogue of the
    /// paper's 16³), `blocks_x × blocks_y` of them.
    pub fn paper_default(problem: Problem, blocks_x: usize, blocks_y: usize) -> Self {
        Self::new(problem, blocks_x, blocks_y, 16, 16)
    }

    /// Simulation time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Steps taken.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The problem being run.
    pub fn problem(&self) -> Problem {
        self.problem
    }

    /// Number of interior cells (= points per checkpoint variable).
    pub fn num_cells(&self) -> usize {
        self.mesh.num_cells()
    }

    /// The EOS in use.
    pub fn eos(&self) -> &GammaLaw {
        &self.eos
    }

    /// Advance one CFL-limited step; returns the `dt` taken.
    pub fn step(&mut self) -> f64 {
        self.mesh.exchange_guards();
        let smax = self.mesh.max_wave_speed(&self.eos).max(1e-12);
        let (dx, dy) = self.mesh.cell_sizes();
        let dt = self.cfl * dx.min(dy) / smax;
        self.mesh.advance_scheme(dt, &self.eos, self.scheme);
        self.time += dt;
        self.steps += 1;
        dt
    }

    /// Advance `n` steps.
    pub fn run_steps(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Extract all ten checkpoint variables.
    pub fn checkpoint(&self) -> Checkpoint {
        let n = self.num_cells();
        let (bx_n, by_n) = self.mesh.block_counts();
        let (nx, ny) = self.mesh.block_dims();
        let mut vars: Checkpoint =
            FlashVar::all().into_iter().map(|v| (v, vec![0.0; n])).collect();
        let mut idx = 0usize;
        for by in 0..by_n {
            for bx in 0..bx_n {
                let block = self.mesh.block(bx, by);
                for j in 0..ny as isize {
                    for i in 0..nx as isize {
                        let s = block.state(i, j);
                        let pr = to_primitive(&s, &self.eos);
                        let eint = self.eos.internal_energy(pr.rho, pr.p);
                        let ener = eint + 0.5 * (pr.u * pr.u + pr.v * pr.v + pr.w * pr.w);
                        for v in FlashVar::all() {
                            let val = match v {
                                FlashVar::Dens => pr.rho,
                                FlashVar::Eint => eint,
                                FlashVar::Ener => ener,
                                FlashVar::Gamc => self.eos.gamma,
                                FlashVar::Game => self.eos.gamma,
                                FlashVar::Pres => pr.p,
                                FlashVar::Temp => self.eos.temperature(pr.rho, pr.p),
                                FlashVar::Velx => pr.u,
                                FlashVar::Vely => pr.v,
                                FlashVar::Velz => pr.w,
                            };
                            vars.get_mut(&v).expect("var present")[idx] = val;
                        }
                        idx += 1;
                    }
                }
            }
        }
        vars
    }

    /// Overwrite the solver state from checkpoint variables (exact or
    /// lossily reconstructed). The primary set is `dens, velx, vely,
    /// velz, pres`; the derived variables (`eint, ener, temp, gamc,
    /// game`) are recomputed from the EOS, exactly as FLASH's restart
    /// does.
    ///
    /// Errors if a primary variable is missing or has the wrong length.
    pub fn restore(&mut self, vars: &Checkpoint) -> Result<(), String> {
        let n = self.num_cells();
        let primary = [FlashVar::Dens, FlashVar::Velx, FlashVar::Vely, FlashVar::Velz, FlashVar::Pres];
        for v in primary {
            let data = vars.get(&v).ok_or_else(|| format!("missing variable {v}"))?;
            if data.len() != n {
                return Err(format!("variable {v} has {} points, expected {n}", data.len()));
            }
        }
        let dens = &vars[&FlashVar::Dens];
        let velx = &vars[&FlashVar::Velx];
        let vely = &vars[&FlashVar::Vely];
        let velz = &vars[&FlashVar::Velz];
        let pres = &vars[&FlashVar::Pres];
        let (bx_n, by_n) = self.mesh.block_counts();
        let (nx, ny) = self.mesh.block_dims();
        let eos = self.eos;
        let mut idx = 0usize;
        for by in 0..by_n {
            for bx in 0..bx_n {
                let block = self.mesh.block_mut(bx, by);
                for j in 0..ny as isize {
                    for i in 0..nx as isize {
                        let pr = Primitive {
                            rho: dens[idx],
                            u: velx[idx],
                            v: vely[idx],
                            w: velz[idx],
                            p: pres[idx],
                        };
                        block.set_state(i, j, to_conserved(&pr, &eos));
                        idx += 1;
                    }
                }
            }
        }
        Ok(())
    }

    /// Total interior mass (diagnostic used by conservation tests).
    pub fn total_mass(&self) -> f64 {
        let (bx_n, by_n) = self.mesh.block_counts();
        let (nx, ny) = self.mesh.block_dims();
        let (dx, dy) = self.mesh.cell_sizes();
        let mut total = 0.0;
        for by in 0..by_n {
            for bx in 0..bx_n {
                for j in 0..ny as isize {
                    for i in 0..nx as isize {
                        total += self.mesh.block(bx, by).state(i, j)[cons::RHO];
                    }
                }
            }
        }
        total * dx * dy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_has_ten_full_variables() {
        let sim = FlashSimulation::new(Problem::SodX, 2, 2, 8, 8);
        let cp = sim.checkpoint();
        assert_eq!(cp.len(), 10);
        for (v, data) in &cp {
            assert_eq!(data.len(), 256, "{v}");
            assert!(data.iter().all(|x| x.is_finite()), "{v}");
        }
    }

    #[test]
    fn gamc_game_are_constant_fields() {
        let sim = FlashSimulation::new(Problem::SedovBlast, 2, 2, 8, 8);
        let cp = sim.checkpoint();
        for v in [FlashVar::Gamc, FlashVar::Game] {
            assert!(cp[&v].iter().all(|&x| x == 1.4), "{v}");
        }
    }

    #[test]
    fn pres_equals_temp_times_dens() {
        // temp = p / rho with unit gas constant; the paper notes pres and
        // temp behave identically under compression because the
        // computation applied to both is the same.
        let mut sim = FlashSimulation::new(Problem::SodX, 2, 2, 8, 8);
        sim.run_steps(5);
        let cp = sim.checkpoint();
        for i in 0..cp[&FlashVar::Pres].len() {
            let p = cp[&FlashVar::Pres][i];
            let t = cp[&FlashVar::Temp][i];
            let d = cp[&FlashVar::Dens][i];
            assert!((p - t * d).abs() < 1e-12 * p.abs().max(1e-12));
        }
    }

    #[test]
    fn sod_shock_moves_right() {
        let mut sim = FlashSimulation::new(Problem::SodX, 4, 1, 16, 16);
        let before = sim.checkpoint();
        sim.run_steps(40);
        let after = sim.checkpoint();
        // Density just right of the diaphragm (x ~ 0.6) must have risen
        // as the shock passes.
        let n = sim.num_cells();
        let dens_b = &before[&FlashVar::Dens];
        let dens_a = &after[&FlashVar::Dens];
        // Global layout: block-major; easier: compare means of right half
        // via value census — shock compresses gas, so the count of cells
        // with rho in (0.15, 0.9) must grow.
        let mid_band = |d: &[f64]| d.iter().filter(|&&x| x > 0.15 && x < 0.9).count();
        assert!(
            mid_band(dens_a) > mid_band(dens_b) + n / 100,
            "shock should create intermediate densities"
        );
        assert!(sim.time() > 0.0);
        assert_eq!(sim.steps(), 40);
    }

    #[test]
    fn fields_stay_physical_through_a_blast() {
        let mut sim = FlashSimulation::new(Problem::SedovBlast, 4, 4, 8, 8);
        sim.run_steps(60);
        let cp = sim.checkpoint();
        for (v, data) in &cp {
            for &x in data {
                assert!(x.is_finite(), "{v}");
            }
        }
        assert!(cp[&FlashVar::Dens].iter().all(|&d| d > 0.0));
        assert!(cp[&FlashVar::Pres].iter().all(|&p| p > 0.0));
    }

    #[test]
    fn blast_is_four_fold_symmetric() {
        let mut sim = FlashSimulation::new(Problem::SedovBlast, 2, 2, 16, 16);
        sim.run_steps(20);
        let cp = sim.checkpoint();
        let dens = &cp[&FlashVar::Dens];
        // Rebuild global (x-fastest) indexing: block-major layout.
        let global = |gx: usize, gy: usize| -> f64 {
            let (bx, i) = (gx / 16, gx % 16);
            let (by, j) = (gy / 16, gy % 16);
            let block_idx = by * 2 + bx;
            dens[block_idx * 256 + j * 16 + i]
        };
        let n = 32;
        for gy in 0..n {
            for gx in 0..n {
                let mirror = global(n - 1 - gx, gy);
                let v = global(gx, gy);
                assert!(
                    (v - mirror).abs() < 1e-9 * v.abs().max(1.0),
                    "x-mirror asymmetry at ({gx},{gy}): {v} vs {mirror}"
                );
            }
        }
    }

    #[test]
    fn checkpoint_restore_roundtrip_is_exact() {
        let mut sim = FlashSimulation::new(Problem::KelvinHelmholtz, 2, 2, 8, 8);
        sim.run_steps(10);
        let cp = sim.checkpoint();
        let mut sim2 = FlashSimulation::new(Problem::KelvinHelmholtz, 2, 2, 8, 8);
        sim2.restore(&cp).unwrap();
        let cp2 = sim2.checkpoint();
        for v in FlashVar::all() {
            for (a, b) in cp[&v].iter().zip(&cp2[&v]) {
                assert!((a - b).abs() <= 1e-12 * a.abs().max(1e-12), "{v}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn restored_run_continues_like_the_original() {
        // Determinism: restore(checkpoint(t)) then N steps must equal the
        // uninterrupted run — the foundation of the Fig. 8 experiment.
        let mut reference = FlashSimulation::new(Problem::SodX, 2, 2, 8, 8);
        reference.run_steps(10);
        let cp = reference.checkpoint();

        let mut restarted = FlashSimulation::new(Problem::SodX, 2, 2, 8, 8);
        restarted.restore(&cp).unwrap();

        reference.run_steps(5);
        restarted.run_steps(5);
        let a = reference.checkpoint();
        let b = restarted.checkpoint();
        for v in FlashVar::all() {
            // The restore path recomputes conserved from primitives, so
            // divergence at the last-ulp level is expected; compare at
            // each variable's own scale.
            let scale = a[&v].iter().fold(0.0f64, |m, x| m.max(x.abs())).max(1e-30);
            for (x, y) in a[&v].iter().zip(&b[&v]) {
                assert!((x - y).abs() <= 1e-9 * scale, "{v} diverged: {x} vs {y}");
            }
        }
    }

    #[test]
    fn restore_validates_input() {
        let mut sim = FlashSimulation::new(Problem::SodX, 2, 2, 8, 8);
        let mut cp = sim.checkpoint();
        cp.remove(&FlashVar::Pres);
        assert!(sim.restore(&cp).is_err());
        let mut cp2 = sim.checkpoint();
        cp2.get_mut(&FlashVar::Dens).unwrap().pop();
        assert!(sim.restore(&cp2).is_err());
    }

    #[test]
    fn kh_mass_is_conserved_periodically() {
        let mut sim = FlashSimulation::new(Problem::KelvinHelmholtz, 2, 2, 16, 16);
        let m0 = sim.total_mass();
        sim.run_steps(30);
        let m1 = sim.total_mass();
        assert!((m0 - m1).abs() < 1e-10 * m0, "{m0} -> {m1}");
    }

    #[test]
    fn successive_checkpoints_have_banded_relative_changes() {
        // The statistical property NUMARCK exploits: the change ratios of
        // one step concentrate in a narrow band, so 2^B − 1 equal-width
        // bins over the band have width below 2E (the paper's perfect-
        // compression criterion, §II-C.1). On this coarse grid the band
        // is percent-scale but must stay well under 0.5 wide at late
        // time.
        let mut sim = FlashSimulation::new(Problem::SedovBlast, 4, 4, 8, 8);
        sim.run_steps(60);
        let a = sim.checkpoint();
        sim.run_steps(1);
        let b = sim.checkpoint();
        let dens_a = &a[&FlashVar::Dens];
        let dens_b = &b[&FlashVar::Dens];
        let ratios: Vec<f64> =
            dens_a.iter().zip(dens_b).map(|(x, y)| (y - x) / x).collect();
        let lo = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = ratios.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(
            hi - lo < 0.5,
            "change-ratio band [{lo:.4}, {hi:.4}] too wide for 255 bins at E=0.1%"
        );
        // And the bulk of the distribution is much tighter than the band.
        let mut abs: Vec<f64> = ratios.iter().map(|r| r.abs()).collect();
        abs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(abs[abs.len() / 2] < 0.05, "median |Δ| {} too large", abs[abs.len() / 2]);
    }
}

#[cfg(test)]
mod muscl_tests {
    use super::*;
    use crate::euler::Scheme;

    #[test]
    fn muscl_uniform_state_is_preserved() {
        let mut sim =
            FlashSimulation::new(Problem::KelvinHelmholtz, 2, 2, 8, 8).with_scheme(Scheme::Muscl);
        // KH has structure; use a uniform override instead.
        let n = sim.num_cells();
        let mut cp = sim.checkpoint();
        for v in [FlashVar::Dens, FlashVar::Pres] {
            cp.insert(v, vec![1.0; n]);
        }
        for v in [FlashVar::Velx, FlashVar::Vely] {
            cp.insert(v, vec![0.1; n]);
        }
        cp.insert(FlashVar::Velz, vec![0.05; n]);
        sim.restore(&cp).unwrap();
        sim.run_steps(5);
        let after = sim.checkpoint();
        for &x in &after[&FlashVar::Dens] {
            assert!((x - 1.0).abs() < 1e-12, "{x}");
        }
    }

    #[test]
    fn muscl_keeps_fields_physical_through_a_blast() {
        let mut sim = FlashSimulation::paper_default(Problem::SedovBlast, 2, 2)
            .with_scheme(Scheme::Muscl);
        sim.run_steps(50);
        let cp = sim.checkpoint();
        assert!(cp[&FlashVar::Dens].iter().all(|&d| d > 0.0 && d.is_finite()));
        assert!(cp[&FlashVar::Pres].iter().all(|&p| p > 0.0 && p.is_finite()));
    }

    #[test]
    fn muscl_resolves_the_sod_front_more_sharply() {
        // Run both schemes to a similar time; the MUSCL density front
        // occupies fewer cells (smaller count of intermediate values in
        // the contact/shock transition band).
        let run = |scheme: Scheme| -> Vec<f64> {
            let mut sim =
                FlashSimulation::new(Problem::SodX, 4, 1, 16, 16).with_scheme(scheme);
            while sim.time() < 0.12 {
                sim.step();
            }
            sim.checkpoint().remove(&FlashVar::Dens).expect("dens")
        };
        let first = run(Scheme::FirstOrder);
        let muscl = run(Scheme::Muscl);
        // Transition cells: density strictly between the post-shock
        // plateau (~0.26) and the right ambient (0.125), i.e. the smeared
        // shock foot.
        let smear = |d: &[f64]| d.iter().filter(|&&x| x > 0.13 && x < 0.24).count();
        let (s1, s2) = (smear(&first), smear(&muscl));
        assert!(
            s2 < s1,
            "MUSCL transition band {s2} cells should be narrower than first-order {s1}"
        );
    }

    #[test]
    fn muscl_conserves_mass_on_periodic_domains() {
        let mut sim = FlashSimulation::new(Problem::KelvinHelmholtz, 2, 2, 16, 16)
            .with_scheme(Scheme::Muscl);
        let m0 = sim.total_mass();
        sim.run_steps(30);
        let m1 = sim.total_mass();
        assert!((m0 - m1).abs() < 1e-10 * m0, "{m0} -> {m1}");
    }
}
