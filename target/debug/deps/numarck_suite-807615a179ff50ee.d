/root/repo/target/debug/deps/numarck_suite-807615a179ff50ee.d: src/lib.rs

/root/repo/target/debug/deps/libnumarck_suite-807615a179ff50ee.rmeta: src/lib.rs

src/lib.rs:
