/root/repo/target/debug/examples/restart_after_failure-2749bfc8abe334d4.d: examples/restart_after_failure.rs

/root/repo/target/debug/examples/librestart_after_failure-2749bfc8abe334d4.rmeta: examples/restart_after_failure.rs

examples/restart_after_failure.rs:
