//! Binary (de)serialisation of compressed iterations.
//!
//! Little-endian layout, CRC-32 protected:
//!
//! ```text
//! [0..4)    magic  b"NMK1"
//! [4..6)    format version (u16)
//! [6]       bits B
//! [7]       reserved (0)
//! [8..16)   tolerance E (f64)
//! [16..24)  num_points (u64)
//! [24..32)  num_compressible (u64)
//! [32..36)  table_len (u32)
//! [36..40)  reserved (0)
//! table     table_len × f64 (sorted representatives)
//! bitmap    ceil(num_points / 64) × u64
//! indices   ceil(num_compressible · B / 64) × u64
//! exacts    (num_points − num_compressible) × f64
//! crc       CRC-32 (IEEE) of everything above (u32)
//! ```
//!
//! This is the *true* storage cost — unlike the paper's Eq. 3 it includes
//! the bitmap and header, so [`actual_compression_ratio`] is always
//! slightly below [`CompressedIteration::compression_ratio_eq3`].

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::encode::CompressedIteration;
use crate::error::NumarckError;
use crate::table::BinTable;

/// Magic bytes identifying a NUMARCK compressed block.
pub const MAGIC: [u8; 4] = *b"NMK1";
/// Current format version.
pub const VERSION: u16 = 1;
const HEADER_LEN: usize = 40;

/// How the index stream is stored on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexEncoding {
    /// Fixed `B` bits per index (the paper's storage model).
    #[default]
    FixedWidth,
    /// Canonical Huffman over the indices ([`crate::huffman`]): shrinks
    /// the `B/64` index cost toward the stream's entropy at the price of
    /// one byte of code length per possible symbol.
    Huffman,
}

/// Exact number of bytes [`to_bytes`] will produce for `block`.
pub fn serialized_len(block: &CompressedIteration) -> usize {
    let index_words = (block.num_compressible * block.bits as usize).div_ceil(64);
    HEADER_LEN
        + block.table.len() * 8
        + block.bitmap.len() * 8
        + index_words * 8
        + block.exact_values.len() * 8
        + 4 // crc
}

/// True on-disk compression ratio: `1 − serialized / raw` where raw is
/// 8 bytes per point. Zero for an empty block.
pub fn actual_compression_ratio(block: &CompressedIteration) -> f64 {
    if block.num_points == 0 {
        return 0.0;
    }
    1.0 - serialized_len(block) as f64 / (8 * block.num_points) as f64
}

/// Serialise a compressed block with fixed-width indices.
pub fn to_bytes(block: &CompressedIteration) -> Bytes {
    to_bytes_with(block, IndexEncoding::FixedWidth)
}

/// Serialise with an explicit index encoding.
pub fn to_bytes_with(block: &CompressedIteration, encoding: IndexEncoding) -> Bytes {
    let mut buf = BytesMut::with_capacity(serialized_len(block));
    buf.put_slice(&MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u8(block.bits);
    buf.put_u8(match encoding {
        IndexEncoding::FixedWidth => 0,
        IndexEncoding::Huffman => 1,
    });
    buf.put_f64_le(block.tolerance);
    buf.put_u64_le(block.num_points as u64);
    buf.put_u64_le(block.num_compressible as u64);
    buf.put_u32_le(block.table.len() as u32);
    buf.put_u32_le(0);
    for &r in block.table.representatives() {
        buf.put_f64_le(r);
    }
    for &w in &block.bitmap {
        buf.put_u64_le(w);
    }
    match encoding {
        IndexEncoding::FixedWidth => {
            let index_words = (block.num_compressible * block.bits as usize).div_ceil(64);
            debug_assert!(block.index_words.len() >= index_words);
            for &w in &block.index_words[..index_words] {
                buf.put_u64_le(w);
            }
        }
        IndexEncoding::Huffman => {
            let num_symbols = block.table.len() + 1;
            let indices = (0..block.num_compressible)
                .map(|i| crate::bitstream::read_at(&block.index_words, block.bits, i));
            let encoded = crate::huffman::encode_symbols(indices, num_symbols);
            // Code lengths: one byte per possible symbol.
            buf.put_slice(encoded.code.lengths());
            buf.put_u64_le(encoded.len_bits as u64);
            for &w in &encoded.words {
                buf.put_u64_le(w);
            }
        }
    }
    for &v in &block.exact_values {
        buf.put_f64_le(v);
    }
    let crc = crc32(&buf);
    buf.put_u32_le(crc);
    buf.freeze()
}

/// Deserialise and validate a compressed block.
pub fn from_bytes(mut data: &[u8]) -> Result<CompressedIteration, NumarckError> {
    let total = data.len();
    if total < HEADER_LEN + 4 {
        return Err(NumarckError::Corrupt(format!("blob too short: {total} bytes")));
    }
    // CRC first: everything else assumes intact bytes.
    let body = &data[..total - 4];
    let stored_crc = u32::from_le_bytes(data[total - 4..].try_into().expect("4 bytes"));
    let computed = crc32(body);
    if stored_crc != computed {
        return Err(NumarckError::Corrupt(format!(
            "crc mismatch: stored {stored_crc:#x}, computed {computed:#x}"
        )));
    }

    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if magic != MAGIC {
        return Err(NumarckError::Corrupt("bad magic".into()));
    }
    let version = data.get_u16_le();
    if version != VERSION {
        return Err(NumarckError::VersionMismatch { found: version, expected: VERSION });
    }
    let bits = data.get_u8();
    if !(1..=16).contains(&bits) {
        return Err(NumarckError::Corrupt(format!("bits {bits} out of range")));
    }
    let encoding = match data.get_u8() {
        0 => IndexEncoding::FixedWidth,
        1 => IndexEncoding::Huffman,
        e => return Err(NumarckError::Corrupt(format!("unknown index encoding {e}"))),
    };
    let tolerance = data.get_f64_le();
    let num_points = data.get_u64_le() as usize;
    let num_compressible = data.get_u64_le() as usize;
    let table_len = data.get_u32_le() as usize;
    let _reserved2 = data.get_u32_le();

    if num_compressible > num_points {
        return Err(NumarckError::Corrupt("num_compressible > num_points".into()));
    }
    if table_len >= (1usize << bits) {
        return Err(NumarckError::Corrupt(format!(
            "table_len {table_len} does not fit in {bits}-bit indices"
        )));
    }
    let bitmap_words = num_points.div_ceil(64);
    let exact_count = num_points - num_compressible;
    // Per-section length checks (the Huffman variant's index section has
    // data-dependent length, so a single up-front equality test is only
    // possible for the fixed-width layout).
    let fixed_sections = table_len * 8 + bitmap_words * 8 + exact_count * 8 + 4;
    if data.remaining() < fixed_sections {
        return Err(NumarckError::Corrupt("payload shorter than its fixed sections".into()));
    }
    if encoding == IndexEncoding::FixedWidth {
        let index_words = (num_compressible * bits as usize).div_ceil(64);
        if data.remaining() != fixed_sections + index_words * 8 {
            return Err(NumarckError::Corrupt(format!(
                "payload length mismatch: have {}, want {}",
                data.remaining(),
                fixed_sections + index_words * 8
            )));
        }
    }

    let mut reps = Vec::with_capacity(table_len);
    for _ in 0..table_len {
        let r = data.get_f64_le();
        if !r.is_finite() {
            return Err(NumarckError::Corrupt("non-finite table entry".into()));
        }
        reps.push(r);
    }
    // Representatives were written sorted & unique; verify so indices
    // cannot silently shift through BinTable's dedup.
    if reps.windows(2).any(|w| w[0] >= w[1]) {
        return Err(NumarckError::Corrupt("table entries not strictly increasing".into()));
    }
    let mut bitmap = Vec::with_capacity(bitmap_words);
    for _ in 0..bitmap_words {
        bitmap.push(data.get_u64_le());
    }
    let set_bits: usize = bitmap.iter().map(|w| w.count_ones() as usize).sum();
    if set_bits != num_compressible {
        return Err(NumarckError::Corrupt(format!(
            "bitmap population {set_bits} != num_compressible {num_compressible}"
        )));
    }
    let index_buf = match encoding {
        IndexEncoding::FixedWidth => {
            let index_words = (num_compressible * bits as usize).div_ceil(64);
            let mut buf = Vec::with_capacity(index_words);
            for _ in 0..index_words {
                buf.push(data.get_u64_le());
            }
            buf
        }
        IndexEncoding::Huffman => {
            let num_symbols = table_len + 1;
            if data.remaining() < num_symbols + 8 + exact_count * 8 + 4 {
                return Err(NumarckError::Corrupt("truncated huffman header".into()));
            }
            let mut lengths = vec![0u8; num_symbols];
            data.copy_to_slice(&mut lengths);
            let code = crate::huffman::HuffmanCode::from_lengths(lengths)?;
            let len_bits = data.get_u64_le() as usize;
            let words_needed = len_bits.div_ceil(64);
            if data.remaining() != words_needed * 8 + exact_count * 8 + 4 {
                return Err(NumarckError::Corrupt("huffman payload length mismatch".into()));
            }
            let mut words = Vec::with_capacity(words_needed);
            for _ in 0..words_needed {
                words.push(data.get_u64_le());
            }
            let encoded = crate::huffman::HuffmanEncoded {
                code,
                words,
                len_bits,
                count: num_compressible,
            };
            let symbols = crate::huffman::decode_symbols(&encoded)?;
            // Repack into the in-memory fixed-width layout.
            let mut writer =
                crate::bitstream::BitWriter::with_capacity(num_compressible, bits);
            for &sym in &symbols {
                if sym as usize > table_len {
                    return Err(NumarckError::Corrupt(format!(
                        "huffman symbol {sym} exceeds table length {table_len}"
                    )));
                }
                writer.push(sym, bits);
            }
            writer.into_words()
        }
    };
    let mut exact_values = Vec::with_capacity(exact_count);
    for _ in 0..exact_count {
        exact_values.push(data.get_f64_le());
    }

    let block = CompressedIteration {
        bits,
        tolerance,
        num_points,
        table: BinTable::new(reps),
        bitmap,
        index_words: index_buf,
        num_compressible,
        exact_values,
    };
    if block.table.len() != table_len {
        return Err(NumarckError::Corrupt("duplicate table entries".into()));
    }
    Ok(block)
}

/// CRC-32 (IEEE 802.3), table-driven.
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 == 1 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *e = c;
        }
        t
    });
    let mut crc = !0u32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::encode::encode;
    use crate::strategy::Strategy;

    fn sample_block(strategy: Strategy) -> CompressedIteration {
        let n = 3000;
        let prev: Vec<f64> =
            (0..n).map(|i| if i % 50 == 0 { 0.0 } else { 1.0 + (i % 13) as f64 }).collect();
        let curr: Vec<f64> = prev
            .iter()
            .enumerate()
            .map(|(i, v)| if *v == 0.0 { 9.0 } else { v * (1.0 + 0.002 * (i % 7) as f64) })
            .collect();
        let cfg = Config::new(8, 0.001, strategy).unwrap();
        encode(&prev, &curr, &cfg).unwrap().0
    }

    #[test]
    fn roundtrip_all_strategies() {
        for s in Strategy::all() {
            let block = sample_block(s);
            let bytes = to_bytes(&block);
            assert_eq!(bytes.len(), serialized_len(&block), "{s}");
            let back = from_bytes(&bytes).unwrap();
            assert_eq!(back, block, "{s}");
        }
    }

    #[test]
    fn crc32_known_vector() {
        // Standard test vector: CRC-32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn bit_flip_anywhere_is_detected() {
        let block = sample_block(Strategy::Clustering);
        let bytes = to_bytes(&block).to_vec();
        // Flip a bit in several representative positions.
        for pos in [0usize, 5, HEADER_LEN + 3, bytes.len() / 2, bytes.len() - 1] {
            let mut corrupted = bytes.clone();
            corrupted[pos] ^= 0x10;
            assert!(
                from_bytes(&corrupted).is_err(),
                "flip at {pos} went undetected"
            );
        }
    }

    #[test]
    fn truncation_is_detected() {
        let block = sample_block(Strategy::EqualWidth);
        let bytes = to_bytes(&block);
        for cut in [1usize, 10, bytes.len() / 2, bytes.len() - 1] {
            assert!(from_bytes(&bytes[..cut]).is_err(), "truncation to {cut} accepted");
        }
    }

    #[test]
    fn version_mismatch_reported() {
        let block = sample_block(Strategy::LogScale);
        let mut bytes = to_bytes(&block).to_vec();
        bytes[4] = 99; // bump version
        let body_len = bytes.len() - 4;
        let crc = crc32(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            from_bytes(&bytes),
            Err(NumarckError::VersionMismatch { found: 99, expected: VERSION })
        ));
    }

    #[test]
    fn actual_ratio_tracks_eq3() {
        // Eq. 3 charges a full (2^B − 1)-entry table but omits the bitmap;
        // the serializer stores only learned entries but pays for the
        // bitmap and header. Net: actual may land on either side of Eq. 3
        // but only by the table savings + bitmap cost.
        let block = sample_block(Strategy::Clustering);
        let eq3 = block.compression_ratio_eq3();
        let actual = actual_compression_ratio(&block);
        let n_bits = 64.0 * block.num_points as f64;
        let table_savings =
            (((1usize << block.bits) - 1 - block.table.len()) * 64) as f64 / n_bits;
        let bitmap_cost = (block.bitmap.len() * 64) as f64 / n_bits;
        let header_cost = (HEADER_LEN + 4) as f64 * 8.0 / n_bits;
        assert!(actual <= eq3 + table_savings + 1e-12, "actual {actual} eq3 {eq3}");
        assert!(
            actual >= eq3 - bitmap_cost - header_cost - 1e-12,
            "actual {actual} eq3 {eq3}"
        );
    }

    #[test]
    fn empty_block_roundtrip() {
        let cfg = Config::new(8, 0.001, Strategy::Clustering).unwrap();
        let (block, _) = encode(&[], &[], &cfg).unwrap();
        let back = from_bytes(&to_bytes(&block)).unwrap();
        assert_eq!(back, block);
        assert_eq!(actual_compression_ratio(&block), 0.0);
    }

    #[test]
    fn huffman_encoding_roundtrips_for_all_strategies() {
        for s in Strategy::all() {
            let block = sample_block(s);
            let bytes = to_bytes_with(&block, IndexEncoding::Huffman);
            let back = from_bytes(&bytes).unwrap();
            assert_eq!(back, block, "{s}");
        }
    }

    #[test]
    fn huffman_encoding_is_smaller_on_skewed_indices() {
        // Mostly index-0 stream: the Huffman variant must be much
        // smaller on the wire.
        let n = 20_000;
        let prev: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
        let curr: Vec<f64> = prev
            .iter()
            .enumerate()
            .map(|(i, v)| if i % 20 == 0 { v * 1.05 } else { v * 1.0001 })
            .collect();
        let cfg = Config::new(8, 0.001, Strategy::Clustering).unwrap();
        let (block, _) = encode(&prev, &curr, &cfg).unwrap();
        let fixed = to_bytes_with(&block, IndexEncoding::FixedWidth);
        let huff = to_bytes_with(&block, IndexEncoding::Huffman);
        assert!(
            (huff.len() as f64) < fixed.len() as f64 * 0.5,
            "huffman {} vs fixed {}",
            huff.len(),
            fixed.len()
        );
        assert_eq!(from_bytes(&huff).unwrap(), from_bytes(&fixed).unwrap());
    }

    #[test]
    fn huffman_corruption_detected() {
        let block = sample_block(Strategy::Clustering);
        let bytes = to_bytes_with(&block, IndexEncoding::Huffman).to_vec();
        for pos in [6usize, 44, bytes.len() / 2, bytes.len() - 2] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x04;
            assert!(from_bytes(&bad).is_err(), "flip at {pos}");
        }
    }

    #[test]
    fn empty_block_huffman_roundtrip() {
        let cfg = Config::new(8, 0.001, Strategy::Clustering).unwrap();
        let (block, _) = encode(&[], &[], &cfg).unwrap();
        let back = from_bytes(&to_bytes_with(&block, IndexEncoding::Huffman)).unwrap();
        assert_eq!(back, block);
    }

    #[test]
    fn decode_after_roundtrip_matches_direct_decode() {
        let n = 1000;
        let prev: Vec<f64> = (0..n).map(|i| 2.0 + (i % 29) as f64).collect();
        let curr: Vec<f64> = prev.iter().map(|v| v * 1.01).collect();
        let cfg = Config::new(9, 0.002, Strategy::Clustering).unwrap();
        let (block, _) = encode(&prev, &curr, &cfg).unwrap();
        let direct = crate::decode::reconstruct(&prev, &block).unwrap();
        let wire = from_bytes(&to_bytes(&block)).unwrap();
        let via_wire = crate::decode::reconstruct(&prev, &wire).unwrap();
        assert_eq!(direct, via_wire);
    }
}
