/root/repo/target/debug/deps/perf-a0220d7ced37526a.d: crates/numarck-bench/src/bin/perf.rs

/root/repo/target/debug/deps/perf-a0220d7ced37526a: crates/numarck-bench/src/bin/perf.rs

crates/numarck-bench/src/bin/perf.rs:
