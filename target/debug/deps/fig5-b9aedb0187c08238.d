/root/repo/target/debug/deps/fig5-b9aedb0187c08238.d: crates/numarck-bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-b9aedb0187c08238: crates/numarck-bench/src/bin/fig5.rs

crates/numarck-bench/src/bin/fig5.rs:
