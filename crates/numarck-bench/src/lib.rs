//! Shared experiment harness for the paper-reproduction binaries.
//!
//! Each figure/table of the paper's §III has a binary in `src/bin/`
//! (`fig1` … `fig8`, `table1`) built from the pieces here:
//!
//! * [`data`] — checkpoint-sequence generators: FLASH variables from
//!   [`flash_sim`] runs and CMIP5-like variables from [`climate_sim`];
//! * [`run`] — sweep runners that compress a sequence under a strategy
//!   grid and collect [`numarck::IterationStats`];
//! * [`report`] — fixed-width console tables and CSV emission under
//!   `results/` so figures can be re-plotted.

pub mod data;
pub mod report;
pub mod run;

/// Default output directory for CSV series.
pub const RESULTS_DIR: &str = "results";
