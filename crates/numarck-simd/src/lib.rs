//! # numarck-simd — lane kernels for the encode/decode hot loops
//!
//! Four kernels dominate NUMARCK's runtime: the change-ratio transform
//! (`(cur − prev) / prev`), bin quantization against the sorted
//! representative table, bitmap popcount rank, and bit-unpacking packed
//! index codes into centroid lookups. This crate provides each of them at
//! three implementation levels:
//!
//! * **scalar** — the straight-line reference. Every other level is
//!   required (and tested) to be *bit-identical* to it: same escape
//!   decisions, same midpoint-tie rule, same IEEE results.
//! * **unrolled** — portable chunks-of-8 scalar unrolling; no
//!   architecture-specific code, but enough independent work per
//!   iteration for the compiler to vectorize and for the CPU to pipeline.
//! * **avx2** — explicit `std::arch` x86_64 intrinsics (4×f64 / 4×u64
//!   lanes), compiled unconditionally on x86_64 behind
//!   `#[target_feature]` and selected only when the CPU reports AVX2 (and
//!   POPCNT) at runtime.
//!
//! The dispatch decision is made once per process ([`active_level`]) and
//! recorded in the global observability registry as the
//! `simd_dispatch_level` gauge (0 = scalar, 1 = unrolled, 2 = avx2) so
//! benchmark numbers are interpretable across hosts. Two environment
//! knobs override detection:
//!
//! * `NUMARCK_FORCE_SCALAR=1` — force the scalar reference everywhere.
//! * `NUMARCK_SIMD=scalar|unrolled|avx2` — pin a specific level
//!   (`avx2` silently degrades to `unrolled` when unsupported).
//!
//! Every kernel also has a `*_with(level, …)` variant taking an explicit
//! [`Level`], which is what the oracle-equivalence tests sweep.

pub mod popcount;
pub mod quantize;
pub mod transform;
pub mod unpack;

use std::sync::OnceLock;

/// Sentinel marking an escaped (incompressible) point in a code array.
///
/// Must match `numarck::encode::ESCAPE`; the equality is pinned by a test
/// in the `numarck` crate.
pub const ESCAPE: u32 = u32::MAX;

/// Implementation level of a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Straight-line reference implementation (the oracle).
    Scalar = 0,
    /// Portable chunks-of-8 scalar unrolling.
    Unrolled = 1,
    /// x86_64 AVX2 intrinsics (4-wide f64/u64 lanes).
    Avx2 = 2,
}

impl Level {
    /// Stable lower-case name, used in BENCH JSON and metrics.
    pub fn name(self) -> &'static str {
        match self {
            Level::Scalar => "scalar",
            Level::Unrolled => "unrolled",
            Level::Avx2 => "avx2",
        }
    }

    /// All levels this host can execute, in ascending order. `Avx2` is
    /// included only when the CPU supports it.
    pub fn all_supported() -> Vec<Level> {
        let mut v = vec![Level::Scalar, Level::Unrolled];
        if avx2_available() {
            v.push(Level::Avx2);
        }
        v
    }
}

/// Whether the AVX2 kernel variants can run on this host (requires the
/// AVX2 and POPCNT CPU features; only ever true on x86_64).
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
            && std::arch::is_x86_feature_detected!("popcnt")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

static ACTIVE: OnceLock<Level> = OnceLock::new();

/// The level every dispatched kernel entry point uses. Resolved once per
/// process: environment overrides first (`NUMARCK_FORCE_SCALAR`,
/// `NUMARCK_SIMD`), then CPU feature detection. The resolution is
/// recorded in the `simd_dispatch_level` gauge of the global metrics
/// registry.
pub fn active_level() -> Level {
    *ACTIVE.get_or_init(|| {
        let level = resolve_level();
        numarck_obs::Registry::global().gauge("simd_dispatch_level").set(level as i64);
        level
    })
}

fn resolve_level() -> Level {
    if std::env::var("NUMARCK_FORCE_SCALAR").is_ok_and(|v| v == "1") {
        return Level::Scalar;
    }
    match std::env::var("NUMARCK_SIMD").as_deref() {
        Ok("scalar") => Level::Scalar,
        Ok("unrolled") => Level::Unrolled,
        // A pinned avx2 on a host without it degrades rather than
        // crashing on an illegal instruction.
        Ok("avx2") if avx2_available() => Level::Avx2,
        Ok(_) => {
            if avx2_available() {
                Level::Avx2
            } else {
                Level::Unrolled
            }
        }
        Err(_) => {
            if avx2_available() {
                Level::Avx2
            } else {
                Level::Unrolled
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn supported_levels_start_with_the_oracle() {
        let all = Level::all_supported();
        assert_eq!(all[0], Level::Scalar);
        assert_eq!(all[1], Level::Unrolled);
        assert!(all.len() <= 3);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Level::Scalar.name(), "scalar");
        assert_eq!(Level::Unrolled.name(), "unrolled");
        assert_eq!(Level::Avx2.name(), "avx2");
    }

    #[test]
    fn active_level_is_cached_and_gauged() {
        let a = active_level();
        let b = active_level();
        assert_eq!(a, b);
        let g = numarck_obs::Registry::global().gauge("simd_dispatch_level");
        assert_eq!(g.get(), a as i64);
    }
}
