/root/repo/target/debug/deps/error_bound_guarantee-a661494fe045394c.d: tests/error_bound_guarantee.rs

/root/repo/target/debug/deps/error_bound_guarantee-a661494fe045394c: tests/error_bound_guarantee.rs

tests/error_bound_guarantee.rs:
