/root/repo/target/debug/deps/rand-c8facdaac17e4336.d: .stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-c8facdaac17e4336.rmeta: .stubs/rand/src/lib.rs

.stubs/rand/src/lib.rs:
