//! Parallel primitives used throughout the NUMARCK workspace.
//!
//! NUMARCK's design goal (SC'14, §I) is to perform as much work as possible
//! *in place* and *locally*: change-ratio computation, histogramming, and
//! K-means assignment are all embarrassingly parallel over the data points,
//! with small per-thread partial results merged at the end. This crate
//! provides those building blocks once, so every other crate in the
//! workspace expresses its parallelism the same way:
//!
//! * [`reduce`] — compensated (Neumaier) parallel sums, min/max, and moment
//!   accumulators that are deterministic for a fixed chunk size.
//! * [`histogram`] — fixed-bin parallel histograms with mergeable partials.
//! * [`scan`] — parallel prefix sums (the decoder's bitmap rank index).
//! * [`chunk`] — chunk-size selection heuristics shared by all crates.
//! * [`pool`] — helpers for building appropriately sized Rayon pools.
//!
//! All entry points accept plain slices and are safe to call from inside an
//! existing Rayon pool (they use `par_chunks`, never spawn their own pool
//! unless asked via [`pool::build_pool`]).

pub mod chunk;
pub mod histogram;
pub mod pool;
pub mod quantile;
pub mod reduce;
pub mod rng;
pub mod scan;

pub use chunk::chunk_size_for;
pub use histogram::{FixedHistogram, HistogramSpec};
pub use reduce::{par_min_max, par_moments, par_sum, Moments, MinMax};
