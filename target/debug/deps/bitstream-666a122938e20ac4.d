/root/repo/target/debug/deps/bitstream-666a122938e20ac4.d: crates/numarck-bench/benches/bitstream.rs

/root/repo/target/debug/deps/libbitstream-666a122938e20ac4.rmeta: crates/numarck-bench/benches/bitstream.rs

crates/numarck-bench/benches/bitstream.rs:
