//! Cluster membership and shard health.
//!
//! Every shard starts *up*. Two evidence streams demote it:
//!
//! * the **prober** thread — one cheap `Stats` round-trip per shard per
//!   probe interval;
//! * the **router event loop** — a connect/write/read failure while
//!   forwarding real traffic reports straight into the same table, so a
//!   dead shard is usually marked down by the first request that trips
//!   over it rather than by the next probe tick.
//!
//! Demotion takes `markdown_after` *consecutive* failures (one flaky
//! probe must not eject a healthy shard); a single successful probe
//! promotes it back. Mark-down never removes a shard from the ring —
//! placement stays stable and the shard resumes its old sessions on
//! recovery; the router simply skips down shards when choosing live
//! targets, which is what gives restart its failover semantics.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use numarck_obs::{Counter, Gauge};
use numarck_serve::Client;

/// Health-transition instruments, owned by the router's registry.
pub struct HealthInstruments {
    /// `ncl_shard_markdowns_total`
    pub markdowns: Arc<Counter>,
    /// `ncl_shard_markups_total`
    pub markups: Arc<Counter>,
    /// `ncl_probe_failures_total`
    pub probe_failures: Arc<Counter>,
    /// `ncl_shard_up_{i}`, one gauge per shard, 1 = up.
    pub shard_up: Vec<Arc<Gauge>>,
}

struct ShardState {
    addr: String,
    up: AtomicBool,
    consecutive_failures: AtomicU32,
}

/// Shared shard health table. Cheap to read from the event loop (two
/// atomic loads), written by the prober and by forwarding failures.
pub struct Membership {
    shards: Vec<ShardState>,
    markdown_after: u32,
}

impl Membership {
    /// Build a table over shard addresses; everything starts up.
    pub fn new(addrs: Vec<String>, markdown_after: u32) -> Membership {
        Membership {
            shards: addrs
                .into_iter()
                .map(|addr| ShardState {
                    addr,
                    up: AtomicBool::new(true),
                    consecutive_failures: AtomicU32::new(0),
                })
                .collect(),
            markdown_after: markdown_after.max(1),
        }
    }

    /// Number of shards (fixed for the life of the cluster).
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// True when the table has no shards.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The address shard `i` was configured with.
    pub fn addr(&self, i: usize) -> &str {
        &self.shards[i].addr
    }

    /// Whether shard `i` is currently marked up.
    pub fn is_up(&self, i: usize) -> bool {
        self.shards[i].up.load(Ordering::SeqCst)
    }

    /// How many shards are currently up.
    pub fn up_count(&self) -> usize {
        (0..self.len()).filter(|&i| self.is_up(i)).count()
    }

    /// Record a successful interaction with shard `i`. Returns true on
    /// a down→up transition (the caller bumps the mark-up counter).
    pub fn report_success(&self, i: usize) -> bool {
        let s = &self.shards[i];
        s.consecutive_failures.store(0, Ordering::SeqCst);
        !s.up.swap(true, Ordering::SeqCst)
    }

    /// Record a failed interaction with shard `i`. Returns true on an
    /// up→down transition (after `markdown_after` consecutive
    /// failures).
    pub fn report_failure(&self, i: usize) -> bool {
        let s = &self.shards[i];
        let fails = s.consecutive_failures.fetch_add(1, Ordering::SeqCst) + 1;
        if fails >= self.markdown_after {
            return s.up.swap(false, Ordering::SeqCst);
        }
        false
    }

    /// Apply a transition's bookkeeping to the instruments.
    pub fn record_transition(&self, i: usize, instruments: &HealthInstruments) {
        let up = self.is_up(i);
        instruments.shard_up[i].set(i64::from(up));
        if up {
            instruments.markups.inc();
        } else {
            instruments.markdowns.inc();
        }
    }
}

/// Configuration for the prober thread.
pub struct ProberConfig {
    /// Delay between probe rounds.
    pub interval: Duration,
    /// Per-probe connect + I/O timeout.
    pub timeout: Duration,
}

/// Spawn the health-probe thread. It probes every shard each round
/// with a `Stats` round-trip and feeds the membership table; it exits
/// promptly once `stop` flips.
pub fn spawn_prober(
    membership: Arc<Membership>,
    instruments: Arc<HealthInstruments>,
    config: ProberConfig,
    stop: Arc<AtomicBool>,
) -> thread::JoinHandle<()> {
    thread::Builder::new()
        .name("ncl-prober".into())
        .spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                for i in 0..membership.len() {
                    if stop.load(Ordering::SeqCst) {
                        return;
                    }
                    let ok = probe(membership.addr(i), config.timeout);
                    let transitioned = if ok {
                        membership.report_success(i)
                    } else {
                        instruments.probe_failures.inc();
                        membership.report_failure(i)
                    };
                    if transitioned {
                        membership.record_transition(i, &instruments);
                    }
                }
                // Sleep in small slices so stop stays responsive.
                let mut slept = Duration::ZERO;
                while slept < config.interval && !stop.load(Ordering::SeqCst) {
                    let slice = (config.interval - slept).min(Duration::from_millis(50));
                    thread::sleep(slice);
                    slept += slice;
                }
            }
        })
        .expect("spawn ncl-prober")
}

/// One health probe: connect and complete a `Stats` round-trip.
fn probe(addr: &str, timeout: Duration) -> bool {
    match Client::connect(addr, timeout) {
        Ok(mut client) => client.stats().is_ok(),
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Membership {
        Membership::new(vec!["a:1".into(), "b:2".into()], 3)
    }

    #[test]
    fn markdown_needs_consecutive_failures() {
        let m = table();
        assert!(m.is_up(0));
        assert!(!m.report_failure(0));
        assert!(!m.report_failure(0));
        // A success in between resets the streak.
        assert!(!m.report_success(0), "already up: no transition");
        assert!(!m.report_failure(0));
        assert!(!m.report_failure(0));
        assert!(m.is_up(0), "two failures after a reset: still up");
        assert!(m.report_failure(0), "third consecutive failure: down");
        assert!(!m.is_up(0));
        assert_eq!(m.up_count(), 1);
        // Repeated failures while down do not re-transition.
        assert!(!m.report_failure(0));
        // One success brings it back.
        assert!(m.report_success(0));
        assert!(m.is_up(0));
    }

    #[test]
    fn prober_marks_unreachable_shard_down() {
        // A bound-then-dropped listener gives an address nothing
        // listens on: every probe fails fast with ECONNREFUSED.
        let dead = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let membership = Arc::new(Membership::new(vec![dead], 2));
        let registry = numarck_obs::Registry::new();
        let instruments = Arc::new(HealthInstruments {
            markdowns: registry.counter("ncl_shard_markdowns_total"),
            markups: registry.counter("ncl_shard_markups_total"),
            probe_failures: registry.counter("ncl_probe_failures_total"),
            shard_up: vec![registry.gauge("ncl_shard_up_0")],
        });
        instruments.shard_up[0].set(1);
        let stop = Arc::new(AtomicBool::new(false));
        let h = spawn_prober(
            Arc::clone(&membership),
            Arc::clone(&instruments),
            ProberConfig {
                interval: Duration::from_millis(10),
                timeout: Duration::from_millis(200),
            },
            Arc::clone(&stop),
        );
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while membership.is_up(0) && std::time::Instant::now() < deadline {
            thread::sleep(Duration::from_millis(10));
        }
        stop.store(true, Ordering::SeqCst);
        h.join().unwrap();
        assert!(!membership.is_up(0), "unreachable shard never marked down");
        assert!(instruments.markdowns.get() >= 1);
        assert_eq!(instruments.shard_up[0].get(), 0);
    }
}
