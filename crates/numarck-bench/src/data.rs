//! Checkpoint-sequence generators for the experiments.

use std::collections::BTreeMap;

use climate_sim::{ClimateModel, ClimateVar};
use flash_sim::{FlashSimulation, FlashVar, Problem};

/// A sequence of checkpoints (iterations) of one variable.
pub type Sequence = Vec<Vec<f64>>;

/// Experiment-wide deterministic seed.
pub const SEED: u64 = 0x9E37_79B9;

/// FLASH sequence configuration.
#[derive(Debug, Clone, Copy)]
pub struct FlashConfig {
    /// Test problem to run.
    pub problem: Problem,
    /// Blocks per axis (square tiling of 16×16 blocks).
    pub blocks: usize,
    /// Solver steps between checkpoints.
    pub steps_per_checkpoint: usize,
    /// Solver steps to run before the first checkpoint (skips the
    /// initial transient, which no production run would checkpoint
    /// immediately).
    pub warmup_steps: usize,
}

impl Default for FlashConfig {
    fn default() -> Self {
        Self { problem: Problem::SedovBlast, blocks: 8, steps_per_checkpoint: 2, warmup_steps: 20 }
    }
}

/// Run FLASH and collect `n_checkpoints` checkpoints of every variable.
pub fn flash_sequences(
    cfg: FlashConfig,
    n_checkpoints: usize,
) -> BTreeMap<FlashVar, Sequence> {
    let mut sim = FlashSimulation::paper_default(cfg.problem, cfg.blocks, cfg.blocks);
    sim.run_steps(cfg.warmup_steps);
    let mut out: BTreeMap<FlashVar, Sequence> =
        FlashVar::all().into_iter().map(|v| (v, Vec::with_capacity(n_checkpoints))).collect();
    for c in 0..n_checkpoints {
        if c > 0 {
            sim.run_steps(cfg.steps_per_checkpoint);
        }
        let cp = sim.checkpoint();
        for (v, data) in cp {
            out.get_mut(&v).expect("all vars present").push(data);
        }
    }
    out
}

/// One FLASH variable's sequence (convenience wrapper).
pub fn flash_sequence(cfg: FlashConfig, var: FlashVar, n_checkpoints: usize) -> Sequence {
    flash_sequences(cfg, n_checkpoints).remove(&var).expect("variable exists")
}

/// A CMIP5-like variable's sequence on the paper's 144×90 grid
/// (iteration 0 included).
pub fn climate_sequence(var: ClimateVar, n_iterations: usize) -> Sequence {
    let mut model = ClimateModel::new(var, SEED);
    let mut out = Vec::with_capacity(n_iterations);
    out.push(model.current().to_vec());
    for _ in 1..n_iterations {
        out.push(model.step().to_vec());
    }
    out
}

/// Tile every iteration of a sequence up to exactly `n` points by
/// repeating it. The change-ratio transform is pointwise, so tiling
/// preserves the ratio distribution (and therefore the learned table and
/// escape rate) while scaling the workload to benchmark-sized inputs.
pub fn tile_to(seq: &Sequence, n: usize) -> Sequence {
    seq.iter()
        .map(|it| {
            if it.is_empty() {
                return Vec::new();
            }
            let mut out = Vec::with_capacity(n);
            while out.len() < n {
                let take = (n - out.len()).min(it.len());
                out.extend_from_slice(&it[..take]);
            }
            out
        })
        .collect()
}

/// The five FLASH variables the paper's evaluation tables use
/// (`dens, pres, temp, ener, eint`). The velocity components cross zero
/// on the blast problems, which makes *relative* change coding blow up
/// at the crossings — a genuine limitation of ratio-based coding that
/// EXPERIMENTS.md discusses; the paper's tables avoid those variables
/// too.
pub fn flash_figure_vars() -> [FlashVar; 5] {
    [FlashVar::Dens, FlashVar::Pres, FlashVar::Temp, FlashVar::Ener, FlashVar::Eint]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flash_sequences_have_requested_shape() {
        let cfg = FlashConfig { blocks: 2, warmup_steps: 2, steps_per_checkpoint: 1, ..Default::default() };
        let seqs = flash_sequences(cfg, 3);
        assert_eq!(seqs.len(), 10);
        for (v, seq) in &seqs {
            assert_eq!(seq.len(), 3, "{v}");
            for it in seq {
                assert_eq!(it.len(), 2 * 2 * 16 * 16, "{v}");
            }
        }
    }

    #[test]
    fn consecutive_checkpoints_differ() {
        let cfg = FlashConfig { blocks: 2, warmup_steps: 5, steps_per_checkpoint: 2, ..Default::default() };
        let seq = flash_sequence(cfg, FlashVar::Dens, 2);
        assert_ne!(seq[0], seq[1]);
    }

    #[test]
    fn tile_to_repeats_each_iteration() {
        let seq: Sequence = vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]];
        let tiled = tile_to(&seq, 7);
        assert_eq!(tiled.len(), 2);
        assert_eq!(tiled[0], vec![1.0, 2.0, 3.0, 1.0, 2.0, 3.0, 1.0]);
        assert_eq!(tiled[1], vec![4.0, 5.0, 6.0, 4.0, 5.0, 6.0, 4.0]);
        // Shrinking and empty inputs are fine too.
        assert_eq!(tile_to(&seq, 2)[0], vec![1.0, 2.0]);
        assert!(tile_to(&vec![Vec::new()], 5)[0].is_empty());
    }

    #[test]
    fn climate_sequence_is_deterministic() {
        let a = climate_sequence(ClimateVar::Rlus, 3);
        let b = climate_sequence(ClimateVar::Rlus, 3);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert_eq!(a[0].len(), 12960);
    }
}
