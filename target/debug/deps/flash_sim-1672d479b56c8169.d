/root/repo/target/debug/deps/flash_sim-1672d479b56c8169.d: crates/flash-sim/src/lib.rs crates/flash-sim/src/block.rs crates/flash-sim/src/dim3/mod.rs crates/flash-sim/src/dim3/block3.rs crates/flash-sim/src/dim3/euler3.rs crates/flash-sim/src/dim3/mesh3.rs crates/flash-sim/src/dim3/sim3.rs crates/flash-sim/src/eos.rs crates/flash-sim/src/euler.rs crates/flash-sim/src/mesh.rs crates/flash-sim/src/problems.rs crates/flash-sim/src/sim.rs crates/flash-sim/src/vars.rs Cargo.toml

/root/repo/target/debug/deps/libflash_sim-1672d479b56c8169.rmeta: crates/flash-sim/src/lib.rs crates/flash-sim/src/block.rs crates/flash-sim/src/dim3/mod.rs crates/flash-sim/src/dim3/block3.rs crates/flash-sim/src/dim3/euler3.rs crates/flash-sim/src/dim3/mesh3.rs crates/flash-sim/src/dim3/sim3.rs crates/flash-sim/src/eos.rs crates/flash-sim/src/euler.rs crates/flash-sim/src/mesh.rs crates/flash-sim/src/problems.rs crates/flash-sim/src/sim.rs crates/flash-sim/src/vars.rs Cargo.toml

crates/flash-sim/src/lib.rs:
crates/flash-sim/src/block.rs:
crates/flash-sim/src/dim3/mod.rs:
crates/flash-sim/src/dim3/block3.rs:
crates/flash-sim/src/dim3/euler3.rs:
crates/flash-sim/src/dim3/mesh3.rs:
crates/flash-sim/src/dim3/sim3.rs:
crates/flash-sim/src/eos.rs:
crates/flash-sim/src/euler.rs:
crates/flash-sim/src/mesh.rs:
crates/flash-sim/src/problems.rs:
crates/flash-sim/src/sim.rs:
crates/flash-sim/src/vars.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
