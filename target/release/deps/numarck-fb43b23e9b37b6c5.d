/root/repo/target/release/deps/numarck-fb43b23e9b37b6c5.d: crates/numarck/src/lib.rs crates/numarck/src/anomaly.rs crates/numarck/src/autotune.rs crates/numarck/src/bitstream.rs crates/numarck/src/config.rs crates/numarck/src/decode.rs crates/numarck/src/drift.rs crates/numarck/src/encode.rs crates/numarck/src/error.rs crates/numarck/src/fpc.rs crates/numarck/src/group.rs crates/numarck/src/huffman.rs crates/numarck/src/metrics.rs crates/numarck/src/obs.rs crates/numarck/src/pipeline.rs crates/numarck/src/ratio.rs crates/numarck/src/serialize.rs crates/numarck/src/strategy/mod.rs crates/numarck/src/strategy/clustering.rs crates/numarck/src/strategy/equal_width.rs crates/numarck/src/strategy/log_scale.rs crates/numarck/src/table.rs

/root/repo/target/release/deps/libnumarck-fb43b23e9b37b6c5.rlib: crates/numarck/src/lib.rs crates/numarck/src/anomaly.rs crates/numarck/src/autotune.rs crates/numarck/src/bitstream.rs crates/numarck/src/config.rs crates/numarck/src/decode.rs crates/numarck/src/drift.rs crates/numarck/src/encode.rs crates/numarck/src/error.rs crates/numarck/src/fpc.rs crates/numarck/src/group.rs crates/numarck/src/huffman.rs crates/numarck/src/metrics.rs crates/numarck/src/obs.rs crates/numarck/src/pipeline.rs crates/numarck/src/ratio.rs crates/numarck/src/serialize.rs crates/numarck/src/strategy/mod.rs crates/numarck/src/strategy/clustering.rs crates/numarck/src/strategy/equal_width.rs crates/numarck/src/strategy/log_scale.rs crates/numarck/src/table.rs

/root/repo/target/release/deps/libnumarck-fb43b23e9b37b6c5.rmeta: crates/numarck/src/lib.rs crates/numarck/src/anomaly.rs crates/numarck/src/autotune.rs crates/numarck/src/bitstream.rs crates/numarck/src/config.rs crates/numarck/src/decode.rs crates/numarck/src/drift.rs crates/numarck/src/encode.rs crates/numarck/src/error.rs crates/numarck/src/fpc.rs crates/numarck/src/group.rs crates/numarck/src/huffman.rs crates/numarck/src/metrics.rs crates/numarck/src/obs.rs crates/numarck/src/pipeline.rs crates/numarck/src/ratio.rs crates/numarck/src/serialize.rs crates/numarck/src/strategy/mod.rs crates/numarck/src/strategy/clustering.rs crates/numarck/src/strategy/equal_width.rs crates/numarck/src/strategy/log_scale.rs crates/numarck/src/table.rs

crates/numarck/src/lib.rs:
crates/numarck/src/anomaly.rs:
crates/numarck/src/autotune.rs:
crates/numarck/src/bitstream.rs:
crates/numarck/src/config.rs:
crates/numarck/src/decode.rs:
crates/numarck/src/drift.rs:
crates/numarck/src/encode.rs:
crates/numarck/src/error.rs:
crates/numarck/src/fpc.rs:
crates/numarck/src/group.rs:
crates/numarck/src/huffman.rs:
crates/numarck/src/metrics.rs:
crates/numarck/src/obs.rs:
crates/numarck/src/pipeline.rs:
crates/numarck/src/ratio.rs:
crates/numarck/src/serialize.rs:
crates/numarck/src/strategy/mod.rs:
crates/numarck/src/strategy/clustering.rs:
crates/numarck/src/strategy/equal_width.rs:
crates/numarck/src/strategy/log_scale.rs:
crates/numarck/src/table.rs:
