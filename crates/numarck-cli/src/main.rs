//! Binary entry point; all logic lives in the library for testability.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match numarck_cli::run(&args) {
        Ok(report) => println!("{report}"),
        Err(err) => {
            eprintln!("{err}");
            std::process::exit(err.code);
        }
    }
}
