/root/repo/target/debug/deps/numarck_bench-a30d7ec1464420be.d: crates/numarck-bench/src/lib.rs crates/numarck-bench/src/data.rs crates/numarck-bench/src/report.rs crates/numarck-bench/src/run.rs

/root/repo/target/debug/deps/libnumarck_bench-a30d7ec1464420be.rlib: crates/numarck-bench/src/lib.rs crates/numarck-bench/src/data.rs crates/numarck-bench/src/report.rs crates/numarck-bench/src/run.rs

/root/repo/target/debug/deps/libnumarck_bench-a30d7ec1464420be.rmeta: crates/numarck-bench/src/lib.rs crates/numarck-bench/src/data.rs crates/numarck-bench/src/report.rs crates/numarck-bench/src/run.rs

crates/numarck-bench/src/lib.rs:
crates/numarck-bench/src/data.rs:
crates/numarck-bench/src/report.rs:
crates/numarck-bench/src/run.rs:
