//! Cross-crate checks of the paper's headline claims on the climate
//! substrate: strategy ordering, error bounds, and order-of-magnitude
//! reduction.

use climate_sim::{ClimateModel, ClimateVar, Grid};
use numarck::{decode, serialize, Compressor, Config, Strategy};

fn sequence(var: ClimateVar, iters: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut model = ClimateModel::with_grid(var, Grid::new(96, 60), seed);
    let mut out = vec![model.current().to_vec()];
    for _ in 1..iters {
        out.push(model.step().to_vec());
    }
    out
}

fn mean_gamma(seq: &[Vec<f64>], strategy: Strategy, bits: u8, tol: f64) -> f64 {
    let compressor = Compressor::new(Config::new(bits, tol, strategy).expect("valid"));
    let mut total = 0.0;
    for w in seq.windows(2) {
        let (_, stats) = compressor.compress(&w[0], &w[1]).expect("finite");
        total += stats.incompressible_ratio;
    }
    total / (seq.len() - 1) as f64
}

#[test]
fn clustering_dominates_on_the_hard_variable() {
    // Paper §III-C: clustering best, log-scale second, equal-width worst
    // on irregular distributions. abs550aer is the designated hard case.
    let seq = sequence(ClimateVar::Abs550aer, 10, 1);
    let ew = mean_gamma(&seq, Strategy::EqualWidth, 8, 0.001);
    let ls = mean_gamma(&seq, Strategy::LogScale, 8, 0.001);
    let cl = mean_gamma(&seq, Strategy::Clustering, 8, 0.001);
    assert!(cl < ls, "clustering {cl} should beat log-scale {ls}");
    assert!(ls < ew, "log-scale {ls} should beat equal-width {ew}");
}

#[test]
fn error_bound_holds_for_every_variable_and_strategy() {
    for var in ClimateVar::all() {
        let seq = sequence(var, 4, 2);
        for strategy in Strategy::all() {
            let compressor =
                Compressor::new(Config::new(8, 0.002, strategy).expect("valid"));
            for w in seq.windows(2) {
                let (_, stats) = compressor.compress(&w[0], &w[1]).expect("finite");
                assert!(
                    stats.max_error_rate <= 0.002 + 1e-12,
                    "{var}/{strategy}: {}",
                    stats.max_error_rate
                );
                assert!(stats.mean_error_rate <= stats.max_error_rate + 1e-18);
            }
        }
    }
}

#[test]
fn order_of_magnitude_reduction_on_easy_data() {
    // The abstract's claim: "an order of magnitude data reduction" —
    // on the easy variable at B = 8 the delta stream must be under ~16%
    // of raw size on disk (Eq. 3 says 8x before bitmap/table overhead;
    // the fixed table overhead needs the full-size grid to amortise).
    let seq = {
        let mut model = ClimateModel::with_grid(ClimateVar::Rlus, Grid::cmip5(), 3);
        let mut out = vec![model.current().to_vec()];
        for _ in 1..10 {
            out.push(model.step().to_vec());
        }
        out
    };
    let compressor =
        Compressor::new(Config::new(8, 0.001, Strategy::Clustering).expect("valid"));
    let mut compressed_bytes = 0usize;
    let mut raw_bytes = 0usize;
    for w in seq.windows(2) {
        let (block, _) = compressor.compress(&w[0], &w[1]).expect("finite");
        compressed_bytes += serialize::serialized_len(&block);
        raw_bytes += w[1].len() * 8;
    }
    let fraction = compressed_bytes as f64 / raw_bytes as f64;
    assert!(fraction < 0.165, "delta stream is {:.1}% of raw", fraction * 100.0);
}

#[test]
fn wire_roundtrip_preserves_reconstruction() {
    let seq = sequence(ClimateVar::Mc, 3, 4);
    let compressor =
        Compressor::new(Config::new(9, 0.005, Strategy::Clustering).expect("valid"));
    let (block, _) = compressor.compress(&seq[0], &seq[1]).expect("finite");
    let direct = decode::reconstruct(&seq[0], &block).expect("valid");
    let wire = serialize::from_bytes(&serialize::to_bytes(&block)).expect("round trip");
    let via_wire = decode::reconstruct(&seq[0], &wire).expect("valid");
    assert_eq!(direct, via_wire);
}

#[test]
fn higher_precision_never_hurts_compressibility() {
    // More index bits = more representatives = fewer escapes. γ must be
    // non-increasing in B (Fig. 6's mechanism).
    let seq = sequence(ClimateVar::Rlds, 6, 5);
    let mut prev_gamma = f64::INFINITY;
    for bits in [6u8, 8, 10, 12] {
        let g = mean_gamma(&seq, Strategy::Clustering, bits, 0.001);
        assert!(
            g <= prev_gamma + 1e-9,
            "gamma increased from {prev_gamma} to {g} at B={bits}"
        );
        prev_gamma = g;
    }
}

#[test]
fn larger_tolerance_never_hurts_compressibility() {
    // Fig. 7's mechanism: γ non-increasing in E.
    let seq = sequence(ClimateVar::Abs550aer, 6, 6);
    let mut prev_gamma = f64::INFINITY;
    for tol in [0.001, 0.002, 0.003, 0.005] {
        let g = mean_gamma(&seq, Strategy::Clustering, 8, tol);
        assert!(
            g <= prev_gamma + 0.01,
            "gamma rose from {prev_gamma} to {g} at E={tol}"
        );
        prev_gamma = g;
    }
}
