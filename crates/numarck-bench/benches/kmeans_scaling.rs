//! Parallel K-means scaling (the paper's clustering step) and the
//! sorted-centre assignment ablation.
//!
//! Two questions: how the Lloyd iteration scales with worker threads,
//! and how much the O(log k) sorted-midpoint assignment buys over the
//! naive O(k) nearest-centre scan at the paper's k = 255.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use numarck_kmeans::lloyd1d::SortedCenters;
use numarck_kmeans::{KMeans1D, KMeansOptions};
use numarck_par::pool::build_pool;
use numarck_par::rng::Xoshiro256PlusPlus;

fn change_ratio_like(n: usize) -> Vec<f64> {
    // Mixture resembling a real change-ratio stream: tight core + tails.
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
    (0..n)
        .map(|_| {
            if rng.next_f64() < 0.9 {
                rng.normal_with(0.0, 0.002)
            } else {
                rng.normal_with(0.0, 0.05)
            }
        })
        .collect()
}

fn bench_thread_scaling(c: &mut Criterion) {
    let n = 1 << 20;
    let data = change_ratio_like(n);
    let mut group = c.benchmark_group("kmeans_threads");
    group.throughput(Throughput::Elements(n as u64));
    group.sample_size(10);
    let max_threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4);
    let mut threads = vec![1usize, 2, 4];
    if max_threads >= 8 {
        threads.push(8);
    }
    for t in threads {
        let pool = build_pool(t);
        group.bench_with_input(BenchmarkId::from_parameter(t), &pool, |b, pool| {
            b.iter(|| {
                pool.install(|| {
                    KMeans1D::new(255)
                        .with_options(KMeansOptions { max_iterations: 5, ..Default::default() })
                        .fit(&data)
                })
            });
        });
    }
    group.finish();
}

fn bench_assignment(c: &mut Criterion) {
    let data = change_ratio_like(1 << 18);
    let centers: Vec<f64> = (0..255).map(|i| -0.1 + 0.2 * i as f64 / 254.0).collect();
    let sorted = SortedCenters::new(centers.clone());
    let mut group = c.benchmark_group("assignment");
    group.throughput(Throughput::Elements(data.len() as u64));
    group.sample_size(10);
    group.bench_function("sorted_binary_search", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for &x in &data {
                acc = acc.wrapping_add(sorted.nearest(x));
            }
            acc
        });
    });
    group.bench_function("naive_linear_scan", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for &x in &data {
                let mut best = 0usize;
                let mut bd = f64::INFINITY;
                for (i, &c) in centers.iter().enumerate() {
                    let d = (x - c).abs();
                    if d < bd {
                        bd = d;
                        best = i;
                    }
                }
                acc = acc.wrapping_add(best);
            }
            acc
        });
    });
    group.finish();
}

criterion_group!(benches, bench_thread_scaling, bench_assignment);
criterion_main!(benches);
