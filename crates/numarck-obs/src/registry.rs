//! Named-instrument registry.
//!
//! A [`Registry`] maps metric names to instruments with get-or-create
//! semantics. Lookup takes a lock; callers are expected to look up once
//! and cache the returned `Arc` (struct field, `OnceLock`), after which
//! the record path never touches the registry again.
//!
//! There is one process-wide [`Registry::global`] for library code
//! (encoder phases, checkpoint store), and components that can be
//! instantiated more than once per process (each `numarck-serve`
//! server, notably the in-process test harness that runs several
//! servers at once) own a private `Registry` so their counters do not
//! mix.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::instrument::{Counter, Gauge, Histogram};
use crate::ring::EventRing;
use crate::snapshot::Snapshot;

/// Default capacity for [`Registry::events`].
const DEFAULT_EVENT_CAPACITY: usize = 128;

#[derive(Debug, Default)]
struct Maps {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// A named-instrument registry. Cheap to clone conceptually — share it
/// via `Arc<Registry>` when a component hands instruments to worker
/// threads.
#[derive(Debug)]
pub struct Registry {
    maps: Mutex<Maps>,
    events: EventRing,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// An empty registry with the default event-ring capacity.
    pub fn new() -> Self {
        Self::with_event_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// An empty registry whose event ring holds `capacity` events.
    pub fn with_event_capacity(capacity: usize) -> Self {
        Self { maps: Mutex::new(Maps::default()), events: EventRing::new(capacity) }
    }

    /// The process-wide registry used by library code (encoder phases,
    /// checkpoint store). Created on first use.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Maps> {
        match self.maps.lock() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }

    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut maps = self.lock();
        if let Some(c) = maps.counters.get(name) {
            return c.clone();
        }
        let c = Arc::new(Counter::new());
        maps.counters.insert(name.to_owned(), c.clone());
        c
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut maps = self.lock();
        if let Some(g) = maps.gauges.get(name) {
            return g.clone();
        }
        let g = Arc::new(Gauge::new());
        maps.gauges.insert(name.to_owned(), g.clone());
        g
    }

    /// Get or create the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut maps = self.lock();
        if let Some(h) = maps.histograms.get(name) {
            return h.clone();
        }
        let h = Arc::new(Histogram::new());
        maps.histograms.insert(name.to_owned(), h.clone());
        h
    }

    /// The registry's event ring.
    pub fn events(&self) -> &EventRing {
        &self.events
    }

    /// Freeze a point-in-time view of every instrument plus the event
    /// ring. Individual reads are relaxed (a snapshot taken mid-record
    /// may be off by in-flight increments), which is fine for
    /// exposition.
    pub fn snapshot(&self) -> Snapshot {
        let maps = self.lock();
        Snapshot::capture(
            maps.counters.iter().map(|(k, v)| (k.as_str(), v.as_ref())),
            maps.gauges.iter().map(|(k, v)| (k.as_str(), v.as_ref())),
            maps.histograms.iter().map(|(k, v)| (k.as_str(), v.as_ref())),
            &self.events,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_same_instrument() {
        let r = Registry::new();
        let a = r.counter("x_total");
        let b = r.counter("x_total");
        a.inc();
        b.add(2);
        assert_eq!(r.counter("x_total").get(), 3);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn instrument_kinds_have_separate_namespaces() {
        let r = Registry::new();
        r.counter("n").inc();
        r.gauge("n").set(7);
        r.histogram("n").record(9);
        assert_eq!(r.counter("n").get(), 1);
        assert_eq!(r.gauge("n").get(), 7);
        assert_eq!(r.histogram("n").count(), 1);
    }

    #[test]
    fn global_is_a_singleton() {
        let a = Registry::global() as *const Registry;
        let b = Registry::global() as *const Registry;
        assert_eq!(a, b);
    }

    #[test]
    fn separate_registries_do_not_mix() {
        let r1 = Registry::new();
        let r2 = Registry::new();
        r1.counter("c_total").add(5);
        assert_eq!(r2.counter("c_total").get(), 0);
    }

    #[test]
    fn snapshot_reflects_current_values() {
        let r = Registry::new();
        r.counter("a_total").add(3);
        r.gauge("depth").set(-1);
        r.histogram("lat_ns").record(100);
        r.events().push(crate::Level::Warn, "w");
        let snap = r.snapshot();
        assert_eq!(snap.counters, vec![("a_total".to_owned(), 3)]);
        assert_eq!(snap.gauges, vec![("depth".to_owned(), -1)]);
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].0, "lat_ns");
        assert_eq!(snap.histograms[0].1.count, 1);
        assert_eq!(snap.events.len(), 1);
    }
}
