//! Bit-packed index stream pack/unpack throughput at the paper's index
//! widths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use numarck::bitstream::{read_at, BitReader, BitWriter};

fn bench_pack(c: &mut Criterion) {
    let n = 1 << 20;
    let mut group = c.benchmark_group("bitstream_pack");
    group.throughput(Throughput::Elements(n as u64));
    group.sample_size(10);
    for bits in [8u8, 9, 10, 16] {
        let mask = (1u32 << bits) - 1;
        let values: Vec<u32> = (0..n as u32).map(|i| i.wrapping_mul(2654435761) & mask).collect();
        group.bench_with_input(BenchmarkId::from_parameter(bits), &values, |b, values| {
            b.iter(|| {
                let mut w = BitWriter::with_capacity(values.len(), bits);
                for &v in values {
                    w.push(v, bits);
                }
                w
            });
        });
    }
    group.finish();
}

fn bench_unpack(c: &mut Criterion) {
    let n = 1 << 20;
    let mut group = c.benchmark_group("bitstream_unpack");
    group.throughput(Throughput::Elements(n as u64));
    group.sample_size(10);
    for bits in [8u8, 9] {
        let mask = (1u32 << bits) - 1;
        let mut w = BitWriter::with_capacity(n, bits);
        for i in 0..n as u32 {
            w.push(i.wrapping_mul(2654435761) & mask, bits);
        }
        let len_bits = w.len_bits();
        let words = w.into_words();
        group.bench_with_input(
            BenchmarkId::new("sequential", bits),
            &words,
            |b, words| {
                b.iter(|| {
                    let mut r = BitReader::new(words, len_bits);
                    let mut acc = 0u64;
                    while let Some(v) = r.read(bits) {
                        acc = acc.wrapping_add(v as u64);
                    }
                    acc
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("random_access", bits),
            &words,
            |b, words| {
                b.iter(|| {
                    let mut acc = 0u64;
                    for i in 0..n {
                        acc = acc.wrapping_add(read_at(words, bits, i) as u64);
                    }
                    acc
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pack, bench_unpack);
criterion_main!(benches);
