/root/repo/target/debug/deps/numarck_serve-2c010d961aecc21b.d: crates/numarck-serve/src/lib.rs crates/numarck-serve/src/client.rs crates/numarck-serve/src/journal.rs crates/numarck-serve/src/recovery.rs crates/numarck-serve/src/server.rs crates/numarck-serve/src/wire.rs

/root/repo/target/debug/deps/libnumarck_serve-2c010d961aecc21b.rlib: crates/numarck-serve/src/lib.rs crates/numarck-serve/src/client.rs crates/numarck-serve/src/journal.rs crates/numarck-serve/src/recovery.rs crates/numarck-serve/src/server.rs crates/numarck-serve/src/wire.rs

/root/repo/target/debug/deps/libnumarck_serve-2c010d961aecc21b.rmeta: crates/numarck-serve/src/lib.rs crates/numarck-serve/src/client.rs crates/numarck-serve/src/journal.rs crates/numarck-serve/src/recovery.rs crates/numarck-serve/src/server.rs crates/numarck-serve/src/wire.rs

crates/numarck-serve/src/lib.rs:
crates/numarck-serve/src/client.rs:
crates/numarck-serve/src/journal.rs:
crates/numarck-serve/src/recovery.rs:
crates/numarck-serve/src/server.rs:
crates/numarck-serve/src/wire.rs:
