//! Kernel 2: bin quantization — sorted-table lower bound plus the
//! nearest-of-two pick, and the encoder's fused classify+quantize pass.
//!
//! Two call sites share the lower-bound machinery:
//!
//! * the encoder's per-point hot path (`BinTable::quantize` in the core
//!   crate): lower bound over the representative values themselves, then
//!   a branchless pick between the two enclosing neighbours with midpoint
//!   ties resolving to the *lower* index, then an escape decision against
//!   the tolerance. [`classify_quantize`] fuses the whole per-point
//!   decision — small/large/undefined classification included — into one
//!   kernel over a dense ratio array.
//! * K-means assignment (`SortedCenters::nearest`): lower bound over the
//!   precomputed midpoints is already the answer. [`lower_bound_batch`]
//!   serves that path.
//!
//! Every level replicates `slice::partition_point(|&c| c < x)` exactly —
//! including its `x = NaN` behaviour (all comparisons false ⇒ 0) — so the
//! outputs are bit-identical to the scalar oracle by construction.

use crate::{Level, ESCAPE};

/// `sorted.partition_point(|&c| c < x)` — the scalar oracle for the
/// lower-bound kernels.
#[inline]
pub fn lower_bound(sorted: &[f64], x: f64) -> usize {
    sorted.partition_point(|&c| c < x)
}

/// Branchless lower bound, identical to [`lower_bound`] for sorted input.
///
/// The classic two-pointer halving loop: no mispredictable branch on the
/// probe result, just an index add masked by the comparison.
#[inline(always)]
fn lower_bound_branchless(sorted: &[f64], x: f64) -> usize {
    if sorted.is_empty() {
        return 0;
    }
    let mut base = 0usize;
    let mut size = sorted.len();
    while size > 1 {
        let half = size / 2;
        base += usize::from(sorted[base + half] < x) * half;
        size -= half;
    }
    base + usize::from(sorted[base] < x)
}

/// Dispatched batch lower bound: `out[j] = partition_point(sorted, < xs[j])`.
///
/// # Panics
/// Panics if `xs` and `out` differ in length or `sorted.len()` exceeds
/// `u32::MAX`.
#[inline]
pub fn lower_bound_batch(sorted: &[f64], xs: &[f64], out: &mut [u32]) {
    lower_bound_batch_with(crate::active_level(), sorted, xs, out)
}

/// [`lower_bound_batch`] at an explicit level (oracle sweeps).
pub fn lower_bound_batch_with(level: Level, sorted: &[f64], xs: &[f64], out: &mut [u32]) {
    assert_eq!(xs.len(), out.len(), "input and output must align");
    assert!(u32::try_from(sorted.len()).is_ok(), "table too large for u32 indices");
    match level {
        Level::Scalar => lower_bound_batch_scalar(sorted, xs, out),
        Level::Unrolled => lower_bound_batch_unrolled(sorted, xs, out),
        #[cfg(target_arch = "x86_64")]
        Level::Avx2 => unsafe { lower_bound_batch_avx2(sorted, xs, out) },
        #[cfg(not(target_arch = "x86_64"))]
        Level::Avx2 => lower_bound_batch_unrolled(sorted, xs, out),
    }
}

/// Scalar reference: one `partition_point` per query.
pub fn lower_bound_batch_scalar(sorted: &[f64], xs: &[f64], out: &mut [u32]) {
    for (&x, o) in xs.iter().zip(out.iter_mut()) {
        *o = lower_bound(sorted, x) as u32;
    }
}

/// Portable chunks-of-8 variant: eight independent branchless searches
/// per iteration keep the memory level parallelism up.
pub fn lower_bound_batch_unrolled(sorted: &[f64], xs: &[f64], out: &mut [u32]) {
    let mut x8 = xs.chunks_exact(8);
    let mut o8 = out.chunks_exact_mut(8);
    for (x, o) in (&mut x8).zip(&mut o8) {
        for k in 0..8 {
            o[k] = lower_bound_branchless(sorted, x[k]) as u32;
        }
    }
    for (&x, o) in x8.remainder().iter().zip(o8.into_remainder()) {
        *o = lower_bound_branchless(sorted, x) as u32;
    }
}

/// AVX2 variant: four searches advance in lockstep, one gathered probe
/// per halving step.
///
/// # Safety
/// Requires the `avx2` CPU feature.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
pub unsafe fn lower_bound_batch_avx2(sorted: &[f64], xs: &[f64], out: &mut [u32]) {
    use std::arch::x86_64::*;
    if sorted.is_empty() {
        out.fill(0);
        return;
    }
    let n = xs.len();
    let lanes = n - n % 4;
    let one = _mm256_set1_epi64x(1);
    let mut i = 0;
    while i < lanes {
        let x = _mm256_loadu_pd(xs.as_ptr().add(i));
        let pp = search4(sorted, x, one);
        let mut tmp = [0i64; 4];
        _mm256_storeu_si256(tmp.as_mut_ptr().cast(), pp);
        for (k, &v) in tmp.iter().enumerate() {
            out[i + k] = v as u32;
        }
        i += 4;
    }
    for j in lanes..n {
        out[j] = lower_bound_branchless(sorted, xs[j]) as u32;
    }
}

/// Four simultaneous branchless lower bounds over `sorted` (non-empty):
/// each halving step gathers one probe per lane and conditionally
/// advances the lane's base. Probe indices stay within `0..len` by the
/// usual two-pointer invariant, so the gathers are always in bounds,
/// even for `±inf`/`NaN` queries.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn search4(
    sorted: &[f64],
    x: std::arch::x86_64::__m256d,
    one: std::arch::x86_64::__m256i,
) -> std::arch::x86_64::__m256i {
    use std::arch::x86_64::*;
    let mut base = _mm256_setzero_si256();
    let mut size = sorted.len();
    while size > 1 {
        let half = size / 2;
        let half_v = _mm256_set1_epi64x(half as i64);
        let probe_idx = _mm256_add_epi64(base, half_v);
        let probe = _mm256_i64gather_pd::<8>(sorted.as_ptr(), probe_idx);
        // probe < x, ordered: false for NaN x, matching partition_point.
        let go = _mm256_castpd_si256(_mm256_cmp_pd::<_CMP_LT_OQ>(probe, x));
        base = _mm256_add_epi64(base, _mm256_and_si256(go, half_v));
        size -= half;
    }
    let last = _mm256_i64gather_pd::<8>(sorted.as_ptr(), base);
    let inc = _mm256_and_si256(
        _mm256_castpd_si256(_mm256_cmp_pd::<_CMP_LT_OQ>(last, x)),
        one,
    );
    _mm256_add_epi64(base, inc)
}

/// Per-point result of the fused pass, shared by the scalar paths.
///
/// Mirrors the encoder's decision table exactly:
///
/// | ratio                         | code        | error         |
/// |-------------------------------|-------------|---------------|
/// | non-finite (undefined)        | [`ESCAPE`]  | 0.0 (none)    |
/// | `\|r\| < tol` (small)         | 0           | `\|r\|`       |
/// | quantizes within tol          | `idx + 1`   | `\|rep − r\|` |
/// | misses tol, or empty table    | [`ESCAPE`]  | 0.0 (none)    |
#[inline(always)]
fn classify_point(reps: &[f64], tol: f64, r: f64, pp: usize) -> (u32, f64) {
    if !r.is_finite() {
        return (ESCAPE, 0.0);
    }
    let a = r.abs();
    if a < tol {
        return (0, a);
    }
    if reps.is_empty() {
        return (ESCAPE, 0.0);
    }
    // The nearest-of-two pick from `BinTable::quantize`: midpoint ties
    // resolve to the lower index because the comparison is strict.
    let lo = pp.saturating_sub(1);
    let hi = pp.min(reps.len() - 1);
    let idx = lo + usize::from((reps[hi] - r).abs() < (r - reps[lo]).abs()) * (hi - lo);
    let err = (reps[idx] - r).abs();
    if err <= tol {
        (idx as u32 + 1, err)
    } else {
        (ESCAPE, 0.0)
    }
}

/// Dispatched fused classify+quantize over a dense ratio array.
///
/// For each point: `codes[j]` gets 0 (small change), `idx + 1` (table
/// entry `idx`), or [`ESCAPE`]; `errs[j]` gets the incurred ratio-space
/// error, with exactly 0.0 for escaped points so callers can accumulate
/// unconditionally in point order (adding 0.0 is a Neumaier no-op).
///
/// `reps` must be sorted (it comes from `SortedCenters`).
///
/// # Panics
/// Panics if the slice lengths disagree or `reps` has ≥ `u32::MAX`
/// entries.
#[inline]
pub fn classify_quantize(
    ratios: &[f64],
    reps: &[f64],
    tol: f64,
    codes: &mut [u32],
    errs: &mut [f64],
) {
    classify_quantize_with(crate::active_level(), ratios, reps, tol, codes, errs)
}

/// [`classify_quantize`] at an explicit level (oracle sweeps).
pub fn classify_quantize_with(
    level: Level,
    ratios: &[f64],
    reps: &[f64],
    tol: f64,
    codes: &mut [u32],
    errs: &mut [f64],
) {
    assert_eq!(ratios.len(), codes.len(), "codes must align with ratios");
    assert_eq!(ratios.len(), errs.len(), "errs must align with ratios");
    assert!(u32::try_from(reps.len()).is_ok(), "table too large for u32 codes");
    match level {
        Level::Scalar => classify_quantize_scalar(ratios, reps, tol, codes, errs),
        Level::Unrolled => classify_quantize_unrolled(ratios, reps, tol, codes, errs),
        #[cfg(target_arch = "x86_64")]
        Level::Avx2 => unsafe { classify_quantize_avx2(ratios, reps, tol, codes, errs) },
        #[cfg(not(target_arch = "x86_64"))]
        Level::Avx2 => classify_quantize_unrolled(ratios, reps, tol, codes, errs),
    }
}

/// Scalar reference: `partition_point` per large point (the oracle).
pub fn classify_quantize_scalar(
    ratios: &[f64],
    reps: &[f64],
    tol: f64,
    codes: &mut [u32],
    errs: &mut [f64],
) {
    for ((&r, code), err) in ratios.iter().zip(codes.iter_mut()).zip(errs.iter_mut()) {
        let (c, e) = classify_point(reps, tol, r, lower_bound(reps, r));
        *code = c;
        *err = e;
    }
}

/// Portable chunks-of-8 variant with branchless searches.
pub fn classify_quantize_unrolled(
    ratios: &[f64],
    reps: &[f64],
    tol: f64,
    codes: &mut [u32],
    errs: &mut [f64],
) {
    let mut r8 = ratios.chunks_exact(8);
    let mut c8 = codes.chunks_exact_mut(8);
    let mut e8 = errs.chunks_exact_mut(8);
    for ((r, c), e) in (&mut r8).zip(&mut c8).zip(&mut e8) {
        for k in 0..8 {
            let (code, err) = classify_point(reps, tol, r[k], lower_bound_branchless(reps, r[k]));
            c[k] = code;
            e[k] = err;
        }
    }
    for ((&r, c), e) in
        r8.remainder().iter().zip(c8.into_remainder()).zip(e8.into_remainder())
    {
        let (code, err) = classify_point(reps, tol, r, lower_bound_branchless(reps, r));
        *c = code;
        *e = err;
    }
}

/// AVX2 variant: the full decision table — finiteness, smallness, the
/// four-lane binary search, the nearest-of-two pick and the tolerance
/// check — evaluated branchlessly on 4 points at a time.
///
/// # Safety
/// Requires the `avx2` CPU feature.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
pub unsafe fn classify_quantize_avx2(
    ratios: &[f64],
    reps: &[f64],
    tol: f64,
    codes: &mut [u32],
    errs: &mut [f64],
) {
    use std::arch::x86_64::*;
    if reps.is_empty() {
        // Without a table every large point escapes; no searches to run.
        classify_quantize_scalar(ratios, reps, tol, codes, errs);
        return;
    }
    let n = ratios.len();
    let lanes = n - n % 4;
    let abs_mask = _mm256_castsi256_pd(_mm256_set1_epi64x(0x7FFF_FFFF_FFFF_FFFFu64 as i64));
    let inf = _mm256_set1_pd(f64::INFINITY);
    let tol_v = _mm256_set1_pd(tol);
    let len1 = _mm256_set1_epi64x((reps.len() - 1) as i64);
    let zero64 = _mm256_setzero_si256();
    let escape = _mm256_set1_epi64x(ESCAPE as i64);
    let one = _mm256_set1_epi64x(1);
    let mut i = 0;
    while i < lanes {
        let r = _mm256_loadu_pd(ratios.as_ptr().add(i));
        let r_abs = _mm256_and_pd(r, abs_mask);
        let fin = _mm256_cmp_pd::<_CMP_LT_OQ>(r_abs, inf);
        let small = _mm256_cmp_pd::<_CMP_LT_OQ>(r_abs, tol_v);
        // Search runs for every lane (indices stay in bounds even for
        // inf/NaN queries); non-quantizing lanes are blended away below.
        let pp = search4(reps, r, one);
        // lo = pp.saturating_sub(1): cmpgt yields −1 exactly where pp > 0.
        let lo = _mm256_add_epi64(pp, _mm256_cmpgt_epi64(pp, zero64));
        let hi = _mm256_blendv_epi8(pp, len1, _mm256_cmpgt_epi64(pp, len1));
        let rep_lo = _mm256_i64gather_pd::<8>(reps.as_ptr(), lo);
        let rep_hi = _mm256_i64gather_pd::<8>(reps.as_ptr(), hi);
        let d_hi = _mm256_and_pd(_mm256_sub_pd(rep_hi, r), abs_mask);
        let d_lo = _mm256_and_pd(_mm256_sub_pd(r, rep_lo), abs_mask);
        // Strict < keeps midpoint ties on the lower index.
        let pick_hi = _mm256_cmp_pd::<_CMP_LT_OQ>(d_hi, d_lo);
        let idx = _mm256_blendv_epi8(lo, hi, _mm256_castpd_si256(pick_hi));
        let rep = _mm256_blendv_pd(rep_lo, rep_hi, pick_hi);
        let err_q = _mm256_and_pd(_mm256_sub_pd(rep, r), abs_mask);
        let ok = _mm256_cmp_pd::<_CMP_LE_OQ>(err_q, tol_v);
        let small_m = _mm256_and_pd(fin, small);
        let quant_m = _mm256_andnot_pd(small, _mm256_and_pd(fin, ok));
        // code: ESCAPE, overridden to idx+1 where quantized, then to 0
        // where small.
        let mut code_v = _mm256_blendv_epi8(
            escape,
            _mm256_add_epi64(idx, one),
            _mm256_castpd_si256(quant_m),
        );
        code_v = _mm256_blendv_epi8(code_v, zero64, _mm256_castpd_si256(small_m));
        // err: 0.0, overridden to |rep − r| where quantized, |r| where
        // small.
        let mut err_v = _mm256_and_pd(quant_m, err_q);
        err_v = _mm256_blendv_pd(err_v, r_abs, small_m);
        _mm256_storeu_pd(errs.as_mut_ptr().add(i), err_v);
        let mut tmp = [0i64; 4];
        _mm256_storeu_si256(tmp.as_mut_ptr().cast(), code_v);
        for (k, &v) in tmp.iter().enumerate() {
            codes[i + k] = v as u32;
        }
        i += 4;
    }
    for j in lanes..n {
        let (code, err) = classify_point(reps, tol, ratios[j], lower_bound(reps, ratios[j]));
        codes[j] = code;
        errs[j] = err;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SIZES: [usize; 14] = [0, 1, 3, 4, 7, 8, 9, 31, 63, 64, 65, 100, 1024, 1025];

    fn reps(k: usize) -> Vec<f64> {
        // Sorted, irregular spacing, mixed signs; dyadic values keep
        // midpoints exact.
        (0..k).map(|i| (i as f64) * 0.0625 - (k as f64) * 0.03125 + ((i % 3) as f64) * 0.015625).collect::<Vec<_>>()
            .into_iter()
            .scan(f64::NEG_INFINITY, |prev, x| {
                let v = if x <= *prev { *prev + 0.0078125 } else { x };
                *prev = v;
                Some(v)
            })
            .collect()
    }

    fn queries(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| match i % 17 {
                0 => 0.0,
                1 => f64::INFINITY,
                2 => f64::NEG_INFINITY,
                3 => f64::NAN,
                4 => 1e-12,   // deep small
                5 => 1e6,     // far above the table: escapes
                _ => ((i * 29) % 257) as f64 / 64.0 - 2.0,
            })
            .collect()
    }

    #[test]
    fn branchless_lower_bound_matches_partition_point() {
        for k in [0usize, 1, 2, 3, 5, 8, 13, 100] {
            let table = reps(k);
            for &x in &queries(200) {
                assert_eq!(
                    lower_bound_branchless(&table, x),
                    lower_bound(&table, x),
                    "k={k} x={x}"
                );
            }
        }
    }

    #[test]
    fn lower_bound_batch_levels_match_oracle() {
        for k in [0usize, 1, 2, 7, 255] {
            let table = reps(k);
            for n in SIZES {
                let xs = queries(n);
                let mut oracle = vec![0u32; n];
                lower_bound_batch_scalar(&table, &xs, &mut oracle);
                for level in Level::all_supported() {
                    let mut got = vec![u32::MAX; n];
                    lower_bound_batch_with(level, &table, &xs, &mut got);
                    assert_eq!(got, oracle, "level {} k={k} n={n}", level.name());
                }
            }
        }
    }

    #[test]
    fn classify_levels_match_oracle_across_sizes_and_tables() {
        for k in [0usize, 1, 2, 7, 255] {
            let table = reps(k);
            for n in SIZES {
                let xs = queries(n);
                let mut c0 = vec![0u32; n];
                let mut e0 = vec![0.0f64; n];
                classify_quantize_scalar(&xs, &table, 0.05, &mut c0, &mut e0);
                for level in Level::all_supported() {
                    let mut c = vec![1u32; n];
                    let mut e = vec![f64::NAN; n];
                    classify_quantize_with(level, &xs, &table, 0.05, &mut c, &mut e);
                    assert_eq!(c, c0, "codes: level {} k={k} n={n}", level.name());
                    for j in 0..n {
                        assert_eq!(
                            e[j].to_bits(),
                            e0[j].to_bits(),
                            "errs: level {} k={k} n={n} j={j}",
                            level.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn midpoint_tie_takes_lower_index_at_every_level() {
        // Dyadic reps make the midpoint exact: 0.5 is equidistant from
        // 0.25 and 0.75 and must map to index 0 (code 1).
        let table = [0.25, 0.75];
        for level in Level::all_supported() {
            let ratios = [0.5, 0.5, 0.5, 0.5, 0.5]; // crosses the lane boundary
            let mut codes = [0u32; 5];
            let mut errs = [0.0f64; 5];
            classify_quantize_with(level, &ratios, &table, 0.3, &mut codes, &mut errs);
            assert_eq!(codes, [1; 5], "level {}", level.name());
        }
    }

    #[test]
    fn decision_table_is_honoured() {
        let table = [-0.5, 0.5];
        let tol = 0.1;
        let ratios = [
            0.0,           // small: |r| < tol
            0.05,          // small
            0.55,          // large, err 0.05 ≤ tol: code 2
            -0.45,         // large, err 0.05 ≤ tol: code 1
            2.0,           // large, err 1.5 > tol: escape
            f64::NAN,      // undefined: escape
            f64::INFINITY, // undefined: escape
        ];
        for level in Level::all_supported() {
            let mut codes = [9u32; 7];
            let mut errs = [9.0f64; 7];
            classify_quantize_with(level, &ratios, &table, tol, &mut codes, &mut errs);
            assert_eq!(codes, [0, 0, 2, 1, ESCAPE, ESCAPE, ESCAPE], "level {}", level.name());
            assert_eq!(errs[0], 0.0);
            assert_eq!(errs[1], 0.05);
            assert!((errs[2] - 0.05).abs() < 1e-15);
            assert_eq!(errs[4], 0.0, "escapes carry no error");
            assert_eq!(errs[5], 0.0);
        }
    }

    #[test]
    fn empty_table_escapes_every_large_point() {
        let ratios = [0.0, 0.5, f64::NAN];
        for level in Level::all_supported() {
            let mut codes = [9u32; 3];
            let mut errs = [9.0f64; 3];
            classify_quantize_with(level, &ratios, &[], 0.1, &mut codes, &mut errs);
            assert_eq!(codes, [0, ESCAPE, ESCAPE], "level {}", level.name());
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn sorted_table(mut v: Vec<f64>) -> Vec<f64> {
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v.dedup();
            v
        }

        proptest! {
            #[test]
            fn classify_matches_oracle(
                raw_table in proptest::collection::vec(-2.0f64..2.0, 0..64),
                ratios in proptest::collection::vec(-3.0f64..3.0, 0..200),
                tol in 1e-4f64..0.5
            ) {
                let table = sorted_table(raw_table);
                let n = ratios.len();
                let mut c0 = vec![0u32; n];
                let mut e0 = vec![0.0f64; n];
                classify_quantize_scalar(&ratios, &table, tol, &mut c0, &mut e0);
                for level in Level::all_supported() {
                    let mut c = vec![0u32; n];
                    let mut e = vec![0.0f64; n];
                    classify_quantize_with(level, &ratios, &table, tol, &mut c, &mut e);
                    prop_assert_eq!(&c, &c0);
                    for j in 0..n {
                        prop_assert_eq!(e[j].to_bits(), e0[j].to_bits());
                    }
                }
            }

            #[test]
            fn lower_bound_matches_oracle(
                raw_table in proptest::collection::vec(-2.0f64..2.0, 0..64),
                xs in proptest::collection::vec(-3.0f64..3.0, 0..200)
            ) {
                let table = sorted_table(raw_table);
                let mut o = vec![0u32; xs.len()];
                lower_bound_batch_scalar(&table, &xs, &mut o);
                for level in Level::all_supported() {
                    let mut g = vec![0u32; xs.len()];
                    lower_bound_batch_with(level, &table, &xs, &mut g);
                    prop_assert_eq!(&g, &o);
                }
            }
        }
    }
}
