/root/repo/target/release/deps/climate_sim-e4603f4e17bd2c75.d: crates/climate-sim/src/lib.rs crates/climate-sim/src/dataset.rs crates/climate-sim/src/field.rs crates/climate-sim/src/grid.rs crates/climate-sim/src/variables.rs

/root/repo/target/release/deps/libclimate_sim-e4603f4e17bd2c75.rlib: crates/climate-sim/src/lib.rs crates/climate-sim/src/dataset.rs crates/climate-sim/src/field.rs crates/climate-sim/src/grid.rs crates/climate-sim/src/variables.rs

/root/repo/target/release/deps/libclimate_sim-e4603f4e17bd2c75.rmeta: crates/climate-sim/src/lib.rs crates/climate-sim/src/dataset.rs crates/climate-sim/src/field.rs crates/climate-sim/src/grid.rs crates/climate-sim/src/variables.rs

crates/climate-sim/src/lib.rs:
crates/climate-sim/src/dataset.rs:
crates/climate-sim/src/field.rs:
crates/climate-sim/src/grid.rs:
crates/climate-sim/src/variables.rs:
