/root/repo/target/debug/deps/table1-b5359df7482a70a8.d: crates/numarck-bench/src/bin/table1.rs

/root/repo/target/debug/deps/libtable1-b5359df7482a70a8.rmeta: crates/numarck-bench/src/bin/table1.rs

crates/numarck-bench/src/bin/table1.rs:
