/root/repo/target/debug/deps/numarck_kmeans-f05110eac34617f8.d: crates/numarck-kmeans/src/lib.rs crates/numarck-kmeans/src/general.rs crates/numarck-kmeans/src/init.rs crates/numarck-kmeans/src/lloyd1d.rs

/root/repo/target/debug/deps/libnumarck_kmeans-f05110eac34617f8.rlib: crates/numarck-kmeans/src/lib.rs crates/numarck-kmeans/src/general.rs crates/numarck-kmeans/src/init.rs crates/numarck-kmeans/src/lloyd1d.rs

/root/repo/target/debug/deps/libnumarck_kmeans-f05110eac34617f8.rmeta: crates/numarck-kmeans/src/lib.rs crates/numarck-kmeans/src/general.rs crates/numarck-kmeans/src/init.rs crates/numarck-kmeans/src/lloyd1d.rs

crates/numarck-kmeans/src/lib.rs:
crates/numarck-kmeans/src/general.rs:
crates/numarck-kmeans/src/init.rs:
crates/numarck-kmeans/src/lloyd1d.rs:
