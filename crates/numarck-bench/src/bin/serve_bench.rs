//! `serve_bench` — load generator for the `numarck-serve` checkpoint
//! service.
//!
//! Spawns a server on an ephemeral port (or targets `--addr`), drives it
//! with N concurrent clients ingesting M iterations each, then hammers
//! the restart path, and emits `BENCH_serve.json` with requests/sec,
//! ingest MB/s, and p50/p99 request latency per stage.
//!
//! Usage:
//!
//! ```text
//! serve_bench [--smoke] [--out-dir DIR] [--clients N] [--iters M]
//!             [--points P] [--addr HOST:PORT]...
//! ```
//!
//! `--addr` may repeat: clients are assigned round-robin across the
//! targets (shards of a cluster, or one router address), and every
//! stage reports one throughput row per node plus the `all` aggregate.
//! `--smoke` shrinks the workload so CI can run the harness end-to-end
//! in seconds; the JSON schema is identical.

use std::fmt::Write as _;
use std::thread;
use std::time::{Duration, Instant};

use numarck::{Config, Strategy};
use numarck_bench::report::{host_meta_json, print_table};
use numarck_checkpoint::VariableSet;
use numarck_serve::{Client, Server, ServerConfig, ServerHandle, StatsReply};

const TIMEOUT: Duration = Duration::from_secs(30);
const BUSY_ATTEMPTS: u32 = 20;
const BUSY_BACKOFF: Duration = Duration::from_millis(20);

/// One measured row: a stage against one target (or the `all`
/// aggregate), wall time plus per-request latencies.
struct StageResult {
    stage: &'static str,
    /// The node this row measured, or `"all"` for the aggregate.
    target: String,
    clients: usize,
    requests: usize,
    /// Raw f64 payload bytes moved (ingested or reconstructed).
    bytes: u64,
    wall_secs: f64,
    /// Per-request latencies, seconds (unsorted).
    latencies: Vec<f64>,
}

impl StageResult {
    fn requests_per_sec(&self) -> f64 {
        self.requests as f64 / self.wall_secs
    }

    fn mb_per_sec(&self) -> f64 {
        self.bytes as f64 / self.wall_secs / 1e6
    }

    fn percentile_ms(&self, p: f64) -> f64 {
        let mut sorted = self.latencies.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        if sorted.is_empty() {
            return 0.0;
        }
        let idx = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
        sorted[idx] * 1e3
    }
}

/// Deterministic per-client iteration data: a smooth multiplicative
/// evolution so deltas compress like real checkpoint traffic.
fn iteration_data(client: usize, points: usize, iters: u64) -> Vec<Vec<f64>> {
    let mut x: Vec<f64> =
        (0..points).map(|j| (1.0 + client as f64 * 0.3) * (1.0 + (j % 17) as f64)).collect();
    let mut out = Vec::with_capacity(iters as usize);
    for it in 0..iters {
        if it > 0 {
            for (j, v) in x.iter_mut().enumerate() {
                *v *= 1.0 + 0.004 * (((j as u64 + 5 * it) % 11) as f64 - 5.0) / 5.0;
            }
        }
        out.push(x.clone());
    }
    out
}

fn main() {
    let mut smoke = false;
    let mut out_dir = ".".to_string();
    let mut clients = 0usize;
    let mut iters = 0u64;
    let mut points = 0usize;
    let mut external: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &str| args.next().unwrap_or_else(|| usage(&format!("{flag} needs a value")));
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out-dir" => out_dir = value("--out-dir"),
            "--clients" => clients = value("--clients").parse().unwrap_or_else(|_| usage("bad --clients")),
            "--iters" => iters = value("--iters").parse().unwrap_or_else(|_| usage("bad --iters")),
            "--points" => points = value("--points").parse().unwrap_or_else(|_| usage("bad --points")),
            "--addr" => external.push(value("--addr")),
            "--help" | "-h" => usage(
                "serve_bench [--smoke] [--out-dir DIR] [--clients N] [--iters M] [--points P] [--addr HOST:PORT]...",
            ),
            other => usage(&format!("unknown argument: {other}")),
        }
    }
    if clients == 0 {
        clients = if smoke { 2 } else { 4 };
    }
    if iters == 0 {
        iters = if smoke { 8 } else { 32 };
    }
    if points == 0 {
        points = if smoke { 2_048 } else { 65_536 };
    }

    let config = Config::new(8, 0.001, Strategy::Clustering).expect("paper-default config");

    // Own server on an ephemeral port unless --addr targets one already
    // running. The in-process server keeps the harness self-contained
    // (and the temp store is removed afterwards).
    let root = std::env::temp_dir().join(format!("numarck-serve-bench-{}", std::process::id()));
    let handle: Option<ServerHandle> = if external.is_empty() {
        let mut server_config = ServerConfig::new(&root, config);
        server_config.workers = clients + 1;
        server_config.queue_depth = 2 * clients.max(8);
        Some(Server::spawn("127.0.0.1:0", server_config).expect("spawn bench server"))
    } else {
        None
    };
    let targets: Vec<String> = if external.is_empty() {
        vec![handle.as_ref().expect("own server").addr().to_string()]
    } else {
        external
    };

    println!(
        "serve_bench: {clients} clients × {iters} iterations × {points} points → {}{}",
        targets.join(" + "),
        if smoke { ", SMOKE" } else { "" }
    );

    let data: Vec<Vec<Vec<f64>>> =
        (0..clients).map(|c| iteration_data(c, points, iters)).collect();

    // Stage 1: concurrent ingest, one session per client.
    let ingest = run_stage("ingest", clients, &data, &targets, move |client, session, seq, lat| {
        let mut bytes = 0u64;
        for (it, values) in seq.iter().enumerate() {
            let mut vars = VariableSet::new();
            vars.insert("x".to_string(), values.clone());
            let t0 = Instant::now();
            client.put_iteration(session, it as u64, &vars).expect("put");
            lat.push(t0.elapsed().as_secs_f64());
            bytes += values.len() as u64 * 8;
        }
        bytes
    });

    // Stage 2: concurrent restarts cycling over every stored iteration.
    let restart = run_stage("restart", clients, &data, &targets, move |client, session, seq, lat| {
        let mut bytes = 0u64;
        for it in 0..seq.len() as u64 {
            let t0 = Instant::now();
            let reply = client.restart(session, it).expect("restart");
            lat.push(t0.elapsed().as_secs_f64());
            assert_eq!(reply.achieved, it, "bench store must be fully restartable");
            bytes += reply.vars.values().map(|v| v.len() as u64 * 8).sum::<u64>();
        }
        bytes
    });

    let results: Vec<StageResult> = ingest.into_iter().chain(restart).collect();
    let mut rows = vec![vec![
        "stage".to_string(),
        "target".to_string(),
        "clients".to_string(),
        "requests".to_string(),
        "req/s".to_string(),
        "MB/s".to_string(),
        "p50 ms".to_string(),
        "p99 ms".to_string(),
    ]];
    for r in &results {
        rows.push(vec![
            r.stage.to_string(),
            r.target.clone(),
            r.clients.to_string(),
            r.requests.to_string(),
            format!("{:.1}", r.requests_per_sec()),
            format!("{:.2}", r.mb_per_sec()),
            format!("{:.2}", r.percentile_ms(50.0)),
            format!("{:.2}", r.percentile_ms(99.0)),
        ]);
    }
    print_table(&rows);

    // Server-side view of the same run: the extended stats reply carries
    // the service's own request-latency histograms and queue depth, so
    // the JSON records both client-observed and server-observed numbers.
    // With multiple targets the first node's reply is recorded (a router
    // target aggregates the whole cluster in its single reply).
    let server_stats = Client::connect(&targets[0] as &str, TIMEOUT)
        .and_then(|mut c| c.stats())
        .expect("stats after load");

    if let Some(handle) = handle {
        handle.shutdown();
        let _ = std::fs::remove_dir_all(&root);
    }

    let path = format!("{out_dir}/BENCH_serve.json");
    std::fs::create_dir_all(&out_dir).expect("create output directory");
    std::fs::write(&path, render_json(&results, smoke, points, &server_stats))
        .expect("write benchmark JSON");
    println!("wrote {path}");
}

/// Run one stage: `clients` threads, each with its own connection and
/// session, assigned round-robin across `targets`, all started
/// together; wall time is the slowest thread. Returns the `all`
/// aggregate row first, then one row per node when there are several
/// (per-node rows share the stage wall clock, since the nodes ran
/// concurrently).
fn run_stage(
    stage: &'static str,
    clients: usize,
    data: &[Vec<Vec<f64>>],
    targets: &[String],
    work: impl Fn(&mut Client, u64, &[Vec<f64>], &mut Vec<f64>) -> u64 + Send + Copy + 'static,
) -> Vec<StageResult> {
    let t0 = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let seq = data[c].clone();
            let addr = targets[c % targets.len()].clone();
            thread::spawn(move || {
                let (mut client, session) = Client::connect_session(
                    &addr as &str,
                    TIMEOUT,
                    &format!("bench-{c}"),
                    BUSY_ATTEMPTS,
                    BUSY_BACKOFF,
                )
                .expect("connect");
                let mut latencies = Vec::with_capacity(seq.len());
                let bytes = work(&mut client, session, &seq, &mut latencies);
                (bytes, latencies)
            })
        })
        .collect();
    // Per-target accumulation, in target order.
    let mut node_bytes = vec![0u64; targets.len()];
    let mut node_latencies: Vec<Vec<f64>> = vec![Vec::new(); targets.len()];
    let mut node_clients = vec![0usize; targets.len()];
    for (c, h) in handles.into_iter().enumerate() {
        let (b, l) = h.join().expect("bench client thread");
        let node = c % targets.len();
        node_bytes[node] += b;
        node_latencies[node].extend(l);
        node_clients[node] += 1;
    }
    let wall_secs = t0.elapsed().as_secs_f64();
    let row = |target: String, clients: usize, bytes: u64, latencies: Vec<f64>| StageResult {
        stage,
        target,
        clients,
        requests: latencies.len(),
        bytes,
        wall_secs,
        latencies,
    };
    let mut out = vec![row(
        "all".to_string(),
        clients,
        node_bytes.iter().sum(),
        node_latencies.iter().flatten().copied().collect(),
    )];
    if targets.len() > 1 {
        for (i, addr) in targets.iter().enumerate() {
            out.push(row(
                addr.clone(),
                node_clients[i],
                node_bytes[i],
                std::mem::take(&mut node_latencies[i]),
            ));
        }
    }
    out
}

fn usage(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2)
}

/// Hand-rolled JSON, same conventions as `perf`: flat and diffable,
/// stamped with host metadata.
fn render_json(
    results: &[StageResult],
    smoke: bool,
    points: usize,
    server_stats: &StatsReply,
) -> String {
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"harness\": \"numarck-bench serve_bench\",");
    let _ = writeln!(s, "  \"smoke\": {smoke},");
    let _ = writeln!(s, "  \"points_per_iteration\": {points},");
    let _ = writeln!(s, "  \"host\": {},", host_meta_json());
    let _ = writeln!(s, "  \"server_metrics\": {},", server_metrics_json(server_stats));
    let _ = writeln!(s, "  \"results\": [");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "    {{\"stage\": \"{}\", \"target\": \"{}\", \"clients\": {}, \"requests\": {}, \
             \"secs\": {:.6}, \"requests_per_sec\": {:.1}, \"mb_per_sec\": {:.3}, \
             \"p50_ms\": {:.3}, \"p99_ms\": {:.3}}}{comma}",
            r.stage,
            r.target,
            r.clients,
            r.requests,
            r.wall_secs,
            r.requests_per_sec(),
            r.mb_per_sec(),
            r.percentile_ms(50.0),
            r.percentile_ms(99.0),
        );
    }
    s.push_str("  ]\n}\n");
    s
}

/// The server's extended stats reply as one JSON object: lifetime
/// counters, queue depth, and per-request-type latency summaries
/// (nanoseconds, from the server's own log-bucketed histograms).
fn server_metrics_json(stats: &StatsReply) -> String {
    let mut s = String::from("{");
    let _ = write!(
        s,
        "\"accepted\": {}, \"served\": {}, \"busy_rejected\": {}, \
         \"iterations_ingested\": {}, \"bytes_ingested\": {}, \"write_retries\": {}, \
         \"queue_depth\": {}, \"latencies\": {{",
        stats.accepted,
        stats.served,
        stats.busy_rejected,
        stats.iterations_ingested,
        stats.bytes_ingested,
        stats.write_retries,
        stats.queue_depth,
    );
    for (i, lat) in stats.latencies.iter().enumerate() {
        let comma = if i + 1 == stats.latencies.len() { "" } else { ", " };
        let _ = write!(
            s,
            "\"{}\": {{\"count\": {}, \"sum\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}}}{comma}",
            lat.name,
            lat.summary.count,
            lat.summary.sum,
            lat.summary.p50,
            lat.summary.p90,
            lat.summary.p99,
        );
    }
    s.push_str("}}");
    s
}
