/root/repo/target/debug/deps/serde-e3b32ab1c731ce97.d: .stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-e3b32ab1c731ce97.so: .stubs/serde/src/lib.rs

.stubs/serde/src/lib.rs:
