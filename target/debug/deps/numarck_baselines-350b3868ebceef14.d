/root/repo/target/debug/deps/numarck_baselines-350b3868ebceef14.d: crates/numarck-baselines/src/lib.rs crates/numarck-baselines/src/bsplines.rs crates/numarck-baselines/src/isabela.rs

/root/repo/target/debug/deps/libnumarck_baselines-350b3868ebceef14.rlib: crates/numarck-baselines/src/lib.rs crates/numarck-baselines/src/bsplines.rs crates/numarck-baselines/src/isabela.rs

/root/repo/target/debug/deps/libnumarck_baselines-350b3868ebceef14.rmeta: crates/numarck-baselines/src/lib.rs crates/numarck-baselines/src/bsplines.rs crates/numarck-baselines/src/isabela.rs

crates/numarck-baselines/src/lib.rs:
crates/numarck-baselines/src/bsplines.rs:
crates/numarck-baselines/src/isabela.rs:
