//! The `numarck serve` and `numarck client` subcommands: a thin CLI
//! front-end over the [`numarck_serve`] service crate.
//!
//! `serve` runs the checkpoint server in the foreground until it drains
//! (SIGTERM/SIGINT or a client `shutdown`). `client` speaks the wire
//! protocol for scripting: ingest a `.f64s` sequence, replay every
//! stored iteration back out for byte-comparison, single restarts,
//! stats, scrub/repair, and graceful shutdown.

use std::io::Write as _;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use numarck_checkpoint::{FaultSchedule, FaultyBackend, ReplicatedBackend, VariableSet};
use numarck_compact::{CompactionConfig, CostModel};
use numarck_obs::{render_json, render_prometheus, MetricsServer, Snapshot};
use numarck_serve::{
    install_signal_handlers, Client, ClientError, ErrorCode, Server, ServerConfig, StatsReply,
};

use crate::commands::{parse_args, parse_strategy};
use crate::seqfile;
use crate::{CliError, CliResult};

/// Default request timeout for CLI client calls.
const CLIENT_TIMEOUT: Duration = Duration::from_secs(30);
/// `Busy` retry schedule for `client ingest`.
const BUSY_ATTEMPTS: u32 = 10;
const BUSY_BACKOFF: Duration = Duration::from_millis(50);

/// Map a client-library failure onto the CLI's exit-code classes:
/// backpressure → [`crate::exit_code::BUSY`], absent session/data →
/// [`crate::exit_code::MISSING`], everything else generic.
fn map_client_err(e: ClientError) -> CliError {
    match e {
        ClientError::Busy => CliError::busy(e.to_string()),
        ClientError::Server { code: ErrorCode::NotFound | ErrorCode::UnknownSession, message } => {
            CliError::missing(format!("server: {message}"))
        }
        other => other.to_string().into(),
    }
}

/// `numarck serve`: run the checkpoint service until it drains.
pub fn serve(raw: &[String]) -> CliResult {
    let p = parse_args(
        raw,
        &[
            "root",
            "addr",
            "workers",
            "queue",
            "bits",
            "tolerance",
            "strategy",
            "full-interval",
            "metrics-addr",
            "replicas",
            "die-after-ops",
            "compact-interval-secs",
            "compact-window",
            "restart-slo-ms",
            "gc-keep-fulls",
            "gc-keep-every",
            "gc-min-age-secs",
        ],
        &[],
    )?;
    p.expect_positionals(0, "").map_err(CliError::usage)?;
    let root = p.require("root").map_err(CliError::usage)?.to_string();
    let addr = p.get("addr").unwrap_or("127.0.0.1:0").to_string();
    let metrics_addr = p.get("metrics-addr").map(str::to_string);
    let bits: u8 = p.get_parsed("bits", 8)?;
    let tolerance: f64 = p.get_parsed("tolerance", 0.001)?;
    let strategy = parse_strategy(p.get("strategy").unwrap_or("clustering"))?;
    let compression = numarck::Config::new(bits, tolerance, strategy).map_err(|e| e.to_string())?;

    let mut config = ServerConfig::new(&root, compression);
    config.workers = p.get_parsed("workers", config.workers)?;
    config.queue_depth = p.get_parsed("queue", config.queue_depth)?;
    config.full_interval = p.get_parsed("full-interval", config.full_interval)?;
    if config.workers == 0 || config.queue_depth == 0 {
        return Err("--workers and --queue must be at least 1".into());
    }
    if config.full_interval == 0 {
        return Err("--full-interval must be at least 1".into());
    }

    // Background maintenance: any compaction flag switches the worker
    // on; `--compact-interval-secs` alone also does, with the policy
    // defaults (merge window 4, no SLO, GC off).
    let maintenance_flags =
        ["compact-interval-secs", "compact-window", "restart-slo-ms", "gc-keep-fulls"];
    if maintenance_flags.iter().any(|f| p.get(f).is_some()) {
        let defaults = CompactionConfig::default();
        let slo_ms: u64 = p.get_parsed("restart-slo-ms", 0)?;
        let keep_last_fulls: usize = p.get_parsed("gc-keep-fulls", 0)?;
        if keep_last_fulls == 0
            && (p.get("gc-keep-every").is_some() || p.get("gc-min-age-secs").is_some())
        {
            return Err(CliError::usage(
                "--gc-keep-every/--gc-min-age-secs tune retention GC, which only runs \
                 with --gc-keep-fulls N (N >= 1)",
            ));
        }
        config.compaction = Some(CompactionConfig {
            merge_window: p.get_parsed("compact-window", defaults.merge_window)?,
            restart_slo_ns: (slo_ms > 0).then(|| slo_ms.saturating_mul(1_000_000)),
            keep_last_fulls,
            keep_every: p.get_parsed("gc-keep-every", 0)?,
            min_age_secs: p.get_parsed("gc-min-age-secs", 0)?,
            cost: CostModel::default(),
        });
        let interval: u64 = p.get_parsed("compact-interval-secs", 60)?;
        if interval == 0 {
            return Err("--compact-interval-secs must be at least 1".into());
        }
        config.compact_interval = Duration::from_secs(interval);
    } else if p.get("gc-keep-every").is_some() || p.get("gc-min-age-secs").is_some() {
        return Err(CliError::usage(
            "--gc-keep-every/--gc-min-age-secs require --gc-keep-fulls N (N >= 1)",
        ));
    }

    // `--replicas N` (N >= 2): store every session N-way under
    // `root/@replica-{i}`, acknowledging writes at a majority quorum.
    // N = 1 is the default single-copy layout.
    let replicas: usize = p.get_parsed("replicas", 1)?;
    if replicas == 0 {
        return Err("--replicas must be at least 1".into());
    }
    let quorum = replicas / 2 + 1;
    if replicas > 1 {
        let backend = ReplicatedBackend::with_fs_replicas(Path::new(&root), replicas, quorum)
            .map_err(|e| format!("cannot set up {replicas} replicas under {root}: {e}"))?;
        config.backend = Arc::new(backend);
    }
    // `--die-after-ops K`: fail-stop self-destruct for crash-injection
    // testing — the process aborts (as if SIGKILLed) at the entry of
    // storage operation K+1. Composes with `--replicas`.
    if p.get("die-after-ops").is_some() {
        let ops: u64 = p.get_parsed("die-after-ops", 0)?;
        config.backend = Arc::new(FaultyBackend::wrapping(
            Arc::clone(&config.backend),
            FaultSchedule::new().die_after_ops(ops),
        ));
    }

    install_signal_handlers();
    let handle = Server::spawn(&addr, config).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    // Scripts (and the CI smoke job) wait for these exact lines to learn
    // the ephemeral ports, so they must land before we block in join().
    println!("listening on {}", handle.addr());
    if replicas > 1 {
        println!("replicating {replicas} ways (write quorum {quorum})");
    }
    let metrics = match metrics_addr {
        Some(maddr) => {
            let server = MetricsServer::start(&maddr as &str, handle.metrics_source())
                .map_err(|e| format!("cannot bind metrics listener {maddr}: {e}"))?;
            println!("metrics on http://{}/metrics", server.local_addr());
            Some(server)
        }
        None => None,
    };
    let _ = std::io::stdout().flush();
    handle.join();
    if let Some(metrics) = metrics {
        metrics.shutdown();
    }
    Ok("server drained and exited".to_string())
}

/// `numarck client <ingest|replay|restart|stats|scrub|shutdown>`.
pub fn client(raw: &[String]) -> CliResult {
    let Some((sub, rest)) = raw.split_first() else {
        return Err(CliError::usage(
            "client needs a subcommand: ingest|replay|restart|stats|scrub|shutdown",
        ));
    };
    match sub.as_str() {
        "ingest" => ingest(rest),
        "replay" => replay(rest),
        "restart" => restart(rest),
        "stats" => stats(rest),
        "scrub" => scrub(rest),
        "shutdown" => shutdown(rest),
        other => Err(CliError::usage(format!(
            "unknown client subcommand '{other}' (ingest|replay|restart|stats|scrub|shutdown)"
        ))),
    }
}

/// The server address: `--addr`, or its synonym `--via-router` (same
/// wire protocol either way; the flag just names the gateway intent in
/// scripts). Giving both is a usage error to catch confused scripts.
fn require_addr(p: &crate::args::Parsed) -> Result<String, CliError> {
    match (p.get("addr"), p.get("via-router")) {
        (Some(_), Some(_)) => {
            Err(CliError::usage("--addr and --via-router are synonyms; give exactly one"))
        }
        (Some(a), None) | (None, Some(a)) => Ok(a.to_string()),
        (None, None) => Err(CliError::usage("missing required flag --addr (or --via-router)")),
    }
}

fn connect(addr: &str) -> Result<Client, CliError> {
    Client::connect(addr, CLIENT_TIMEOUT).map_err(map_client_err)
}

fn open(client: &mut Client, session: &str) -> Result<u64, CliError> {
    client.open_session(session).map_err(map_client_err)
}

/// Pick the variable to flatten into a `.f64s` file: `--var NAME` if
/// given, otherwise the set must contain exactly one variable.
fn pick_var<'a>(vars: &'a VariableSet, want: Option<&str>) -> Result<&'a Vec<f64>, CliError> {
    match want {
        Some(name) => vars
            .get(name)
            .ok_or_else(|| CliError::missing(format!("variable '{name}' not in session"))),
        None if vars.len() == 1 => Ok(vars.values().next().expect("len checked")),
        None => Err(format!(
            "session holds {} variables ({}); pick one with --var",
            vars.len(),
            vars.keys().cloned().collect::<Vec<_>>().join(", ")
        )
        .into()),
    }
}

/// `client ingest`: stream a `.f64s` sequence into a session, one
/// iteration per checkpoint, retrying `Busy` rejections with backoff.
fn ingest(raw: &[String]) -> CliResult {
    let p = parse_args(raw, &["addr", "via-router", "session", "var"], &[])?;
    let input = &p.expect_positionals(1, "input .f64s").map_err(CliError::usage)?[0];
    let addr = require_addr(&p)?;
    let session_name = p.require("session").map_err(CliError::usage)?;
    let var = p.get("var").unwrap_or("data").to_string();

    let seq = seqfile::read(Path::new(input))?;
    if seq.is_empty() {
        return Err("input sequence is empty".into());
    }
    let (mut client, session) =
        Client::connect_session(&addr as &str, CLIENT_TIMEOUT, session_name, BUSY_ATTEMPTS, BUSY_BACKOFF)
            .map_err(map_client_err)?;
    let mut out = String::new();
    let mut retries = 0u32;
    for (it, values) in seq.iter().enumerate() {
        let mut vars = VariableSet::new();
        vars.insert(var.clone(), values.clone());
        let outcome = client.put_iteration(session, it as u64, &vars).map_err(map_client_err)?;
        retries += outcome.retries;
        out.push_str(&format!("iteration {it:3}: {:?}\n", outcome.kind));
    }
    out.push_str(&format!(
        "ingested {} iteration(s) × {} points into '{session_name}' ({retries} storage retries)\n",
        seq.len(),
        seq[0].len()
    ));
    Ok(out)
}

/// The newest restartable iteration of `session_name`, from server
/// stats. `MISSING` when the session holds nothing restartable.
fn latest_restartable(client: &mut Client, session_name: &str) -> Result<u64, CliError> {
    let stats = client.stats().map_err(map_client_err)?;
    stats
        .sessions
        .iter()
        .find(|s| s.name == session_name)
        .and_then(|s| s.latest_restartable)
        .ok_or_else(|| {
            CliError::missing(format!("session '{session_name}' has no restartable iteration"))
        })
}

/// `client replay`: restart *every* iteration `0..=latest` and write the
/// reconstructed states as a `.f64s` sequence — the service-side twin of
/// `numarck decompress`, so CI can byte-compare the two.
fn replay(raw: &[String]) -> CliResult {
    let p = parse_args(raw, &["addr", "via-router", "session", "out", "var"], &[])?;
    p.expect_positionals(0, "").map_err(CliError::usage)?;
    let addr = require_addr(&p)?;
    let session_name = p.require("session").map_err(CliError::usage)?;
    let out_path = p.require("out").map_err(CliError::usage)?.to_string();
    let var = p.get("var");

    let mut client = connect(&addr)?;
    let session = open(&mut client, session_name)?;
    let latest = latest_restartable(&mut client, session_name)?;
    let mut seq = Vec::with_capacity(latest as usize + 1);
    for it in 0..=latest {
        let reply = client.restart(session, it).map_err(map_client_err)?;
        if reply.achieved != it {
            return Err(CliError::corrupt(format!(
                "iteration {it} is not restartable (recovered {} instead)",
                reply.achieved
            )));
        }
        seq.push(pick_var(&reply.vars, var)?.clone());
    }
    seqfile::write(Path::new(&out_path), &seq)?;
    Ok(format!(
        "wrote {out_path}: {} iterations × {} points (replayed from '{session_name}')",
        seq.len(),
        seq.first().map(|v| v.len()).unwrap_or(0)
    ))
}

/// `client restart`: recover one state (newest, or `--at N`) and
/// optionally write it as a single-iteration `.f64s`.
fn restart(raw: &[String]) -> CliResult {
    let p = parse_args(raw, &["addr", "via-router", "session", "at", "out", "var"], &[])?;
    p.expect_positionals(0, "").map_err(CliError::usage)?;
    let addr = require_addr(&p)?;
    let session_name = p.require("session").map_err(CliError::usage)?;

    let mut client = connect(&addr)?;
    let session = open(&mut client, session_name)?;
    let target: u64 = match p.get("at") {
        Some(_) => p.get_parsed("at", 0)?,
        None => latest_restartable(&mut client, session_name)?,
    };
    let reply = client.restart(session, target).map_err(map_client_err)?;
    let mut out = format!(
        "restarted '{session_name}' at iteration {} (asked {target}): full {} + {} delta(s), {} lost\n",
        reply.achieved, reply.base, reply.deltas_applied, reply.lost
    );
    if let Some(out_path) = p.get("out") {
        let values = pick_var(&reply.vars, p.get("var"))?;
        seqfile::write(Path::new(out_path), std::slice::from_ref(values))?;
        out.push_str(&format!("wrote {out_path}: 1 iteration × {} points\n", values.len()));
    }
    Ok(out)
}

/// Project a [`StatsReply`] onto an obs [`Snapshot`] so the wire reply
/// renders through the same Prometheus/JSON exposition as `/metrics`.
fn reply_to_snapshot(s: &StatsReply) -> Snapshot {
    let mut snap = Snapshot {
        counters: vec![
            ("nsrv_accepted_total".to_owned(), s.accepted),
            ("nsrv_busy_rejected_total".to_owned(), s.busy_rejected),
            ("nsrv_bytes_ingested_total".to_owned(), s.bytes_ingested),
            ("nsrv_idle_disconnects_total".to_owned(), s.idle_disconnects),
            ("nsrv_iterations_ingested_total".to_owned(), s.iterations_ingested),
            ("nsrv_journal_replayed_total".to_owned(), s.journal_replayed),
            ("nsrv_journal_rolled_back_total".to_owned(), s.journal_rolled_back),
            ("nsrv_recovery_repairs_total".to_owned(), s.recovery_repairs),
            ("nsrv_served_total".to_owned(), s.served),
            ("nsrv_write_retries_total".to_owned(), s.write_retries),
            ("ckpt_replica_quorum_failures_total".to_owned(), s.replica_quorum_failures),
            ("ckpt_replica_repairs_total".to_owned(), s.replica_repairs),
            ("nck_compact_runs_total".to_owned(), s.compact_runs),
            ("nck_compact_deltas_merged_total".to_owned(), s.compact_deltas_merged),
            ("nck_compact_bytes_reclaimed_total".to_owned(), s.compact_bytes_reclaimed),
            ("nck_gc_files_removed_total".to_owned(), s.gc_files_removed),
        ],
        gauges: vec![("nsrv_queue_depth".to_owned(), s.queue_depth)],
        histograms: s.latencies.iter().map(|l| (l.name.clone(), l.summary)).collect(),
        events: Vec::new(),
    };
    snap.histograms.sort_by(|a, b| a.0.cmp(&b.0));
    snap
}

/// `numarck stats` / `numarck client stats`: server counters and
/// per-session summaries, human-readable by default, or rendered as
/// Prometheus text (`--prometheus`) / JSON (`--json`) for scrapers.
pub fn stats(raw: &[String]) -> CliResult {
    let p = parse_args(raw, &["addr", "via-router"], &["prometheus", "json"])?;
    p.expect_positionals(0, "").map_err(CliError::usage)?;
    if p.has("prometheus") && p.has("json") {
        return Err(CliError::usage("--prometheus and --json are mutually exclusive"));
    }
    let mut client = connect(&require_addr(&p)?)?;
    let s = client.stats().map_err(map_client_err)?;
    if p.has("prometheus") {
        return Ok(render_prometheus(&reply_to_snapshot(&s)));
    }
    if p.has("json") {
        return Ok(render_json(&reply_to_snapshot(&s)));
    }
    let mut out = format!(
        "accepted {} · served {} · busy-rejected {} · queued {} · draining {}\n\
         ingested {} iteration(s), {} byte(s), {} storage retrie(s)\n\
         durability: {} intent(s) replayed, {} rolled back, {} repair(s), \
         {} idle disconnect(s)\n",
        s.accepted, s.served, s.busy_rejected, s.queue_depth, s.draining,
        s.iterations_ingested, s.bytes_ingested, s.write_retries,
        s.journal_replayed, s.journal_rolled_back, s.recovery_repairs, s.idle_disconnects
    );
    if s.replica_repairs > 0 || s.replica_quorum_failures > 0 {
        out.push_str(&format!(
            "replicas: {} read-repair(s), {} quorum failure(s)\n",
            s.replica_repairs, s.replica_quorum_failures
        ));
    }
    if s.compact_runs > 0 {
        out.push_str(&format!(
            "compaction: {} run(s), {} delta(s) merged, {} byte(s) reclaimed, \
             {} file(s) collected\n",
            s.compact_runs, s.compact_deltas_merged, s.compact_bytes_reclaimed, s.gc_files_removed
        ));
    }
    for lat in &s.latencies {
        if lat.summary.count == 0 {
            continue;
        }
        out.push_str(&format!(
            "{}: {} sample(s), p50 {}ns p90 {}ns p99 {}ns\n",
            lat.name, lat.summary.count, lat.summary.p50, lat.summary.p90, lat.summary.p99
        ));
    }
    for sess in &s.sessions {
        out.push_str(&format!(
            "session {:3} '{}': {} file(s), latest restartable {}\n",
            sess.id,
            sess.name,
            sess.files,
            sess.latest_restartable.map_or("none".to_string(), |it| it.to_string())
        ));
    }
    Ok(out)
}

/// `client scrub`: CRC-sweep a session's store server-side; `--repair`
/// additionally re-anchors the chain. Mirrors the local `numarck scrub`
/// exit-code contract: damage quarantined without repair exits
/// [`crate::exit_code::QUARANTINED`].
fn scrub(raw: &[String]) -> CliResult {
    let p = parse_args(raw, &["addr", "via-router", "session"], &["repair"])?;
    p.expect_positionals(0, "").map_err(CliError::usage)?;
    let addr = require_addr(&p)?;
    let session_name = p.require("session").map_err(CliError::usage)?;
    let repair = p.has("repair");

    let mut client = connect(&addr)?;
    let session = open(&mut client, session_name)?;
    let reply = client.scrub(session, repair).map_err(map_client_err)?;
    let mut out = format!(
        "scrubbed '{session_name}': {} file(s) checked, {} quarantined\n",
        reply.checked, reply.quarantined
    );
    if repair {
        match reply.anchored_at {
            Some(anchor) => out.push_str(&format!(
                "re-anchored at iteration {anchor} ({} intact iteration(s) lost)\n",
                reply.lost
            )),
            None => {
                return Err(CliError::missing(format!(
                    "{out}FAIL: no restartable iteration remains in '{session_name}'"
                )))
            }
        }
        Ok(out)
    } else if reply.quarantined > 0 {
        out.push_str("run with --repair to re-anchor the chain\n");
        Err(CliError::quarantined(out))
    } else {
        out.push_str("clean: no damage found\n");
        Ok(out)
    }
}

/// `client shutdown`: ask the server to drain and exit.
fn shutdown(raw: &[String]) -> CliResult {
    let p = parse_args(raw, &["addr", "via-router"], &[])?;
    p.expect_positionals(0, "").map_err(CliError::usage)?;
    let mut client = connect(&require_addr(&p)?)?;
    client.shutdown().map_err(map_client_err)?;
    Ok("server is draining".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{argv, TempDir};
    use crate::{exit_code, run};
    use std::thread;

    /// Spawn a real server on an ephemeral port for CLI-level tests.
    fn spawn_server(root: &std::path::Path) -> numarck_serve::ServerHandle {
        let config = ServerConfig::new(
            root,
            numarck::Config::new(8, 0.001, numarck::Strategy::Clustering).unwrap(),
        );
        Server::spawn("127.0.0.1:0", config).unwrap()
    }

    #[test]
    fn cli_ingest_replay_roundtrip_is_byte_identical() {
        let tmp = TempDir::new("cli-serve");
        let data = tmp.path("data.f64s");
        let replayed = tmp.path("replayed.f64s");
        run(&argv(&[
            "gen", "--source", "climate:rlus", "--iterations", "6", "--grid", "16x12",
            "--out", &data,
        ]))
        .unwrap();

        let handle = spawn_server(&tmp.0.join("root"));
        let addr = handle.addr().to_string();

        let out = run(&argv(&[
            "client", "ingest", "--addr", &addr, "--session", "demo", &data,
        ]))
        .unwrap();
        assert!(out.contains("ingested 6 iteration(s)"), "{out}");

        let out = run(&argv(&[
            "client", "stats", "--addr", &addr,
        ]))
        .unwrap();
        assert!(out.contains("session"), "{out}");
        assert!(out.contains("latest restartable 5"), "{out}");

        let out = run(&argv(&[
            "client", "replay", "--addr", &addr, "--session", "demo", "--out", &replayed,
        ]))
        .unwrap();
        assert!(out.contains("6 iterations"), "{out}");

        // Replay must reproduce the service's lossy-but-deterministic
        // reconstruction; verify against the original within tolerance.
        let out = run(&argv(&["verify", &data, &replayed, "--tolerance", "0.001"])).unwrap();
        assert!(out.contains("PASS"), "{out}");

        // Scrub of a clean session succeeds.
        let out = run(&argv(&[
            "client", "scrub", "--addr", &addr, "--session", "demo",
        ]))
        .unwrap();
        assert!(out.contains("clean"), "{out}");

        // Unknown sessions map to the MISSING exit code.
        let err = run(&argv(&[
            "client", "replay", "--addr", &addr, "--session", "nope", "--out", &replayed,
        ]))
        .unwrap_err();
        assert_eq!(err.code, exit_code::MISSING, "{err}");

        // Graceful shutdown via the CLI; the server must drain.
        let out =
            run(&argv(&["client", "shutdown", "--addr", &addr])).unwrap();
        assert!(out.contains("draining"), "{out}");
        handle.join();
    }

    #[test]
    fn serve_command_runs_until_client_shutdown() {
        let tmp = TempDir::new("cli-serve-fg");
        let root = tmp.path("root");
        // `serve` blocks until drained, so drive it from a thread and
        // shut it down over the wire. It binds an ephemeral port and
        // prints it to stdout, which a test cannot capture — so give it
        // a fixed-but-unlikely port instead of parsing stdout.
        let addr = "127.0.0.1:47917";
        let serve_args = argv(&[
            "serve", "--root", &root, "--addr", addr, "--workers", "2", "--queue", "4",
        ]);
        let server = thread::spawn(move || run(&serve_args));
        // Wait for the listener.
        let mut client = None;
        for _ in 0..100 {
            match Client::connect(addr, Duration::from_millis(200)) {
                Ok(c) => {
                    client = Some(c);
                    break;
                }
                Err(_) => thread::sleep(Duration::from_millis(20)),
            }
        }
        let mut client = client.expect("serve must come up");
        let session = client.open_session("fg").unwrap();
        let mut vars = VariableSet::new();
        vars.insert("x".into(), vec![1.0, 2.0, 3.0]);
        client.put_iteration(session, 0, &vars).unwrap();
        client.shutdown().unwrap();
        let out = server.join().unwrap().unwrap();
        assert!(out.contains("drained"), "{out}");
    }

    #[test]
    fn stats_renders_prometheus_and_json() {
        let tmp = TempDir::new("cli-stats-fmt");
        let handle = spawn_server(&tmp.0.join("root"));
        let addr = handle.addr().to_string();
        // Some traffic first, so counters and latencies are non-zero.
        let mut client = Client::connect(&addr as &str, CLIENT_TIMEOUT).unwrap();
        let session = client.open_session("fmt").unwrap();
        let mut vars = VariableSet::new();
        vars.insert("x".into(), vec![1.0, 2.0, 3.0]);
        client.put_iteration(session, 0, &vars).unwrap();

        let out = run(&argv(&["stats", "--addr", &addr, "--prometheus"])).unwrap();
        assert!(out.contains("# TYPE nsrv_accepted_total counter"), "{out}");
        assert!(out.contains("nsrv_iterations_ingested_total 1"), "{out}");
        assert!(out.contains("nsrv_request_put_ns{quantile=\"0.5\"}"), "{out}");
        assert!(out.contains("# TYPE nsrv_queue_depth gauge"), "{out}");

        let out = run(&argv(&["stats", "--addr", &addr, "--json"])).unwrap();
        assert!(out.contains("\"nsrv_iterations_ingested_total\":1"), "{out}");
        assert!(out.contains("\"nsrv_request_put_ns\":{\"count\":1"), "{out}");

        // The human-readable default mentions observed latencies too.
        let out = run(&argv(&["stats", "--addr", &addr])).unwrap();
        assert!(out.contains("nsrv_request_put_ns: 1 sample(s)"), "{out}");

        // The two machine formats are mutually exclusive.
        let err =
            run(&argv(&["stats", "--addr", &addr, "--prometheus", "--json"])).unwrap_err();
        assert_eq!(err.code, exit_code::USAGE, "{err}");
        handle.shutdown();
    }

    fn http_get(addr: &str, path: &str) -> std::io::Result<String> {
        use std::io::Read as _;
        let mut stream = std::net::TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(5)))?;
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")?;
        let mut buf = String::new();
        stream.read_to_string(&mut buf)?;
        Ok(buf)
    }

    #[test]
    fn serve_metrics_listener_exposes_merged_prometheus_text() {
        let tmp = TempDir::new("cli-serve-metrics");
        let root = tmp.path("root");
        let addr = "127.0.0.1:47919";
        let maddr = "127.0.0.1:47921";
        let serve_args = argv(&[
            "serve", "--root", &root, "--addr", addr, "--metrics-addr", maddr,
        ]);
        let server = thread::spawn(move || run(&serve_args));
        let mut client = None;
        for _ in 0..100 {
            match Client::connect(addr, Duration::from_millis(200)) {
                Ok(c) => {
                    client = Some(c);
                    break;
                }
                Err(_) => thread::sleep(Duration::from_millis(20)),
            }
        }
        let mut client = client.expect("serve must come up");
        let session = client.open_session("m").unwrap();
        let mut vars = VariableSet::new();
        vars.insert("x".into(), vec![1.0, 2.0, 3.0]);
        client.put_iteration(session, 0, &vars).unwrap();

        // The metrics listener binds just after the main listener; give
        // it the same grace.
        let mut body = None;
        for _ in 0..100 {
            match http_get(maddr, "/metrics") {
                Ok(b) => {
                    body = Some(b);
                    break;
                }
                Err(_) => thread::sleep(Duration::from_millis(20)),
            }
        }
        let body = body.expect("metrics listener must come up");
        assert!(body.contains("200 OK"), "{body}");
        assert!(body.contains("# TYPE nsrv_iterations_ingested_total counter"), "{body}");
        assert!(body.contains("nsrv_iterations_ingested_total 1"), "{body}");
        // The merge brings in process-global checkpoint instruments.
        assert!(body.contains("ckpt_write_attempts_total"), "{body}");

        client.shutdown().unwrap();
        let out = server.join().unwrap().unwrap();
        assert!(out.contains("drained"), "{out}");
    }

    /// `serve --replicas 3` stores sessions 3-way and survives losing a
    /// replica: after deleting one replica's copy of a checkpoint, every
    /// iteration still replays, and a server-side scrub read-repairs the
    /// lost copy (visible in the reply and in stats).
    #[test]
    fn serve_with_replicas_survives_a_lost_replica_copy() {
        let tmp = TempDir::new("cli-serve-replicas");
        let root = tmp.path("root");
        let addr = "127.0.0.1:47923";
        let serve_args = argv(&[
            "serve", "--root", &root, "--addr", addr, "--replicas", "3",
        ]);
        let server = thread::spawn(move || run(&serve_args));
        let mut client = None;
        for _ in 0..100 {
            match Client::connect(addr, Duration::from_millis(200)) {
                Ok(c) => {
                    client = Some(c);
                    break;
                }
                Err(_) => thread::sleep(Duration::from_millis(20)),
            }
        }
        let mut client = client.expect("serve must come up");
        let session = client.open_session("rep").unwrap();
        for it in 0..4u64 {
            let mut vars = VariableSet::new();
            vars.insert("x".into(), (0..64).map(|j| j as f64 + it as f64).collect());
            client.put_iteration(session, it, &vars).unwrap();
        }

        // Sessions live under every replica root, not under the logical
        // root directly.
        let root_path = std::path::Path::new(&root);
        assert!(!root_path.join("rep").exists());
        let copy = |i: usize| root_path.join(format!("@replica-{i}")).join("rep");
        for i in 0..3 {
            assert!(copy(i).join("ckpt_0000000000.full").is_file(), "replica {i}");
        }

        // Lose one replica's copy of the full. Quorum reads still serve
        // every iteration.
        std::fs::remove_file(copy(1).join("ckpt_0000000000.full")).unwrap();
        for it in 0..4u64 {
            assert_eq!(client.restart(session, it).unwrap().achieved, it);
        }

        // A server-side scrub restores full replication.
        let reply = client.scrub(session, false).unwrap();
        assert_eq!(reply.quarantined, 0, "no quorum loss, nothing to quarantine");
        assert!(copy(1).join("ckpt_0000000000.full").is_file(), "read-repair rewrote the copy");
        let stats = client.stats().unwrap();
        assert!(stats.replica_repairs >= 1, "repair must be counted: {stats:?}");

        client.shutdown().unwrap();
        let out = server.join().unwrap().unwrap();
        assert!(out.contains("drained"), "{out}");
    }

    #[test]
    fn serve_rejects_zero_replicas() {
        let tmp = TempDir::new("cli-serve-replicas-zero");
        let root = tmp.path("root");
        let err = run(&argv(&[
            "serve", "--root", &root, "--replicas", "0",
        ]))
        .unwrap_err();
        assert_eq!(err.code, exit_code::GENERIC, "{err}");
        assert!(err.contains("--replicas"), "{err}");
    }

    #[test]
    fn client_usage_errors() {
        let err = run(&argv(&["client"])).unwrap_err();
        assert_eq!(err.code, exit_code::USAGE, "{err}");
        let err = run(&argv(&["client", "teleport"])).unwrap_err();
        assert_eq!(err.code, exit_code::USAGE, "{err}");
        let err = run(&argv(&["client", "stats"])).unwrap_err();
        assert_eq!(err.code, exit_code::USAGE, "{err}");
    }
}
