/root/repo/target/debug/deps/numarck_baselines-da28c879b39105bb.d: crates/numarck-baselines/src/lib.rs crates/numarck-baselines/src/bsplines.rs crates/numarck-baselines/src/isabela.rs

/root/repo/target/debug/deps/libnumarck_baselines-da28c879b39105bb.rmeta: crates/numarck-baselines/src/lib.rs crates/numarck-baselines/src/bsplines.rs crates/numarck-baselines/src/isabela.rs

crates/numarck-baselines/src/lib.rs:
crates/numarck-baselines/src/bsplines.rs:
crates/numarck-baselines/src/isabela.rs:
