/root/repo/target/debug/deps/numarck_obs-f8b3c07870c3054c.d: crates/numarck-obs/src/lib.rs crates/numarck-obs/src/http.rs crates/numarck-obs/src/instrument.rs crates/numarck-obs/src/registry.rs crates/numarck-obs/src/ring.rs crates/numarck-obs/src/snapshot.rs

/root/repo/target/debug/deps/libnumarck_obs-f8b3c07870c3054c.rlib: crates/numarck-obs/src/lib.rs crates/numarck-obs/src/http.rs crates/numarck-obs/src/instrument.rs crates/numarck-obs/src/registry.rs crates/numarck-obs/src/ring.rs crates/numarck-obs/src/snapshot.rs

/root/repo/target/debug/deps/libnumarck_obs-f8b3c07870c3054c.rmeta: crates/numarck-obs/src/lib.rs crates/numarck-obs/src/http.rs crates/numarck-obs/src/instrument.rs crates/numarck-obs/src/registry.rs crates/numarck-obs/src/ring.rs crates/numarck-obs/src/snapshot.rs

crates/numarck-obs/src/lib.rs:
crates/numarck-obs/src/http.rs:
crates/numarck-obs/src/instrument.rs:
crates/numarck-obs/src/registry.rs:
crates/numarck-obs/src/ring.rs:
crates/numarck-obs/src/snapshot.rs:
