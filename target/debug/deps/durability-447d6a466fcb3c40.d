/root/repo/target/debug/deps/durability-447d6a466fcb3c40.d: crates/numarck-serve/tests/durability.rs crates/numarck-serve/tests/util/mod.rs Cargo.toml

/root/repo/target/debug/deps/libdurability-447d6a466fcb3c40.rmeta: crates/numarck-serve/tests/durability.rs crates/numarck-serve/tests/util/mod.rs Cargo.toml

crates/numarck-serve/tests/durability.rs:
crates/numarck-serve/tests/util/mod.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
