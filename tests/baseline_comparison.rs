//! Cross-crate replication of the Table I/II structural facts.

use climate_sim::{ClimateModel, ClimateVar, Grid};
use numarck::metrics::{pearson, rmse};
use numarck::{decode, Compressor, Config, Strategy};
use numarck_baselines::{BSplineCompressor, IsabelaCompressor, LossyCompressor};

fn pair(var: ClimateVar) -> (Vec<f64>, Vec<f64>) {
    let mut model = ClimateModel::with_grid(var, Grid::cmip5(), 9);
    let prev = model.current().to_vec();
    let curr = model.step().to_vec();
    (prev, curr)
}

#[test]
fn bsplines_ratio_is_structurally_twenty_percent() {
    let (_, data) = pair(ClimateVar::Rlus);
    let r = BSplineCompressor::paper_default().compression_ratio(&data);
    assert!((r - 0.2).abs() < 1e-3, "got {r}");
}

#[test]
fn isabela_ratios_match_paper_constants() {
    // Full windows only (length a multiple of W0) reproduce the paper's
    // constants to three decimals.
    let data: Vec<f64> = {
        let (_, d) = pair(ClimateVar::Rlds);
        d.into_iter().take(512 * 25).collect()
    };
    assert_eq!(data.len() % 512, 0);
    let r = IsabelaCompressor::cmip5_default().compression_ratio(&data);
    assert!((r - 0.80078125).abs() < 1e-9, "got {r}");
    let short: Vec<f64> = data.iter().cloned().take(256 * 40).collect();
    let r = IsabelaCompressor::flash_default().compression_ratio(&short);
    assert!((r - 0.7578125).abs() < 1e-9, "got {r}");
}

#[test]
fn numarck_beats_isabela_ratio_at_paper_settings() {
    // CMIP5 rows: B = 9, E = 0.5%, clustering, vs ISABELA W0 = 512. The
    // paper reports NUMARCK ahead on most datasets; rlus/mrsos/mc/rlds
    // all clear 80.078% here.
    for var in [ClimateVar::Rlus, ClimateVar::Mrsos, ClimateVar::Mc, ClimateVar::Rlds] {
        let (prev, curr) = pair(var);
        let compressor =
            Compressor::new(Config::new(9, 0.005, Strategy::Clustering).expect("valid"));
        let (_, stats) = compressor.compress(&prev, &curr).expect("finite");
        assert!(
            stats.compression_ratio_eq3 > 0.80078,
            "{var}: NUMARCK {} <= ISABELA 0.80078",
            stats.compression_ratio_eq3
        );
    }
}

#[test]
fn numarck_rmse_beats_isabela_on_climate_pairs() {
    // Table II's ξ column: NUMARCK under ISABELA on every dataset.
    for var in [ClimateVar::Rlus, ClimateVar::Mrsos, ClimateVar::Rlds, ClimateVar::Mc] {
        let (prev, curr) = pair(var);
        let compressor =
            Compressor::new(Config::new(9, 0.005, Strategy::Clustering).expect("valid"));
        let (block, _) = compressor.compress(&prev, &curr).expect("finite");
        let numarck_restored = decode::reconstruct(&prev, &block).expect("valid");
        let (isabela_restored, _) = IsabelaCompressor::cmip5_default().roundtrip(&curr);
        let xi_n = rmse(&curr, &numarck_restored);
        let xi_i = rmse(&curr, &isabela_restored);
        assert!(xi_n < xi_i, "{var}: NUMARCK ξ {xi_n} >= ISABELA ξ {xi_i}");
    }
}

#[test]
fn all_compressors_keep_high_correlation() {
    // Table II's ρ column: every method ≥ 0.99 on smooth fields.
    let (prev, curr) = pair(ClimateVar::Rlus);
    let compressor =
        Compressor::new(Config::new(9, 0.005, Strategy::Clustering).expect("valid"));
    let (block, _) = compressor.compress(&prev, &curr).expect("finite");
    let n = decode::reconstruct(&prev, &block).expect("valid");
    assert!(pearson(&curr, &n) > 0.999);
    for comp in [
        &BSplineCompressor::paper_default() as &dyn LossyCompressor,
        &IsabelaCompressor::cmip5_default(),
    ] {
        let (restored, _) = comp.roundtrip(&curr);
        assert!(pearson(&curr, &restored) > 0.99, "{}", comp.name());
    }
}

#[test]
fn bsplines_rmse_is_worst_of_the_three() {
    // Table II: "the ξ values for B-Splines are consistently an order of
    // magnitude higher than ISABELA and NUMARCK" — on the rough variable
    // the plain spline cannot follow the field.
    let (prev, curr) = pair(ClimateVar::Rlds);
    let compressor =
        Compressor::new(Config::new(9, 0.005, Strategy::Clustering).expect("valid"));
    let (block, _) = compressor.compress(&prev, &curr).expect("finite");
    let numarck_restored = decode::reconstruct(&prev, &block).expect("valid");
    let (bspl_restored, _) = BSplineCompressor::paper_default().roundtrip(&curr);
    let xi_b = rmse(&curr, &bspl_restored);
    let xi_n = rmse(&curr, &numarck_restored);
    assert!(xi_b > 2.0 * xi_n, "B-Splines ξ {xi_b} vs NUMARCK ξ {xi_n}");
}
