//! Tables I and II: compression ratio and accuracy (Pearson ρ, RMSE ξ)
//! for B-Splines, ISABELA, and NUMARCK on ten simulation datasets.
//!
//! Paper settings: 50 iterations; CMIP5 variables use `W₀ = 512` /
//! `B = 9`, FLASH variables use `W₀ = 256` / `B = 8`; `P_I = 30`,
//! `P_S = 0.8·n`, `E = 0.5%`, clustering strategy.
//!
//! Expected shape: B-Splines pinned at 20% ratio with ξ an order of
//! magnitude worse; ISABELA at 80.078%/75.781% structurally; NUMARCK
//! above ISABELA on most datasets with ρ ≈ 0.999 and the smallest ξ.

use numarck::metrics::{pearson, rmse};
use numarck::{Compressor, Config, Strategy};
use numarck_baselines::{BSplineCompressor, IsabelaCompressor, LossyCompressor};
use numarck_bench::data::{climate_sequence, flash_sequences, FlashConfig, Sequence};
use numarck_bench::report::{pm, print_table, write_csv};
use numarck_bench::run::mean_std;
use numarck_bench::RESULTS_DIR;

struct DatasetResult {
    name: String,
    ratio: [(f64, f64); 3],
    rho: [(f64, f64); 3],
    xi: [(f64, f64); 3],
}

fn evaluate(name: &str, seq: &Sequence, bits: u8, window: usize) -> DatasetResult {
    let numarck_cfg =
        Config::new(bits, 0.005, Strategy::Clustering).expect("paper settings are valid");
    let compressor = Compressor::new(numarck_cfg);
    let isabela = IsabelaCompressor::new(window, 30);
    let bsplines = BSplineCompressor::paper_default();

    let mut ratio = [Vec::new(), Vec::new(), Vec::new()];
    let mut rho = [Vec::new(), Vec::new(), Vec::new()];
    let mut xi = [Vec::new(), Vec::new(), Vec::new()];

    for w in seq.windows(2) {
        let (prev, curr) = (&w[0], &w[1]);
        // Baselines compress the iteration snapshot directly.
        for (slot, comp) in [(0usize, &bsplines as &dyn LossyCompressor), (1, &isabela)] {
            let (restored, bits_used) = comp.roundtrip(curr);
            ratio[slot].push(1.0 - bits_used as f64 / (curr.len() as f64 * 64.0));
            rho[slot].push(pearson(curr, &restored));
            xi[slot].push(rmse(curr, &restored));
        }
        // NUMARCK compresses the transition.
        let (block, stats) = compressor.compress(prev, curr).expect("finite data");
        let restored = numarck::decode::reconstruct(prev, &block).expect("self-produced block");
        ratio[2].push(stats.compression_ratio_eq3);
        rho[2].push(pearson(curr, &restored));
        xi[2].push(rmse(curr, &restored));
    }

    DatasetResult {
        name: name.to_string(),
        ratio: std::array::from_fn(|i| mean_std(&ratio[i])),
        rho: std::array::from_fn(|i| mean_std(&rho[i])),
        xi: std::array::from_fn(|i| mean_std(&xi[i])),
    }
}

fn main() {
    let iterations = 50usize;
    let mut results: Vec<DatasetResult> = Vec::new();

    // CMIP5 rows: W0 = 512, B = 9.
    for var in climate_sim::ClimateVar::table1_set() {
        let seq = climate_sequence(var, iterations);
        results.push(evaluate(var.name(), &seq, 9, 512));
    }
    // FLASH rows: W0 = 256, B = 8.
    let flash = flash_sequences(FlashConfig::default(), iterations);
    for var in [
        flash_sim::FlashVar::Dens,
        flash_sim::FlashVar::Pres,
        flash_sim::FlashVar::Temp,
        flash_sim::FlashVar::Ener,
        flash_sim::FlashVar::Eint,
    ] {
        results.push(evaluate(var.name(), &flash[&var], 8, 256));
    }

    println!("Table I: compression ratio (%) — mean±std over {} iterations", iterations - 1);
    let mut t1 = vec![vec![
        "dataset".to_string(),
        "B-Splines".to_string(),
        "ISABELA".to_string(),
        "NUMARCK".to_string(),
    ]];
    for r in &results {
        t1.push(vec![
            r.name.clone(),
            pm(r.ratio[0].0 * 100.0, r.ratio[0].1 * 100.0, 3),
            pm(r.ratio[1].0 * 100.0, r.ratio[1].1 * 100.0, 3),
            pm(r.ratio[2].0 * 100.0, r.ratio[2].1 * 100.0, 3),
        ]);
    }
    print_table(&t1);

    println!("\nTable II: accuracy — Pearson ρ and RMSE ξ, mean±std");
    let mut t2 = vec![vec![
        "dataset".to_string(),
        "ρ B-Spl".to_string(),
        "ρ ISA".to_string(),
        "ρ NUM".to_string(),
        "ξ B-Spl".to_string(),
        "ξ ISA".to_string(),
        "ξ NUM".to_string(),
    ]];
    for r in &results {
        t2.push(vec![
            r.name.clone(),
            pm(r.rho[0].0, r.rho[0].1, 3),
            pm(r.rho[1].0, r.rho[1].1, 3),
            pm(r.rho[2].0, r.rho[2].1, 3),
            pm(r.xi[0].0, r.xi[0].1, 3),
            pm(r.xi[1].0, r.xi[1].1, 3),
            pm(r.xi[2].0, r.xi[2].1, 3),
        ]);
    }
    print_table(&t2);

    let mut csv = vec![vec![
        "dataset".to_string(),
        "compressor".to_string(),
        "ratio_mean".to_string(),
        "ratio_std".to_string(),
        "rho_mean".to_string(),
        "rho_std".to_string(),
        "xi_mean".to_string(),
        "xi_std".to_string(),
    ]];
    for r in &results {
        for (i, comp) in ["bsplines", "isabela", "numarck"].iter().enumerate() {
            csv.push(vec![
                r.name.clone(),
                comp.to_string(),
                r.ratio[i].0.to_string(),
                r.ratio[i].1.to_string(),
                r.rho[i].0.to_string(),
                r.rho[i].1.to_string(),
                r.xi[i].0.to_string(),
                r.xi[i].1.to_string(),
            ]);
        }
    }
    match write_csv(RESULTS_DIR, "table1_table2", &csv) {
        Ok(p) => println!("\nwrote {p}"),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
    println!("\n(paper: NUMARCK beats ISABELA on ratio for 9/10 datasets and on ξ for all;");
    println!(" B-Splines fixed at 20%; ISABELA fixed at 80.078% (CMIP5) / 75.781% (FLASH))");
}
