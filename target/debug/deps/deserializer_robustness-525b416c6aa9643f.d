/root/repo/target/debug/deps/deserializer_robustness-525b416c6aa9643f.d: tests/deserializer_robustness.rs

/root/repo/target/debug/deps/deserializer_robustness-525b416c6aa9643f: tests/deserializer_robustness.rs

tests/deserializer_robustness.rs:
