/root/repo/target/debug/deps/numarck-ee33a14c0ce84608.d: crates/numarck/src/lib.rs crates/numarck/src/anomaly.rs crates/numarck/src/autotune.rs crates/numarck/src/bitstream.rs crates/numarck/src/config.rs crates/numarck/src/decode.rs crates/numarck/src/drift.rs crates/numarck/src/encode.rs crates/numarck/src/error.rs crates/numarck/src/fpc.rs crates/numarck/src/group.rs crates/numarck/src/huffman.rs crates/numarck/src/metrics.rs crates/numarck/src/obs.rs crates/numarck/src/pipeline.rs crates/numarck/src/ratio.rs crates/numarck/src/serialize.rs crates/numarck/src/strategy/mod.rs crates/numarck/src/strategy/clustering.rs crates/numarck/src/strategy/equal_width.rs crates/numarck/src/strategy/log_scale.rs crates/numarck/src/table.rs

/root/repo/target/debug/deps/numarck-ee33a14c0ce84608: crates/numarck/src/lib.rs crates/numarck/src/anomaly.rs crates/numarck/src/autotune.rs crates/numarck/src/bitstream.rs crates/numarck/src/config.rs crates/numarck/src/decode.rs crates/numarck/src/drift.rs crates/numarck/src/encode.rs crates/numarck/src/error.rs crates/numarck/src/fpc.rs crates/numarck/src/group.rs crates/numarck/src/huffman.rs crates/numarck/src/metrics.rs crates/numarck/src/obs.rs crates/numarck/src/pipeline.rs crates/numarck/src/ratio.rs crates/numarck/src/serialize.rs crates/numarck/src/strategy/mod.rs crates/numarck/src/strategy/clustering.rs crates/numarck/src/strategy/equal_width.rs crates/numarck/src/strategy/log_scale.rs crates/numarck/src/table.rs

crates/numarck/src/lib.rs:
crates/numarck/src/anomaly.rs:
crates/numarck/src/autotune.rs:
crates/numarck/src/bitstream.rs:
crates/numarck/src/config.rs:
crates/numarck/src/decode.rs:
crates/numarck/src/drift.rs:
crates/numarck/src/encode.rs:
crates/numarck/src/error.rs:
crates/numarck/src/fpc.rs:
crates/numarck/src/group.rs:
crates/numarck/src/huffman.rs:
crates/numarck/src/metrics.rs:
crates/numarck/src/obs.rs:
crates/numarck/src/pipeline.rs:
crates/numarck/src/ratio.rs:
crates/numarck/src/serialize.rs:
crates/numarck/src/strategy/mod.rs:
crates/numarck/src/strategy/clustering.rs:
crates/numarck/src/strategy/equal_width.rs:
crates/numarck/src/strategy/log_scale.rs:
crates/numarck/src/table.rs:
