//! Clamped uniform cubic B-splines: evaluation and least-squares fitting.
//!
//! Both baseline compressors store a data vector as the control points of
//! a cubic B-spline curve over `t ∈ [0, 1]` and reconstruct by sampling
//! the curve back at the original parameter positions. The knot vector is
//! clamped (multiplicity 4 at both ends) and uniform inside, so a curve
//! with `m` control points has knots `[0,0,0,0, 1/(m−3), …, 1,1,1,1]`.
//!
//! Fitting minimises `Σ_i (S(t_i) − y_i)²` with `t_i = i/(n−1)`; since
//! each basis row has 4 non-zeros, the normal equations are symmetric
//! banded with bandwidth 3 and solved by [`crate::banded`] in O(m).

use crate::banded::SymBanded;

/// Minimum number of control points for a cubic curve.
pub const MIN_CONTROL_POINTS: usize = 4;

/// A fitted clamped uniform cubic B-spline.
#[derive(Debug, Clone, PartialEq)]
pub struct CubicBSpline {
    coeffs: Vec<f64>,
}

/// Why a fit failed.
#[derive(Debug, Clone, PartialEq)]
pub enum FitError {
    /// Fewer than [`MIN_CONTROL_POINTS`] control points requested.
    TooFewControlPoints(usize),
    /// The data vector was empty.
    EmptyData,
    /// The (ridge-regularised) normal equations were not positive
    /// definite — should not happen for finite inputs.
    Singular,
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::TooFewControlPoints(m) => {
                write!(f, "cubic B-spline needs >= {MIN_CONTROL_POINTS} control points, got {m}")
            }
            Self::EmptyData => write!(f, "cannot fit a spline to empty data"),
            Self::Singular => write!(f, "normal equations not positive definite"),
        }
    }
}

impl std::error::Error for FitError {}

impl CubicBSpline {
    /// Wrap existing control points (e.g. deserialized coefficients).
    ///
    /// # Panics
    /// Panics if fewer than [`MIN_CONTROL_POINTS`] coefficients are given.
    pub fn from_coeffs(coeffs: Vec<f64>) -> Self {
        assert!(
            coeffs.len() >= MIN_CONTROL_POINTS,
            "need at least {MIN_CONTROL_POINTS} coefficients"
        );
        Self { coeffs }
    }

    /// The control points.
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Number of control points `m`.
    pub fn num_coeffs(&self) -> usize {
        self.coeffs.len()
    }

    /// Least-squares fit of `data` sampled at `t_i = i/(n−1)` using `m`
    /// control points.
    pub fn fit(data: &[f64], m: usize) -> Result<Self, FitError> {
        if m < MIN_CONTROL_POINTS {
            return Err(FitError::TooFewControlPoints(m));
        }
        if data.is_empty() {
            return Err(FitError::EmptyData);
        }
        let n = data.len();
        let mut normal = SymBanded::zeros(m, 3);
        let mut rhs = vec![0.0; m];
        for (i, &y) in data.iter().enumerate() {
            let t = param_of(i, n);
            let (span, basis) = basis_at(t, m);
            let first = span - 3;
            for a in 0..4 {
                rhs[first + a] += basis[a] * y;
                for b in a..4 {
                    normal.add(first + b, first + a, basis[a] * basis[b]);
                }
            }
        }
        // Ridge term: keeps the system SPD when m ≳ n leaves some control
        // points under-determined. The shift is far below the fit error
        // scale so it does not bias well-posed fits measurably.
        let max_diag = (0..m).map(|i| normal.get(i, i)).fold(0.0f64, f64::max).max(1.0);
        let ridge = 1e-10 * max_diag;
        for i in 0..m {
            normal.add(i, i, ridge);
        }
        let chol = normal.cholesky().ok_or(FitError::Singular)?;
        Ok(Self { coeffs: chol.solve(&rhs) })
    }

    /// Evaluate the curve at `t ∈ [0, 1]` (clamped outside).
    pub fn eval(&self, t: f64) -> f64 {
        let t = t.clamp(0.0, 1.0);
        let (span, basis) = basis_at(t, self.coeffs.len());
        let first = span - 3;
        let mut v = 0.0;
        for a in 0..4 {
            v += basis[a] * self.coeffs[first + a];
        }
        v
    }

    /// Sample the curve at the `n` original parameter positions —
    /// the decompression step of both baselines.
    pub fn sample(&self, n: usize) -> Vec<f64> {
        (0..n).map(|i| self.eval(param_of(i, n))).collect()
    }
}

/// Parameter of the `i`-th of `n` samples: uniform in `[0, 1]`.
#[inline]
fn param_of(i: usize, n: usize) -> f64 {
    if n <= 1 {
        0.0
    } else {
        i as f64 / (n - 1) as f64
    }
}

/// Knot value at index `k` of the clamped uniform vector for `m` control
/// points (degree 3, `m + 4` knots).
#[inline]
fn knot(k: usize, m: usize) -> f64 {
    let seg = (m - 3) as f64;
    ((k as f64 - 3.0) / seg).clamp(0.0, 1.0)
}

/// Knot span index and the 4 non-zero cubic basis values at `t`.
///
/// Uses the standard Cox–de Boor "basis functions" algorithm (Piegl &
/// Tiller, *The NURBS Book*, A2.2) restricted to degree 3.
fn basis_at(t: f64, m: usize) -> (usize, [f64; 4]) {
    debug_assert!((0.0..=1.0).contains(&t));
    let seg = m - 3;
    // Span k satisfies knot(k) <= t < knot(k+1); clamp to the last
    // non-degenerate span so t = 1 works.
    let span = (3 + ((t * seg as f64) as usize)).min(m - 1);
    let mut left = [0.0f64; 4];
    let mut right = [0.0f64; 4];
    let mut n = [0.0f64; 4];
    n[0] = 1.0;
    for j in 1..=3 {
        left[j] = t - knot(span + 1 - j, m);
        right[j] = knot(span + j, m) - t;
        let mut saved = 0.0;
        for r in 0..j {
            let denom = right[r + 1] + left[j - r];
            let tmp = if denom == 0.0 { 0.0 } else { n[r] / denom };
            n[r] = saved + right[r + 1] * tmp;
            saved = left[j - r] * tmp;
        }
        n[j] = saved;
    }
    (span, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basis_is_a_partition_of_unity() {
        for m in [4usize, 5, 8, 30, 100] {
            for i in 0..=200 {
                let t = i as f64 / 200.0;
                let (span, n) = basis_at(t, m);
                assert!(span >= 3 && span < m, "m={m} t={t} span={span}");
                let sum: f64 = n.iter().sum();
                assert!((sum - 1.0).abs() < 1e-12, "m={m} t={t}: sum {sum}");
                assert!(n.iter().all(|&v| v >= -1e-12), "negative basis at t={t}");
            }
        }
    }

    #[test]
    fn constant_data_fits_exactly() {
        let data = vec![5.5; 100];
        let s = CubicBSpline::fit(&data, 10).unwrap();
        for &c in s.coeffs() {
            assert!((c - 5.5).abs() < 1e-6);
        }
        for v in s.sample(100) {
            assert!((v - 5.5).abs() < 1e-6);
        }
    }

    #[test]
    fn linear_data_reproduced_closely() {
        let data: Vec<f64> = (0..200).map(|i| 3.0 * i as f64 + 1.0).collect();
        let s = CubicBSpline::fit(&data, 20).unwrap();
        for (i, v) in s.sample(200).iter().enumerate() {
            assert!((v - data[i]).abs() < 1e-6, "i={i}: {v} vs {}", data[i]);
        }
    }

    #[test]
    fn cubic_polynomial_is_in_the_span() {
        // A single cubic needs only 4 control points.
        let f = |x: f64| 2.0 * x * x * x - x * x + 0.5 * x - 3.0;
        let n = 50;
        let data: Vec<f64> = (0..n).map(|i| f(i as f64 / (n - 1) as f64)).collect();
        let s = CubicBSpline::fit(&data, 4).unwrap();
        for (i, v) in s.sample(n).iter().enumerate() {
            assert!((v - data[i]).abs() < 1e-8, "i={i}");
        }
    }

    #[test]
    fn more_control_points_fit_better() {
        let n = 400;
        let data: Vec<f64> =
            (0..n).map(|i| (10.0 * std::f64::consts::PI * i as f64 / n as f64).sin()).collect();
        let err = |m: usize| {
            let s = CubicBSpline::fit(&data, m).unwrap();
            s.sample(n)
                .iter()
                .zip(&data)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt()
        };
        let e8 = err(8);
        let e32 = err(32);
        let e128 = err(128);
        assert!(e32 < e8 * 0.5, "e8={e8} e32={e32}");
        assert!(e128 < e32 * 0.5, "e32={e32} e128={e128}");
    }

    #[test]
    fn sorted_data_fits_tightly_with_few_coeffs() {
        // The ISABELA insight: sorted (monotone) data is near-linear and
        // fits with ~30 coefficients regardless of the original entropy.
        let mut data: Vec<f64> = (0..512)
            .map(|i| ((i as f64 * 2654435761.0).sin() * 1000.0).fract() * 50.0)
            .collect();
        data.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let s = CubicBSpline::fit(&data, 30).unwrap();
        let restored = s.sample(512);
        let range = data.last().unwrap() - data.first().unwrap();
        for (a, b) in restored.iter().zip(&data) {
            assert!((a - b).abs() < 0.05 * range, "{a} vs {b}");
        }
    }

    #[test]
    fn fit_errors() {
        assert_eq!(CubicBSpline::fit(&[1.0], 3), Err(FitError::TooFewControlPoints(3)));
        assert_eq!(CubicBSpline::fit(&[], 8), Err(FitError::EmptyData));
    }

    #[test]
    fn overparameterised_fit_is_stable() {
        // m > n: ridge keeps it solvable and interpolating.
        let data = vec![1.0, 4.0, 2.0, 8.0, 3.0];
        let s = CubicBSpline::fit(&data, 12).unwrap();
        let restored = s.sample(5);
        for (a, b) in restored.iter().zip(&data) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn eval_clamps_outside_domain() {
        let s = CubicBSpline::fit(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0], 4).unwrap();
        assert_eq!(s.eval(-0.5), s.eval(0.0));
        assert_eq!(s.eval(1.5), s.eval(1.0));
    }

    #[test]
    fn single_point_data() {
        let s = CubicBSpline::fit(&[7.0], 4).unwrap();
        assert!((s.eval(0.0) - 7.0).abs() < 1e-6);
    }
}
