//! The representative-ratio table (the paper's "index table of size
//! `2^B`").
//!
//! Every approximation strategy reduces to the same artefact: a sorted set
//! of at most `2^B − 1` representative change ratios. A point's index is
//! the nearest representative; index 0 is reserved by the encoder for
//! "change below tolerance", so table entry `t` is addressed by the stored
//! index `t + 1`.
//!
//! Assignment is a single `partition_point` binary search over the sorted
//! representatives followed by a branchless pick between the two
//! enclosing neighbours (ties at bin midpoints resolve to the lower
//! index, matching [`numarck_kmeans::lloyd1d::SortedCenters`]): for the
//! equal-width and log-scale strategies, nearest-representative assignment
//! dominates (never loses to) the "containing bin" rule the paper
//! describes, while keeping all three strategies on one encoder path.

use numarck_kmeans::lloyd1d::SortedCenters;

/// A learned table of representative change ratios.
#[derive(Debug, Clone, PartialEq)]
pub struct BinTable {
    centers: SortedCenters,
}

impl BinTable {
    /// Build from representative ratios (sorted/deduplicated internally).
    ///
    /// # Panics
    /// Panics if any representative is non-finite.
    pub fn new(representatives: Vec<f64>) -> Self {
        Self { centers: SortedCenters::new(representatives) }
    }

    /// The sorted representatives.
    #[inline]
    pub fn representatives(&self) -> &[f64] {
        self.centers.centers()
    }

    /// Number of representatives.
    #[inline]
    pub fn len(&self) -> usize {
        self.centers.len()
    }

    /// True when the table is empty (no large changes existed).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.centers.is_empty()
    }

    /// Index of the representative nearest to `ratio`, or `None` for an
    /// empty table.
    #[inline]
    pub fn nearest(&self, ratio: f64) -> Option<usize> {
        self.quantize(ratio).map(|(idx, _, _)| idx)
    }

    /// Nearest representative and its approximation error, or `None` for
    /// an empty table.
    ///
    /// This is the encoder's per-point hot path: one `partition_point`
    /// over the representatives, then a branchless pick between the two
    /// enclosing neighbours. A ratio exactly at the midpoint of two
    /// representatives resolves to the lower index.
    #[inline]
    pub fn quantize(&self, ratio: f64) -> Option<(usize, f64, f64)> {
        let reps = self.centers.centers();
        if reps.is_empty() {
            return None;
        }
        let pp = reps.partition_point(|&r| r < ratio);
        let lo = pp.saturating_sub(1);
        let hi = pp.min(reps.len() - 1);
        // Ties (d_hi == d_lo) keep the lower index; ends clamp because
        // lo == hi there.
        let idx = lo + usize::from((reps[hi] - ratio).abs() < (ratio - reps[lo]).abs()) * (hi - lo);
        let rep = reps[idx];
        Some((idx, rep, (rep - ratio).abs()))
    }

    /// Representative at `idx`.
    ///
    /// # Panics
    /// Panics if `idx` is out of range.
    #[inline]
    pub fn representative(&self, idx: usize) -> f64 {
        self.centers.centers()[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_returns_nearest_and_error() {
        let t = BinTable::new(vec![-0.1, 0.0, 0.1]);
        let (idx, rep, err) = t.quantize(0.08).unwrap();
        assert_eq!(idx, 2);
        assert_eq!(rep, 0.1);
        assert!((err - 0.02).abs() < 1e-15);
    }

    #[test]
    fn empty_table_quantizes_nothing() {
        let t = BinTable::new(vec![]);
        assert!(t.is_empty());
        assert_eq!(t.nearest(0.5), None);
        assert_eq!(t.quantize(0.5), None);
    }

    #[test]
    fn representatives_are_sorted_unique() {
        let t = BinTable::new(vec![0.3, -0.2, 0.3, 0.0]);
        assert_eq!(t.representatives(), &[-0.2, 0.0, 0.3]);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn extreme_ratios_clamp_to_end_representatives() {
        let t = BinTable::new(vec![-0.5, 0.5]);
        assert_eq!(t.nearest(-100.0), Some(0));
        assert_eq!(t.nearest(100.0), Some(1));
    }

    #[test]
    fn midpoint_ties_resolve_to_the_lower_index() {
        // 2.0 is exactly halfway between 1.0 and 3.0: the lower
        // representative wins, matching SortedCenters::nearest.
        let t = BinTable::new(vec![1.0, 3.0]);
        let (idx, rep, err) = t.quantize(2.0).unwrap();
        assert_eq!(idx, 0);
        assert_eq!(rep, 1.0);
        assert_eq!(err, 1.0);
        // Same at interior midpoints of a longer table, including
        // negative ones (dyadic values so the midpoints are exact in
        // binary floating point).
        let t = BinTable::new(vec![-0.5, -0.25, 0.25, 0.75]);
        assert_eq!(t.nearest(-0.375), Some(0));
        assert_eq!(t.nearest(0.0), Some(1));
        assert_eq!(t.nearest(0.5), Some(2));
        // A nudge above the midpoint flips to the upper neighbour.
        assert_eq!(t.nearest(0.5 + 1e-9), Some(3));
    }

    #[test]
    fn quantize_matches_linear_scan_and_sorted_centers() {
        let reps = vec![-3.0, -1.0, 0.5, 2.0, 8.0, 8.5];
        let t = BinTable::new(reps.clone());
        let sc = SortedCenters::new(reps.clone());
        for i in -100..200 {
            let x = i as f64 * 0.1;
            let (idx, rep, err) = t.quantize(x).unwrap();
            // Linear scan with ties to the lower index.
            let mut best = 0;
            for (j, &r) in reps.iter().enumerate() {
                if (r - x).abs() < (reps[best] - x).abs() {
                    best = j;
                }
            }
            assert_eq!(idx, best, "x = {x}");
            assert_eq!(rep, reps[best]);
            assert!((err - (reps[best] - x).abs()).abs() < 1e-15);
            assert_eq!(idx, sc.nearest(x), "x = {x} disagrees with midpoint search");
        }
    }
}
