//! Symmetric banded matrices and banded Cholesky.
//!
//! Storage is the lower band in "diagonal-major" layout: `band[d]` holds
//! the `d`-th sub-diagonal (`band[0]` is the main diagonal, length `n`;
//! `band[d][i]` is entry `(i + d, i)`). For bandwidth `p` a Cholesky
//! factorisation costs O(n·p²) and stays inside the band, which is what
//! makes B-spline least squares linear-time.

/// Symmetric banded matrix of order `n` with `p` sub-diagonals.
#[derive(Debug, Clone, PartialEq)]
pub struct SymBanded {
    n: usize,
    p: usize,
    /// `band[d][i]` = A[i+d][i], for d in 0..=p.
    band: Vec<Vec<f64>>,
}

impl SymBanded {
    /// Zero matrix of order `n` with bandwidth `p` (p sub-diagonals).
    pub fn zeros(n: usize, p: usize) -> Self {
        let band = (0..=p).map(|d| vec![0.0; n.saturating_sub(d)]).collect();
        Self { n, p, band }
    }

    /// Matrix order.
    #[inline]
    pub fn order(&self) -> usize {
        self.n
    }

    /// Number of sub-diagonals.
    #[inline]
    pub fn bandwidth(&self) -> usize {
        self.p
    }

    /// Entry `(r, c)`; zero outside the band.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        let (hi, lo) = if r >= c { (r, c) } else { (c, r) };
        let d = hi - lo;
        if d > self.p {
            0.0
        } else {
            self.band[d][lo]
        }
    }

    /// Set entry `(r, c)` (and its mirror).
    ///
    /// # Panics
    /// Panics if `(r, c)` lies outside the band or the matrix.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        let (hi, lo) = if r >= c { (r, c) } else { (c, r) };
        let d = hi - lo;
        assert!(d <= self.p, "entry ({r},{c}) outside bandwidth {}", self.p);
        self.band[d][lo] = v;
    }

    /// Add `v` to entry `(r, c)`.
    #[inline]
    pub fn add(&mut self, r: usize, c: usize, v: f64) {
        let (hi, lo) = if r >= c { (r, c) } else { (c, r) };
        let d = hi - lo;
        assert!(d <= self.p, "entry ({r},{c}) outside bandwidth {}", self.p);
        self.band[d][lo] += v;
    }

    /// Matrix-vector product `A·x` (for tests and residual checks).
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n);
        let mut y = vec![0.0; self.n];
        for r in 0..self.n {
            let lo = r.saturating_sub(self.p);
            let hi = (r + self.p + 1).min(self.n);
            let mut acc = 0.0;
            for c in lo..hi {
                acc += self.get(r, c) * x[c];
            }
            y[r] = acc;
        }
        y
    }

    /// Banded Cholesky factorisation `A = L·Lᵀ`; returns the lower factor
    /// in the same banded layout, or `None` if the matrix is not positive
    /// definite (a non-positive pivot is encountered).
    pub fn cholesky(&self) -> Option<BandedCholesky> {
        let n = self.n;
        let p = self.p;
        let mut l = self.band.clone();
        for j in 0..n {
            // Pivot: A[j][j] - sum_{k} L[j][k]^2 over banded k.
            let mut d = l[0][j];
            let kmin = j.saturating_sub(p);
            for k in kmin..j {
                let v = l[j - k][k];
                d -= v * v;
            }
            if d <= 0.0 || !d.is_finite() {
                return None;
            }
            let dj = d.sqrt();
            l[0][j] = dj;
            // Column below the pivot.
            let imax = (j + p + 1).min(n);
            for i in j + 1..imax {
                let mut s = l[i - j][j];
                let kmin = i.saturating_sub(p).max(j.saturating_sub(p));
                for k in kmin..j {
                    // Both L[i][k] and L[j][k] must be inside the band.
                    if i - k <= p && j - k <= p {
                        s -= l[i - k][k] * l[j - k][k];
                    }
                }
                l[i - j][j] = s / dj;
            }
        }
        Some(BandedCholesky { n, p, band: l })
    }
}

/// Lower Cholesky factor in banded layout.
#[derive(Debug, Clone)]
pub struct BandedCholesky {
    n: usize,
    p: usize,
    band: Vec<Vec<f64>>,
}

impl BandedCholesky {
    /// Solve `A·x = b` given `A = L·Lᵀ`.
    ///
    /// # Panics
    /// Panics if `b.len()` differs from the matrix order.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n);
        let mut y = b.to_vec();
        // Forward: L·y = b.
        for i in 0..self.n {
            let kmin = i.saturating_sub(self.p);
            let mut s = y[i];
            for k in kmin..i {
                s -= self.band[i - k][k] * y[k];
            }
            y[i] = s / self.band[0][i];
        }
        // Backward: Lᵀ·x = y.
        for i in (0..self.n).rev() {
            let imax = (i + self.p + 1).min(self.n);
            let mut s = y[i];
            for k in i + 1..imax {
                s -= self.band[k - i][i] * y[k];
            }
            y[i] = s / self.band[0][i];
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dense oracle: naive Cholesky + solve.
    fn dense_solve(a: &SymBanded, b: &[f64]) -> Vec<f64> {
        let n = a.order();
        let mut m: Vec<Vec<f64>> = (0..n).map(|r| (0..n).map(|c| a.get(r, c)).collect()).collect();
        let mut rhs = b.to_vec();
        // Gaussian elimination with no pivoting (SPD).
        for j in 0..n {
            let piv = m[j][j];
            for i in j + 1..n {
                let f = m[i][j] / piv;
                for c in j..n {
                    m[i][c] -= f * m[j][c];
                }
                rhs[i] -= f * rhs[j];
            }
        }
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = rhs[i];
            for c in i + 1..n {
                s -= m[i][c] * x[c];
            }
            x[i] = s / m[i][i];
        }
        x
    }

    fn diagonally_dominant(n: usize, p: usize) -> SymBanded {
        let mut a = SymBanded::zeros(n, p);
        for i in 0..n {
            a.set(i, i, 10.0 + (i % 5) as f64);
            for d in 1..=p {
                if i + d < n {
                    a.set(i + d, i, 1.0 / (d as f64 + 1.0) + 0.01 * ((i + d) % 3) as f64);
                }
            }
        }
        a
    }

    #[test]
    fn get_set_symmetry() {
        let mut a = SymBanded::zeros(5, 2);
        a.set(3, 1, 7.0);
        assert_eq!(a.get(3, 1), 7.0);
        assert_eq!(a.get(1, 3), 7.0);
        assert_eq!(a.get(0, 4), 0.0); // outside band
    }

    #[test]
    #[should_panic(expected = "outside bandwidth")]
    fn set_outside_band_panics() {
        let mut a = SymBanded::zeros(5, 1);
        a.set(4, 0, 1.0);
    }

    #[test]
    fn cholesky_solve_identity() {
        let mut a = SymBanded::zeros(4, 1);
        for i in 0..4 {
            a.set(i, i, 1.0);
        }
        let ch = a.cholesky().unwrap();
        let b = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(ch.solve(&b), b);
    }

    #[test]
    fn cholesky_matches_dense_oracle() {
        for (n, p) in [(6usize, 1usize), (10, 2), (25, 3), (50, 4)] {
            let a = diagonally_dominant(n, p);
            let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
            let fast = a.cholesky().expect("SPD").solve(&b);
            let slow = dense_solve(&a, &b);
            for (f, s) in fast.iter().zip(&slow) {
                assert!((f - s).abs() < 1e-9, "n={n} p={p}: {f} vs {s}");
            }
        }
    }

    #[test]
    fn solve_residual_is_tiny() {
        let a = diagonally_dominant(40, 3);
        let b: Vec<f64> = (0..40).map(|i| 1.0 + (i % 7) as f64).collect();
        let x = a.cholesky().unwrap().solve(&b);
        let ax = a.matvec(&x);
        for (l, r) in ax.iter().zip(&b) {
            assert!((l - r).abs() < 1e-9);
        }
    }

    #[test]
    fn non_spd_is_rejected() {
        let mut a = SymBanded::zeros(3, 1);
        a.set(0, 0, -1.0);
        a.set(1, 1, 1.0);
        a.set(2, 2, 1.0);
        assert!(a.cholesky().is_none());
        // Singular (zero pivot) also rejected.
        let z = SymBanded::zeros(3, 1);
        assert!(z.cholesky().is_none());
    }

    #[test]
    fn bandwidth_zero_is_diagonal() {
        let mut a = SymBanded::zeros(3, 0);
        for i in 0..3 {
            a.set(i, i, (i + 1) as f64);
        }
        let x = a.cholesky().unwrap().solve(&[2.0, 6.0, 12.0]);
        for (got, want) in x.iter().zip(&[2.0, 3.0, 4.0]) {
            assert!((got - want).abs() < 1e-12);
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            #[test]
            fn banded_solve_matches_dense(
                n in 2usize..30,
                p in 1usize..4,
                seed in 0u64..1000
            ) {
                let p = p.min(n - 1);
                let mut a = SymBanded::zeros(n, p);
                // Deterministic pseudo-random SPD matrix.
                let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
                let mut next = || {
                    s ^= s << 13; s ^= s >> 7; s ^= s << 17;
                    (s % 1000) as f64 / 1000.0
                };
                for i in 0..n {
                    a.set(i, i, 5.0 + next());
                    for d in 1..=p {
                        if i + d < n {
                            a.set(i + d, i, next() * 0.5);
                        }
                    }
                }
                let b: Vec<f64> = (0..n).map(|_| next() * 10.0 - 5.0).collect();
                let fast = a.cholesky().unwrap().solve(&b);
                let slow = dense_solve(&a, &b);
                for (f, sl) in fast.iter().zip(&slow) {
                    prop_assert!((f - sl).abs() < 1e-8);
                }
            }
        }
    }
}
