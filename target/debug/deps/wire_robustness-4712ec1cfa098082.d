/root/repo/target/debug/deps/wire_robustness-4712ec1cfa098082.d: crates/numarck-serve/tests/wire_robustness.rs Cargo.toml

/root/repo/target/debug/deps/libwire_robustness-4712ec1cfa098082.rmeta: crates/numarck-serve/tests/wire_robustness.rs Cargo.toml

crates/numarck-serve/tests/wire_robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
