/root/repo/target/debug/deps/climate_sim-aa2256d79fd581a3.d: crates/climate-sim/src/lib.rs crates/climate-sim/src/dataset.rs crates/climate-sim/src/field.rs crates/climate-sim/src/grid.rs crates/climate-sim/src/variables.rs Cargo.toml

/root/repo/target/debug/deps/libclimate_sim-aa2256d79fd581a3.rmeta: crates/climate-sim/src/lib.rs crates/climate-sim/src/dataset.rs crates/climate-sim/src/field.rs crates/climate-sim/src/grid.rs crates/climate-sim/src/variables.rs Cargo.toml

crates/climate-sim/src/lib.rs:
crates/climate-sim/src/dataset.rs:
crates/climate-sim/src/field.rs:
crates/climate-sim/src/grid.rs:
crates/climate-sim/src/variables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
