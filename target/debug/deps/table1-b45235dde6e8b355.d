/root/repo/target/debug/deps/table1-b45235dde6e8b355.d: crates/numarck-bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-b45235dde6e8b355: crates/numarck-bench/src/bin/table1.rs

crates/numarck-bench/src/bin/table1.rs:
