//! The representative-ratio table (the paper's "index table of size
//! `2^B`").
//!
//! Every approximation strategy reduces to the same artefact: a sorted set
//! of at most `2^B − 1` representative change ratios. A point's index is
//! the nearest representative; index 0 is reserved by the encoder for
//! "change below tolerance", so table entry `t` is addressed by the stored
//! index `t + 1`.
//!
//! Assignment uses the same sorted-midpoint binary search as the K-means
//! substrate ([`numarck_kmeans::lloyd1d::SortedCenters`]): for the
//! equal-width and log-scale strategies, nearest-representative assignment
//! dominates (never loses to) the "containing bin" rule the paper
//! describes, while keeping all three strategies on one encoder path.

use numarck_kmeans::lloyd1d::SortedCenters;

/// A learned table of representative change ratios.
#[derive(Debug, Clone, PartialEq)]
pub struct BinTable {
    centers: SortedCenters,
}

impl BinTable {
    /// Build from representative ratios (sorted/deduplicated internally).
    ///
    /// # Panics
    /// Panics if any representative is non-finite.
    pub fn new(representatives: Vec<f64>) -> Self {
        Self { centers: SortedCenters::new(representatives) }
    }

    /// The sorted representatives.
    #[inline]
    pub fn representatives(&self) -> &[f64] {
        self.centers.centers()
    }

    /// Number of representatives.
    #[inline]
    pub fn len(&self) -> usize {
        self.centers.len()
    }

    /// True when the table is empty (no large changes existed).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.centers.is_empty()
    }

    /// Index of the representative nearest to `ratio`, or `None` for an
    /// empty table.
    #[inline]
    pub fn nearest(&self, ratio: f64) -> Option<usize> {
        if self.centers.is_empty() {
            None
        } else {
            Some(self.centers.nearest(ratio))
        }
    }

    /// Nearest representative and its approximation error, or `None` for
    /// an empty table.
    #[inline]
    pub fn quantize(&self, ratio: f64) -> Option<(usize, f64, f64)> {
        let idx = self.nearest(ratio)?;
        let rep = self.centers.centers()[idx];
        Some((idx, rep, (rep - ratio).abs()))
    }

    /// Representative at `idx`.
    ///
    /// # Panics
    /// Panics if `idx` is out of range.
    #[inline]
    pub fn representative(&self, idx: usize) -> f64 {
        self.centers.centers()[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_returns_nearest_and_error() {
        let t = BinTable::new(vec![-0.1, 0.0, 0.1]);
        let (idx, rep, err) = t.quantize(0.08).unwrap();
        assert_eq!(idx, 2);
        assert_eq!(rep, 0.1);
        assert!((err - 0.02).abs() < 1e-15);
    }

    #[test]
    fn empty_table_quantizes_nothing() {
        let t = BinTable::new(vec![]);
        assert!(t.is_empty());
        assert_eq!(t.nearest(0.5), None);
        assert_eq!(t.quantize(0.5), None);
    }

    #[test]
    fn representatives_are_sorted_unique() {
        let t = BinTable::new(vec![0.3, -0.2, 0.3, 0.0]);
        assert_eq!(t.representatives(), &[-0.2, 0.0, 0.3]);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn extreme_ratios_clamp_to_end_representatives() {
        let t = BinTable::new(vec![-0.5, 0.5]);
        assert_eq!(t.nearest(-100.0), Some(0));
        assert_eq!(t.nearest(100.0), Some(1));
    }
}
