/root/repo/target/debug/examples/soft_error_detection-34554a9ab6107354.d: examples/soft_error_detection.rs

/root/repo/target/debug/examples/soft_error_detection-34554a9ab6107354: examples/soft_error_detection.rs

examples/soft_error_detection.rs:
