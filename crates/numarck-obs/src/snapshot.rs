//! Point-in-time views and their renderers.
//!
//! A [`Snapshot`] freezes every instrument of a [`crate::Registry`]
//! into plain data, which then renders to Prometheus text exposition
//! ([`render_prometheus`]) or a JSON object ([`render_json`], embedded
//! by `numarck-bench` into `BENCH_*.json`). Histograms are summarised
//! as count/sum plus p50/p90/p99 midpoints — the same shape that rides
//! the extended `Stats` wire reply.

use crate::instrument::{Counter, Gauge, Histogram};
use crate::ring::{Event, EventRing};

/// Compact histogram summary: total count, running sum, and three
/// quantile midpoints (≤ 12.5% relative error, see
/// [`crate::Histogram`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Total observations.
    pub count: u64,
    /// Sum of observed values (e.g. total nanoseconds).
    pub sum: u64,
    /// Median midpoint.
    pub p50: u64,
    /// 90th-percentile midpoint.
    pub p90: u64,
    /// 99th-percentile midpoint.
    pub p99: u64,
}

impl HistogramSummary {
    /// Summarise a live histogram (one frozen bucket read).
    pub fn of(h: &Histogram) -> Self {
        let buckets = h.bucket_counts();
        Self {
            count: buckets.iter().sum(),
            sum: h.sum(),
            p50: Histogram::quantile_from(&buckets, 0.50),
            p90: Histogram::quantile_from(&buckets, 0.90),
            p99: Histogram::quantile_from(&buckets, 0.99),
        }
    }

    /// Mean observed value, 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

/// Frozen view of a registry: sorted name/value lists plus the recent
/// events, detached from the live atomics.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter name → value, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge name → value, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// Histogram name → summary, sorted by name.
    pub histograms: Vec<(String, HistogramSummary)>,
    /// Recent events, oldest first.
    pub events: Vec<Event>,
}

impl Snapshot {
    /// Capture from instrument iterators (called by
    /// [`crate::Registry::snapshot`]; the registry guarantees sorted
    /// order via its `BTreeMap`s).
    pub(crate) fn capture<'a>(
        counters: impl Iterator<Item = (&'a str, &'a Counter)>,
        gauges: impl Iterator<Item = (&'a str, &'a Gauge)>,
        histograms: impl Iterator<Item = (&'a str, &'a Histogram)>,
        events: &EventRing,
    ) -> Self {
        Self {
            counters: counters.map(|(k, c)| (k.to_owned(), c.get())).collect(),
            gauges: gauges.map(|(k, g)| (k.to_owned(), g.get())).collect(),
            histograms: histograms
                .map(|(k, h)| (k.to_owned(), HistogramSummary::of(h)))
                .collect(),
            events: events.recent(),
        }
    }

    /// Merge another snapshot into this one. Metric names across the
    /// NUMARCK subsystems carry disjoint prefixes (`numarck_`, `ckpt_`,
    /// `nsrv_`, `par_`), so collisions are not expected; if one occurs,
    /// counters and gauges are summed and histogram summaries are
    /// combined (count/sum added, quantiles take the max — an
    /// approximation that only matters for a name clash that should
    /// not happen).
    pub fn merge(&mut self, other: Snapshot) {
        merge_sorted(&mut self.counters, other.counters, |a, b| *a += b);
        merge_sorted(&mut self.gauges, other.gauges, |a, b| *a += b);
        merge_sorted(&mut self.histograms, other.histograms, |a, b| {
            a.count += b.count;
            a.sum += b.sum;
            a.p50 = a.p50.max(b.p50);
            a.p90 = a.p90.max(b.p90);
            a.p99 = a.p99.max(b.p99);
        });
        self.events.extend(other.events);
        self.events.sort_by_key(|e| e.unix_ms);
    }
}

fn merge_sorted<V>(
    into: &mut Vec<(String, V)>,
    from: Vec<(String, V)>,
    combine: impl Fn(&mut V, V),
) {
    for (name, value) in from {
        match into.binary_search_by(|(n, _)| n.as_str().cmp(&name)) {
            Ok(i) => combine(&mut into[i].1, value),
            Err(i) => into.insert(i, (name, value)),
        }
    }
}

/// Render a snapshot in the Prometheus text exposition format.
/// Counters and gauges render as their native types; histograms render
/// as `summary` metrics (`{quantile="…"}` samples plus `_sum` and
/// `_count`), which is the faithful encoding of our fixed-quantile
/// summaries.
pub fn render_prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snap.counters {
        out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
    }
    for (name, value) in &snap.gauges {
        out.push_str(&format!("# TYPE {name} gauge\n{name} {value}\n"));
    }
    for (name, s) in &snap.histograms {
        out.push_str(&format!(
            "# TYPE {name} summary\n\
             {name}{{quantile=\"0.5\"}} {}\n\
             {name}{{quantile=\"0.9\"}} {}\n\
             {name}{{quantile=\"0.99\"}} {}\n\
             {name}_sum {}\n\
             {name}_count {}\n",
            s.p50, s.p90, s.p99, s.sum, s.count
        ));
    }
    out
}

/// Render a snapshot as a JSON object:
/// `{"counters":{…},"gauges":{…},"histograms":{name:{count,sum,p50,p90,p99}},"events":[…]}`.
/// Hand-rolled to keep the crate dependency-free, matching the
/// workspace's existing JSON convention in `numarck-bench`.
pub fn render_json(snap: &Snapshot) -> String {
    let mut out = String::from("{\"counters\":{");
    for (i, (name, value)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{}:{value}", json_string(name)));
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, value)) in snap.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{}:{value}", json_string(name)));
    }
    out.push_str("},\"histograms\":{");
    for (i, (name, s)) in snap.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{}:{{\"count\":{},\"sum\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
            json_string(name),
            s.count,
            s.sum,
            s.p50,
            s.p90,
            s.p99
        ));
    }
    out.push_str("},\"events\":[");
    for (i, e) in snap.events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"unix_ms\":{},\"level\":\"{}\",\"message\":{}}}",
            e.unix_ms,
            e.level.as_str(),
            json_string(&e.message)
        ));
    }
    out.push_str("]}");
    out
}

/// Escape a string as a JSON string literal (quotes included).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Level, Registry};

    fn sample_snapshot() -> Snapshot {
        let r = Registry::new();
        r.counter("numarck_encodes_total").add(4);
        r.gauge("nsrv_queue_depth").set(2);
        let h = r.histogram("nsrv_request_put_ns");
        for _ in 0..100 {
            h.record(1_000);
        }
        r.events().push(Level::Error, "disk \"full\"\n");
        r.snapshot()
    }

    #[test]
    fn prometheus_rendering_has_types_and_samples() {
        let text = render_prometheus(&sample_snapshot());
        assert!(text.contains("# TYPE numarck_encodes_total counter"));
        assert!(text.contains("numarck_encodes_total 4"));
        assert!(text.contains("# TYPE nsrv_queue_depth gauge"));
        assert!(text.contains("nsrv_queue_depth 2"));
        assert!(text.contains("# TYPE nsrv_request_put_ns summary"));
        assert!(text.contains("nsrv_request_put_ns{quantile=\"0.5\"}"));
        assert!(text.contains("nsrv_request_put_ns_count 100"));
        assert!(text.contains("nsrv_request_put_ns_sum 100000"));
        // Every line is either a comment or `name[{labels}] value`.
        for line in text.lines() {
            assert!(
                line.starts_with("# ") || line.split_whitespace().count() == 2,
                "malformed line: {line:?}"
            );
        }
    }

    #[test]
    fn json_rendering_is_well_formed_and_escaped() {
        let json = render_json(&sample_snapshot());
        assert!(json.contains("\"numarck_encodes_total\":4"));
        assert!(json.contains("\"nsrv_queue_depth\":2"));
        assert!(json.contains("\"count\":100"));
        // The event message's quote and newline must be escaped.
        assert!(json.contains("disk \\\"full\\\"\\n"));
        // Crude balance check on the hand-rolled output.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn summary_mean_handles_empty() {
        assert_eq!(HistogramSummary::default().mean(), 0);
        let s = HistogramSummary { count: 4, sum: 100, p50: 25, p90: 25, p99: 25 };
        assert_eq!(s.mean(), 25);
    }

    #[test]
    fn merge_is_union_with_sum_on_collision() {
        let r1 = Registry::new();
        r1.counter("a_total").add(1);
        r1.counter("b_total").add(2);
        let r2 = Registry::new();
        r2.counter("b_total").add(10);
        r2.counter("c_total").add(3);
        r2.gauge("g").set(5);
        let mut snap = r1.snapshot();
        snap.merge(r2.snapshot());
        assert_eq!(
            snap.counters,
            vec![
                ("a_total".to_owned(), 1),
                ("b_total".to_owned(), 12),
                ("c_total".to_owned(), 3)
            ]
        );
        assert_eq!(snap.gauges, vec![("g".to_owned(), 5)]);
    }
}
