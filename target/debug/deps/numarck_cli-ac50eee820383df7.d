/root/repo/target/debug/deps/numarck_cli-ac50eee820383df7.d: crates/numarck-cli/src/lib.rs crates/numarck-cli/src/args.rs crates/numarck-cli/src/chainfile.rs crates/numarck-cli/src/commands.rs crates/numarck-cli/src/seqfile.rs crates/numarck-cli/src/serve_cmd.rs

/root/repo/target/debug/deps/libnumarck_cli-ac50eee820383df7.rmeta: crates/numarck-cli/src/lib.rs crates/numarck-cli/src/args.rs crates/numarck-cli/src/chainfile.rs crates/numarck-cli/src/commands.rs crates/numarck-cli/src/seqfile.rs crates/numarck-cli/src/serve_cmd.rs

crates/numarck-cli/src/lib.rs:
crates/numarck-cli/src/args.rs:
crates/numarck-cli/src/chainfile.rs:
crates/numarck-cli/src/commands.rs:
crates/numarck-cli/src/seqfile.rs:
crates/numarck-cli/src/serve_cmd.rs:
