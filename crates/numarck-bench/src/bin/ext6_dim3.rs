//! Extension experiment 6: the Fig. 5 sweep on the faithful 3-D solver.
//!
//! The figure sweeps use the 2-D solver for speed; this binary repeats
//! the per-variable strategy comparison on true 16³ blocks (the paper's
//! actual geometry) to confirm the dimensional substitution does not
//! change the compression story: clustering still dominates, FLASH data
//! stays easy, errors stay bounded.

use flash_sim::dim3::{FlashSimulation3, Problem3};
use flash_sim::FlashVar;
use numarck_bench::data::flash_figure_vars;
use numarck_bench::report::{pct, print_table, write_csv};
use numarck_bench::run::{mean_of, strategy_sweep};
use numarck_bench::RESULTS_DIR;
use std::collections::BTreeMap;

fn main() {
    let checkpoints = 10usize;
    let mut sim = FlashSimulation3::paper_default(Problem3::SedovBlast, 2);
    sim.run_steps(10);
    let mut seqs: BTreeMap<FlashVar, Vec<Vec<f64>>> = BTreeMap::new();
    for c in 0..checkpoints {
        if c > 0 {
            sim.run_steps(2);
        }
        for (v, data) in sim.checkpoint() {
            seqs.entry(v).or_default().push(data);
        }
    }

    println!(
        "Extension 6: strategy sweep on the 3-D solver (2x2x2 blocks of 16^3 = {} cells)",
        sim.num_cells()
    );
    let mut table = vec![vec![
        "variable".to_string(),
        "strategy".to_string(),
        "incompressible %".to_string(),
        "mean error %".to_string(),
    ]];
    let mut csv = vec![vec![
        "variable".to_string(),
        "strategy".to_string(),
        "incompressible".to_string(),
        "mean_error".to_string(),
    ]];
    for var in flash_figure_vars() {
        for (strategy, stats) in strategy_sweep(&seqs[&var], 8, 0.001) {
            let gamma = mean_of(&stats, |s| s.incompressible_ratio);
            let err = mean_of(&stats, |s| s.mean_error_rate);
            table.push(vec![
                var.name().to_string(),
                strategy.name().to_string(),
                pct(gamma, 2),
                pct(err, 4),
            ]);
            csv.push(vec![
                var.name().to_string(),
                strategy.name().to_string(),
                gamma.to_string(),
                err.to_string(),
            ]);
        }
    }
    print_table(&table);
    println!("\n(expected: same shape as fig5 — clustering lowest γ on every variable,");
    println!(" mean errors well below E; the 2-D figure substrate is representative)");
    match write_csv(RESULTS_DIR, "ext6_dim3_sweep", &csv) {
        Ok(p) => println!("wrote {p}"),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
