//! Empty stand-in: the workspace declares `crossbeam` but no code imports it.
