/root/repo/target/debug/deps/ext7_solver_order-f3315810fce03494.d: crates/numarck-bench/src/bin/ext7_solver_order.rs

/root/repo/target/debug/deps/ext7_solver_order-f3315810fce03494: crates/numarck-bench/src/bin/ext7_solver_order.rs

crates/numarck-bench/src/bin/ext7_solver_order.rs:
