/root/repo/target/debug/deps/numarck-f24447eca2dc094c.d: crates/numarck-cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libnumarck-f24447eca2dc094c.rmeta: crates/numarck-cli/src/main.rs Cargo.toml

crates/numarck-cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
