//! Container format **v2** — shared dictionaries, seekable directory,
//! mmap-ready alignment.
//!
//! ```text
//! header (64 bytes):
//!   [0..4)   magic b"NCKP"
//!   [4..6)   version (u16) = 2
//!   [6]      kind: 0 = full, 1 = delta
//!   [7]      flags: bit 0 = file carries a shared dictionary
//!   [8..16)  iteration number (u64)
//!   [16..20) variable count (u32)
//!   [20..24) delta span (u32) — same offset and meaning as v1, so
//!            span peeking never needs to know the version
//!   [24..32) directory offset (u64)
//!   [32..40) dictionary offset (u64, 0 when absent)
//!   [40..44) dictionary entries (u32)
//!   [44..48) dictionary crc32 (0 when absent)
//!   [48..52) directory crc32 (over [dir_off .. len−4))
//!   [52..56) header crc32 (over bytes [0..52))
//!   [56..64) reserved (0)
//! dictionary  entries × f64 LE, at offset 64, padded to 64  (deltas only)
//! sections    one per variable, each starting on a 64-byte boundary
//! directory   per variable, in ascending name order:
//!               name_len (u16) | name | section_off (u64) |
//!               section_len (u64) | section_crc32 (u32)
//! crc32 of everything above (u32)
//! ```
//!
//! A **full** section is the raw `num_points × f64 LE` values. A
//! **delta** section is:
//!
//! ```text
//! sub-header (64 bytes):
//!   [0]      flags: bit 0 = Huffman-coded indices,
//!                   bit 1 = table is the whole dictionary
//!   [1]      bits B
//!   [2..4)   reserved (0)
//!   [4..8)   table_len (u32)
//!   [8..16)  tolerance E (f64)
//!   [16..24) num_points (u64)
//!   [24..32) num_compressible (u64)
//!   [32..40) bitmap offset, relative to the section start (u64, ×64)
//!   [40..48) index offset, relative (u64, ×64)
//!   [48..56) exacts offset, relative (u64, ×64)
//!   [56..64) aux: Huffman bit length of the index stream, else 0
//! table refs  table_len × u32 dictionary positions (absent when the
//!             table is the whole dictionary)
//! bitmap      ceil(num_points / 64) × u64, at the bitmap offset
//! indices     fixed-width: ceil(num_compressible · B / 64) × u64
//!             Huffman: (table_len + 1) code-length bytes padded to 8,
//!             then ceil(aux / 64) × u64
//! exacts      (num_points − num_compressible) × f64
//! ```
//!
//! Every variable references the *shared dictionary* (the union of the
//! per-variable centroid tables, sorted by total order) instead of
//! embedding its own table: the pooled table the group encoder fits is
//! persisted once per iteration, and per-variable cost drops to zero
//! (whole-dictionary flag) or 4 bytes per entry. All three payload
//! subsections start on 64-byte boundaries relative to the file, so a
//! mapped file decodes in place — see
//! [`MappedCheckpoint::decode_variable`].

use numarck::decode::BlockRef;
use numarck::encode::CompressedIteration;
use numarck::error::NumarckError;
use numarck::serialize as nser;
use numarck::table::BinTable;

use super::{CheckpointFile, CheckpointKind, SectionInfo, MAGIC, VERSION_V2};
use crate::mmapio::AlignedBytes;
use crate::VariableSet;

/// Header length; also the offset of the dictionary when present.
pub const HEADER_LEN: usize = 64;
/// Delta section sub-header length.
pub const SUBHEADER_LEN: usize = 64;
/// Section alignment: every section (and every payload subsection within
/// a delta section) starts on a multiple of this, sized so mapped decode
/// slices are always reinterpretable and cache-line aligned.
pub const SECTION_ALIGN: usize = 64;

/// File flag: a shared dictionary section is present.
const FLAG_HAS_DICT: u8 = 0x01;
/// Section flag: the index stream is Huffman-coded.
const SEC_HUFFMAN: u8 = 0x01;
/// Section flag: the variable's table is the whole dictionary.
const SEC_WHOLE_DICT: u8 = 0x02;

/// Writer knobs for the v2 container.
#[derive(Debug, Clone, Copy, Default)]
pub struct V2Options {
    /// Try per-section entropy coding: each section's index stream is
    /// Huffman-coded when that is actually smaller than fixed-width
    /// (recorded in the section's flag byte). Off by default — fixed
    /// width keeps the section decodable in place from a mapped file.
    pub entropy: bool,
}

fn align_up(x: usize, align: usize) -> usize {
    x.div_ceil(align) * align
}

fn pad_to(buf: &mut Vec<u8>, align: usize) {
    buf.resize(align_up(buf.len(), align), 0);
}

fn corrupt(msg: impl Into<String>) -> NumarckError {
    NumarckError::Corrupt(msg.into())
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Serialise a checkpoint in the v2 layout.
pub(super) fn to_bytes(file: &CheckpointFile, opts: &V2Options) -> Vec<u8> {
    let mut buf = vec![0u8; HEADER_LEN];

    // Shared dictionary: union of the per-variable tables, sorted by
    // total order, deduplicated by bit pattern. When the manager's group
    // encoder produced one pooled table, this *is* that table and every
    // section takes the whole-dictionary shortcut.
    let dict: Vec<f64> = match &file.kind {
        CheckpointKind::Full(_) => Vec::new(),
        CheckpointKind::Delta(blocks) => build_dict(blocks),
    };
    let (flags, dict_off, dict_crc) = if dict.is_empty() {
        (0u8, 0usize, 0u32)
    } else {
        let start = buf.len();
        for &r in &dict {
            buf.extend_from_slice(&r.to_le_bytes());
        }
        let crc = nser::crc32(&buf[start..]);
        pad_to(&mut buf, SECTION_ALIGN);
        (FLAG_HAS_DICT, start, crc)
    };

    // Sections, each on a 64-byte boundary; the directory records the
    // unpadded length and a per-section CRC so a seekable reader can
    // verify exactly what it touches.
    let mut entries: Vec<(String, u64, u64, u32)> = Vec::new();
    let (kind_byte, count) = match &file.kind {
        CheckpointKind::Full(vars) => {
            for (name, data) in vars {
                debug_assert_eq!(buf.len() % SECTION_ALIGN, 0);
                let off = buf.len();
                for &v in data {
                    buf.extend_from_slice(&v.to_le_bytes());
                }
                let crc = nser::crc32(&buf[off..]);
                entries.push((name.clone(), off as u64, (buf.len() - off) as u64, crc));
                pad_to(&mut buf, SECTION_ALIGN);
            }
            (0u8, vars.len())
        }
        CheckpointKind::Delta(blocks) => {
            for (name, block) in blocks {
                debug_assert_eq!(buf.len() % SECTION_ALIGN, 0);
                let off = buf.len();
                encode_delta_section(&mut buf, block, &dict, opts);
                let crc = nser::crc32(&buf[off..]);
                entries.push((name.clone(), off as u64, (buf.len() - off) as u64, crc));
                pad_to(&mut buf, SECTION_ALIGN);
            }
            (1u8, blocks.len())
        }
    };

    let dir_off = buf.len();
    for (name, off, len, crc) in &entries {
        assert!(name.len() <= u16::MAX as usize, "variable name too long");
        buf.extend_from_slice(&(name.len() as u16).to_le_bytes());
        buf.extend_from_slice(name.as_bytes());
        buf.extend_from_slice(&off.to_le_bytes());
        buf.extend_from_slice(&len.to_le_bytes());
        buf.extend_from_slice(&crc.to_le_bytes());
    }
    let dir_crc = nser::crc32(&buf[dir_off..]);

    let span = match &file.kind {
        CheckpointKind::Full(_) => 0,
        CheckpointKind::Delta(_) => file.delta_span,
    };
    let mut header = [0u8; HEADER_LEN];
    header[0..4].copy_from_slice(&MAGIC);
    header[4..6].copy_from_slice(&VERSION_V2.to_le_bytes());
    header[6] = kind_byte;
    header[7] = flags;
    header[8..16].copy_from_slice(&file.iteration.to_le_bytes());
    header[16..20].copy_from_slice(&(count as u32).to_le_bytes());
    header[20..24].copy_from_slice(&span.to_le_bytes());
    header[24..32].copy_from_slice(&(dir_off as u64).to_le_bytes());
    header[32..40].copy_from_slice(&(dict_off as u64).to_le_bytes());
    header[40..44].copy_from_slice(&(dict.len() as u32).to_le_bytes());
    header[44..48].copy_from_slice(&dict_crc.to_le_bytes());
    header[48..52].copy_from_slice(&dir_crc.to_le_bytes());
    let hcrc = nser::crc32(&header[..52]);
    header[52..56].copy_from_slice(&hcrc.to_le_bytes());
    buf[..HEADER_LEN].copy_from_slice(&header);

    let crc = nser::crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf
}

/// Union of every block's representatives: sorted by `total_cmp`,
/// deduplicated by bit pattern (so `-0.0`/`0.0` from different variables
/// both survive and every table entry round-trips bit-exactly).
fn build_dict(blocks: &std::collections::BTreeMap<String, CompressedIteration>) -> Vec<f64> {
    let mut all: Vec<f64> = blocks
        .values()
        .flat_map(|b| b.table.representatives().iter().copied())
        .collect();
    all.sort_by(|a, b| a.total_cmp(b));
    all.dedup_by(|a, b| a.to_bits() == b.to_bits());
    all
}

/// Position of `r` in the sorted-by-total-order dictionary. `r` is
/// guaranteed present: the dictionary was built from these very tables.
fn dict_index(dict: &[f64], r: f64) -> u32 {
    let pos = dict.partition_point(|d| d.total_cmp(&r) == std::cmp::Ordering::Less);
    debug_assert!(pos < dict.len() && dict[pos].to_bits() == r.to_bits());
    pos as u32
}

fn encode_delta_section(
    buf: &mut Vec<u8>,
    block: &CompressedIteration,
    dict: &[f64],
    opts: &V2Options,
) {
    let reps = block.table.representatives();
    let whole_dict = reps.len() == dict.len()
        && reps.iter().zip(dict).all(|(a, b)| a.to_bits() == b.to_bits());
    let n = block.num_points;
    let nc = block.num_compressible;
    let bits = block.bits;

    let mut flags = 0u8;
    if whole_dict {
        flags |= SEC_WHOLE_DICT;
    }

    // Per-section entropy decision: Huffman only when it actually wins.
    let fixed_index_bytes = (nc * bits as usize).div_ceil(64) * 8;
    let mut huffman: Option<numarck::huffman::HuffmanEncoded> = None;
    if opts.entropy && nc > 0 {
        let num_symbols = block.table.len() + 1;
        let symbols =
            (0..nc).map(|i| numarck::bitstream::read_at(&block.index_words, bits, i));
        let h = numarck::huffman::encode_symbols(symbols, num_symbols);
        let hbytes = align_up(num_symbols, 8) + h.len_bits.div_ceil(64) * 8;
        if hbytes < fixed_index_bytes {
            flags |= SEC_HUFFMAN;
            huffman = Some(h);
        }
    }
    let (index_bytes, aux) = match &huffman {
        Some(h) => (align_up(block.table.len() + 1, 8) + h.len_bits.div_ceil(64) * 8, h.len_bits),
        None => (fixed_index_bytes, 0),
    };

    let table_bytes = if whole_dict { 0 } else { 4 * reps.len() };
    let bitmap_bytes = n.div_ceil(64) * 8;
    let exact_bytes = block.exact_values.len() * 8;
    let bitmap_rel = align_up(SUBHEADER_LEN + table_bytes, SECTION_ALIGN);
    let index_rel = align_up(bitmap_rel + bitmap_bytes, SECTION_ALIGN);
    let exacts_rel = align_up(index_rel + index_bytes, SECTION_ALIGN);

    let base = buf.len();
    let mut sub = [0u8; SUBHEADER_LEN];
    sub[0] = flags;
    sub[1] = bits;
    sub[4..8].copy_from_slice(&(reps.len() as u32).to_le_bytes());
    sub[8..16].copy_from_slice(&block.tolerance.to_le_bytes());
    sub[16..24].copy_from_slice(&(n as u64).to_le_bytes());
    sub[24..32].copy_from_slice(&(nc as u64).to_le_bytes());
    sub[32..40].copy_from_slice(&(bitmap_rel as u64).to_le_bytes());
    sub[40..48].copy_from_slice(&(index_rel as u64).to_le_bytes());
    sub[48..56].copy_from_slice(&(exacts_rel as u64).to_le_bytes());
    sub[56..64].copy_from_slice(&(aux as u64).to_le_bytes());
    buf.extend_from_slice(&sub);

    if !whole_dict {
        for &r in reps {
            buf.extend_from_slice(&dict_index(dict, r).to_le_bytes());
        }
    }
    buf.resize(base + bitmap_rel, 0);
    for &w in &block.bitmap {
        buf.extend_from_slice(&w.to_le_bytes());
    }
    buf.resize(base + index_rel, 0);
    match &huffman {
        Some(h) => {
            buf.extend_from_slice(h.code.lengths());
            buf.resize(base + index_rel + align_up(block.table.len() + 1, 8), 0);
            for &w in &h.words {
                buf.extend_from_slice(&w.to_le_bytes());
            }
        }
        None => {
            let words = fixed_index_bytes / 8;
            debug_assert!(block.index_words.len() >= words);
            for &w in &block.index_words[..words] {
                buf.extend_from_slice(&w.to_le_bytes());
            }
        }
    }
    buf.resize(base + exacts_rel, 0);
    for &v in &block.exact_values {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    debug_assert_eq!(buf.len() - base, exacts_rel + exact_bytes);
}

// ---------------------------------------------------------------------------
// Layout parsing (shared by the owned reader and the mapped reader)
// ---------------------------------------------------------------------------

/// One directory row.
#[derive(Debug, Clone)]
pub(super) struct DirEntry {
    pub name: String,
    pub off: usize,
    pub len: usize,
    pub crc: u32,
}

/// Validated v2 frame: header fields plus the parsed directory. Section
/// *contents* are not yet validated — per-section CRCs gate each access.
#[derive(Debug, Clone)]
pub(super) struct Layout {
    pub kind_byte: u8,
    pub iteration: u64,
    pub delta_span: u32,
    pub dict_off: usize,
    pub dict_entries: usize,
    pub entries: Vec<DirEntry>,
}

fn le_u16(d: &[u8], at: usize) -> u16 {
    u16::from_le_bytes(d[at..at + 2].try_into().expect("2 bytes"))
}
fn le_u32(d: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(d[at..at + 4].try_into().expect("4 bytes"))
}
fn le_u64(d: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(d[at..at + 8].try_into().expect("8 bytes"))
}
fn le_f64(d: &[u8], at: usize) -> f64 {
    f64::from_le_bytes(d[at..at + 8].try_into().expect("8 bytes"))
}

/// Hostile-length clamp: counts larger than this are lies — no real
/// checkpoint approaches 2^40 points or sections.
const SANE_MAX: u64 = 1 << 40;

fn checked_count(v: u64, what: &str) -> Result<usize, NumarckError> {
    if v > SANE_MAX {
        return Err(corrupt(format!("{what} {v} implausibly large")));
    }
    Ok(v as usize)
}

/// Parse and validate the v2 frame: header CRC, directory CRC,
/// dictionary CRC, and the section placement rules (ascending
/// 64-byte-aligned offsets, no overlap, no gap other than alignment
/// padding, directory exactly where the last section's padding ends).
///
/// `check_file_crc` additionally verifies the whole-file trailing CRC.
/// Both the owned and the mapped reader pass `true` — single-bit rot
/// anywhere in the file (padding included) must fail loudly. `false`
/// exists for future partial readers that trust per-section CRCs only.
pub(super) fn parse_layout(data: &[u8], check_file_crc: bool) -> Result<Layout, NumarckError> {
    if data.len() < HEADER_LEN + 4 {
        return Err(corrupt("v2 checkpoint file too short"));
    }
    if check_file_crc {
        let stored = le_u32(data, data.len() - 4);
        let computed = nser::crc32(&data[..data.len() - 4]);
        if stored != computed {
            return Err(corrupt(format!(
                "checkpoint crc mismatch: stored {stored:#x}, computed {computed:#x}"
            )));
        }
    }
    if data[0..4] != MAGIC {
        return Err(corrupt("bad checkpoint magic"));
    }
    let version = le_u16(data, 4);
    if version != VERSION_V2 {
        return Err(NumarckError::VersionMismatch { found: version, expected: VERSION_V2 });
    }
    let stored_hcrc = le_u32(data, 52);
    let computed_hcrc = nser::crc32(&data[..52]);
    if stored_hcrc != computed_hcrc {
        return Err(corrupt(format!(
            "header crc mismatch: stored {stored_hcrc:#x}, computed {computed_hcrc:#x}"
        )));
    }
    let kind_byte = data[6];
    if kind_byte > 1 {
        return Err(corrupt(format!("unknown checkpoint kind {kind_byte}")));
    }
    let flags = data[7];
    if flags & !FLAG_HAS_DICT != 0 {
        return Err(corrupt(format!("unknown header flags {flags:#x}")));
    }
    if data[56..64].iter().any(|&b| b != 0) {
        return Err(corrupt("nonzero reserved header bytes"));
    }
    let iteration = le_u64(data, 8);
    let var_count = checked_count(le_u32(data, 16) as u64, "variable count")?;
    let delta_span = le_u32(data, 20);
    if kind_byte == 0 && delta_span != 0 {
        return Err(corrupt("full checkpoint with nonzero delta span"));
    }
    let dir_off = checked_count(le_u64(data, 24), "directory offset")?;
    let dict_off = checked_count(le_u64(data, 32), "dictionary offset")?;
    let dict_entries = checked_count(le_u32(data, 40) as u64, "dictionary entries")?;
    let dict_crc = le_u32(data, 44);
    let dir_crc = le_u32(data, 48);

    if dir_off < HEADER_LEN || dir_off > data.len() - 4 {
        return Err(corrupt(format!("directory offset {dir_off} out of bounds")));
    }
    let computed_dir_crc = nser::crc32(&data[dir_off..data.len() - 4]);
    if dir_crc != computed_dir_crc {
        return Err(corrupt(format!(
            "directory crc mismatch: stored {dir_crc:#x}, computed {computed_dir_crc:#x}"
        )));
    }

    // Dictionary frame.
    let sections_start;
    if flags & FLAG_HAS_DICT != 0 {
        if kind_byte == 0 {
            return Err(corrupt("full checkpoint carries a dictionary"));
        }
        if dict_off != HEADER_LEN || dict_entries == 0 {
            return Err(corrupt("dictionary flag set but frame inconsistent"));
        }
        let dict_end = dict_off + dict_entries * 8;
        if dict_end > dir_off {
            return Err(corrupt("dictionary overruns the directory"));
        }
        let computed = nser::crc32(&data[dict_off..dict_end]);
        if dict_crc != computed {
            return Err(corrupt(format!(
                "dictionary crc mismatch: stored {dict_crc:#x}, computed {computed:#x}"
            )));
        }
        // Entries: finite, strictly ascending in total order (unique by
        // bit pattern) — so per-variable references cannot silently
        // shift or alias.
        let mut prev: Option<f64> = None;
        for i in 0..dict_entries {
            let v = le_f64(data, dict_off + i * 8);
            if !v.is_finite() {
                return Err(corrupt("non-finite dictionary entry"));
            }
            if let Some(p) = prev {
                if p.total_cmp(&v) != std::cmp::Ordering::Less {
                    return Err(corrupt("dictionary entries not strictly ascending"));
                }
            }
            prev = Some(v);
        }
        sections_start = align_up(dict_end, SECTION_ALIGN);
    } else {
        if dict_off != 0 || dict_entries != 0 || dict_crc != 0 {
            return Err(corrupt("dictionary fields set without the dictionary flag"));
        }
        sections_start = HEADER_LEN;
    }

    // Directory rows.
    let mut entries = Vec::with_capacity(var_count);
    let mut cur = dir_off;
    let dir_end = data.len() - 4;
    for _ in 0..var_count {
        if dir_end - cur < 2 {
            return Err(corrupt("truncated directory entry"));
        }
        let name_len = le_u16(data, cur) as usize;
        cur += 2;
        if dir_end - cur < name_len + 20 {
            return Err(corrupt("truncated directory entry"));
        }
        let name = std::str::from_utf8(&data[cur..cur + name_len])
            .map_err(|_| corrupt("variable name not UTF-8"))?
            .to_string();
        cur += name_len;
        let off = checked_count(le_u64(data, cur), "section offset")?;
        let len = checked_count(le_u64(data, cur + 8), "section length")?;
        let crc = le_u32(data, cur + 16);
        cur += 20;
        entries.push(DirEntry { name, off, len, crc });
    }
    if cur != dir_end {
        return Err(corrupt(format!("{} trailing directory bytes", dir_end - cur)));
    }
    if entries.windows(2).any(|w| w[0].name >= w[1].name) {
        return Err(corrupt("directory names not strictly ascending"));
    }

    // Section placement: offsets must tile [sections_start, dir_off)
    // exactly (alignment padding aside). This single rule rejects lying
    // offsets, lying lengths, overlapping sections and smuggled bytes.
    let mut expected = sections_start;
    for e in &entries {
        if e.off != expected {
            return Err(corrupt(format!(
                "section '{}' at offset {}, expected {expected}",
                e.name, e.off
            )));
        }
        let end = e
            .off
            .checked_add(e.len)
            .filter(|&end| end <= dir_off)
            .ok_or_else(|| corrupt(format!("section '{}' overruns the directory", e.name)))?;
        expected = align_up(end, SECTION_ALIGN);
    }
    if expected != dir_off {
        return Err(corrupt(format!(
            "directory at {dir_off} but sections end at {expected}"
        )));
    }

    Ok(Layout { kind_byte, iteration, delta_span, dict_off, dict_entries, entries })
}

/// The dictionary values (empty slice when the file has none).
///
/// Byte-copy free only when `data` is suitably aligned; the owned
/// reader uses [`read_dict`] instead.
fn dict_bytes<'a>(data: &'a [u8], layout: &Layout) -> &'a [u8] {
    &data[layout.dict_off..layout.dict_off + layout.dict_entries * 8]
}

fn read_dict(data: &[u8], layout: &Layout) -> Vec<f64> {
    dict_bytes(data, layout)
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect()
}

// ---------------------------------------------------------------------------
// Section parsing
// ---------------------------------------------------------------------------

/// Borrowed view of one delta section, fully bounds- and CRC-checked.
/// All payload slices are raw bytes: the owned reader copies them out,
/// the mapped reader reinterprets them in place.
struct SectionView<'a> {
    flags: u8,
    bits: u8,
    table_len: usize,
    tolerance: f64,
    num_points: usize,
    num_compressible: usize,
    /// `table_len × u32` dictionary positions; empty for whole-dict.
    table_idx: &'a [u8],
    bitmap: &'a [u8],
    index: IndexSection<'a>,
    exacts: &'a [u8],
}

enum IndexSection<'a> {
    Fixed(&'a [u8]),
    Huffman { lengths: &'a [u8], len_bits: usize, words: &'a [u8] },
}

fn check_section_crc(data: &[u8], e: &DirEntry) -> Result<(), NumarckError> {
    if e.off + e.len > data.len() {
        return Err(corrupt(format!("section '{}' out of bounds", e.name)));
    }
    let computed = nser::crc32(&data[e.off..e.off + e.len]);
    if computed != e.crc {
        return Err(corrupt(format!(
            "section '{}' crc mismatch: stored {:#x}, computed {computed:#x}",
            e.name, e.crc
        )));
    }
    Ok(())
}

// Neither section parser re-verifies the section CRC: both readers
// verify the whole-file CRC at open, which already covers every section
// byte, and hashing the payload a second time on the decode path costs
// real restart throughput. The stored per-section CRCs exist for
// *seekable* partial readers and are verified by [`describe`] (the
// inspector/scrub surface).
fn parse_full_section<'a>(data: &'a [u8], e: &DirEntry) -> Result<&'a [u8], NumarckError> {
    if e.off + e.len > data.len() {
        return Err(corrupt(format!("section '{}' out of bounds", e.name)));
    }
    if !e.len.is_multiple_of(8) {
        return Err(corrupt(format!(
            "full payload for '{}' not a multiple of 8 bytes",
            e.name
        )));
    }
    Ok(&data[e.off..e.off + e.len])
}

fn parse_delta_section<'a>(
    data: &'a [u8],
    e: &DirEntry,
    dict_entries: usize,
) -> Result<SectionView<'a>, NumarckError> {
    if e.off + e.len > data.len() {
        return Err(corrupt(format!("section '{}' out of bounds", e.name)));
    }
    let sec = &data[e.off..e.off + e.len];
    if sec.len() < SUBHEADER_LEN {
        return Err(corrupt(format!("delta section for '{}' too short", e.name)));
    }
    let flags = sec[0];
    if flags & !(SEC_HUFFMAN | SEC_WHOLE_DICT) != 0 {
        return Err(corrupt(format!("unknown section flags {flags:#x} for '{}'", e.name)));
    }
    let bits = sec[1];
    if !(1..=16).contains(&bits) {
        return Err(corrupt(format!("bits {bits} out of range for '{}'", e.name)));
    }
    if sec[2] != 0 || sec[3] != 0 {
        return Err(corrupt("nonzero reserved section bytes"));
    }
    let table_len = checked_count(le_u32(sec, 4) as u64, "table length")?;
    if table_len >= (1usize << bits) {
        return Err(corrupt(format!(
            "table_len {table_len} does not fit in {bits}-bit indices"
        )));
    }
    let tolerance = le_f64(sec, 8);
    let num_points = checked_count(le_u64(sec, 16), "num_points")?;
    let num_compressible = checked_count(le_u64(sec, 24), "num_compressible")?;
    if num_compressible > num_points {
        return Err(corrupt("num_compressible > num_points"));
    }
    let bitmap_rel = checked_count(le_u64(sec, 32), "bitmap offset")?;
    let index_rel = checked_count(le_u64(sec, 40), "index offset")?;
    let exacts_rel = checked_count(le_u64(sec, 48), "exacts offset")?;
    let aux = checked_count(le_u64(sec, 56), "huffman bit length")?;

    let whole_dict = flags & SEC_WHOLE_DICT != 0;
    if whole_dict && table_len != dict_entries {
        return Err(corrupt(format!(
            "whole-dictionary table for '{}' but table_len {table_len} != dictionary {dict_entries}",
            e.name
        )));
    }
    let table_bytes = if whole_dict { 0 } else { 4 * table_len };
    let bitmap_bytes = num_points.div_ceil(64) * 8;
    let index_bytes = if flags & SEC_HUFFMAN != 0 {
        align_up(table_len + 1, 8) + aux.div_ceil(64) * 8
    } else {
        if aux != 0 {
            return Err(corrupt("aux set on a fixed-width section"));
        }
        (num_compressible * bits as usize).div_ceil(64) * 8
    };
    let exact_bytes = (num_points - num_compressible) * 8;

    // The sub-offsets are fully determined by the counts; anything else
    // is a lie (and would break in-place alignment guarantees).
    if bitmap_rel != align_up(SUBHEADER_LEN + table_bytes, SECTION_ALIGN)
        || index_rel != align_up(bitmap_rel + bitmap_bytes, SECTION_ALIGN)
        || exacts_rel != align_up(index_rel + index_bytes, SECTION_ALIGN)
        || sec.len() != exacts_rel + exact_bytes
    {
        return Err(corrupt(format!("inconsistent section geometry for '{}'", e.name)));
    }

    let bitmap = &sec[bitmap_rel..bitmap_rel + bitmap_bytes];
    let set_bits: usize = bitmap.iter().map(|b| b.count_ones() as usize).sum();
    if set_bits != num_compressible {
        return Err(corrupt(format!(
            "bitmap population {set_bits} != num_compressible {num_compressible}"
        )));
    }
    let index = if flags & SEC_HUFFMAN != 0 {
        let lengths_end = index_rel + table_len + 1;
        let words_start = index_rel + align_up(table_len + 1, 8);
        IndexSection::Huffman {
            lengths: &sec[index_rel..lengths_end],
            len_bits: aux,
            words: &sec[words_start..index_rel + index_bytes],
        }
    } else {
        IndexSection::Fixed(&sec[index_rel..index_rel + index_bytes])
    };
    Ok(SectionView {
        flags,
        bits,
        table_len,
        tolerance,
        num_points,
        num_compressible,
        table_idx: &sec[SUBHEADER_LEN..SUBHEADER_LEN + table_bytes],
        bitmap,
        index,
        exacts: &sec[exacts_rel..exacts_rel + exact_bytes],
    })
}

/// Gather a variable's table out of the dictionary, enforcing the same
/// invariant the v1 blob reader enforces: strictly increasing by value.
fn gather_table(view: &SectionView<'_>, dict: &[f64]) -> Result<Vec<f64>, NumarckError> {
    let reps: Vec<f64> = if view.flags & SEC_WHOLE_DICT != 0 {
        dict.to_vec()
    } else {
        let mut reps = Vec::with_capacity(view.table_len);
        let mut prev_idx: Option<u32> = None;
        for c in view.table_idx.chunks_exact(4) {
            let idx = u32::from_le_bytes(c.try_into().expect("4 bytes"));
            if idx as usize >= dict.len() {
                return Err(corrupt(format!(
                    "table reference {idx} outside dictionary of {} entries",
                    dict.len()
                )));
            }
            if let Some(p) = prev_idx {
                if idx <= p {
                    return Err(corrupt("table references not strictly ascending"));
                }
            }
            prev_idx = Some(idx);
            reps.push(dict[idx as usize]);
        }
        reps
    };
    if reps.windows(2).any(|w| w[0] >= w[1]) {
        return Err(corrupt("table entries not strictly increasing"));
    }
    Ok(reps)
}

/// Decode a Huffman index section into the in-memory fixed-width words.
fn repack_huffman(
    lengths: &[u8],
    len_bits: usize,
    words_bytes: &[u8],
    num_compressible: usize,
    table_len: usize,
    bits: u8,
) -> Result<Vec<u64>, NumarckError> {
    let code = numarck::huffman::HuffmanCode::from_lengths(lengths.to_vec())?;
    let words: Vec<u64> = words_bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect();
    let encoded =
        numarck::huffman::HuffmanEncoded { code, words, len_bits, count: num_compressible };
    let symbols = numarck::huffman::decode_symbols(&encoded)?;
    let mut writer = numarck::bitstream::BitWriter::with_capacity(num_compressible, bits);
    for &sym in &symbols {
        if sym as usize > table_len {
            return Err(corrupt(format!(
                "huffman symbol {sym} exceeds table length {table_len}"
            )));
        }
        writer.push(sym, bits);
    }
    Ok(writer.into_words())
}

fn bytes_to_u64s(b: &[u8]) -> Vec<u64> {
    b.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes"))).collect()
}

fn bytes_to_f64s(b: &[u8]) -> Vec<f64> {
    b.chunks_exact(8).map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes"))).collect()
}

fn section_to_block(
    view: &SectionView<'_>,
    dict: &[f64],
) -> Result<CompressedIteration, NumarckError> {
    let reps = gather_table(view, dict)?;
    let table_len = view.table_len;
    let index_words = match &view.index {
        IndexSection::Fixed(b) => bytes_to_u64s(b),
        IndexSection::Huffman { lengths, len_bits, words } => repack_huffman(
            lengths,
            *len_bits,
            words,
            view.num_compressible,
            table_len,
            view.bits,
        )?,
    };
    let block = CompressedIteration {
        bits: view.bits,
        tolerance: view.tolerance,
        num_points: view.num_points,
        table: BinTable::new(reps),
        bitmap: bytes_to_u64s(view.bitmap),
        index_words,
        num_compressible: view.num_compressible,
        exact_values: bytes_to_f64s(view.exacts),
    };
    if block.table.len() != table_len {
        return Err(corrupt("duplicate table entries"));
    }
    Ok(block)
}

/// Parse and validate v2 bytes into an owned [`CheckpointFile`].
pub(super) fn from_bytes(data: &[u8]) -> Result<CheckpointFile, NumarckError> {
    let layout = parse_layout(data, true)?;
    let dict = read_dict(data, &layout);
    let kind = match layout.kind_byte {
        0 => {
            let mut vars = VariableSet::new();
            for e in &layout.entries {
                let payload = parse_full_section(data, e)?;
                vars.insert(e.name.clone(), bytes_to_f64s(payload));
            }
            CheckpointKind::Full(vars)
        }
        _ => {
            let mut blocks = std::collections::BTreeMap::new();
            for e in &layout.entries {
                let view = parse_delta_section(data, e, layout.dict_entries)?;
                blocks.insert(e.name.clone(), section_to_block(&view, &dict)?);
            }
            CheckpointKind::Delta(blocks)
        }
    };
    let delta_span = match kind {
        CheckpointKind::Full(_) => 0,
        CheckpointKind::Delta(_) => layout.delta_span,
    };
    Ok(CheckpointFile { iteration: layout.iteration, kind, delta_span })
}

/// Section/dictionary sizes for the inspector ([`super::describe`]).
/// This is the surface that exercises the per-section CRCs individually
/// (decode relies on the whole-file pass instead), so scrub-style tools
/// can tell *which* section is damaged.
pub(super) fn describe(data: &[u8]) -> Result<(usize, usize, Vec<SectionInfo>), NumarckError> {
    let layout = parse_layout(data, true)?;
    for e in &layout.entries {
        check_section_crc(data, e)?;
    }
    let sections = layout
        .entries
        .iter()
        .map(|e| SectionInfo { name: e.name.clone(), bytes: e.len as u64 })
        .collect();
    Ok((layout.dict_entries, layout.dict_entries * 8, sections))
}

// ---------------------------------------------------------------------------
// Mapped (zero-copy) reader
// ---------------------------------------------------------------------------

/// A v2 checkpoint opened for in-place decode.
///
/// Holds [`AlignedBytes`] — ideally a live `mmap` of the file — and the
/// validated [`Layout`]. [`Self::decode_variable`] builds a
/// [`BlockRef`] whose bitmap/index/exact slices point straight into the
/// mapping (the 64-byte section alignment plus the 8-byte-aligned base
/// make the reinterpretation exact) and runs the allocation-free block
/// decoder on it: the only bytes ever copied are the decoded output and
/// the (tiny) centroid table.
///
/// Integrity: open verifies the whole-file CRC (one streaming pass over
/// the mapped pages — every bit of the file is covered before any of it
/// is trusted, matching the v1 reader's discipline) plus the header,
/// directory and dictionary CRCs. Decode does not re-hash sections: the
/// file pass already covered them. The per-section CRCs are what make
/// the directory *seekable* — a future partial reader can skip the file
/// pass and verify exactly the sections it touches — and are checked
/// individually by the inspector ([`super::describe`]).
#[derive(Debug)]
pub struct MappedCheckpoint {
    bytes: AlignedBytes,
    layout: Layout,
}

fn as_u64s(b: &[u8]) -> Result<&[u64], NumarckError> {
    // Safety: any bit pattern is a valid u64; alignment is checked.
    let (pre, mid, post) = unsafe { b.align_to::<u64>() };
    if !pre.is_empty() || !post.is_empty() {
        return Err(corrupt("section not aligned for in-place decode"));
    }
    Ok(mid)
}

fn as_f64s(b: &[u8]) -> Result<&[f64], NumarckError> {
    // Safety: any bit pattern is a valid f64; alignment is checked.
    let (pre, mid, post) = unsafe { b.align_to::<f64>() };
    if !pre.is_empty() || !post.is_empty() {
        return Err(corrupt("section not aligned for in-place decode"));
    }
    Ok(mid)
}

impl MappedCheckpoint {
    /// Validate the frame of a v2 file and keep the bytes mapped.
    /// Fails with [`NumarckError::VersionMismatch`] on v1 bytes — the
    /// caller falls back to the owned reader.
    pub fn parse(bytes: AlignedBytes) -> Result<Self, NumarckError> {
        let layout = parse_layout(&bytes, true)?;
        Ok(Self { bytes, layout })
    }

    /// Map the file at `path` and parse it.
    pub fn open(path: &std::path::Path) -> Result<Self, NumarckError> {
        let bytes = AlignedBytes::map_file(path)
            .map_err(|e| NumarckError::Io(format!("cannot map {}: {e}", path.display())))?;
        Self::parse(bytes)
    }

    /// Iteration the file captures.
    pub fn iteration(&self) -> u64 {
        self.layout.iteration
    }

    /// True for full checkpoints.
    pub fn is_full(&self) -> bool {
        self.layout.kind_byte == 0
    }

    /// Stored delta span (0 for fulls and legacy plain deltas).
    pub fn delta_span(&self) -> u32 {
        self.layout.delta_span
    }

    /// Effective span, normalised exactly like
    /// [`CheckpointFile::span`].
    pub fn span(&self) -> u64 {
        if self.is_full() {
            0
        } else {
            u64::from(self.layout.delta_span.max(1))
        }
    }

    /// Variable names, ascending.
    pub fn variable_names(&self) -> impl Iterator<Item = &str> {
        self.layout.entries.iter().map(|e| e.name.as_str())
    }

    /// Number of variables in the file.
    pub fn num_variables(&self) -> usize {
        self.layout.entries.len()
    }

    /// True when the underlying bytes are a live file mapping.
    pub fn is_mapped(&self) -> bool {
        self.bytes.is_mapped()
    }

    fn entry(&self, name: &str) -> Result<&DirEntry, NumarckError> {
        self.layout
            .entries
            .iter()
            .find(|e| e.name == name)
            .ok_or_else(|| corrupt(format!("no variable '{name}' in checkpoint")))
    }

    fn dict(&self) -> Result<&[f64], NumarckError> {
        as_f64s(dict_bytes(&self.bytes, &self.layout))
    }

    /// Decode one delta variable against `prev`, straight out of the
    /// mapping.
    pub fn decode_variable(&self, name: &str, prev: &[f64]) -> Result<Vec<f64>, NumarckError> {
        if self.is_full() {
            return Err(corrupt("decode_variable on a full checkpoint"));
        }
        let e = self.entry(name)?;
        let view = parse_delta_section(&self.bytes, e, self.layout.dict_entries)?;
        let table = gather_table(&view, self.dict()?)?;
        // Huffman sections cannot decode in place (that is the
        // entropy-for-speed trade the flag byte records); repack into
        // owned words and point the view at them.
        let owned_index: Vec<u64>;
        let index_words: &[u64] = match &view.index {
            IndexSection::Fixed(b) => as_u64s(b)?,
            IndexSection::Huffman { lengths, len_bits, words } => {
                owned_index = repack_huffman(
                    lengths,
                    *len_bits,
                    words,
                    view.num_compressible,
                    view.table_len,
                    view.bits,
                )?;
                &owned_index
            }
        };
        let block = BlockRef {
            bits: view.bits,
            num_points: view.num_points,
            num_compressible: view.num_compressible,
            table: &table,
            bitmap: as_u64s(view.bitmap)?,
            index_words,
            exact_values: as_f64s(view.exacts)?,
        };
        numarck::decode::reconstruct_ref(prev, &block)
    }

    /// Read one full-checkpoint variable (the copy into the returned
    /// vector is the only copy made).
    pub fn full_variable(&self, name: &str) -> Result<Vec<f64>, NumarckError> {
        if !self.is_full() {
            return Err(corrupt("full_variable on a delta checkpoint"));
        }
        let e = self.entry(name)?;
        Ok(as_f64s(parse_full_section(&self.bytes, e)?)?.to_vec())
    }

    /// All variables of a full checkpoint.
    pub fn full_variables(&self) -> Result<VariableSet, NumarckError> {
        let mut vars = VariableSet::new();
        for e in &self.layout.entries {
            vars.insert(e.name.clone(), as_f64s(parse_full_section(&self.bytes, e)?)?.to_vec());
        }
        Ok(vars)
    }
}
