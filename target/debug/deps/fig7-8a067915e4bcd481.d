/root/repo/target/debug/deps/fig7-8a067915e4bcd481.d: crates/numarck-bench/src/bin/fig7.rs

/root/repo/target/debug/deps/libfig7-8a067915e4bcd481.rmeta: crates/numarck-bench/src/bin/fig7.rs

crates/numarck-bench/src/bin/fig7.rs:
