/root/repo/target/debug/deps/rayon-ccd9efa928b21afd.d: .stubs/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-ccd9efa928b21afd.rlib: .stubs/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-ccd9efa928b21afd.rmeta: .stubs/rayon/src/lib.rs

.stubs/rayon/src/lib.rs:
