//! Bounded lossy event ring.
//!
//! Keeps the *most recent* N notable events (retries, quarantines,
//! rejected connections). Writers never block and never allocate past
//! the fixed capacity: when full, the oldest event is overwritten.
//! This is deliberately a mutex-guarded ring, not a lock-free queue —
//! events are rare (per-retry, not per-point), so contention is nil and
//! simplicity wins.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// Event severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Normal but notable (e.g. repair completed, drain started).
    Info,
    /// Degraded but recovering (e.g. write retry, transient connect failure).
    Warn,
    /// Lost work or persistent failure (e.g. quarantine, exhausted retries).
    Error,
}

impl Level {
    /// Stable lowercase label used in exposition.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone)]
pub struct Event {
    /// Milliseconds since the Unix epoch at record time.
    pub unix_ms: u64,
    /// Severity.
    pub level: Level,
    /// Short free-form description, e.g. `"ckpt write retry #2 iter=40"`.
    pub message: String,
}

/// Bounded lossy ring of recent [`Event`]s.
#[derive(Debug)]
pub struct EventRing {
    inner: Mutex<Inner>,
    capacity: usize,
}

#[derive(Debug)]
struct Inner {
    events: VecDeque<Event>,
    /// Total events ever pushed, including overwritten ones.
    pushed: u64,
}

impl EventRing {
    /// A ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            inner: Mutex::new(Inner { events: VecDeque::with_capacity(capacity), pushed: 0 }),
            capacity,
        }
    }

    /// Record an event, evicting the oldest if the ring is full.
    pub fn push(&self, level: Level, message: impl Into<String>) {
        let unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let mut inner = match self.inner.lock() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        };
        if inner.events.len() == self.capacity {
            inner.events.pop_front();
        }
        inner.events.push_back(Event { unix_ms, level, message: message.into() });
        inner.pushed += 1;
    }

    /// Oldest-first copy of the retained events.
    pub fn recent(&self) -> Vec<Event> {
        let inner = match self.inner.lock() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        };
        inner.events.iter().cloned().collect()
    }

    /// Total events ever pushed (retained + overwritten).
    pub fn total_pushed(&self) -> u64 {
        let inner = match self.inner.lock() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        };
        inner.pushed
    }

    /// Number of events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        let inner = match self.inner.lock() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        };
        inner.pushed - inner.events.len() as u64
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retains_most_recent_when_full() {
        let ring = EventRing::new(3);
        for i in 0..5 {
            ring.push(Level::Info, format!("e{i}"));
        }
        let recent = ring.recent();
        assert_eq!(recent.len(), 3);
        let msgs: Vec<&str> = recent.iter().map(|e| e.message.as_str()).collect();
        assert_eq!(msgs, ["e2", "e3", "e4"]);
        assert_eq!(ring.total_pushed(), 5);
        assert_eq!(ring.dropped(), 2);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let ring = EventRing::new(0);
        ring.push(Level::Error, "a");
        ring.push(Level::Warn, "b");
        let recent = ring.recent();
        assert_eq!(recent.len(), 1);
        assert_eq!(recent[0].message, "b");
        assert_eq!(recent[0].level, Level::Warn);
    }

    #[test]
    fn concurrent_pushes_all_counted() {
        let ring = std::sync::Arc::new(EventRing::new(8));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let ring = ring.clone();
                std::thread::spawn(move || {
                    for i in 0..100 {
                        ring.push(Level::Warn, format!("t{t} e{i}"));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(ring.total_pushed(), 400);
        assert_eq!(ring.recent().len(), 8);
    }
}
