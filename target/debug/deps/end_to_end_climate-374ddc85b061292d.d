/root/repo/target/debug/deps/end_to_end_climate-374ddc85b061292d.d: tests/end_to_end_climate.rs

/root/repo/target/debug/deps/end_to_end_climate-374ddc85b061292d: tests/end_to_end_climate.rs

tests/end_to_end_climate.rs:
