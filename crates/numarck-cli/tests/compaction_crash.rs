//! Kill-anywhere crash injection against `numarck compact`.
//!
//! The contract under test: **compaction never loses state.** Every
//! merged-delta write goes through the write-ahead intent journal and
//! the store's atomic-rename discipline, and superseded plain deltas
//! are removed only after their replacement is fsync-durable and
//! CRC-verified — so fail-stopping the compactor at *any* storage
//! operation boundary and then running a clean pass must leave every
//! iteration restartable to exactly the bits it restarted to before
//! compaction ever ran.
//!
//! The kill mechanism is the same `--die-after-ops K` knob the serve
//! sweep uses: the storage backend aborts the whole process (observably
//! identical to `kill -9`) at the entry of storage operation K+1,
//! walking the kill point through journal appends, temp writes, renames
//! and directory fsyncs of the maintenance pass.
//!
//! Environment knobs (for CI):
//!
//! - `NUMARCK_CRASH_POINTS=N` — sweep kill points `0..N` (default 96:
//!   a full pass over this chain is ~80 storage operations, so the
//!   default walks every boundary and the budget-outlives-work tail).
//! - `NUMARCK_CRASH_REPORT=PATH` — append one JSON line per kill point.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::Command;

use numarck_checkpoint::{
    CheckpointManager, CheckpointStore, ManagerPolicy, RestartEngine, VariableSet,
};

const BIN: &str = env!("CARGO_BIN_EXE_numarck");
/// Iterations in the chain each kill point compacts.
const ITERS: u64 = 12;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "numarck-compact-crash-{tag}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .expect("after epoch")
                .as_nanos()
        ));
        std::fs::create_dir_all(&path).expect("mkdir");
        Self(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn vars(iteration: u64) -> VariableSet {
    let mut v = VariableSet::new();
    v.insert(
        "x".into(),
        (0..96).map(|j| (j as f64 + 1.0) * 1.004f64.powi(iteration as i32)).collect(),
    );
    v
}

/// One full at iteration 0 plus a long plain-delta run.
fn build_store(dir: &Path) {
    let store = CheckpointStore::open(dir).expect("open store");
    let cfg = numarck::Config::new(8, 0.001, numarck::Strategy::Clustering).expect("config");
    let mut mgr = CheckpointManager::new(store, cfg, ManagerPolicy::fixed(1000));
    for it in 0..ITERS {
        mgr.checkpoint(it, &vars(it)).expect("checkpoint");
    }
}

/// Restart every iteration, returning the exact variable bits.
fn restart_all(dir: &Path) -> Vec<VariableSet> {
    let store = CheckpointStore::open(dir).expect("open store");
    let engine = RestartEngine::new(store);
    (0..ITERS).map(|it| engine.restart_at(it).expect("restart").vars).collect()
}

/// Run `numarck compact` on `dir`; returns whether it exited cleanly
/// (an exhausted `--die-after-ops` budget aborts the process instead).
fn run_compact(dir: &Path, extra: &[&str]) -> bool {
    let status = Command::new(BIN)
        .arg("compact")
        .arg(dir)
        .args(["--window", "4"])
        .args(extra)
        .output()
        .expect("spawn numarck compact")
        .status;
    status.success()
}

fn sweep_points() -> u64 {
    std::env::var("NUMARCK_CRASH_POINTS").ok().and_then(|v| v.parse().ok()).unwrap_or(96)
}

/// Append one JSON line per kill point when `NUMARCK_CRASH_REPORT` is
/// set — the surviving-chain report CI uploads as an artifact.
fn report_line(kill_after_ops: u64, died: bool) {
    let Ok(path) = std::env::var("NUMARCK_CRASH_REPORT") else {
        return;
    };
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .expect("open crash report");
    writeln!(
        f,
        "{{\"suite\":\"compact-fail-stop\",\"kill_after_ops\":{kill_after_ops},\
         \"died_mid_pass\":{died},\"iterations\":{ITERS},\"bit_exact\":true}}",
    )
    .expect("append crash report");
}

/// The deterministic sweep: fail-stop the compactor at storage
/// operation K+1 for every K, run a clean pass over the debris (which
/// replays the intent journal first), and demand that every iteration
/// still restarts to exactly its pre-compaction bits.
#[test]
fn compaction_kill_sweep_stays_bit_exact() {
    for k in 0..sweep_points() {
        let tmp = TempDir::new(&format!("sweep-{k}"));
        let dir = tmp.0.join("store");
        std::fs::create_dir_all(&dir).expect("store dir");
        build_store(&dir);
        let truth = restart_all(&dir);

        let die = k.to_string();
        let died = !run_compact(&dir, &["--die-after-ops", &die]);

        // The clean pass must cope with whatever the crash left behind:
        // outstanding intents, stray temp files, a half-advanced chain.
        assert!(run_compact(&dir, &[]), "kill point {k}: recovery pass failed");

        let after = restart_all(&dir);
        for (it, (a, b)) in truth.iter().zip(&after).enumerate() {
            assert!(
                vars_bits_equal(a, b),
                "kill point {k}: iteration {it} diverged after crashed compaction"
            );
        }

        // And the surviving files all validate.
        let scrub = Command::new(BIN)
            .arg("scrub")
            .arg(&dir)
            .output()
            .expect("spawn numarck scrub")
            .status;
        assert!(scrub.success(), "kill point {k}: store must scrub clean after recovery");

        report_line(k, died);
    }
}

/// Bit-level equality (`==` on f64 treats -0.0 == 0.0 and NaN != NaN).
fn vars_bits_equal(a: &VariableSet, b: &VariableSet) -> bool {
    a.len() == b.len()
        && a.iter().zip(b.iter()).all(|((na, va), (nb, vb))| {
            na == nb
                && va.len() == vb.len()
                && va.iter().zip(vb.iter()).all(|(x, y)| x.to_bits() == y.to_bits())
        })
}
