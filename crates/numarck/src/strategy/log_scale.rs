//! Log-scale binning (paper §II-C.2).
//!
//! Bin the *magnitudes* of the change ratios on an e-based logarithmic
//! axis: narrow bins near the tolerance `E` where most ratios concentrate,
//! exponentially wider bins toward the tail. Because change ratios are
//! signed, the `k` representatives are split between the negative and
//! positive sides proportionally to their populations (each populated
//! side gets at least one bin).

use rayon::prelude::*;

/// Representatives: log-spaced bin centres per sign.
pub fn representatives(sample: &[f64], k: usize) -> Vec<f64> {
    debug_assert!(!sample.is_empty());
    // Partition magnitudes by sign. Zero cannot occur (|Δ| ≥ E > 0).
    let (neg, pos): (Vec<f64>, Vec<f64>) = sample.par_iter().partition_map(|&x| {
        if x < 0.0 {
            rayon::iter::Either::Left(-x)
        } else {
            rayon::iter::Either::Right(x)
        }
    });

    let (k_neg, k_pos) = split_bins(neg.len(), pos.len(), k);
    let mut reps = Vec::with_capacity(k);
    // Negative side: centres computed on magnitudes then negated; negate
    // preserves set semantics (BinTable sorts afterwards).
    for c in log_centers(&neg, k_neg) {
        reps.push(-c);
    }
    reps.extend(log_centers(&pos, k_pos));
    reps
}

/// Allocate `k` bins between the two signs proportionally to population,
/// guaranteeing at least one bin per populated sign.
fn split_bins(n_neg: usize, n_pos: usize, k: usize) -> (usize, usize) {
    match (n_neg, n_pos) {
        (0, 0) => (0, 0),
        (0, _) => (0, k),
        (_, 0) => (k, 0),
        _ => {
            if k == 1 {
                // Only one bin: give it to the bigger side.
                return if n_neg > n_pos { (1, 0) } else { (0, 1) };
            }
            let total = (n_neg + n_pos) as f64;
            let raw = (k as f64 * n_neg as f64 / total).round() as usize;
            let k_neg = raw.clamp(1, k - 1);
            (k_neg, k - k_neg)
        }
    }
}

/// Log-spaced bin centres over the magnitudes `m` (all > 0): `bins` bins
/// between `ln(min)` and `ln(max)`, centres exponentiated back.
fn log_centers(magnitudes: &[f64], bins: usize) -> Vec<f64> {
    if magnitudes.is_empty() || bins == 0 {
        return Vec::new();
    }
    let mm = numarck_par::reduce::par_min_max(magnitudes);
    debug_assert!(mm.min > 0.0, "magnitudes must be positive for log binning");
    if mm.range() == 0.0 {
        return vec![mm.min];
    }
    let lo = mm.min.ln();
    let hi = mm.max.ln();
    let w = (hi - lo) / bins as f64;
    (0..bins).map(|i| (lo + (i as f64 + 0.5) * w).exp()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positive_only_sample() {
        let sample: Vec<f64> = (0..100).map(|i| 0.001 * 1.05f64.powi(i)).collect();
        let reps = representatives(&sample, 16);
        assert_eq!(reps.len(), 16);
        assert!(reps.iter().all(|&r| r > 0.0));
        // Centres grow geometrically: successive ratios are constant.
        let r1 = reps[1] / reps[0];
        let r2 = reps[10] / reps[9];
        assert!((r1 - r2).abs() < 1e-9, "geometric spacing: {r1} vs {r2}");
    }

    #[test]
    fn mixed_signs_get_bins_on_both_sides() {
        let mut sample: Vec<f64> = (1..=500).map(|i| i as f64 * 1e-3).collect();
        sample.extend((1..=500).map(|i| -(i as f64) * 1e-3));
        let reps = representatives(&sample, 10);
        let neg = reps.iter().filter(|&&r| r < 0.0).count();
        let pos = reps.iter().filter(|&&r| r > 0.0).count();
        assert_eq!(neg + pos, 10);
        assert_eq!(neg, 5, "balanced populations split evenly: {reps:?}");
    }

    #[test]
    fn skewed_populations_skew_the_split() {
        let mut sample: Vec<f64> = (1..=900).map(|i| i as f64 * 1e-3).collect();
        sample.extend((1..=100).map(|i| -(i as f64) * 1e-3));
        let reps = representatives(&sample, 10);
        let neg = reps.iter().filter(|&&r| r < 0.0).count();
        assert_eq!(neg, 1, "10% negative population gets 1 of 10 bins");
    }

    #[test]
    fn minority_sign_still_gets_a_bin() {
        let mut sample = vec![0.5; 10_000];
        sample.push(-0.5);
        let reps = representatives(&sample, 8);
        assert!(reps.iter().any(|&r| r < 0.0), "lone negative must get a representative");
    }

    #[test]
    fn k_equals_one() {
        let sample = vec![-0.1, -0.2, -0.3, 0.4];
        let reps = representatives(&sample, 1);
        assert_eq!(reps.len(), 1);
        assert!(reps[0] < 0.0, "majority sign wins the single bin");
    }

    #[test]
    fn small_changes_get_finer_bins_than_large() {
        // Sample spanning three decades; adjacent-centre spacing must grow
        // with magnitude (the whole point of log binning).
        let sample: Vec<f64> = (0..3000).map(|i| 0.001 * 10f64.powf(i as f64 / 1000.0)).collect();
        let reps = representatives(&sample, 32);
        let first_gap = reps[1] - reps[0];
        let last_gap = reps[31] - reps[30];
        assert!(
            last_gap > first_gap * 10.0,
            "coarse tail bins: first={first_gap} last={last_gap}"
        );
    }

    #[test]
    fn split_bins_edge_cases() {
        assert_eq!(split_bins(0, 0, 8), (0, 0));
        assert_eq!(split_bins(5, 0, 8), (8, 0));
        assert_eq!(split_bins(0, 5, 8), (0, 8));
        assert_eq!(split_bins(1, 1_000_000, 8), (1, 7));
        assert_eq!(split_bins(7, 3, 1), (1, 0));
    }

    #[test]
    fn degenerate_magnitudes() {
        let reps = representatives(&[0.25, 0.25, 0.25], 255);
        assert_eq!(reps, vec![0.25]);
    }
}
