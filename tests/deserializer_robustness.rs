//! Robustness: no deserializer in the workspace may panic on arbitrary
//! input — corrupt checkpoint bytes must always surface as `Err`, never
//! as a crash (a checkpointing system that aborts while *reading* a
//! damaged checkpoint defeats its own purpose).

use proptest::prelude::*;

use numarck_checkpoint::CheckpointFile;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn numarck_block_from_bytes_never_panics(
        bytes in proptest::collection::vec(any::<u8>(), 0..2000)
    ) {
        let _ = numarck::serialize::from_bytes(&bytes);
    }

    #[test]
    fn checkpoint_file_from_bytes_never_panics(
        bytes in proptest::collection::vec(any::<u8>(), 0..2000)
    ) {
        let _ = CheckpointFile::from_bytes(&bytes);
    }

    #[test]
    fn fpc_decompress_never_panics(
        bytes in proptest::collection::vec(any::<u8>(), 0..2000)
    ) {
        let _ = numarck::fpc::decompress(&bytes);
    }

    #[test]
    fn mutated_valid_block_never_panics_or_lies(
        flips in proptest::collection::vec((0usize..4096, 0u8..8), 1..8)
    ) {
        // Start from a VALID serialized block and flip arbitrary bits:
        // the reader must either reject it or return a block (bit flips
        // that only touch the exact-value payload... are caught by the
        // CRC, so in practice: reject).
        let prev: Vec<f64> = (0..500).map(|i| 1.0 + (i % 9) as f64).collect();
        let curr: Vec<f64> = prev.iter().map(|v| v * 1.01).collect();
        let config =
            numarck::Config::new(8, 0.001, numarck::Strategy::Clustering).expect("valid");
        let (block, _) =
            numarck::Compressor::new(config).compress(&prev, &curr).expect("finite");
        let mut bytes = numarck::serialize::to_bytes(&block).to_vec();
        for (pos, bit) in flips {
            let p = pos % bytes.len();
            bytes[p] ^= 1 << bit;
        }
        // A flip pair that cancels out reproduces the original; any
        // accepted result must decode cleanly.
        if let Ok(b) = numarck::serialize::from_bytes(&bytes) {
            let _ = numarck::decode::reconstruct(&prev, &b);
        }
    }

    #[test]
    fn huffman_from_lengths_never_panics(
        lengths in proptest::collection::vec(0u8..64, 0..300)
    ) {
        // Arbitrary code-length tables: invalid ones (Kraft violation,
        // overlong codes) must come back as Err, not a crash.
        let _ = numarck::huffman::HuffmanCode::from_lengths(lengths);
    }

    #[test]
    fn huffman_decode_never_panics_on_arbitrary_streams(
        lengths in proptest::collection::vec(0u8..16, 1..40),
        words in proptest::collection::vec(any::<u64>(), 0..64),
        len_bits in 0usize..8192,
        count in 0usize..2000,
    ) {
        // Only structurally valid codes can reach the decoder in real
        // use, so pair a valid code with a completely arbitrary bit
        // stream (including len_bits lying past the buffer).
        if let Ok(code) = numarck::huffman::HuffmanCode::from_lengths(lengths) {
            let encoded = numarck::huffman::HuffmanEncoded { code, words, len_bits, count };
            let _ = numarck::huffman::decode_symbols(&encoded);
        }
    }

    #[test]
    fn mutated_huffman_block_never_panics(
        flips in proptest::collection::vec((0usize..4096, 0u8..8), 1..8)
    ) {
        let prev: Vec<f64> = (0..500).map(|i| 2.0 + (i % 7) as f64).collect();
        let curr: Vec<f64> = prev.iter().map(|v| v * 1.004).collect();
        let config =
            numarck::Config::new(8, 0.001, numarck::Strategy::Clustering).expect("valid");
        let (block, _) =
            numarck::Compressor::new(config).compress(&prev, &curr).expect("finite");
        let mut bytes = numarck::serialize::to_bytes_with(
            &block,
            numarck::serialize::IndexEncoding::Huffman,
        )
        .to_vec();
        for (pos, bit) in flips {
            let p = pos % bytes.len();
            bytes[p] ^= 1 << bit;
        }
        if let Ok(b) = numarck::serialize::from_bytes(&bytes) {
            let _ = numarck::decode::reconstruct(&prev, &b);
        }
    }
}

#[test]
fn truncations_of_valid_blobs_are_all_rejected() {
    let prev: Vec<f64> = (0..300).map(|i| 1.0 + (i % 11) as f64).collect();
    let curr: Vec<f64> = prev.iter().map(|v| v * 1.002).collect();
    let config = numarck::Config::new(9, 0.001, numarck::Strategy::LogScale).expect("valid");
    let (block, _) = numarck::Compressor::new(config).compress(&prev, &curr).expect("finite");
    for encoding in [
        numarck::serialize::IndexEncoding::FixedWidth,
        numarck::serialize::IndexEncoding::Huffman,
    ] {
        let bytes = numarck::serialize::to_bytes_with(&block, encoding);
        for cut in 0..bytes.len() {
            assert!(
                numarck::serialize::from_bytes(&bytes[..cut]).is_err(),
                "{encoding:?}: truncation to {cut} accepted"
            );
        }
    }
}
