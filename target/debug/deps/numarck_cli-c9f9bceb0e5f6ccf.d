/root/repo/target/debug/deps/numarck_cli-c9f9bceb0e5f6ccf.d: crates/numarck-cli/src/lib.rs crates/numarck-cli/src/args.rs crates/numarck-cli/src/chainfile.rs crates/numarck-cli/src/commands.rs crates/numarck-cli/src/seqfile.rs crates/numarck-cli/src/serve_cmd.rs

/root/repo/target/debug/deps/numarck_cli-c9f9bceb0e5f6ccf: crates/numarck-cli/src/lib.rs crates/numarck-cli/src/args.rs crates/numarck-cli/src/chainfile.rs crates/numarck-cli/src/commands.rs crates/numarck-cli/src/seqfile.rs crates/numarck-cli/src/serve_cmd.rs

crates/numarck-cli/src/lib.rs:
crates/numarck-cli/src/args.rs:
crates/numarck-cli/src/chainfile.rs:
crates/numarck-cli/src/commands.rs:
crates/numarck-cli/src/seqfile.rs:
crates/numarck-cli/src/serve_cmd.rs:
