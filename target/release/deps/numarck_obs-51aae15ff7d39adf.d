/root/repo/target/release/deps/numarck_obs-51aae15ff7d39adf.d: crates/numarck-obs/src/lib.rs crates/numarck-obs/src/http.rs crates/numarck-obs/src/instrument.rs crates/numarck-obs/src/registry.rs crates/numarck-obs/src/ring.rs crates/numarck-obs/src/snapshot.rs

/root/repo/target/release/deps/libnumarck_obs-51aae15ff7d39adf.rlib: crates/numarck-obs/src/lib.rs crates/numarck-obs/src/http.rs crates/numarck-obs/src/instrument.rs crates/numarck-obs/src/registry.rs crates/numarck-obs/src/ring.rs crates/numarck-obs/src/snapshot.rs

/root/repo/target/release/deps/libnumarck_obs-51aae15ff7d39adf.rmeta: crates/numarck-obs/src/lib.rs crates/numarck-obs/src/http.rs crates/numarck-obs/src/instrument.rs crates/numarck-obs/src/registry.rs crates/numarck-obs/src/ring.rs crates/numarck-obs/src/snapshot.rs

crates/numarck-obs/src/lib.rs:
crates/numarck-obs/src/http.rs:
crates/numarck-obs/src/instrument.rs:
crates/numarck-obs/src/registry.rs:
crates/numarck-obs/src/ring.rs:
crates/numarck-obs/src/snapshot.rs:
