//! Extension experiment 1: open-loop (paper) vs closed-loop encoding.
//!
//! The paper's encoder computes change ratios between *true* consecutive
//! iterations, so restart error compounds with the number of deltas
//! since the last full checkpoint (Fig. 8). Closing the loop — encoding
//! against the decoder's previous reconstruction, as video codecs do —
//! bounds every iteration's error by a single `E` regardless of chain
//! length. This binary measures both on a FLASH dens sequence.

use flash_sim::FlashVar;
use numarck::{Config, DeltaChain, ReferenceMode, Strategy};
use numarck_bench::data::{flash_sequence, FlashConfig};
use numarck_bench::report::{print_table, write_csv};
use numarck_bench::RESULTS_DIR;

fn main() {
    let tolerance = 0.001;
    let chain_len = 16usize;
    let seq = flash_sequence(FlashConfig::default(), FlashVar::Dens, chain_len + 1);
    let config = Config::new(8, tolerance, Strategy::Clustering).expect("valid");

    let mut table = vec![vec![
        "depth".to_string(),
        "open-loop max err %".to_string(),
        "closed-loop max err %".to_string(),
        "chain budget %".to_string(),
    ]];
    let mut csv = vec![vec![
        "depth".to_string(),
        "open_max".to_string(),
        "closed_max".to_string(),
    ]];

    let mut open = DeltaChain::new(seq[0].clone(), config);
    let mut closed =
        DeltaChain::with_mode(seq[0].clone(), config, ReferenceMode::Reconstructed);
    for it in &seq[1..] {
        open.append(it).expect("finite sim data");
        closed.append(it).expect("finite sim data");
    }
    let max_rel = |rec: &[f64], exact: &[f64]| {
        rec.iter()
            .zip(exact)
            .filter(|(_, t)| **t != 0.0)
            .map(|(r, t)| ((r - t) / t).abs())
            .fold(0.0f64, f64::max)
    };
    for depth in [1usize, 2, 4, 8, 16] {
        let o = max_rel(&open.reconstruct(depth).expect("in range"), &seq[depth]);
        let c = max_rel(&closed.reconstruct(depth).expect("in range"), &seq[depth]);
        let budget = (1.0f64 + tolerance).powi(depth as i32) - 1.0;
        table.push(vec![
            depth.to_string(),
            format!("{:.5}", o * 100.0),
            format!("{:.5}", c * 100.0),
            format!("{:.5}", budget * 100.0),
        ]);
        csv.push(vec![depth.to_string(), o.to_string(), c.to_string()]);
    }
    println!("Extension 1: open-loop vs closed-loop error accumulation (dens, E = 0.1%)");
    print_table(&table);
    println!("\n(expected: open-loop grows toward the chain budget; closed-loop stays ~E;");
    println!(" storage cost is identical — the loop mode only changes the encoding reference)");
    match write_csv(RESULTS_DIR, "ext1_closed_loop", &csv) {
        Ok(p) => println!("wrote {p}"),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
