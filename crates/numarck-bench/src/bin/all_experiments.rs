//! Run every paper experiment and every extension experiment in
//! sequence — the one-command reproduction entry point:
//!
//! ```sh
//! cargo run --release -p numarck-bench --bin all_experiments
//! ```
//!
//! Each sibling binary prints its own paper-vs-expected commentary and
//! writes its CSV under `results/`; this runner just sequences them and
//! summarises pass/fail.

use std::process::Command;

/// Experiment binaries in presentation order.
const EXPERIMENTS: &[&str] = &[
    "fig1",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "table1",
    "fig8",
    "ext1_closed_loop",
    "ext2_anomaly",
    "ext3_adaptive",
    "ext4_group",
    "ext5_entropy",
    "ext6_dim3",
    "ext7_solver_order",
];

fn main() {
    // Sibling binaries live next to this one.
    let me = std::env::current_exe().expect("current exe path");
    let dir = me.parent().expect("exe has a parent dir").to_path_buf();

    let mut failures = Vec::new();
    for name in EXPERIMENTS {
        let path = dir.join(name);
        println!("\n================================================================");
        println!("== {name}");
        println!("================================================================");
        let status = Command::new(&path).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("** {name} exited with {s}");
                failures.push(*name);
            }
            Err(e) => {
                eprintln!(
                    "** cannot run {} ({e}); build all bins first: \
                     cargo build --release -p numarck-bench --bins",
                    path.display()
                );
                failures.push(*name);
            }
        }
    }
    println!("\n================================================================");
    if failures.is_empty() {
        println!("all {} experiments completed; CSVs in results/", EXPERIMENTS.len());
    } else {
        println!("{} experiment(s) FAILED: {}", failures.len(), failures.join(", "));
        std::process::exit(1);
    }
}
