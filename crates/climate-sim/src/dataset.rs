//! The per-variable time-stepping model.

use crate::field::{box_blur, correlated_noise};
use crate::grid::Grid;
use crate::variables::ClimateVar;
use numarck_par::rng::Xoshiro256PlusPlus;

/// A deterministic synthetic climate variable generator.
///
/// `value_t(x) = base(x) · season(t, x) · exp(s_t(x))` with a spatially
/// correlated AR(1) anomaly `s` and optional episodic spikes (see
/// [`ClimateVar::params`]). Iteration 0 is available immediately via
/// [`ClimateModel::current`]; [`ClimateModel::step`] advances a day (or
/// month for `mc`).
#[derive(Debug, Clone)]
pub struct ClimateModel {
    var: ClimateVar,
    grid: Grid,
    base: Vec<f64>,
    anomaly: Vec<f64>,
    current: Vec<f64>,
    rng: Xoshiro256PlusPlus,
    t: u64,
}

impl ClimateModel {
    /// Model on the paper's 144×90 CMIP5 grid.
    pub fn new(var: ClimateVar, seed: u64) -> Self {
        Self::with_grid(var, Grid::cmip5(), seed)
    }

    /// Model on an explicit grid (tests and scaled-down benches).
    pub fn with_grid(var: ClimateVar, grid: Grid, seed: u64) -> Self {
        let p = var.params();
        // Distinct stream per variable so multi-variable experiments
        // don't share noise.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed ^ fnv(var.name()));
        // Base field: positive texture around base_scale with a smooth
        // latitudinal profile (radiation peaks at the equator).
        let texture = correlated_noise(grid, &mut rng, 3, 3);
        let mut base = Vec::with_capacity(grid.len());
        for idx in 0..grid.len() {
            let (_, ilat) = grid.coords(idx);
            let lat = grid.latitude(ilat);
            let latitudinal = 1.0 + 0.3 * lat.cos();
            let tex = 1.0 + p.texture_amp * texture[idx].tanh();
            base.push(p.base_scale * latitudinal * tex.max(0.05));
        }
        // Initial anomaly at its stationary distribution.
        let init = correlated_noise(grid, &mut rng, 2, 2);
        let anomaly: Vec<f64> = init.iter().map(|&e| p.sigma * e).collect();
        let mut model =
            Self { var, grid, base, anomaly, current: vec![0.0; grid.len()], rng, t: 0 };
        model.recompute_current();
        model
    }

    /// The variable being generated.
    pub fn var(&self) -> ClimateVar {
        self.var
    }

    /// The grid.
    pub fn grid(&self) -> Grid {
        self.grid
    }

    /// Iteration counter.
    pub fn iteration(&self) -> u64 {
        self.t
    }

    /// The current field (iteration `t`).
    pub fn current(&self) -> &[f64] {
        &self.current
    }

    /// Advance one iteration and return the new field.
    pub fn step(&mut self) -> &[f64] {
        let p = self.var.params();
        // AR(1) anomaly update with fresh correlated innovation.
        let innovation = correlated_noise(self.grid, &mut self.rng, 2, 2);
        let drive = p.sigma * (1.0 - p.phi * p.phi).sqrt();
        for (s, &eta) in self.anomaly.iter_mut().zip(&innovation) {
            *s = p.phi * *s + drive * eta;
        }
        // Episodic spikes: a few smoothed bumps per step.
        if p.spike_prob > 0.0 {
            let expected = p.spike_prob * self.grid.len() as f64;
            let count = poisson_like(&mut self.rng, expected);
            if count > 0 {
                let mut bump = vec![0.0; self.grid.len()];
                for _ in 0..count {
                    let idx = self.rng.below(self.grid.len());
                    bump[idx] = p.spike_scale * (1.0 + self.rng.next_f64());
                }
                // Smooth the impulses into weather-system-sized blobs.
                let mut smooth = box_blur(self.grid, &bump, 2);
                // Blur shrinks the peak; rescale to keep the intended
                // magnitude.
                let peak = smooth.iter().cloned().fold(0.0f64, f64::max);
                if peak > 0.0 {
                    let gain = p.spike_scale / peak;
                    for v in &mut smooth {
                        *v *= gain;
                    }
                }
                for (s, b) in self.anomaly.iter_mut().zip(&smooth) {
                    *s += b;
                }
            }
        }
        self.t += 1;
        self.recompute_current();
        &self.current
    }

    /// Produce iterations `t+1 ..= t+n` (the current field is *not*
    /// included).
    pub fn take_iterations(&mut self, n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|_| self.step().to_vec()).collect()
    }

    fn recompute_current(&mut self) {
        let p = self.var.params();
        let phase_scale = std::f64::consts::TAU / p.season_period;
        for idx in 0..self.grid.len() {
            let (_, ilat) = self.grid.coords(idx);
            let lat = self.grid.latitude(ilat);
            // Opposite hemispheres are half a period out of phase.
            let phase = if lat >= 0.0 { 0.0 } else { std::f64::consts::PI };
            let season = 1.0 + p.seasonal_amp * (self.t as f64 * phase_scale + phase).sin();
            self.current[idx] = self.base[idx] * season * self.anomaly[idx].exp();
        }
    }
}

/// Cheap integer draw with the right mean for small expected counts
/// (sum of Bernoulli over 8 trials of mean/8 each — adequate for event
/// scheduling, not a statistics library).
fn poisson_like(rng: &mut Xoshiro256PlusPlus, expected: f64) -> usize {
    let trials = 8usize;
    let per = (expected / trials as f64).min(1.0);
    (0..trials).filter(|_| rng.next_f64() < per).count()
}

/// FNV-1a hash of a short name (variable stream separation).
fn fnv(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(var: ClimateVar) -> ClimateModel {
        ClimateModel::with_grid(var, Grid::new(72, 45), 1)
    }

    fn abs_changes(model: &mut ClimateModel, steps: usize) -> Vec<f64> {
        let mut out = Vec::new();
        let mut prev = model.current().to_vec();
        for _ in 0..steps {
            let next = model.step().to_vec();
            for (p, c) in prev.iter().zip(&next) {
                out.push(((c - p) / p).abs());
            }
            prev = next;
        }
        out
    }

    #[test]
    fn fields_are_positive_and_finite() {
        for v in ClimateVar::all() {
            let mut m = small(v);
            for _ in 0..10 {
                m.step();
            }
            for &x in m.current() {
                assert!(x.is_finite() && x > 0.0, "{v}: {x}");
            }
        }
    }

    #[test]
    fn rlus_matches_paper_headline_statistic() {
        // Paper Fig. 1: "more than 75% of climate rlus data remains
        // unchanged or only changes with a percentage less than 0.5%".
        let mut m = ClimateModel::new(ClimateVar::Rlus, 7);
        let changes = abs_changes(&mut m, 5);
        let small = changes.iter().filter(|&&c| c < 0.005).count();
        let frac = small as f64 / changes.len() as f64;
        assert!(frac > 0.75, "only {:.1}% of rlus changes below 0.5%", frac * 100.0);
    }

    #[test]
    fn abs550aer_is_the_hardest_variable() {
        // §III-E calls abs550aer "one of the most challenging": its
        // changes must spread far beyond the 0.5% landmark.
        let mut m = ClimateModel::new(ClimateVar::Abs550aer, 7);
        let changes = abs_changes(&mut m, 5);
        let small = changes.iter().filter(|&&c| c < 0.005).count();
        let frac = small as f64 / changes.len() as f64;
        assert!(frac < 0.30, "{:.1}% of abs550aer changes below 0.5% — too easy", frac * 100.0);
        // And a substantial spread: 90th percentile above 5%.
        let mut sorted = changes.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(sorted[sorted.len() * 9 / 10] > 0.05);
    }

    #[test]
    fn mrro_values_are_tiny() {
        // Table II reports ξ = 0.000 for every compressor on mrro, which
        // only happens when the values themselves are ~1e-5.
        let m = small(ClimateVar::Mrro);
        let max = m.current().iter().cloned().fold(0.0f64, f64::max);
        assert!(max < 1e-3, "mrro max {max}");
    }

    #[test]
    fn mc_values_are_huge() {
        // Table II: ξ ≈ 200 even after compression — value scale ~1e4+.
        let m = small(ClimateVar::Mc);
        let mean = m.current().iter().sum::<f64>() / m.current().len() as f64;
        assert!(mean > 1e4, "mc mean {mean}");
    }

    #[test]
    fn deterministic_per_seed_and_var() {
        let mut a = small(ClimateVar::Rlds);
        let mut b = small(ClimateVar::Rlds);
        for _ in 0..5 {
            a.step();
            b.step();
        }
        assert_eq!(a.current(), b.current());
        let mut c = ClimateModel::with_grid(ClimateVar::Rlds, Grid::new(72, 45), 2);
        c.step();
        assert_ne!(a.current(), c.current());
    }

    #[test]
    fn variables_use_distinct_streams() {
        let a = small(ClimateVar::Rlus);
        let b = small(ClimateVar::Rlds);
        // Same seed, different variables: fields must differ beyond a
        // scale factor.
        let ratio0 = a.current()[0] / b.current()[0];
        let ratio1 = a.current()[100] / b.current()[100];
        assert!((ratio0 - ratio1).abs() > 1e-6);
    }

    #[test]
    fn seasonal_cycle_moves_the_mean() {
        let mut m = ClimateModel::with_grid(ClimateVar::Rlus, Grid::new(36, 23), 3);
        let mean = |f: &[f64]| f.iter().sum::<f64>() / f.len() as f64;
        // Northern-hemisphere mean over half a year must swing by a few
        // percent.
        let north_mean = |m: &ClimateModel| {
            let g = m.grid();
            let mut s = 0.0;
            let mut n = 0.0;
            for idx in 0..g.len() {
                let (_, ilat) = g.coords(idx);
                if g.latitude(ilat) > 0.0 {
                    s += m.current()[idx];
                    n += 1.0;
                }
            }
            s / n
        };
        let start = north_mean(&m);
        // Quarter period = seasonal peak (sin goes 0 → 1).
        for _ in 0..91 {
            m.step();
        }
        let mid = north_mean(&m);
        let swing = ((mid - start) / start).abs();
        assert!(swing > 0.02, "seasonal swing {swing}");
        assert!(mean(m.current()) > 0.0);
    }

    #[test]
    fn take_iterations_returns_n_fresh_fields() {
        let mut m = small(ClimateVar::Mc);
        let first = m.current().to_vec();
        let iters = m.take_iterations(4);
        assert_eq!(iters.len(), 4);
        assert_eq!(m.iteration(), 4);
        assert_ne!(iters[0], first);
        assert_eq!(iters[3], m.current());
    }

    #[test]
    fn mrsos_rain_events_produce_heavy_tails() {
        let mut m = ClimateModel::new(ClimateVar::Mrsos, 11);
        let changes = abs_changes(&mut m, 20);
        let mut sorted = changes;
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p50 = sorted[sorted.len() / 2];
        let p999 = sorted[sorted.len() * 999 / 1000];
        assert!(
            p999 > 8.0 * p50,
            "rain spikes should fatten the tail: p50={p50} p99.9={p999}"
        );
    }
}
