//! Checkpoint/restart machinery built on NUMARCK compression.
//!
//! This crate is the storage side of the paper's Algorithm 1 and §II-D:
//!
//! * [`format`](crate::format) — an on-disk container for one checkpoint: either a
//!   *full* checkpoint (raw `f64` arrays per variable, the paper's `D_0`)
//!   or a *delta* checkpoint (one NUMARCK-compressed block per
//!   variable). CRC-protected, length-validated.
//! * [`store`] — a directory of checkpoint files indexed by iteration.
//! * [`manager`] — the write-side policy: a full checkpoint every `K`
//!   iterations, NUMARCK deltas in between (change ratios computed
//!   against the *exact* previous iteration, as in the paper).
//! * [`restart`] — the read side: locate the newest full checkpoint at or
//!   before the requested iteration and replay the delta chain on top,
//!   reproducing the paper's restart equation (including its error
//!   accumulation behaviour).
//! * [`fault`] — fault injection used by the recovery tests: truncate or
//!   bit-flip stored files and assert the reader degrades loudly, never
//!   silently.

pub mod fault;
pub mod format;
pub mod manager;
pub mod restart;
pub mod store;

pub use format::{CheckpointFile, CheckpointKind};
pub use manager::{AdaptivePolicy, CheckpointManager, CheckpointOutcome, ManagerPolicy};
pub use restart::RestartEngine;
pub use store::CheckpointStore;

/// Variables are keyed by name; every variable is an `f64` array of the
/// same length within one checkpoint stream.
pub type VariableSet = std::collections::BTreeMap<String, Vec<f64>>;
