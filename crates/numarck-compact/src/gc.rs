//! Retention GC: delete superseded chain artefacts, provably safely.
//!
//! Retention names the iterations that must stay restartable:
//!
//! * the newest stored iteration (always),
//! * the newest `keep_last_fulls` full checkpoints,
//! * every stored iteration divisible by `keep_every` (when set).
//!
//! *Liveness* is then reachability: a file is live iff it lies on the
//! resolved restart chain of some retained iteration — the same
//! backward span walk restart itself performs, so GC can never delete
//! a file restart would read. Everything else is dead: plain deltas a
//! merged delta superseded, deltas shadowed by a promoted full, whole
//! chains older than the retention horizon.
//!
//! Safety invariants, in order:
//!
//! 1. If any retained iteration's chain fails to resolve, **nothing**
//!    is deleted. A hole (quarantined or missing file) means the store
//!    needs scrub/repair, not a GC making it worse.
//! 2. Every live file is CRC-verified (a scrub-grade read) before the
//!    first delete. Deleting a dead file is only safe because a live
//!    replacement covers it — so the replacement must be proven intact
//!    first. Replacements were written fsync-durable (temp file +
//!    rename + dir fsync) by the store.
//! 3. A dead file younger than `min_age_secs` survives; unknown age
//!    (metadata error) counts as young. This keeps GC from racing an
//!    ingest or compaction that has not settled.

use std::collections::HashSet;
use std::time::{Duration, SystemTime};

use numarck::error::NumarckError;
use numarck_checkpoint::store::CheckpointStore;

use crate::chain::ChainView;

/// What one GC pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Files deleted.
    pub removed: u64,
    /// Bytes those files occupied.
    pub bytes_removed: u64,
    /// Files kept because they are live on a retained chain.
    pub live: u64,
    /// Dead files kept by the `min_age_secs` rule.
    pub kept_young: u64,
    /// Retained iterations whose chain failed to resolve. Non-zero
    /// means the pass deleted nothing (invariant 1).
    pub unresolvable: u64,
}

/// Run one retention pass. `keep_last_fulls` must be ≥ 1 — a GC that
/// may delete every full checkpoint is a GC that can destroy the store.
pub fn collect(
    store: &CheckpointStore,
    keep_last_fulls: usize,
    keep_every: u64,
    min_age_secs: u64,
) -> Result<GcReport, NumarckError> {
    assert!(keep_last_fulls >= 1, "retention must keep at least one full checkpoint");
    let view = ChainView::load(store)
        .map_err(|e| NumarckError::Io(format!("chain snapshot failed: {e}")))?;
    let mut report = GcReport::default();
    let Some(latest) = view.latest() else {
        return Ok(report); // empty store: nothing to retain, nothing to delete
    };

    // Retained iterations.
    let mut retained: HashSet<u64> = HashSet::new();
    retained.insert(latest);
    let fulls = view.fulls();
    for &f in fulls.iter().rev().take(keep_last_fulls) {
        retained.insert(f);
    }
    if keep_every > 0 {
        for it in view.iterations() {
            if it % keep_every == 0 {
                retained.insert(it);
            }
        }
    }

    // Live set = union of retained chains. Any unresolvable retained
    // chain aborts the pass (invariant 1).
    let mut live: HashSet<(u64, bool)> = HashSet::new();
    for &t in &retained {
        match view.resolve(t) {
            Some(chain) => {
                live.insert((chain.base, true));
                for d in chain.path {
                    live.insert((d, false));
                }
            }
            None => report.unresolvable += 1,
        }
    }
    if report.unresolvable > 0 {
        return Ok(report);
    }

    // Invariant 2: prove every live file intact before deleting its
    // superseded cover.
    for &(it, is_full) in &live {
        store.read(it, is_full).map_err(|e| {
            NumarckError::Corrupt(format!(
                "gc aborted: live file (iteration {it}, full={is_full}) failed verification: {e}"
            ))
        })?;
    }
    report.live = live.len() as u64;

    // Delete dead files old enough to be settled.
    let now = SystemTime::now();
    let min_age = Duration::from_secs(min_age_secs);
    for it in view.iterations().collect::<Vec<_>>() {
        let entry = *view.entry(it).expect("iterated key");
        for (present, is_full, bytes) in [
            (entry.full_bytes.is_some(), true, entry.full_bytes.unwrap_or(0)),
            (entry.delta_bytes.is_some(), false, entry.delta_bytes.unwrap_or(0)),
        ] {
            if !present || live.contains(&(it, is_full)) {
                continue;
            }
            if min_age_secs > 0 && !old_enough(store, it, is_full, now, min_age) {
                report.kept_young += 1;
                continue;
            }
            match store.remove(it, is_full) {
                Ok(()) => {
                    report.removed += 1;
                    report.bytes_removed += bytes;
                }
                // Already gone (e.g. a concurrent pass): that is the goal.
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => {
                    return Err(NumarckError::Io(format!(
                        "gc delete of iteration {it} (full={is_full}) failed: {e}"
                    )))
                }
            }
        }
    }
    Ok(report)
}

/// Invariant 3: age unknown counts as young.
fn old_enough(
    store: &CheckpointStore,
    iteration: u64,
    is_full: bool,
    now: SystemTime,
    min_age: Duration,
) -> bool {
    std::fs::metadata(store.path_of(iteration, is_full))
        .and_then(|m| m.modified())
        .ok()
        .and_then(|mtime| now.duration_since(mtime).ok())
        .is_some_and(|age| age >= min_age)
}
