/root/repo/target/debug/deps/numarck-516dd293fa0691f0.d: crates/numarck/src/lib.rs crates/numarck/src/anomaly.rs crates/numarck/src/autotune.rs crates/numarck/src/bitstream.rs crates/numarck/src/config.rs crates/numarck/src/decode.rs crates/numarck/src/drift.rs crates/numarck/src/encode.rs crates/numarck/src/error.rs crates/numarck/src/fpc.rs crates/numarck/src/group.rs crates/numarck/src/huffman.rs crates/numarck/src/metrics.rs crates/numarck/src/obs.rs crates/numarck/src/pipeline.rs crates/numarck/src/ratio.rs crates/numarck/src/serialize.rs crates/numarck/src/strategy/mod.rs crates/numarck/src/strategy/clustering.rs crates/numarck/src/strategy/equal_width.rs crates/numarck/src/strategy/log_scale.rs crates/numarck/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libnumarck-516dd293fa0691f0.rmeta: crates/numarck/src/lib.rs crates/numarck/src/anomaly.rs crates/numarck/src/autotune.rs crates/numarck/src/bitstream.rs crates/numarck/src/config.rs crates/numarck/src/decode.rs crates/numarck/src/drift.rs crates/numarck/src/encode.rs crates/numarck/src/error.rs crates/numarck/src/fpc.rs crates/numarck/src/group.rs crates/numarck/src/huffman.rs crates/numarck/src/metrics.rs crates/numarck/src/obs.rs crates/numarck/src/pipeline.rs crates/numarck/src/ratio.rs crates/numarck/src/serialize.rs crates/numarck/src/strategy/mod.rs crates/numarck/src/strategy/clustering.rs crates/numarck/src/strategy/equal_width.rs crates/numarck/src/strategy/log_scale.rs crates/numarck/src/table.rs Cargo.toml

crates/numarck/src/lib.rs:
crates/numarck/src/anomaly.rs:
crates/numarck/src/autotune.rs:
crates/numarck/src/bitstream.rs:
crates/numarck/src/config.rs:
crates/numarck/src/decode.rs:
crates/numarck/src/drift.rs:
crates/numarck/src/encode.rs:
crates/numarck/src/error.rs:
crates/numarck/src/fpc.rs:
crates/numarck/src/group.rs:
crates/numarck/src/huffman.rs:
crates/numarck/src/metrics.rs:
crates/numarck/src/obs.rs:
crates/numarck/src/pipeline.rs:
crates/numarck/src/ratio.rs:
crates/numarck/src/serialize.rs:
crates/numarck/src/strategy/mod.rs:
crates/numarck/src/strategy/clustering.rs:
crates/numarck/src/strategy/equal_width.rs:
crates/numarck/src/strategy/log_scale.rs:
crates/numarck/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
