/root/repo/target/debug/deps/wire_robustness-8d4ccf8600ddd471.d: crates/numarck-serve/tests/wire_robustness.rs

/root/repo/target/debug/deps/libwire_robustness-8d4ccf8600ddd471.rmeta: crates/numarck-serve/tests/wire_robustness.rs

crates/numarck-serve/tests/wire_robustness.rs:
