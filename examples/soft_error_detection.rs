//! Soft-error detection in a running simulation (the paper's §V
//! future-work direction, implemented): a FLASH run is checkpointed every
//! few steps; before each checkpoint is written, the change-ratio
//! anomaly detector screens the transition for silent data corruption.
//! Mid-run we flip a bit in the state (a simulated cosmic-ray strike) and
//! watch the screen catch it before the corruption reaches storage.
//!
//! Run with: `cargo run --release --example soft_error_detection`

use flash_sim::{FlashSimulation, FlashVar, Problem};
use numarck::anomaly::{detect, AnomalyConfig, StreamingDetector};

fn main() {
    let mut sim = FlashSimulation::paper_default(Problem::SedovBlast, 4, 4);
    sim.run_steps(30);
    let config = AnomalyConfig::default();

    let mut previous = sim.checkpoint();
    let mut streaming = StreamingDetector::new(config);
    println!("screening 10 checkpoints of {} points each...\n", sim.num_cells());

    for ckpt in 1..=10u32 {
        sim.run_steps(2);
        let mut current = sim.checkpoint();

        // Checkpoint 6 suffers a cosmic-ray strike: one exponent bit of
        // one pres value flips between solve and write (the exponent MSB:
        // the value teleports by hundreds of orders of magnitude).
        let mut strike: Option<usize> = None;
        if ckpt == 6 {
            let victim = 1_234;
            let pres = current.get_mut(&FlashVar::Pres).expect("pres exists");
            pres[victim] = f64::from_bits(pres[victim].to_bits() ^ (1u64 << 62));
            strike = Some(victim);
        }

        // Batch screen over the pres transition.
        let report = detect(
            &previous[&FlashVar::Pres],
            &current[&FlashVar::Pres],
            &config,
        )
        .expect("same shapes");

        // Streaming screen sees the same points one at a time.
        let mut stream_hits = 0usize;
        for (&p, &c) in previous[&FlashVar::Pres].iter().zip(&current[&FlashVar::Pres]) {
            if streaming.observe(p, c) {
                stream_hits += 1;
            }
        }

        match (report.is_clean(), strike) {
            (true, None) => {
                println!("checkpoint {ckpt:2}: clean (batch ✓, streaming hits: {stream_hits})");
            }
            (false, Some(victim)) => {
                let caught = report.anomalies.iter().any(|a| a.index == victim);
                println!(
                    "checkpoint {ckpt:2}: CORRUPTION caught at point {} (score {:.0}) — \
                     checkpoint quarantined, not written",
                    report.anomalies[0].index, report.anomalies[0].score
                );
                assert!(caught, "detector missed the strike");
                assert!(stream_hits >= 1, "streaming screen missed the strike");
                // Recover: recompute the checkpoint from the (uncorrupted)
                // solver state — here, simply re-extract.
                current = sim.checkpoint();
                let recheck =
                    detect(&previous[&FlashVar::Pres], &current[&FlashVar::Pres], &config)
                        .expect("same shapes");
                assert!(recheck.is_clean());
                println!("              re-extracted checkpoint is clean — writing that instead");
            }
            (false, None) => panic!("false positive on a clean checkpoint"),
            (true, Some(_)) => panic!("detector missed an injected strike"),
        }
        previous = current;
    }
    println!("\nall corruption caught, zero false positives ✓");
}
