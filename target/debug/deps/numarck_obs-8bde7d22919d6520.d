/root/repo/target/debug/deps/numarck_obs-8bde7d22919d6520.d: crates/numarck-obs/src/lib.rs crates/numarck-obs/src/http.rs crates/numarck-obs/src/instrument.rs crates/numarck-obs/src/registry.rs crates/numarck-obs/src/ring.rs crates/numarck-obs/src/snapshot.rs

/root/repo/target/debug/deps/libnumarck_obs-8bde7d22919d6520.rmeta: crates/numarck-obs/src/lib.rs crates/numarck-obs/src/http.rs crates/numarck-obs/src/instrument.rs crates/numarck-obs/src/registry.rs crates/numarck-obs/src/ring.rs crates/numarck-obs/src/snapshot.rs

crates/numarck-obs/src/lib.rs:
crates/numarck-obs/src/http.rs:
crates/numarck-obs/src/instrument.rs:
crates/numarck-obs/src/registry.rs:
crates/numarck-obs/src/ring.rs:
crates/numarck-obs/src/snapshot.rs:
