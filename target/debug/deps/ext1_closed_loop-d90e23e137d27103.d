/root/repo/target/debug/deps/ext1_closed_loop-d90e23e137d27103.d: crates/numarck-bench/src/bin/ext1_closed_loop.rs

/root/repo/target/debug/deps/ext1_closed_loop-d90e23e137d27103: crates/numarck-bench/src/bin/ext1_closed_loop.rs

crates/numarck-bench/src/bin/ext1_closed_loop.rs:
