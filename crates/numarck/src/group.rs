//! Shared-table group compression of co-varying variables.
//!
//! The paper observes (§III-G) that `pres` and `temp` "showed very
//! similar behaviors because the computation applied to both is actually
//! the same" — their change-ratio distributions coincide. When several
//! variables share a distribution, fitting one representative table over
//! their pooled fit samples and indexing every variable against it pays
//! the `(2^B − 1) × 64`-bit table cost once instead of once per
//! variable, with no effect on the per-point error bound (escape still
//! guards every point individually). This is the "design of functions /
//! local computations" future-work direction of §V made concrete.

use rayon::prelude::*;

use numarck_par::chunk::partition_mut;

use crate::config::Config;
use crate::encode::{self, CompressedIteration, IterationStats};
use crate::error::NumarckError;
use crate::ratio;
use crate::strategy;

/// Result of compressing a variable group against one shared table.
#[derive(Debug, Clone)]
pub struct GroupStats {
    /// Per-variable stats (the `compression_ratio_eq3` inside each one
    /// charges a full private table — see
    /// [`GroupStats::compression_ratio_eq3_shared`] for the honest group
    /// accounting).
    pub per_variable: Vec<IterationStats>,
    /// Representatives in the shared table.
    pub shared_table_len: usize,
    /// Eq. 3 compression ratio for the whole group with the table
    /// charged once.
    pub compression_ratio_eq3_shared: f64,
    /// Eq. 3 ratio the same variables would get with private tables
    /// (for comparison).
    pub compression_ratio_eq3_private: f64,
}

/// Compress several `(prev, curr)` pairs against one shared table.
///
/// All pairs are validated independently (length mismatch / non-finite
/// input fail the whole group). Returns one [`CompressedIteration`] per
/// variable — each block embeds (a copy of) the shared table, so blocks
/// stay individually decodable; the storage win shows up in the group
/// accounting and in any container that deduplicates the table section.
pub fn encode_group(
    pairs: &[(&[f64], &[f64])],
    config: &Config,
) -> Result<(Vec<CompressedIteration>, GroupStats), NumarckError> {
    let tolerance = config.tolerance();
    // Transform every variable first (so validation errors surface
    // before any work). Each transform is internally parallel.
    let mut transforms = Vec::with_capacity(pairs.len());
    for (prev, curr) in pairs {
        transforms.push(ratio::compute(prev, curr, tolerance)?);
    }
    // Pool the fit samples the same way the encoder's packer partitions
    // its output: per-variable sample lengths (known O(1) from the
    // transform's class counts) carve one preallocated buffer into
    // disjoint windows, and every variable copies its sample in parallel.
    let pooled_len: usize = transforms.iter().map(|r| r.counts.large).sum();
    let mut pooled = vec![0.0f64; pooled_len];
    let windows = partition_mut(&mut pooled, transforms.iter().map(|r| r.fit_sample.len()));
    windows
        .into_par_iter()
        .zip(transforms.par_iter())
        .for_each(|(dst, r)| dst.copy_from_slice(&r.fit_sample));
    let table = strategy::fit_table(
        config.strategy(),
        &pooled,
        config.max_table_len(),
        &config.clustering(),
    );

    let mut blocks = Vec::with_capacity(pairs.len());
    let mut per_variable = Vec::with_capacity(pairs.len());
    for ((_, curr), ratios) in pairs.iter().zip(&transforms) {
        let (block, stats) = encode::encode_prepared(curr, ratios, table.clone(), config)?;
        blocks.push(block);
        per_variable.push(stats);
    }

    // Group Eq. 3 accounting: index + exact bits summed over variables,
    // table charged once.
    let total_points: usize = per_variable.iter().map(|s| s.num_points).sum();
    let total_bits = 64.0 * total_points as f64;
    let payload_bits: f64 = per_variable
        .iter()
        .map(|s| {
            s.num_compressible as f64 * config.bits() as f64
                + s.num_incompressible as f64 * 64.0
        })
        .sum();
    let table_bits = ((1u64 << config.bits()) - 1) as f64 * 64.0;
    let shared = if total_points == 0 {
        0.0
    } else {
        (total_bits - (payload_bits + table_bits)) / total_bits
    };
    let private = if total_points == 0 {
        0.0
    } else {
        (total_bits - (payload_bits + table_bits * pairs.len() as f64)) / total_bits
    };

    Ok((
        blocks,
        GroupStats {
            per_variable,
            shared_table_len: table.len(),
            compression_ratio_eq3_shared: shared,
            compression_ratio_eq3_private: private,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode;
    use crate::strategy::Strategy;

    fn cfg() -> Config {
        Config::new(8, 0.001, Strategy::Clustering).unwrap()
    }

    /// pres/temp-style pair: identical change ratios, different values.
    fn covarying_pair(n: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>) {
        let pres_prev: Vec<f64> = (0..n).map(|i| 100.0 + (i % 17) as f64).collect();
        let temp_prev: Vec<f64> = (0..n).map(|i| 300.0 + (i % 17) as f64 * 2.0).collect();
        let factor = |i: usize| 1.0 + 0.004 * ((i % 9) as f64 - 4.0) / 4.0;
        let pres_curr: Vec<f64> =
            pres_prev.iter().enumerate().map(|(i, v)| v * factor(i)).collect();
        let temp_curr: Vec<f64> =
            temp_prev.iter().enumerate().map(|(i, v)| v * factor(i)).collect();
        (pres_prev, pres_curr, temp_prev, temp_curr)
    }

    #[test]
    fn shared_table_preserves_error_bounds() {
        let (pp, pc, tp, tc) = covarying_pair(4000);
        let (blocks, stats) =
            encode_group(&[(&pp, &pc), (&tp, &tc)], &cfg()).unwrap();
        assert_eq!(blocks.len(), 2);
        for st in &stats.per_variable {
            assert!(st.max_error_rate <= 0.001 + 1e-12);
        }
        // Both blocks decode within bounds.
        for (block, (prev, curr)) in blocks.iter().zip([(&pp, &pc), (&tp, &tc)]) {
            let rec = decode::reconstruct(prev, block).unwrap();
            for (r, c) in rec.iter().zip(curr.iter()) {
                assert!(((r - c) / c).abs() <= 0.0011);
            }
        }
    }

    #[test]
    fn covarying_variables_share_without_quality_loss() {
        let (pp, pc, tp, tc) = covarying_pair(4000);
        let (_, group) = encode_group(&[(&pp, &pc), (&tp, &tc)], &cfg()).unwrap();
        // Identical ratio distributions: sharing costs nothing.
        for st in &group.per_variable {
            assert_eq!(st.num_incompressible, 0, "no escapes for identical distributions");
        }
        // Shared accounting beats private accounting by one table.
        assert!(
            group.compression_ratio_eq3_shared > group.compression_ratio_eq3_private,
            "shared {} vs private {}",
            group.compression_ratio_eq3_shared,
            group.compression_ratio_eq3_private
        );
        let expected_gain = 255.0 * 64.0 / (64.0 * 8000.0);
        let gain =
            group.compression_ratio_eq3_shared - group.compression_ratio_eq3_private;
        assert!((gain - expected_gain).abs() < 1e-12);
    }

    #[test]
    fn disjoint_distributions_may_escape_more_but_stay_bounded() {
        // Two variables with disjoint ratio clusters competing for one
        // table: correctness must hold even if compression suffers.
        let n = 3000;
        let a_prev = vec![1.0; n];
        let a_curr: Vec<f64> = (0..n).map(|i| 1.0 + 0.01 + 1e-5 * (i % 7) as f64).collect();
        let b_prev = vec![1.0; n];
        let b_curr: Vec<f64> = (0..n).map(|i| 1.0 - 0.25 - 1e-5 * (i % 5) as f64).collect();
        let (blocks, stats) =
            encode_group(&[(&a_prev, &a_curr), (&b_prev, &b_curr)], &cfg()).unwrap();
        for st in &stats.per_variable {
            assert!(st.max_error_rate <= 0.001 + 1e-12);
        }
        for (block, (prev, curr)) in blocks.iter().zip([(&a_prev, &a_curr), (&b_prev, &b_curr)]) {
            let rec = decode::reconstruct(prev, block).unwrap();
            for (r, c) in rec.iter().zip(curr.iter()) {
                assert!(((r - c) / c).abs() <= 0.0014, "{r} vs {c}");
            }
        }
    }

    #[test]
    fn group_of_one_matches_single_variable_encode() {
        let (pp, pc, _, _) = covarying_pair(1000);
        let (blocks, _) = encode_group(&[(&pp, &pc)], &cfg()).unwrap();
        let (single, _) = encode::encode(&pp, &pc, &cfg()).unwrap();
        assert_eq!(blocks[0], single);
    }

    #[test]
    fn variables_of_different_lengths_are_fine() {
        // Grouping only pools the *ratio samples*; variables need not
        // share a shape.
        let a_prev: Vec<f64> = (0..500).map(|i| 1.0 + (i % 5) as f64).collect();
        let a_curr: Vec<f64> = a_prev.iter().map(|v| v * 1.002).collect();
        let b_prev: Vec<f64> = (0..1200).map(|i| 2.0 + (i % 3) as f64).collect();
        let b_curr: Vec<f64> = b_prev.iter().map(|v| v * 1.002).collect();
        let (blocks, stats) =
            encode_group(&[(&a_prev, &a_curr), (&b_prev, &b_curr)], &cfg()).unwrap();
        assert_eq!(blocks[0].num_points, 500);
        assert_eq!(blocks[1].num_points, 1200);
        let total: usize = stats.per_variable.iter().map(|s| s.num_points).sum();
        assert_eq!(total, 1700);
    }

    #[test]
    fn empty_group() {
        let (blocks, stats) = encode_group(&[], &cfg()).unwrap();
        assert!(blocks.is_empty());
        assert_eq!(stats.compression_ratio_eq3_shared, 0.0);
    }

    #[test]
    fn validation_failure_fails_the_whole_group() {
        let good = (vec![1.0, 2.0], vec![1.0, 2.0]);
        let bad = (vec![1.0], vec![1.0, 2.0]);
        let result = encode_group(
            &[(&good.0, &good.1), (&bad.0, &bad.1)],
            &cfg(),
        );
        assert!(matches!(result, Err(NumarckError::LengthMismatch { .. })));
    }
}
