//! `.f64s` iteration-sequence files.
//!
//! Layout (little-endian): magic `NF64`, `u32` iteration count, `u64`
//! points per iteration, then `iterations × points` doubles. Trivial on
//! purpose — it is the interchange format between `gen`, `compress`,
//! `decompress` and `verify`, and easy to produce from any simulation.

use std::fs;
use std::io::Write;
use std::path::Path;

/// Magic bytes of a sequence file.
pub const MAGIC: [u8; 4] = *b"NF64";

/// Write a sequence of equal-length iterations.
pub fn write(path: &Path, iterations: &[Vec<f64>]) -> Result<(), String> {
    if let Some(first) = iterations.first() {
        if iterations.iter().any(|it| it.len() != first.len()) {
            return Err("all iterations must have the same length".to_string());
        }
    }
    let points = iterations.first().map(|v| v.len()).unwrap_or(0);
    let mut buf =
        Vec::with_capacity(16 + iterations.len() * points * 8);
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&(iterations.len() as u32).to_le_bytes());
    buf.extend_from_slice(&(points as u64).to_le_bytes());
    for it in iterations {
        for v in it {
            buf.extend_from_slice(&v.to_le_bytes());
        }
    }
    let mut f = fs::File::create(path)
        .map_err(|e| format!("cannot create {}: {e}", path.display()))?;
    f.write_all(&buf).map_err(|e| format!("cannot write {}: {e}", path.display()))
}

/// Read a sequence file.
pub fn read(path: &Path) -> Result<Vec<Vec<f64>>, String> {
    let data =
        fs::read(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    if data.len() < 16 || data[..4] != MAGIC {
        return Err(format!("{} is not a .f64s sequence file", path.display()));
    }
    let iterations = u32::from_le_bytes(data[4..8].try_into().expect("4 bytes")) as usize;
    let points = u64::from_le_bytes(data[8..16].try_into().expect("8 bytes")) as usize;
    let expected = 16 + iterations * points * 8;
    if data.len() != expected {
        return Err(format!(
            "{}: expected {expected} bytes for {iterations}x{points}, found {}",
            path.display(),
            data.len()
        ));
    }
    let mut out = Vec::with_capacity(iterations);
    let mut off = 16;
    for _ in 0..iterations {
        let mut it = Vec::with_capacity(points);
        for _ in 0..points {
            it.push(f64::from_le_bytes(data[off..off + 8].try_into().expect("8 bytes")));
            off += 8;
        }
        out.push(it);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TempDir;

    #[test]
    fn roundtrip() {
        let tmp = TempDir::new("seqfile");
        let path = std::path::PathBuf::from(tmp.path("x.f64s"));
        let data = vec![vec![1.0, 2.0, 3.0], vec![1.5, 2.5, -3.5]];
        write(&path, &data).unwrap();
        assert_eq!(read(&path).unwrap(), data);
    }

    #[test]
    fn empty_sequence() {
        let tmp = TempDir::new("seqfile-empty");
        let path = std::path::PathBuf::from(tmp.path("e.f64s"));
        write(&path, &[]).unwrap();
        assert!(read(&path).unwrap().is_empty());
    }

    #[test]
    fn ragged_input_rejected() {
        let tmp = TempDir::new("seqfile-ragged");
        let path = std::path::PathBuf::from(tmp.path("r.f64s"));
        assert!(write(&path, &[vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn garbage_rejected() {
        let tmp = TempDir::new("seqfile-garbage");
        let path = std::path::PathBuf::from(tmp.path("g.f64s"));
        std::fs::write(&path, b"not a sequence").unwrap();
        assert!(read(&path).is_err());
        // Truncated payload.
        let good = std::path::PathBuf::from(tmp.path("t.f64s"));
        write(&good, &[vec![1.0, 2.0]]).unwrap();
        let bytes = std::fs::read(&good).unwrap();
        std::fs::write(&good, &bytes[..bytes.len() - 4]).unwrap();
        assert!(read(&good).is_err());
    }
}
