/root/repo/target/debug/deps/fig6-c85fe64c10b78d82.d: crates/numarck-bench/src/bin/fig6.rs

/root/repo/target/debug/deps/libfig6-c85fe64c10b78d82.rmeta: crates/numarck-bench/src/bin/fig6.rs

crates/numarck-bench/src/bin/fig6.rs:
