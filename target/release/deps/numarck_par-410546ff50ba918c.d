/root/repo/target/release/deps/numarck_par-410546ff50ba918c.d: crates/numarck-par/src/lib.rs crates/numarck-par/src/chunk.rs crates/numarck-par/src/histogram.rs crates/numarck-par/src/pool.rs crates/numarck-par/src/quantile.rs crates/numarck-par/src/reduce.rs crates/numarck-par/src/rng.rs crates/numarck-par/src/scan.rs

/root/repo/target/release/deps/libnumarck_par-410546ff50ba918c.rlib: crates/numarck-par/src/lib.rs crates/numarck-par/src/chunk.rs crates/numarck-par/src/histogram.rs crates/numarck-par/src/pool.rs crates/numarck-par/src/quantile.rs crates/numarck-par/src/reduce.rs crates/numarck-par/src/rng.rs crates/numarck-par/src/scan.rs

/root/repo/target/release/deps/libnumarck_par-410546ff50ba918c.rmeta: crates/numarck-par/src/lib.rs crates/numarck-par/src/chunk.rs crates/numarck-par/src/histogram.rs crates/numarck-par/src/pool.rs crates/numarck-par/src/quantile.rs crates/numarck-par/src/reduce.rs crates/numarck-par/src/rng.rs crates/numarck-par/src/scan.rs

crates/numarck-par/src/lib.rs:
crates/numarck-par/src/chunk.rs:
crates/numarck-par/src/histogram.rs:
crates/numarck-par/src/pool.rs:
crates/numarck-par/src/quantile.rs:
crates/numarck-par/src/reduce.rs:
crates/numarck-par/src/rng.rs:
crates/numarck-par/src/scan.rs:
