//! The instruments: counter, gauge, histogram, span.
//!
//! Everything here is lock-free and allocation-free on the record path.
//! Handles are `Arc`s handed out by the [`crate::Registry`]; callers
//! cache them (in a struct field or a `OnceLock`) so the hot path never
//! touches the registry map.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::time::Instant;

/// Process-wide switch for *span timing* (not counters): when off,
/// [`Histogram::span`] skips the clock reads and records nothing.
/// Benchmarks flip this to measure the instrumentation overhead;
/// production leaves it on.
static TIMING_ENABLED: AtomicBool = AtomicBool::new(true);

/// Enable or disable span timing process-wide. Returns the previous
/// state so benchmarks can restore it.
pub fn set_timing_enabled(on: bool) -> bool {
    TIMING_ENABLED.swap(on, Ordering::Relaxed)
}

/// Whether span timing is currently enabled.
#[inline]
pub fn timing_enabled() -> bool {
    TIMING_ENABLED.load(Ordering::Relaxed)
}

/// Monotone event counter. The hot path ([`Counter::inc`] /
/// [`Counter::add`]) is exactly one relaxed atomic RMW — no branch, no
/// load, no registry lookup.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh counter at zero.
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Signed level gauge (queue depth, open sessions, in-flight requests).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A fresh gauge at zero.
    pub const fn new() -> Self {
        Self(AtomicI64::new(0))
    }

    /// Set to an absolute value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `d` (may be negative).
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtract one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: values 0..16 exact, then 60 octaves ×
/// 4 log-linear sub-buckets covering the rest of the `u64` range.
pub const BUCKETS: usize = 256;

/// Fixed log-bucketed atomic histogram.
///
/// Bucket layout (all bounds in the recorded unit, typically ns):
/// * buckets `0..16` hold the exact values `0..16`;
/// * above that, each power-of-two octave `[2^k, 2^{k+1})` (k ≥ 4) is
///   split into 4 equal sub-buckets, so bucket width is 1/4 of the
///   bucket's magnitude and a quantile read from a bucket midpoint is
///   within ±12.5% of the true value.
///
/// Recording is two relaxed atomic adds (bucket count + running sum).
/// Snapshot reads are racy-but-monotone, which is all an exporter
/// needs.
#[derive(Debug)]
pub struct Histogram {
    counts: [AtomicU64; BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index for a recorded value.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < 16 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros() as usize; // >= 4
        let sub = ((v >> (msb - 2)) & 3) as usize;
        16 + (msb - 4) * 4 + sub
    }
}

/// Inclusive lower bound of bucket `i` (the smallest value that lands
/// in it).
pub(crate) fn bucket_lower(i: usize) -> u64 {
    if i < 16 {
        i as u64
    } else {
        let g = i - 16;
        let msb = 4 + g / 4;
        let sub = (g % 4) as u64;
        (4 + sub) << (msb - 2)
    }
}

/// Inclusive upper bound of bucket `i`.
pub(crate) fn bucket_upper(i: usize) -> u64 {
    if i + 1 < BUCKETS {
        bucket_lower(i + 1) - 1
    } else {
        u64::MAX
    }
}

/// Midpoint of bucket `i`, used as the quantile representative.
pub(crate) fn bucket_mid(i: usize) -> u64 {
    let lo = bucket_lower(i);
    let hi = bucket_upper(i);
    lo + (hi - lo) / 2
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Self { counts: [const { AtomicU64::new(0) }; BUCKETS], sum: AtomicU64::new(0) }
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.counts[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Start an RAII span that records its elapsed nanoseconds into
    /// this histogram on drop (a no-op while [`timing_enabled`] is
    /// off).
    #[inline]
    pub fn span(&self) -> Span<'_> {
        Span {
            hist: self,
            start: if timing_enabled() { Some(Instant::now()) } else { None },
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the bucket counts.
    pub fn bucket_counts(&self) -> [u64; BUCKETS] {
        let mut out = [0u64; BUCKETS];
        for (o, c) in out.iter_mut().zip(&self.counts) {
            *o = c.load(Ordering::Relaxed);
        }
        out
    }

    /// Quantile `q` in `[0, 1]` from a frozen bucket array: the
    /// midpoint of the bucket holding the `ceil(q·count)`-th
    /// observation. Returns 0 for an empty histogram.
    pub fn quantile_from(buckets: &[u64; BUCKETS], q: f64) -> u64 {
        let total: u64 = buckets.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in buckets.iter().enumerate() {
            cum += c;
            if cum >= target {
                return bucket_mid(i);
            }
        }
        bucket_mid(BUCKETS - 1)
    }

    /// Quantile `q` over the live counts (convenience for tests and
    /// in-process introspection; exporters snapshot first).
    pub fn quantile(&self, q: f64) -> u64 {
        Self::quantile_from(&self.bucket_counts(), q)
    }
}

/// RAII timer: created by [`Histogram::span`], records elapsed
/// nanoseconds on drop. Dropping without recording (timing disabled)
/// costs one branch.
#[derive(Debug)]
pub struct Span<'a> {
    hist: &'a Histogram,
    start: Option<Instant>,
}

impl Span<'_> {
    /// Discard the span without recording (e.g. on an error path that
    /// should not pollute the latency distribution).
    pub fn cancel(mut self) {
        self.start = None;
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = start.elapsed().as_nanos();
            self.hist.record(u64::try_from(ns).unwrap_or(u64::MAX));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::new();
        g.inc();
        g.add(5);
        g.dec();
        assert_eq!(g.get(), 5);
        g.set(-3);
        assert_eq!(g.get(), -3);
    }

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        let mut last = 0usize;
        for shift in 0..64u32 {
            let v = 1u64 << shift;
            for off in [0u64, 1] {
                let idx = bucket_index(v.saturating_add(off));
                assert!(idx < BUCKETS, "v={v} idx={idx}");
                assert!(idx >= last, "index must not decrease");
                last = idx;
            }
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(15), 15);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_tile_the_u64_range() {
        // Every bucket's lower bound maps back to that bucket, and
        // bounds are contiguous.
        for i in 0..BUCKETS {
            let lo = bucket_lower(i);
            assert_eq!(bucket_index(lo), i, "lower bound of {i}");
            assert_eq!(bucket_index(bucket_upper(i)), i, "upper bound of {i}");
            if i + 1 < BUCKETS {
                assert_eq!(bucket_upper(i) + 1, bucket_lower(i + 1));
            }
        }
        assert_eq!(bucket_upper(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 16);
        assert_eq!(h.sum(), (0..16).sum::<u64>());
        // p50 over 0..=15 lands exactly on 7 (exact buckets).
        assert_eq!(h.quantile(0.5), 7);
    }

    #[test]
    fn quantiles_are_within_bucket_error() {
        let h = Histogram::new();
        // 1000 observations of 10_000 plus 10 of 1_000_000.
        for _ in 0..1000 {
            h.record(10_000);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        let p50 = h.quantile(0.5) as f64;
        assert!((p50 - 10_000.0).abs() / 10_000.0 <= 0.125, "p50 {p50}");
        let p99 = h.quantile(0.99) as f64;
        assert!((p99 - 10_000.0).abs() / 10_000.0 <= 0.125, "p99 {p99}");
        let p999 = h.quantile(0.9999) as f64;
        assert!((p999 - 1_000_000.0).abs() / 1_000_000.0 <= 0.125, "p99.99 {p999}");
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn span_records_once_on_drop() {
        let h = Histogram::new();
        {
            let _s = h.span();
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn cancelled_span_records_nothing() {
        let h = Histogram::new();
        h.span().cancel();
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn disabled_timing_skips_recording() {
        let h = Histogram::new();
        let was = set_timing_enabled(false);
        {
            let _s = h.span();
        }
        set_timing_enabled(was);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(i * (t + 1));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 40_000);
    }
}
