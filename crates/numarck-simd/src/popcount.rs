//! Kernel 3: bitmap popcount, the primitive behind decode's block-rank
//! index (`chunked_popcount_ranks`) and bitmap validation.
//!
//! Integer bit counts have one exact answer, so all levels are trivially
//! bit-identical; the levels differ only in throughput. The `avx2` level
//! is compiled with `popcnt` enabled so `count_ones` lowers to the
//! hardware instruction instead of the portable SWAR sequence — the
//! feature check in [`crate::avx2_available`] requires POPCNT alongside
//! AVX2 for exactly this reason.

use crate::Level;

/// Dispatched sum of set bits over `words`.
#[inline]
pub fn popcount_sum(words: &[u64]) -> u64 {
    popcount_sum_with(crate::active_level(), words)
}

/// [`popcount_sum`] at an explicit level (oracle sweeps).
pub fn popcount_sum_with(level: Level, words: &[u64]) -> u64 {
    match level {
        Level::Scalar => popcount_sum_scalar(words),
        Level::Unrolled => popcount_sum_unrolled(words),
        #[cfg(target_arch = "x86_64")]
        Level::Avx2 => unsafe { popcount_sum_avx2(words) },
        #[cfg(not(target_arch = "x86_64"))]
        Level::Avx2 => popcount_sum_unrolled(words),
    }
}

/// Scalar reference implementation (the oracle).
pub fn popcount_sum_scalar(words: &[u64]) -> u64 {
    words.iter().map(|w| w.count_ones() as u64).sum()
}

/// Portable chunks-of-8 variant: four independent accumulators break the
/// add dependency chain.
pub fn popcount_sum_unrolled(words: &[u64]) -> u64 {
    let mut w8 = words.chunks_exact(8);
    let (mut a, mut b, mut c, mut d) = (0u64, 0u64, 0u64, 0u64);
    for w in &mut w8 {
        a += (w[0].count_ones() + w[1].count_ones()) as u64;
        b += (w[2].count_ones() + w[3].count_ones()) as u64;
        c += (w[4].count_ones() + w[5].count_ones()) as u64;
        d += (w[6].count_ones() + w[7].count_ones()) as u64;
    }
    a + b + c + d + popcount_sum_scalar(w8.remainder())
}

/// POPCNT-enabled variant: same shape as the unrolled level, but
/// `count_ones` compiles to one `popcnt` per word.
///
/// # Safety
/// Requires the `avx2` and `popcnt` CPU features.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,popcnt")]
pub unsafe fn popcount_sum_avx2(words: &[u64]) -> u64 {
    let mut w8 = words.chunks_exact(8);
    let (mut a, mut b, mut c, mut d) = (0u64, 0u64, 0u64, 0u64);
    for w in &mut w8 {
        a += (w[0].count_ones() + w[1].count_ones()) as u64;
        b += (w[2].count_ones() + w[3].count_ones()) as u64;
        c += (w[4].count_ones() + w[5].count_ones()) as u64;
        d += (w[6].count_ones() + w[7].count_ones()) as u64;
    }
    let mut tail = 0u64;
    for &w in w8.remainder() {
        tail += w.count_ones() as u64;
    }
    a + b + c + d + tail
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(n: usize) -> Vec<u64> {
        (0..n as u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (i << 7)).collect()
    }

    #[test]
    fn levels_agree_across_lane_boundaries() {
        for n in [0usize, 1, 7, 8, 9, 15, 16, 17, 63, 64, 65, 1000] {
            let w = words(n);
            let oracle = popcount_sum_scalar(&w);
            for level in Level::all_supported() {
                assert_eq!(
                    popcount_sum_with(level, &w),
                    oracle,
                    "level {} n {n}",
                    level.name()
                );
            }
        }
    }

    #[test]
    fn known_values() {
        for level in Level::all_supported() {
            assert_eq!(popcount_sum_with(level, &[]), 0);
            assert_eq!(popcount_sum_with(level, &[u64::MAX; 9]), 9 * 64);
            assert_eq!(popcount_sum_with(level, &[1, 2, 4, 8, 16, 32, 64, 128, 256]), 9);
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn levels_match_oracle(w in proptest::collection::vec(any::<u64>(), 0..200)) {
                let oracle = popcount_sum_scalar(&w);
                for level in Level::all_supported() {
                    prop_assert_eq!(popcount_sum_with(level, &w), oracle);
                }
            }
        }
    }
}
