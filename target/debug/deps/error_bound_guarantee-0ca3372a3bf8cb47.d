/root/repo/target/debug/deps/error_bound_guarantee-0ca3372a3bf8cb47.d: tests/error_bound_guarantee.rs

/root/repo/target/debug/deps/liberror_bound_guarantee-0ca3372a3bf8cb47.rmeta: tests/error_bound_guarantee.rs

tests/error_bound_guarantee.rs:
