//! Encoding one iteration pair into NUMARCK's compressed form.
//!
//! The compressed artefact for one iteration (one variable) holds four
//! sections, matching the storage model of the paper's Eq. 3:
//!
//! 1. the representative table (`≤ 2^B − 1` ratios, 8 bytes each),
//! 2. a compressibility bitmap (1 bit per point; `ζ` in the paper),
//! 3. a bit-packed `B`-bit index per *compressible* point, and
//! 4. the exact 8-byte values of the *incompressible* points.
//!
//! Index 0 encodes "change below tolerance" (reconstruct as the previous
//! value); index `t + 1` refers to table entry `t`. A point is escaped to
//! section 4 when its previous value is zero, when its ratio is
//! non-finite, or when the nearest representative misses the true ratio by
//! more than the tolerance `E` — which is what makes the per-point error
//! bound unconditional.

use std::sync::atomic::AtomicU64;

use rayon::prelude::*;

use numarck_par::chunk::{chunk_size_aligned, partition_mut};
use numarck_par::reduce::Neumaier;
use numarck_par::scan::exclusive_scan_pairs;

use crate::bitstream::BitWriter;
use crate::config::Config;
use crate::error::NumarckError;
use crate::ratio;
use crate::strategy;
use crate::table::BinTable;

/// Sentinel in the intermediate code array marking an escaped point.
///
/// Collides with a real code only at an index width of 32 bits; the
/// compressor caps `B` at 16, so any code `!= ESCAPE` is a packable value.
pub const ESCAPE: u32 = u32::MAX;

// The SIMD kernels emit the same sentinel; the two constants must agree.
const _: () = assert!(ESCAPE == numarck_simd::ESCAPE);

/// Points classified per cache block in the fused classify+pack pass.
/// One block's scratch (4 KiB of codes + 8 KiB of errors) lives on the
/// stack and stays L1-resident between the lane kernel and the packer.
const PACK_BLOCK: usize = 1024;

/// One variable's compressed delta between two consecutive iterations.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedIteration {
    /// Index width `B` in bits.
    pub bits: u8,
    /// User tolerance `E` the block was encoded with.
    pub tolerance: f64,
    /// Number of data points.
    pub num_points: usize,
    /// Learned representative ratios.
    pub table: BinTable,
    /// Compressibility bitmap: bit `j` set ⇔ point `j` is index-coded.
    pub bitmap: Vec<u64>,
    /// Bit-packed `B`-bit indices of the compressible points, point order.
    pub index_words: Vec<u64>,
    /// Number of compressible points (values in `index_words`).
    pub num_compressible: usize,
    /// Exact values of the incompressible points, point order.
    pub exact_values: Vec<f64>,
}

impl CompressedIteration {
    /// Whether point `j` is index-coded.
    #[inline]
    pub fn is_compressible(&self, j: usize) -> bool {
        (self.bitmap[j / 64] >> (j % 64)) & 1 == 1
    }

    /// Incompressible fraction `γ`.
    pub fn incompressible_ratio(&self) -> f64 {
        if self.num_points == 0 {
            0.0
        } else {
            self.exact_values.len() as f64 / self.num_points as f64
        }
    }

    /// The paper's Eq. 3 compression ratio, in `[−∞, 1)`, as a fraction
    /// (the paper reports it ×100%). Charges `B` bits per compressible
    /// point, 64 bits per incompressible point, and a full `(2^B − 1)`
    /// entry table regardless of how many entries were actually learned —
    /// exactly as the paper does. The bitmap is *not* charged (the paper's
    /// model omits it); see [`crate::serialize`] for the true on-disk
    /// size.
    pub fn compression_ratio_eq3(&self) -> f64 {
        if self.num_points == 0 {
            return 0.0;
        }
        let n = self.num_points as f64;
        let gamma = self.incompressible_ratio();
        let total_bits = 64.0 * n;
        let index_bits = (1.0 - gamma) * n * self.bits as f64;
        let exact_bits = gamma * total_bits;
        let table_bits = ((1u64 << self.bits) - 1) as f64 * 64.0;
        (total_bits - (index_bits + exact_bits + table_bits)) / total_bits
    }
}

/// Per-iteration quality/size statistics.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct IterationStats {
    /// Number of data points.
    pub num_points: usize,
    /// Points representable by an index (including index 0).
    pub num_compressible: usize,
    /// Points stored exactly.
    pub num_incompressible: usize,
    /// Points whose `|Δ| < E` (stored as index 0).
    pub num_small_change: usize,
    /// `γ`: incompressible fraction.
    pub incompressible_ratio: f64,
    /// Mean `|Δ' − Δ|` across all points (exact points contribute 0).
    pub mean_error_rate: f64,
    /// Max `|Δ' − Δ|` across all points.
    pub max_error_rate: f64,
    /// Paper Eq. 3 compression ratio (fraction, not %).
    pub compression_ratio_eq3: f64,
    /// True on-disk compression ratio including bitmap and headers.
    pub compression_ratio_actual: f64,
    /// Representatives actually learned.
    pub table_len: usize,
}

/// Encode the transition `prev → curr` under `config`.
///
/// Returns the compressed block and its statistics. Errors on length
/// mismatch or non-finite input.
pub fn encode(
    prev: &[f64],
    curr: &[f64],
    config: &Config,
) -> Result<(CompressedIteration, IterationStats), NumarckError> {
    crate::obs::encodes_total().inc();
    crate::obs::points_encoded_total().add(prev.len() as u64);
    let ratios = {
        let _span = crate::obs::transform_ns().span();
        ratio::compute(prev, curr, config.tolerance())?
    };
    let table = {
        let _span = crate::obs::fit_ns().span();
        strategy::fit_table(
            config.strategy(),
            &ratios.fit_sample,
            config.max_table_len(),
            &config.clustering(),
        )
    };
    encode_prepared(curr, &ratios, table, config)
}

/// Encode with an externally supplied representative table (used by the
/// shared-table group encoder, [`crate::group`]). `ratios` must be the
/// change-ratio transform at the config's tolerance of the iteration pair
/// that produced `curr`; `prev` itself is no longer needed — small-change
/// errors are re-derived from the dense ratios.
pub(crate) fn encode_prepared(
    curr: &[f64],
    ratios: &ratio::ChangeRatios,
    table: BinTable,
    config: &Config,
) -> Result<(CompressedIteration, IterationStats), NumarckError> {
    let tolerance = config.tolerance();
    debug_assert!(
        table.len() <= config.max_table_len(),
        "table larger than the index space"
    );
    let n = ratios.len();
    let bits = config.bits();

    // Phase 1 (parallel, fused, cache-blocked): per chunk, each
    // `PACK_BLOCK`-point block runs the fused classify+quantize lane
    // kernel — 0 = small change, t+1 = table entry t, ESCAPE = exact,
    // plus a per-point error that is exactly 0.0 for escapes — into stack
    // scratch, then packs those codes immediately into chunk-local
    // sections (bitmap words, a private bit stream, escaped values) while
    // they are still cache-hot. Error partials accumulate in point order;
    // adding an escape's 0.0 is a Neumaier no-op, so the totals are
    // bit-identical to the retired branch-per-class accounting. There is
    // no intermediate n-sized code array at all.
    let classify_span = crate::obs::classify_ns().span();
    let chunk = chunk_size_aligned(n.max(1), 64);
    let words_per_chunk = chunk / 64;
    let reps = table.representatives();

    struct ChunkPack {
        /// Chunk-local bit-packed index stream.
        index_words: Vec<u64>,
        len_bits: usize,
        num_compressible: usize,
        num_small: usize,
        exacts: Vec<f64>,
        err_sum: Neumaier,
        err_max: f64,
    }

    let mut bitmap = vec![0u64; n.div_ceil(64)];
    let parts: Vec<ChunkPack> = ratios
        .ratios
        .par_chunks(chunk)
        .zip(curr.par_chunks(chunk))
        .zip(bitmap.par_chunks_mut(words_per_chunk))
        .map(|((rs, cs), bmap)| {
            let mut writer = BitWriter::with_capacity(rs.len(), bits);
            let mut exacts = Vec::new();
            let mut num_small = 0usize;
            let mut err_sum = Neumaier::new();
            let mut err_max = 0.0f64;
            let mut codes = [0u32; PACK_BLOCK];
            let mut errs = [0.0f64; PACK_BLOCK];
            for (bi, block) in rs.chunks(PACK_BLOCK).enumerate() {
                let start = bi * PACK_BLOCK;
                let m = block.len();
                numarck_simd::quantize::classify_quantize(
                    block,
                    reps,
                    tolerance,
                    &mut codes[..m],
                    &mut errs[..m],
                );
                for (k, (&code, &e)) in codes[..m].iter().zip(&errs[..m]).enumerate() {
                    err_sum.add(e);
                    if e > err_max {
                        err_max = e;
                    }
                    if code == ESCAPE {
                        exacts.push(cs[start + k]);
                    } else {
                        let j = start + k;
                        bmap[j / 64] |= 1u64 << (j % 64);
                        num_small += usize::from(code == 0);
                        writer.push(code, bits);
                    }
                }
            }
            let len_bits = writer.len_bits();
            ChunkPack {
                index_words: writer.into_words(),
                len_bits,
                num_compressible: len_bits / bits as usize,
                num_small,
                exacts,
                err_sum,
                err_max,
            }
        })
        .collect();

    drop(classify_span);

    // Phase 2 (parallel): an exclusive scan over the per-chunk counts
    // fixes every chunk's global offsets, then each chunk funnel-shifts
    // its private bit stream into the shared index words (OR-stitching
    // the one word adjacent chunks may share) and copies its escaped
    // values into a disjoint window. Output is deterministic for any
    // thread count.
    let pack_span = crate::obs::pack_ns().span();
    let counts: Vec<(u64, u64)> =
        parts.iter().map(|p| (p.num_compressible as u64, p.exacts.len() as u64)).collect();
    let (offsets, (total_comp, total_esc)) = exclusive_scan_pairs(&counts);
    let num_compressible = total_comp as usize;
    let index_words: Vec<AtomicU64> = (0..(num_compressible * bits as usize).div_ceil(64))
        .map(|_| AtomicU64::new(0))
        .collect();
    let mut exact_values = vec![0.0f64; total_esc as usize];
    let exact_windows = partition_mut(&mut exact_values, parts.iter().map(|p| p.exacts.len()));
    parts.par_iter().zip(offsets.par_iter()).zip(exact_windows.into_par_iter()).for_each(
        |((part, &(comp_before, _)), window)| {
            BitWriter::shift_or_into(
                &index_words,
                comp_before as usize * bits as usize,
                &part.index_words,
                part.len_bits,
            );
            window.copy_from_slice(&part.exacts);
        },
    );
    let index_words: Vec<u64> = index_words.into_iter().map(AtomicU64::into_inner).collect();
    drop(pack_span);

    // Merge partials (chunk order: deterministic).
    let mut err_sum = Neumaier::new();
    let mut err_max = 0.0f64;
    let mut num_small = 0usize;
    for p in &parts {
        err_sum.merge(&p.err_sum);
        err_max = err_max.max(p.err_max);
        num_small += p.num_small;
    }

    let compressed = CompressedIteration {
        bits,
        tolerance,
        num_points: n,
        table,
        bitmap,
        index_words,
        num_compressible,
        exact_values,
    };

    let actual = crate::serialize::actual_compression_ratio(&compressed);
    let stats = IterationStats {
        num_points: n,
        num_compressible: compressed.num_compressible,
        num_incompressible: compressed.exact_values.len(),
        num_small_change: num_small,
        incompressible_ratio: compressed.incompressible_ratio(),
        mean_error_rate: if n == 0 { 0.0 } else { err_sum.value() / n as f64 },
        max_error_rate: err_max,
        compression_ratio_eq3: compressed.compression_ratio_eq3(),
        compression_ratio_actual: actual,
        table_len: compressed.table.len(),
    };
    Ok((compressed, stats))
}

/// The three storage sections produced by packing a per-point code array
/// (plus the counts the stats need). `codes` uses the encoder's
/// convention: [`ESCAPE`] marks an escaped point, anything else is a
/// `bits`-wide index value.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedSections {
    /// Compressibility bitmap: bit `j` set ⇔ `codes[j] != ESCAPE`.
    pub bitmap: Vec<u64>,
    /// Bit-packed `bits`-wide indices of the non-escaped points, in point
    /// order.
    pub index_words: Vec<u64>,
    /// Number of non-escaped points (values in `index_words`).
    pub num_compressible: usize,
    /// Number of zero codes (small-change points).
    pub num_small: usize,
    /// `curr` values of the escaped points, in point order.
    pub exact_values: Vec<f64>,
}

/// Sequential reference packer — the oracle the parallel packer is tested
/// against (bit-identical output is a hard requirement, enforced by
/// `tests/pack_parallel_oracle.rs`).
pub fn pack_codes_serial(codes: &[u32], curr: &[f64], bits: u8) -> PackedSections {
    assert_eq!(codes.len(), curr.len(), "codes and curr must align");
    let n = codes.len();
    let mut bitmap = vec![0u64; n.div_ceil(64)];
    let mut writer = BitWriter::with_capacity(n, bits);
    let mut exact_values = Vec::new();
    let mut num_compressible = 0usize;
    let mut num_small = 0usize;
    for (j, (&code, &cv)) in codes.iter().zip(curr).enumerate() {
        if code == ESCAPE {
            exact_values.push(cv);
        } else {
            bitmap[j / 64] |= 1u64 << (j % 64);
            writer.push(code, bits);
            num_compressible += 1;
            if code == 0 {
                num_small += 1;
            }
        }
    }
    PackedSections {
        bitmap,
        index_words: writer.into_words(),
        num_compressible,
        num_small,
        exact_values,
    }
}

/// Rank-partitioned parallel packer, bit-identical to
/// [`pack_codes_serial`].
///
/// Points are chunked in multiples of 64 so every chunk owns whole bitmap
/// words. A first cheap pass tallies each chunk's `(compressible,
/// escaped)` counts; an exclusive scan over those pairs gives every chunk
/// its exact bit offset into the index stream and its slot range in
/// `exact_values`. Chunks then write all three sections concurrently:
/// bitmap words and escape slots into disjoint windows, and bit-packed
/// indices via [`BitWriter::write_packed_at`], which OR-stitches the one
/// word each pair of adjacent chunks may share. Output is deterministic
/// for any thread count.
pub fn pack_codes_parallel(codes: &[u32], curr: &[f64], bits: u8) -> PackedSections {
    assert_eq!(codes.len(), curr.len(), "codes and curr must align");
    assert!((1..=32).contains(&bits), "bits must be in 1..=32");
    let n = codes.len();
    if n == 0 {
        return PackedSections {
            bitmap: Vec::new(),
            index_words: Vec::new(),
            num_compressible: 0,
            num_small: 0,
            exact_values: Vec::new(),
        };
    }
    let chunk = chunk_size_aligned(n, 64);
    let words_per_chunk = chunk / 64;

    // Per-chunk (compressible, escaped) tallies → scan → offsets.
    let counts: Vec<(u64, u64)> = codes
        .par_chunks(chunk)
        .map(|c| {
            let escaped = c.iter().filter(|&&code| code == ESCAPE).count();
            ((c.len() - escaped) as u64, escaped as u64)
        })
        .collect();
    let (offsets, (total_comp, total_esc)) = exclusive_scan_pairs(&counts);
    let num_compressible = total_comp as usize;

    let mut bitmap = vec![0u64; n.div_ceil(64)];
    let index_words: Vec<AtomicU64> = (0..(num_compressible * bits as usize).div_ceil(64))
        .map(|_| AtomicU64::new(0))
        .collect();
    let mut exact_values = vec![0.0f64; total_esc as usize];
    let exact_windows = partition_mut(&mut exact_values, counts.iter().map(|&(_, e)| e as usize));

    let smalls: Vec<usize> = codes
        .par_chunks(chunk)
        .zip(curr.par_chunks(chunk))
        .zip(bitmap.par_chunks_mut(words_per_chunk))
        .zip(exact_windows.into_par_iter())
        .zip(offsets.par_iter())
        .map(|((((codes, curr), bitmap), exacts), &(comp_before, _))| {
            let mut packable = Vec::with_capacity(codes.len());
            let mut escaped = 0usize;
            let mut num_small = 0usize;
            for (b, (&code, &cv)) in codes.iter().zip(curr).enumerate() {
                if code == ESCAPE {
                    exacts[escaped] = cv;
                    escaped += 1;
                } else {
                    bitmap[b / 64] |= 1u64 << (b % 64);
                    if code == 0 {
                        num_small += 1;
                    }
                    packable.push(code);
                }
            }
            BitWriter::write_packed_at(
                &index_words,
                comp_before as usize * bits as usize,
                &packable,
                bits,
            );
            num_small
        })
        .collect();

    PackedSections {
        bitmap,
        index_words: index_words.into_iter().map(AtomicU64::into_inner).collect(),
        num_compressible,
        num_small: smalls.into_iter().sum(),
        exact_values,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Strategy;

    fn cfg(strategy: Strategy) -> Config {
        Config::new(8, 0.001, strategy).unwrap()
    }

    fn uniform_growth(n: usize, rate: f64) -> (Vec<f64>, Vec<f64>) {
        let prev: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 * 0.37).sin().abs()).collect();
        let curr: Vec<f64> = prev.iter().map(|v| v * (1.0 + rate)).collect();
        (prev, curr)
    }

    #[test]
    fn all_small_changes_compress_to_index_zero() {
        let (prev, curr) = uniform_growth(1000, 0.0005); // below E
        for s in Strategy::all() {
            let (c, st) = encode(&prev, &curr, &cfg(s)).unwrap();
            assert_eq!(st.num_small_change, 1000, "{s}");
            assert_eq!(st.num_incompressible, 0, "{s}");
            assert_eq!(c.table.len(), 0, "{s}: no large ratios, empty table");
            assert!(st.max_error_rate < 0.001, "{s}");
        }
    }

    #[test]
    fn single_common_ratio_compresses_perfectly() {
        let (prev, curr) = uniform_growth(1000, 0.05);
        for s in Strategy::all() {
            let (c, st) = encode(&prev, &curr, &cfg(s)).unwrap();
            assert_eq!(st.num_incompressible, 0, "{s}");
            assert_eq!(st.num_compressible, 1000, "{s}");
            assert!(!c.table.is_empty(), "{s}");
            assert!(st.max_error_rate <= 0.001, "{s}");
        }
    }

    #[test]
    fn zero_prev_points_are_escaped() {
        let prev = vec![0.0, 1.0, 2.0];
        let curr = vec![5.0, 1.1, 2.0];
        let (c, st) = encode(&prev, &curr, &cfg(Strategy::Clustering)).unwrap();
        assert!(!c.is_compressible(0));
        assert!(c.is_compressible(1));
        assert!(c.is_compressible(2));
        assert_eq!(c.exact_values, vec![5.0]);
        assert_eq!(st.num_incompressible, 1);
    }

    #[test]
    fn error_bound_enforced_by_escape() {
        // Ratios spread uniformly over a huge range with k too small to
        // cover it: points far from any representative must be escaped,
        // never stored with error > E.
        let n = 4000;
        let prev = vec![1.0f64; n];
        let curr: Vec<f64> = (0..n).map(|i| 1.0 + 0.001 + (i as f64 / n as f64) * 10.0).collect();
        let config = Config::new(4, 0.001, Strategy::EqualWidth).unwrap();
        let (_, st) = encode(&prev, &curr, &config).unwrap();
        assert!(st.max_error_rate <= 0.001 + 1e-15, "max {}", st.max_error_rate);
        assert!(st.num_incompressible > 0, "escapes expected for 15 bins over range 10");
    }

    #[test]
    fn eq3_matches_hand_computation() {
        let (prev, curr) = uniform_growth(10_000, 0.05);
        let (c, _) = encode(&prev, &curr, &cfg(Strategy::Clustering)).unwrap();
        // gamma = 0, B = 8: R = 1 - 8/64 - 255*64/(64*10000)
        let expected = 1.0 - 8.0 / 64.0 - (255.0 * 64.0) / (64.0 * 10_000.0);
        assert!((c.compression_ratio_eq3() - expected).abs() < 1e-12);
    }

    #[test]
    fn gamma_one_when_everything_escapes() {
        // Every prev is zero -> all exact.
        let prev = vec![0.0; 100];
        let curr: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let (c, st) = encode(&prev, &curr, &cfg(Strategy::LogScale)).unwrap();
        assert_eq!(st.num_incompressible, 100);
        assert_eq!(c.incompressible_ratio(), 1.0);
        // Eq. 3 goes negative: storing the table on top of exact values.
        assert!(c.compression_ratio_eq3() < 0.0);
    }

    #[test]
    fn empty_input() {
        let (c, st) = encode(&[], &[], &cfg(Strategy::Clustering)).unwrap();
        assert_eq!(c.num_points, 0);
        assert_eq!(st.mean_error_rate, 0.0);
    }

    #[test]
    fn stats_partition_points() {
        let n = 5000;
        let prev: Vec<f64> = (0..n).map(|i| if i % 17 == 0 { 0.0 } else { 1.0 + (i % 7) as f64 }).collect();
        let curr: Vec<f64> = prev
            .iter()
            .enumerate()
            .map(|(i, v)| if *v == 0.0 { 3.0 } else { v * (1.0 + 0.002 * ((i % 9) as f64)) })
            .collect();
        for s in Strategy::all() {
            let (_, st) = encode(&prev, &curr, &cfg(s)).unwrap();
            assert_eq!(st.num_compressible + st.num_incompressible, n, "{s}");
            assert!(st.num_small_change <= st.num_compressible, "{s}");
            assert!(st.mean_error_rate <= st.max_error_rate + 1e-18, "{s}");
            assert!(st.max_error_rate <= 0.001 + 1e-15, "{s}");
        }
    }

    /// Satellite check: the fused single-pass error accounting must agree
    /// with the retired two-pass computation (quantization errors from the
    /// classify pass, small-change |Δ| from a second sweep over the raw
    /// data) on a fixed seeded dataset.
    #[test]
    fn fused_error_accounting_matches_two_pass_reference() {
        // Deterministic pseudo-random mix of small changes, clusterable
        // large changes, and escapes (zero prev).
        let n = 30_000;
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let prev: Vec<f64> = (0..n)
            .map(|_| if next() % 19 == 0 { 0.0 } else { 1.0 + (next() % 1000) as f64 / 100.0 })
            .collect();
        let curr: Vec<f64> = prev
            .iter()
            .map(|&v| {
                if v == 0.0 {
                    7.5
                } else {
                    let r = match next() % 3 {
                        0 => (next() % 900) as f64 * 1e-6, // below E
                        1 => 0.01 + (next() % 500) as f64 * 1e-6,
                        _ => -0.02 - (next() % 500) as f64 * 1e-6,
                    };
                    v * (1.0 + r)
                }
            })
            .collect();

        for s in Strategy::all() {
            let config = cfg(s);
            let tol = config.tolerance();
            let (_, st) = encode(&prev, &curr, &config).unwrap();

            // Old two-pass reference, sequential: pass 1 sums quantization
            // errors of the coded large changes against the same table;
            // pass 2 re-derives each small |Δ| from the raw data.
            let ratios = ratio::compute(&prev, &curr, tol).unwrap();
            let table = strategy::fit_table(
                config.strategy(),
                &ratios.fit_sample,
                config.max_table_len(),
                &config.clustering(),
            );
            let mut sum = Neumaier::new();
            let mut max = 0.0f64;
            for c in ratios.iter_classes() {
                if let ratio::RatioClass::Large(r) = c {
                    if let Some((_, _, err)) = table.quantize(r) {
                        if err <= tol {
                            sum.add(err);
                            max = max.max(err);
                        }
                    }
                }
            }
            for (&pv, &cv) in prev.iter().zip(&curr) {
                if let Some(r) = ratio::change_ratio(pv, cv) {
                    let a = r.abs();
                    if a < tol {
                        sum.add(a);
                        max = max.max(a);
                    }
                }
            }
            let ref_mean = sum.value() / n as f64;

            assert_eq!(st.max_error_rate, max, "{s}: max error must be order-independent");
            let denom = ref_mean.abs().max(1e-300);
            assert!(
                ((st.mean_error_rate - ref_mean) / denom).abs() < 1e-12,
                "{s}: fused mean {} vs two-pass mean {}",
                st.mean_error_rate,
                ref_mean
            );
        }
    }

    #[test]
    fn parallel_packer_matches_serial_on_encoder_output() {
        // Direct serial-vs-parallel check on codes the encoder actually
        // produces (the exhaustive sweep lives in
        // tests/pack_parallel_oracle.rs).
        let n = 20_000;
        let prev: Vec<f64> =
            (0..n).map(|i| if i % 11 == 0 { 0.0 } else { 1.0 + (i % 23) as f64 }).collect();
        let curr: Vec<f64> = prev
            .iter()
            .enumerate()
            .map(|(i, v)| if *v == 0.0 { 1.5 } else { v * (1.0 + 0.01 * ((i % 5) as f64)) })
            .collect();
        let config = cfg(Strategy::Clustering);
        let ratios = ratio::compute(&prev, &curr, config.tolerance()).unwrap();
        let table = strategy::fit_table(
            config.strategy(),
            &ratios.fit_sample,
            config.max_table_len(),
            &config.clustering(),
        );
        let codes: Vec<u32> = ratios
            .iter_classes()
            .map(|c| match c {
                ratio::RatioClass::Small(_) => 0,
                ratio::RatioClass::Undefined => ESCAPE,
                ratio::RatioClass::Large(r) => match table.quantize(r) {
                    Some((idx, _, err)) if err <= config.tolerance() => idx as u32 + 1,
                    _ => ESCAPE,
                },
            })
            .collect();
        let serial = pack_codes_serial(&codes, &curr, config.bits());
        let parallel = pack_codes_parallel(&codes, &curr, config.bits());
        assert_eq!(serial, parallel);
        assert!(!serial.exact_values.is_empty() && serial.num_compressible > 0);
    }

    #[test]
    fn fused_encode_sections_match_serial_reference() {
        // The fused cache-blocked classify+pack pass must produce every
        // compressed section — bitmap, packed indices, exact values —
        // bit-identically to the retired two-pass path: per-point
        // classification against the same table, then the serial packer.
        // Sweep lane-boundary sizes and a mix of escape densities.
        for n in [0usize, 1, 7, 63, 64, 65, 1023, 1024, 1025, 4097, 20_000] {
            let prev: Vec<f64> = (0..n)
                .map(|i| match i % 13 {
                    0 => 0.0,
                    1 => f64::NAN,
                    _ => 1.0 + (i % 29) as f64,
                })
                .collect();
            let curr: Vec<f64> = prev
                .iter()
                .enumerate()
                .map(|(i, v)| {
                    if *v == 0.0 || !v.is_finite() {
                        2.5
                    } else {
                        v * (1.0
                            + match i % 4 {
                                0 => 0.0004,           // small change
                                1 => 0.05,             // common large ratio
                                2 => 0.07,             // second cluster
                                _ => 9.0 + i as f64,   // unquantizable -> escape
                            })
                    }
                })
                .collect();
            // NaN prev is a whole-input error for encode(); only keep it
            // when the transform would reject it — here replace with 1.0.
            let prev: Vec<f64> = prev.iter().map(|&v| if v.is_finite() { v } else { 1.0 }).collect();
            let config = cfg(Strategy::Clustering);
            let tol = config.tolerance();
            let (fused, _) = encode(&prev, &curr, &config).unwrap();
            let ratios = ratio::compute(&prev, &curr, tol).unwrap();
            let table = strategy::fit_table(
                config.strategy(),
                &ratios.fit_sample,
                config.max_table_len(),
                &config.clustering(),
            );
            assert_eq!(fused.table, table, "n={n}: table fit must be unchanged");
            let codes: Vec<u32> = ratios
                .iter_classes()
                .map(|c| match c {
                    ratio::RatioClass::Small(_) => 0,
                    ratio::RatioClass::Undefined => ESCAPE,
                    ratio::RatioClass::Large(r) => match table.quantize(r) {
                        Some((idx, _, err)) if err <= tol => idx as u32 + 1,
                        _ => ESCAPE,
                    },
                })
                .collect();
            let reference = pack_codes_serial(&codes, &curr, config.bits());
            assert_eq!(fused.bitmap, reference.bitmap, "n={n}");
            assert_eq!(fused.index_words, reference.index_words, "n={n}");
            assert_eq!(fused.num_compressible, reference.num_compressible, "n={n}");
            assert_eq!(fused.exact_values, reference.exact_values, "n={n}");
        }
    }

    #[test]
    fn length_mismatch_error() {
        let e = encode(&[1.0], &[1.0, 2.0], &cfg(Strategy::Clustering)).unwrap_err();
        assert!(matches!(e, NumarckError::LengthMismatch { .. }));
    }

    #[test]
    fn deterministic_output() {
        let (prev, curr) = uniform_growth(20_000, 0.01);
        let a = encode(&prev, &curr, &cfg(Strategy::Clustering)).unwrap();
        let b = encode(&prev, &curr, &cfg(Strategy::Clustering)).unwrap();
        assert_eq!(a.0, b.0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            #[test]
            fn error_bound_always_holds(
                base in proptest::collection::vec(0.1f64..100.0, 1..300),
                rates in proptest::collection::vec(-0.5f64..0.5, 1..300),
                bits in 2u8..10,
                tol in 1e-4f64..0.01
            ) {
                let n = base.len().min(rates.len());
                let prev = &base[..n];
                let curr: Vec<f64> =
                    (0..n).map(|i| prev[i] * (1.0 + rates[i])).collect();
                for s in crate::strategy::Strategy::all() {
                    let config = Config::new(bits, tol, s).unwrap();
                    let (_, st) = encode(prev, &curr, &config).unwrap();
                    prop_assert!(
                        st.max_error_rate <= tol + 1e-12,
                        "{s}: max_error {} > tol {tol}",
                        st.max_error_rate
                    );
                }
            }

            #[test]
            fn bitmap_agrees_with_counts(
                vals in proptest::collection::vec(-10.0f64..10.0, 1..200)
            ) {
                let prev = vals.clone();
                let curr: Vec<f64> = vals.iter().rev().cloned().collect();
                let config = Config::new(6, 0.001, crate::strategy::Strategy::Clustering).unwrap();
                let (c, st) = encode(&prev, &curr, &config).unwrap();
                let set_bits: usize =
                    c.bitmap.iter().map(|w| w.count_ones() as usize).sum();
                prop_assert_eq!(set_bits, st.num_compressible);
                prop_assert_eq!(c.exact_values.len(), st.num_incompressible);
            }
        }
    }
}
