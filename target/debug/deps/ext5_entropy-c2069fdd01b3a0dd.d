/root/repo/target/debug/deps/ext5_entropy-c2069fdd01b3a0dd.d: crates/numarck-bench/src/bin/ext5_entropy.rs

/root/repo/target/debug/deps/libext5_entropy-c2069fdd01b3a0dd.rmeta: crates/numarck-bench/src/bin/ext5_entropy.rs

crates/numarck-bench/src/bin/ext5_entropy.rs:
