/root/repo/target/debug/examples/restart_after_failure-a1ded71da4558381.d: examples/restart_after_failure.rs

/root/repo/target/debug/examples/restart_after_failure-a1ded71da4558381: examples/restart_after_failure.rs

examples/restart_after_failure.rs:
