/root/repo/target/debug/deps/numarck_obs-f355a316d9150b52.d: crates/numarck-obs/src/lib.rs crates/numarck-obs/src/http.rs crates/numarck-obs/src/instrument.rs crates/numarck-obs/src/registry.rs crates/numarck-obs/src/ring.rs crates/numarck-obs/src/snapshot.rs

/root/repo/target/debug/deps/numarck_obs-f355a316d9150b52: crates/numarck-obs/src/lib.rs crates/numarck-obs/src/http.rs crates/numarck-obs/src/instrument.rs crates/numarck-obs/src/registry.rs crates/numarck-obs/src/ring.rs crates/numarck-obs/src/snapshot.rs

crates/numarck-obs/src/lib.rs:
crates/numarck-obs/src/http.rs:
crates/numarck-obs/src/instrument.rs:
crates/numarck-obs/src/registry.rs:
crates/numarck-obs/src/ring.rs:
crates/numarck-obs/src/snapshot.rs:
