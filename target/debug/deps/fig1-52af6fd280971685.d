/root/repo/target/debug/deps/fig1-52af6fd280971685.d: crates/numarck-bench/src/bin/fig1.rs

/root/repo/target/debug/deps/libfig1-52af6fd280971685.rmeta: crates/numarck-bench/src/bin/fig1.rs

crates/numarck-bench/src/bin/fig1.rs:
