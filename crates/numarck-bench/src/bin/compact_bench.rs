//! `compact_bench` — maintenance-pass benchmark for `numarck-compact`.
//!
//! Builds a long delta chain, measures one full maintenance pass
//! (delta merging + tiered full placement + retention GC) and the
//! *measured* restart latency of the worst-case iteration before and
//! after, then emits `BENCH_compact.json`: pass wall time, deltas
//! merged per second, bytes reclaimed, and the restart speedup — all
//! stamped with host metadata and the exact policy configuration.
//!
//! Usage:
//!
//! ```text
//! compact_bench [--smoke] [--out-dir DIR] [--iters N] [--points P]
//!               [--window K] [--slo-ms MS] [--keep-fulls N]
//! ```
//!
//! `--smoke` shrinks the chain so CI can run the harness end-to-end in
//! seconds; the JSON schema is identical.

use std::fmt::Write as _;
use std::time::Instant;

use numarck::{Config, Strategy};
use numarck_bench::report::host_meta_json;
use numarck_checkpoint::{
    CheckpointManager, CheckpointStore, ManagerPolicy, RestartEngine, VariableSet,
};
use numarck_compact::{ChainView, CompactionConfig, CompactionReport, Compactor, CostModel, NoJournal};

fn main() {
    let mut smoke = false;
    let mut out_dir = ".".to_string();
    let mut iters = 0u64;
    let mut points = 0usize;
    let mut window = 4u64;
    let mut slo_ms = 0u64;
    let mut keep_fulls = 2usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value =
            |flag: &str| args.next().unwrap_or_else(|| usage(&format!("{flag} needs a value")));
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out-dir" => out_dir = value("--out-dir"),
            "--iters" => iters = value("--iters").parse().unwrap_or_else(|_| usage("bad --iters")),
            "--points" => {
                points = value("--points").parse().unwrap_or_else(|_| usage("bad --points"))
            }
            "--window" => {
                window = value("--window").parse().unwrap_or_else(|_| usage("bad --window"))
            }
            "--slo-ms" => {
                slo_ms = value("--slo-ms").parse().unwrap_or_else(|_| usage("bad --slo-ms"))
            }
            "--keep-fulls" => {
                keep_fulls =
                    value("--keep-fulls").parse().unwrap_or_else(|_| usage("bad --keep-fulls"))
            }
            "--help" | "-h" => usage(
                "compact_bench [--smoke] [--out-dir DIR] [--iters N] [--points P] \
                 [--window K] [--slo-ms MS] [--keep-fulls N]",
            ),
            other => usage(&format!("unknown argument: {other}")),
        }
    }
    if iters == 0 {
        iters = if smoke { 24 } else { 128 };
    }
    if points == 0 {
        points = if smoke { 4_096 } else { 262_144 };
    }
    let policy = CompactionConfig {
        merge_window: window,
        restart_slo_ns: (slo_ms > 0).then(|| slo_ms * 1_000_000),
        keep_last_fulls: keep_fulls,
        keep_every: 0,
        min_age_secs: 0,
        cost: CostModel::default(),
    };

    // One full at iteration 0, then deltas all the way: the worst chain
    // shape the compactor exists to fix.
    let root = std::env::temp_dir().join(format!("numarck-compact-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("bench store dir");
    let store = CheckpointStore::open(&root).expect("open store");
    let config = Config::new(8, 0.001, Strategy::Clustering).expect("paper-default config");
    let mut mgr = CheckpointManager::new(store.clone(), config, ManagerPolicy::fixed(1_000_000));
    let build_start = Instant::now();
    // Four variables over one evolving state vector (`points` total per
    // iteration): multi-variable deltas are what the shared centroid
    // dictionary in container v2 exists for, so the format comparison
    // below measures a representative checkpoint, not a degenerate
    // single-table one.
    const VAR_NAMES: [&str; 4] = ["dens", "ener", "pres", "temp"];
    let mut state: Vec<f64> = (0..points).map(|j| 1.0 + (j % 17) as f64).collect();
    let quarter = (points / VAR_NAMES.len()).max(1);
    for it in 0..iters {
        if it > 0 {
            for (j, v) in state.iter_mut().enumerate() {
                *v *= 1.0 + 0.004 * (((j as u64 + 5 * it) % 11) as f64 - 5.0) / 5.0;
            }
        }
        let mut vars = VariableSet::new();
        for (vi, name) in VAR_NAMES.iter().enumerate() {
            let lo = vi * quarter;
            let hi = if vi + 1 == VAR_NAMES.len() { points } else { (vi + 1) * quarter };
            vars.insert((*name).to_string(), state[lo..hi].to_vec());
        }
        mgr.checkpoint(it, &vars).expect("checkpoint");
    }
    let build_secs = build_start.elapsed().as_secs_f64();
    let bytes_before = ChainView::load(&store).expect("chain view").total_bytes();

    // Container-format comparison on the freshly built chain: total
    // bytes and measured restart time with every file in v2 (as
    // written) vs the same chain transcoded to the frozen v1 layout.
    let comparison = compare_formats(&store, &root, iters, points);

    // Measured (not modeled) worst-case restart: the newest iteration
    // sits at the end of the longest delta run.
    let restart_before = measured_restart_secs(&store, iters - 1);

    let pass_start = Instant::now();
    let report = Compactor::new(policy)
        .run(&store, &mut NoJournal)
        .expect("maintenance pass");
    let pass_secs = pass_start.elapsed().as_secs_f64();

    let restart_after = measured_restart_secs(&store, iters - 1);
    let bytes_after = ChainView::load(&store).expect("chain view").total_bytes();
    let _ = std::fs::remove_dir_all(&root);

    let path = format!("{out_dir}/BENCH_compact.json");
    std::fs::create_dir_all(&out_dir).expect("create output directory");
    std::fs::write(
        &path,
        render_json(
            smoke,
            iters,
            points,
            &policy,
            &report,
            build_secs,
            pass_secs,
            bytes_before,
            bytes_after,
            restart_before,
            restart_after,
            &comparison,
        ),
    )
    .expect("write benchmark JSON");
    println!(
        "pass: {pass_secs:.3}s · {} merges ({} deltas) · {} fulls promoted · \
         {} bytes reclaimed · restart {:.1}ms -> {:.1}ms",
        report.merges,
        report.deltas_merged,
        report.fulls_promoted,
        report.bytes_reclaimed,
        restart_before * 1e3,
        restart_after * 1e3
    );
    println!(
        "format: v1 {} B -> v2 {} B ({:+.1}%) · decode {:.1} -> {:.1} Mpoints/s",
        comparison.v1_bytes,
        comparison.v2_bytes,
        (comparison.v2_bytes as f64 / comparison.v1_bytes.max(1) as f64 - 1.0) * 100.0,
        comparison.mpoints_per_sec(comparison.v1_restart_secs),
        comparison.mpoints_per_sec(comparison.v2_restart_secs),
    );
    println!("wrote {path}");
}

/// Wall time of a real `restart_at(target)` on a fresh engine.
fn measured_restart_secs(store: &CheckpointStore, target: u64) -> f64 {
    let engine = RestartEngine::new(store.clone());
    let start = Instant::now();
    let result = engine.restart_at(target).expect("restart");
    assert_eq!(result.iteration, target);
    start.elapsed().as_secs_f64()
}

/// v1-vs-v2 size and decode-throughput comparison row.
struct FormatComparison {
    v1_bytes: u64,
    v2_bytes: u64,
    v1_restart_secs: f64,
    v2_restart_secs: f64,
    /// Points decoded by one worst-case restart (base full + every
    /// delta on the path).
    points_decoded: u64,
}

impl FormatComparison {
    fn mpoints_per_sec(&self, secs: f64) -> f64 {
        self.points_decoded as f64 / secs.max(1e-9) / 1e6
    }
}

/// Transcode the whole chain into the frozen v1 layout in a sibling
/// store and measure both: total stored bytes and the best-of-3
/// worst-case restart, v2 (as written) against v1.
fn compare_formats(
    store: &CheckpointStore,
    root: &std::path::Path,
    iters: u64,
    points: usize,
) -> FormatComparison {
    let v1_root = root.with_extension("v1");
    let _ = std::fs::remove_dir_all(&v1_root);
    std::fs::create_dir_all(&v1_root).expect("v1 store dir");
    let v1_store = CheckpointStore::open(&v1_root).expect("open v1 store");
    for entry in store.list().expect("list chain") {
        let bytes = store.read_raw(entry.iteration, entry.is_full).expect("read file");
        let file = numarck_checkpoint::CheckpointFile::from_bytes(&bytes).expect("parse file");
        v1_store.write_raw(entry.iteration, entry.is_full, &file.to_bytes_v1()).expect("write v1");
    }
    let v2_bytes = ChainView::load(store).expect("chain view").total_bytes();
    let v1_bytes = ChainView::load(&v1_store).expect("chain view").total_bytes();
    let best = |s: &CheckpointStore| {
        (0..3).map(|_| measured_restart_secs(s, iters - 1)).fold(f64::INFINITY, f64::min)
    };
    let v2_restart_secs = best(store);
    let v1_restart_secs = best(&v1_store);
    let _ = std::fs::remove_dir_all(&v1_root);
    FormatComparison {
        v1_bytes,
        v2_bytes,
        v1_restart_secs,
        v2_restart_secs,
        points_decoded: points as u64 * iters,
    }
}

/// Hand-rolled JSON, same conventions as `serve_bench`: flat and
/// diffable, stamped with host metadata and the policy configuration.
#[allow(clippy::too_many_arguments)]
fn render_json(
    smoke: bool,
    iters: u64,
    points: usize,
    policy: &CompactionConfig,
    report: &CompactionReport,
    build_secs: f64,
    pass_secs: f64,
    bytes_before: u64,
    bytes_after: u64,
    restart_before: f64,
    restart_after: f64,
    comparison: &FormatComparison,
) -> String {
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"harness\": \"numarck-bench compact_bench\",");
    let _ = writeln!(s, "  \"smoke\": {smoke},");
    let _ = writeln!(s, "  \"format_version\": {},", numarck_checkpoint::WRITE_VERSION);
    let _ = writeln!(s, "  \"iterations\": {iters},");
    let _ = writeln!(s, "  \"points_per_iteration\": {points},");
    let _ = writeln!(s, "  \"host\": {},", host_meta_json());
    let _ = writeln!(
        s,
        "  \"policy\": {{\"merge_window\": {}, \"restart_slo_ns\": {}, \
         \"keep_last_fulls\": {}, \"keep_every\": {}, \"min_age_secs\": {}, \
         \"cost_full_ns_per_byte\": {}, \"cost_delta_replay_ns\": {}}},",
        policy.merge_window,
        policy.restart_slo_ns.map_or_else(|| "null".to_string(), |n| n.to_string()),
        policy.keep_last_fulls,
        policy.keep_every,
        policy.min_age_secs,
        policy.cost.full_ns_per_byte,
        policy.cost.delta_replay_ns
    );
    let _ = writeln!(s, "  \"build_secs\": {build_secs:.6},");
    let _ = writeln!(s, "  \"pass_secs\": {pass_secs:.6},");
    let _ = writeln!(
        s,
        "  \"deltas_merged_per_sec\": {:.1},",
        report.deltas_merged as f64 / pass_secs.max(1e-9)
    );
    let _ = writeln!(s, "  \"merges\": {},", report.merges);
    let _ = writeln!(s, "  \"deltas_merged\": {},", report.deltas_merged);
    let _ = writeln!(s, "  \"fulls_promoted\": {},", report.fulls_promoted);
    let _ = writeln!(s, "  \"gc_files_removed\": {},", report.gc.removed);
    let _ = writeln!(s, "  \"bytes_before\": {bytes_before},");
    let _ = writeln!(s, "  \"bytes_after\": {bytes_after},");
    let _ = writeln!(s, "  \"bytes_reclaimed\": {},", report.bytes_reclaimed);
    let _ = writeln!(
        s,
        "  \"merge_points\": {{\"unchanged\": {}, \"ratio_coded\": {}, \"escaped\": {}}},",
        report.merge_stats.unchanged, report.merge_stats.ratio_coded, report.merge_stats.escaped
    );
    let _ = writeln!(s, "  \"restart_worst_before_secs\": {restart_before:.6},");
    let _ = writeln!(s, "  \"restart_worst_after_secs\": {restart_after:.6},");
    let _ = writeln!(
        s,
        "  \"format_comparison\": {{\"v1_bytes\": {}, \"v2_bytes\": {}, \
         \"v2_over_v1_bytes\": {:.4}, \"v1_restart_secs\": {:.6}, \"v2_restart_secs\": {:.6}, \
         \"v1_decode_mpoints_per_sec\": {:.2}, \"v2_decode_mpoints_per_sec\": {:.2}}}",
        comparison.v1_bytes,
        comparison.v2_bytes,
        comparison.v2_bytes as f64 / comparison.v1_bytes.max(1) as f64,
        comparison.v1_restart_secs,
        comparison.v2_restart_secs,
        comparison.mpoints_per_sec(comparison.v1_restart_secs),
        comparison.mpoints_per_sec(comparison.v2_restart_secs),
    );
    s.push_str("}\n");
    s
}

fn usage(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2)
}
