//! Runtime observability hooks for the encoder/decoder pipeline.
//!
//! The paper's §II-C breaks encode cost into per-stage timing; this
//! module records that breakdown at runtime into the process-wide
//! [`numarck_obs::Registry`]. Instrument handles are resolved once
//! through `OnceLock`s, so the per-call cost is a pointer load plus the
//! instrument's own relaxed atomics — nothing on the hot path touches
//! the registry map.
//!
//! Metric names (see DESIGN.md §7):
//! * `numarck_encodes_total`, `numarck_decodes_total` — blocks encoded
//!   and decoded;
//! * `numarck_points_encoded_total` — data points pushed through
//!   [`crate::encode::encode`];
//! * `numarck_encode_transform_ns`, `numarck_encode_fit_ns`,
//!   `numarck_encode_classify_ns`, `numarck_encode_pack_ns`,
//!   `numarck_decode_ns` — per-phase wall time histograms.

use std::sync::{Arc, OnceLock};

use numarck_obs::{Counter, Histogram, Registry};

macro_rules! cached {
    ($fn_name:ident, $kind:ident, $ty:ty, $metric:literal) => {
        /// Cached handle to the global-registry instrument `
        #[doc = $metric]
        /// `.
        pub fn $fn_name() -> &'static Arc<$ty> {
            static CELL: OnceLock<Arc<$ty>> = OnceLock::new();
            CELL.get_or_init(|| Registry::global().$kind($metric))
        }
    };
}

cached!(encodes_total, counter, Counter, "numarck_encodes_total");
cached!(decodes_total, counter, Counter, "numarck_decodes_total");
cached!(points_encoded_total, counter, Counter, "numarck_points_encoded_total");
cached!(transform_ns, histogram, Histogram, "numarck_encode_transform_ns");
cached!(fit_ns, histogram, Histogram, "numarck_encode_fit_ns");
cached!(classify_ns, histogram, Histogram, "numarck_encode_classify_ns");
cached!(pack_ns, histogram, Histogram, "numarck_encode_pack_ns");
cached!(decode_ns, histogram, Histogram, "numarck_decode_ns");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_cached_and_named() {
        let a = encodes_total();
        let b = encodes_total();
        assert!(Arc::ptr_eq(a, b));
        // The handle aliases the registry's instrument of the same name.
        a.add(0);
        assert!(Arc::ptr_eq(a, &Registry::global().counter("numarck_encodes_total")));
    }

    #[test]
    fn encode_and_decode_record_phases() {
        use crate::{Config, Strategy};
        let before_enc = encodes_total().get();
        let before_fit = fit_ns().count();
        let before_dec = decode_ns().count();

        let prev: Vec<f64> = (0..512).map(|i| 1.0 + (i % 13) as f64).collect();
        let curr: Vec<f64> = prev.iter().map(|v| v * 1.01).collect();
        let cfg = Config::new(8, 0.001, Strategy::Clustering).unwrap();
        let (block, _) = crate::encode::encode(&prev, &curr, &cfg).unwrap();
        let _ = crate::decode::reconstruct(&prev, &block).unwrap();

        // Other tests encode/decode concurrently: lower bounds only.
        assert!(encodes_total().get() > before_enc);
        assert!(fit_ns().count() > before_fit);
        assert!(decode_ns().count() > before_dec);
    }
}
