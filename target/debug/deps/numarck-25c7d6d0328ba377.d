/root/repo/target/debug/deps/numarck-25c7d6d0328ba377.d: crates/numarck-cli/src/main.rs

/root/repo/target/debug/deps/libnumarck-25c7d6d0328ba377.rmeta: crates/numarck-cli/src/main.rs

crates/numarck-cli/src/main.rs:
