//! Readiness polling over raw file descriptors, std-only.
//!
//! Two backends behind one API:
//!
//! * **epoll** (Linux): `epoll_create1`/`epoll_ctl`/`epoll_wait` via
//!   raw `extern "C"` declarations, the same no-libc-crate trick the
//!   serve layer uses for `signal(2)`. Level-triggered, O(ready)
//!   wakeups — this is what lets one router thread hold thousands of
//!   idle ingest connections.
//! * **poll** (any unix): `poll(2)` over a flat fd array. O(n) per
//!   wakeup but portable; also selectable on Linux with
//!   `NUMARCK_POLLER=poll` so CI exercises the fallback on the same
//!   host that runs the epoll path.
//!
//! Both backends are level-triggered: an event fires as long as the
//! condition holds, so the event loop never needs to drain a socket to
//! re-arm it. Registration carries a caller-chosen `token` (the
//! connection-slab index) returned verbatim in [`Event::token`].

use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

/// What a registration wants to hear about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest { readable: true, writable: false };
    /// Read + write interest.
    pub const READ_WRITE: Interest = Interest { readable: true, writable: true };
}

/// One readiness event out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: usize,
    /// The fd is readable (includes EOF/hangup — a read will not block).
    pub readable: bool,
    /// The fd is writable.
    pub writable: bool,
    /// The fd is in an error state; the connection should be torn down.
    pub error: bool,
}

enum Backend {
    #[cfg(target_os = "linux")]
    Epoll(epoll::Epoll),
    Poll(fallback::PollSet),
}

/// A readiness poller over raw fds. See the module docs for backends.
pub struct Poller {
    backend: Backend,
}

impl Poller {
    /// Open a poller: epoll on Linux (unless `NUMARCK_POLLER=poll`),
    /// the `poll(2)` fallback everywhere else.
    pub fn new() -> io::Result<Poller> {
        #[cfg(target_os = "linux")]
        {
            if std::env::var("NUMARCK_POLLER").as_deref() != Ok("poll") {
                return Ok(Poller { backend: Backend::Epoll(epoll::Epoll::new()?) });
            }
        }
        Ok(Poller { backend: Backend::Poll(fallback::PollSet::new()) })
    }

    /// Which backend is live (`"epoll"` or `"poll"`), for logs/metrics.
    pub fn backend_name(&self) -> &'static str {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(_) => "epoll",
            Backend::Poll(_) => "poll",
        }
    }

    /// Start watching `fd` under `token`.
    pub fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(e) => e.ctl(epoll::EPOLL_CTL_ADD, fd, token, interest),
            Backend::Poll(p) => p.register(fd, token, interest),
        }
    }

    /// Change what `fd` is watched for.
    pub fn reregister(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(e) => e.ctl(epoll::EPOLL_CTL_MOD, fd, token, interest),
            Backend::Poll(p) => p.register(fd, token, interest),
        }
    }

    /// Stop watching `fd`. Must be called before the fd is closed.
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(e) => e.ctl(epoll::EPOLL_CTL_DEL, fd, 0, Interest::READ),
            Backend::Poll(p) => {
                p.deregister(fd);
                Ok(())
            }
        }
    }

    /// Block until at least one registered fd is ready or `timeout`
    /// elapses, appending events to `events` (cleared first).
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        let timeout_ms: i32 = match timeout {
            None => -1,
            // Round up so a 1ns timeout doesn't spin at 0ms.
            Some(d) => d.as_millis().min(i32::MAX as u128).max(1) as i32,
        };
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(e) => e.wait(events, timeout_ms),
            Backend::Poll(p) => p.wait(events, timeout_ms),
        }
    }
}

#[cfg(target_os = "linux")]
mod epoll {
    use super::{Event, Interest};
    use std::io;
    use std::os::unix::io::RawFd;

    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    /// Kernel event record. Packed on x86-64 (the kernel ABI packs it
    /// there); natural layout elsewhere.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    fn last_errno() -> io::Error {
        io::Error::last_os_error()
    }

    pub struct Epoll {
        epfd: i32,
        buf: Vec<EpollEvent>,
    }

    impl Epoll {
        pub fn new() -> io::Result<Epoll> {
            // EPOLL_CLOEXEC == O_CLOEXEC == 0x80000 on Linux.
            let epfd = unsafe { epoll_create1(0x8_0000) };
            if epfd < 0 {
                return Err(last_errno());
            }
            Ok(Epoll { epfd, buf: vec![EpollEvent { events: 0, data: 0 }; 1024] })
        }

        pub fn ctl(&mut self, op: i32, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            let mut mask = EPOLLERR | EPOLLHUP | EPOLLRDHUP;
            if interest.readable {
                mask |= EPOLLIN;
            }
            if interest.writable {
                mask |= EPOLLOUT;
            }
            let mut ev = EpollEvent { events: mask, data: token as u64 };
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc < 0 {
                return Err(last_errno());
            }
            Ok(())
        }

        pub fn wait(&mut self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
            let n = loop {
                let n = unsafe {
                    epoll_wait(self.epfd, self.buf.as_mut_ptr(), self.buf.len() as i32, timeout_ms)
                };
                if n >= 0 {
                    break n as usize;
                }
                let err = last_errno();
                if err.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                return Err(err);
            };
            for ev in &self.buf[..n] {
                // Copy out of the (possibly packed) struct first.
                let mask = ev.events;
                let data = ev.data;
                events.push(Event {
                    token: data as usize,
                    readable: mask & (EPOLLIN | EPOLLHUP | EPOLLRDHUP) != 0,
                    writable: mask & EPOLLOUT != 0,
                    error: mask & EPOLLERR != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            unsafe {
                close(self.epfd);
            }
        }
    }
}

mod fallback {
    use super::{Event, Interest};
    use std::io;
    use std::os::unix::io::RawFd;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;
    const POLLNVAL: i16 = 0x020;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        // nfds_t is c_ulong on every unix we target.
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }

    /// `poll(2)` fallback: a flat registration list rebuilt into the
    /// pollfd array on every wait. O(n) per wakeup, which is fine for
    /// the connection counts the fallback is meant for.
    pub struct PollSet {
        regs: Vec<(RawFd, usize, Interest)>,
    }

    impl PollSet {
        pub fn new() -> PollSet {
            PollSet { regs: Vec::new() }
        }

        pub fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            if let Some(slot) = self.regs.iter_mut().find(|(f, _, _)| *f == fd) {
                *slot = (fd, token, interest);
            } else {
                self.regs.push((fd, token, interest));
            }
            Ok(())
        }

        pub fn deregister(&mut self, fd: RawFd) {
            self.regs.retain(|(f, _, _)| *f != fd);
        }

        pub fn wait(&mut self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
            let mut fds: Vec<PollFd> = self
                .regs
                .iter()
                .map(|&(fd, _, interest)| {
                    let mut mask = 0i16;
                    if interest.readable {
                        mask |= POLLIN;
                    }
                    if interest.writable {
                        mask |= POLLOUT;
                    }
                    PollFd { fd, events: mask, revents: 0 }
                })
                .collect();
            let n = loop {
                let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
                if n >= 0 {
                    break n;
                }
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                return Err(err);
            };
            if n == 0 {
                return Ok(());
            }
            for (pfd, &(_, token, _)) in fds.iter().zip(self.regs.iter()) {
                if pfd.revents == 0 {
                    continue;
                }
                events.push(Event {
                    token,
                    readable: pfd.revents & (POLLIN | POLLHUP) != 0,
                    writable: pfd.revents & POLLOUT != 0,
                    error: pfd.revents & (POLLERR | POLLNVAL) != 0,
                });
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    fn poller_under_test() -> Poller {
        Poller::new().unwrap()
    }

    #[test]
    fn readable_fires_when_bytes_arrive() {
        let (mut a, b) = pair();
        b.set_nonblocking(true).unwrap();
        let mut p = poller_under_test();
        p.register(b.as_raw_fd(), 7, Interest::READ).unwrap();
        let mut events = Vec::new();
        // Nothing to read yet: a short wait times out empty.
        p.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(events.is_empty(), "{events:?}");
        a.write_all(b"hello").unwrap();
        p.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable), "{events:?}");
        let mut buf = [0u8; 8];
        let n = (&b).read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"hello");
    }

    #[test]
    fn writable_fires_and_eof_reads_ready() {
        let (a, b) = pair();
        b.set_nonblocking(true).unwrap();
        let mut p = poller_under_test();
        p.register(b.as_raw_fd(), 3, Interest::READ_WRITE).unwrap();
        let mut events = Vec::new();
        p.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token == 3 && e.writable), "{events:?}");
        // Dropping the peer makes the fd read-ready (EOF), so a
        // level-triggered loop notices the close without a timeout.
        drop(a);
        p.reregister(b.as_raw_fd(), 3, Interest::READ).unwrap();
        p.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token == 3 && e.readable), "{events:?}");
        let mut buf = [0u8; 8];
        assert_eq!((&b).read(&mut buf).unwrap(), 0, "EOF");
        p.deregister(b.as_raw_fd()).unwrap();
    }

    /// The fallback backend passes the same contract as the default.
    #[test]
    fn poll_fallback_backend_works() {
        let (mut a, b) = pair();
        b.set_nonblocking(true).unwrap();
        let mut p = Poller { backend: Backend::Poll(fallback::PollSet::new()) };
        assert_eq!(p.backend_name(), "poll");
        p.register(b.as_raw_fd(), 11, Interest::READ).unwrap();
        let mut events = Vec::new();
        a.write_all(b"x").unwrap();
        p.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token == 11 && e.readable), "{events:?}");
    }
}
