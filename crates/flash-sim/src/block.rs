//! A FLASH-style mesh block: `nx × ny` interior cells surrounded by
//! [`GUARD`] guard cells on each side (the paper: "a block is a
//! three-dimensional array with an additional 4 elements as guard cells
//! in each dimension on both sides").

/// Guard-cell depth per side (FLASH default).
pub const GUARD: usize = 4;

/// Number of conserved components: density, x/y/z momentum, total energy
/// density. z-momentum exists so `velz` is a live (passively advected)
/// variable even in this 2-D solver.
pub const NCONS: usize = 5;

/// Conserved-component indices.
pub mod cons {
    /// Mass density ρ.
    pub const RHO: usize = 0;
    /// x momentum ρu.
    pub const MX: usize = 1;
    /// y momentum ρv.
    pub const MY: usize = 2;
    /// z momentum ρw (passive in 2-D).
    pub const MZ: usize = 3;
    /// Total energy density E.
    pub const ENERGY: usize = 4;
}

/// One mesh block (structure-of-arrays over conserved components).
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    nx: usize,
    ny: usize,
    stride: usize,
    /// Each component has `(nx + 2G) · (ny + 2G)` cells, x-fastest.
    data: [Vec<f64>; NCONS],
}

impl Block {
    /// Zero-initialised block with `nx × ny` interior cells.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(nx: usize, ny: usize) -> Self {
        assert!(nx > 0 && ny > 0, "block dimensions must be positive");
        let stride = nx + 2 * GUARD;
        let len = stride * (ny + 2 * GUARD);
        Self { nx, ny, stride, data: std::array::from_fn(|_| vec![0.0; len]) }
    }

    /// Interior width.
    #[inline]
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Interior height.
    #[inline]
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Flat offset of interior coordinate `(i, j)`; guard cells are
    /// addressed with negative values down to `-GUARD` and values up to
    /// `nx/ny + GUARD - 1`.
    #[inline]
    pub fn offset(&self, i: isize, j: isize) -> usize {
        debug_assert!(i >= -(GUARD as isize) && i < (self.nx + GUARD) as isize, "i={i}");
        debug_assert!(j >= -(GUARD as isize) && j < (self.ny + GUARD) as isize, "j={j}");
        let ii = (i + GUARD as isize) as usize;
        let jj = (j + GUARD as isize) as usize;
        jj * self.stride + ii
    }

    /// Read conserved component `c` at `(i, j)`.
    #[inline]
    pub fn get(&self, c: usize, i: isize, j: isize) -> f64 {
        self.data[c][self.offset(i, j)]
    }

    /// Write conserved component `c` at `(i, j)`.
    #[inline]
    pub fn set(&mut self, c: usize, i: isize, j: isize, v: f64) {
        let o = self.offset(i, j);
        self.data[c][o] = v;
    }

    /// All five conserved components at `(i, j)`.
    #[inline]
    pub fn state(&self, i: isize, j: isize) -> [f64; NCONS] {
        let o = self.offset(i, j);
        std::array::from_fn(|c| self.data[c][o])
    }

    /// Overwrite all five conserved components at `(i, j)`.
    #[inline]
    pub fn set_state(&mut self, i: isize, j: isize, u: [f64; NCONS]) {
        let o = self.offset(i, j);
        for (c, v) in u.into_iter().enumerate() {
            self.data[c][o] = v;
        }
    }

    /// Copy a `GUARD`-deep edge strip of the *interior* for export to a
    /// neighbour. Layout: component-major, then row-major over the strip.
    pub fn export_strip(&self, side: Side) -> Vec<f64> {
        let (is, js) = side.interior_range(self.nx, self.ny);
        let mut out = Vec::with_capacity(NCONS * (is.len()) * (js.len()));
        for c in 0..NCONS {
            for j in js.clone() {
                for i in is.clone() {
                    out.push(self.get(c, i, j));
                }
            }
        }
        out
    }

    /// Fill this block's guard cells on `side` from a neighbour's
    /// exported strip (produced by [`Block::export_strip`] on the
    /// *opposite* side).
    pub fn import_strip(&mut self, side: Side, strip: &[f64]) {
        let (is, js) = side.guard_range(self.nx, self.ny);
        debug_assert_eq!(strip.len(), NCONS * is.len() * js.len());
        let mut it = strip.iter();
        for c in 0..NCONS {
            for j in js.clone() {
                for i in is.clone() {
                    let o = self.offset(i, j);
                    self.data[c][o] = *it.next().expect("strip sized to fit");
                }
            }
        }
    }

    /// Outflow (zero-gradient) boundary: clamp-copy the outermost interior
    /// row/column into the guards on `side`.
    pub fn outflow_guard(&mut self, side: Side) {
        let (is, js) = side.guard_range(self.nx, self.ny);
        for c in 0..NCONS {
            for j in js.clone() {
                for i in is.clone() {
                    let ci = i.clamp(0, self.nx as isize - 1);
                    let cj = j.clamp(0, self.ny as isize - 1);
                    let v = self.get(c, ci, cj);
                    let o = self.offset(i, j);
                    self.data[c][o] = v;
                }
            }
        }
    }

    /// Reflecting boundary on `side`: mirror the interior with the
    /// wall-normal momentum negated.
    pub fn reflect_guard(&mut self, side: Side) {
        let (is, js) = side.guard_range(self.nx, self.ny);
        for c in 0..NCONS {
            for j in js.clone() {
                for i in is.clone() {
                    // Mirror index across the wall.
                    let (mi, mj) = match side {
                        Side::West => (-1 - i, j),
                        Side::East => (2 * self.nx as isize - 1 - i, j),
                        Side::South => (i, -1 - j),
                        Side::North => (i, 2 * self.ny as isize - 1 - j),
                    };
                    let mut v = self.get(c, mi, mj);
                    let normal = match side {
                        Side::West | Side::East => cons::MX,
                        Side::South | Side::North => cons::MY,
                    };
                    if c == normal {
                        v = -v;
                    }
                    let o = self.offset(i, j);
                    self.data[c][o] = v;
                }
            }
        }
    }
}

/// Block edge identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// Negative x.
    West,
    /// Positive x.
    East,
    /// Negative y.
    South,
    /// Positive y.
    North,
}

impl Side {
    /// All four sides.
    pub fn all() -> [Side; 4] {
        [Side::West, Side::East, Side::South, Side::North]
    }

    /// The opposite edge.
    pub fn opposite(&self) -> Side {
        match self {
            Side::West => Side::East,
            Side::East => Side::West,
            Side::South => Side::North,
            Side::North => Side::South,
        }
    }

    /// Interior cell ranges whose values a neighbour on this side needs
    /// (i.e. the strip to export).
    fn interior_range(
        &self,
        nx: usize,
        ny: usize,
    ) -> (std::ops::Range<isize>, std::ops::Range<isize>) {
        let g = GUARD as isize;
        match self {
            Side::West => (0..g, 0..ny as isize),
            Side::East => (nx as isize - g..nx as isize, 0..ny as isize),
            Side::South => (0..nx as isize, 0..g),
            Side::North => (0..nx as isize, ny as isize - g..ny as isize),
        }
    }

    /// Guard cell ranges on this side of a block.
    fn guard_range(
        &self,
        nx: usize,
        ny: usize,
    ) -> (std::ops::Range<isize>, std::ops::Range<isize>) {
        let g = GUARD as isize;
        match self {
            Side::West => (-g..0, 0..ny as isize),
            Side::East => (nx as isize..nx as isize + g, 0..ny as isize),
            Side::South => (0..nx as isize, -g..0),
            Side::North => (0..nx as isize, ny as isize..ny as isize + g),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_roundtrip_interior_and_guards() {
        let mut b = Block::new(8, 6);
        b.set(cons::RHO, 0, 0, 1.5);
        b.set(cons::ENERGY, 7, 5, 2.5);
        b.set(cons::MX, -4, -4, 3.5);
        b.set(cons::MY, 11, 9, 4.5);
        assert_eq!(b.get(cons::RHO, 0, 0), 1.5);
        assert_eq!(b.get(cons::ENERGY, 7, 5), 2.5);
        assert_eq!(b.get(cons::MX, -4, -4), 3.5);
        assert_eq!(b.get(cons::MY, 11, 9), 4.5);
    }

    #[test]
    fn state_accessors() {
        let mut b = Block::new(4, 4);
        b.set_state(2, 3, [1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(b.state(2, 3), [1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn export_import_pairs_line_up() {
        // Fill block A's east interior edge, export it, import as block
        // B's west guard: B's guard must equal A's edge.
        let mut a = Block::new(8, 8);
        for j in 0..8isize {
            for i in 0..8isize {
                a.set(cons::RHO, i, j, (i * 100 + j) as f64);
            }
        }
        let strip = a.export_strip(Side::East);
        let mut b = Block::new(8, 8);
        b.import_strip(Side::West, &strip);
        for j in 0..8isize {
            for gi in 0..GUARD as isize {
                // B's west guard cell (-GUARD + gi) holds A's interior
                // column (8 - GUARD + gi).
                let got = b.get(cons::RHO, -(GUARD as isize) + gi, j);
                let want = a.get(cons::RHO, 8 - GUARD as isize + gi, j);
                assert_eq!(got, want, "gi={gi} j={j}");
            }
        }
    }

    #[test]
    fn vertical_export_import() {
        let mut a = Block::new(6, 6);
        for j in 0..6isize {
            for i in 0..6isize {
                a.set(cons::ENERGY, i, j, (j * 10 + i) as f64);
            }
        }
        let strip = a.export_strip(Side::North);
        let mut b = Block::new(6, 6);
        b.import_strip(Side::South, &strip);
        for gj in 0..GUARD as isize {
            for i in 0..6isize {
                let got = b.get(cons::ENERGY, i, -(GUARD as isize) + gj);
                let want = a.get(cons::ENERGY, i, 6 - GUARD as isize + gj);
                assert_eq!(got, want);
            }
        }
    }

    #[test]
    fn outflow_guard_copies_edge() {
        let mut b = Block::new(4, 4);
        for j in 0..4isize {
            for i in 0..4isize {
                b.set(cons::RHO, i, j, 1.0 + i as f64);
            }
        }
        b.outflow_guard(Side::West);
        for j in 0..4isize {
            for gi in 1..=GUARD as isize {
                assert_eq!(b.get(cons::RHO, -gi, j), 1.0, "column 0 value extended");
            }
        }
    }

    #[test]
    fn reflect_guard_mirrors_and_negates_normal_momentum() {
        let mut b = Block::new(4, 4);
        for j in 0..4isize {
            for i in 0..4isize {
                b.set(cons::MX, i, j, (i + 1) as f64);
                b.set(cons::RHO, i, j, (i + 1) as f64 * 10.0);
            }
        }
        b.reflect_guard(Side::West);
        for j in 0..4isize {
            // Guard cell -1 mirrors interior cell 0.
            assert_eq!(b.get(cons::MX, -1, j), -1.0);
            assert_eq!(b.get(cons::RHO, -1, j), 10.0);
            // Guard cell -2 mirrors interior cell 1.
            assert_eq!(b.get(cons::MX, -2, j), -2.0);
            assert_eq!(b.get(cons::RHO, -2, j), 20.0);
        }
    }

    #[test]
    fn sides_opposite() {
        for s in Side::all() {
            assert_eq!(s.opposite().opposite(), s);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dimension_rejected() {
        Block::new(0, 4);
    }
}
