//! Startup recovery: make a session directory consistent with its
//! intent journal before serving traffic.
//!
//! The invariant the journal buys us: **an acknowledged iteration is
//! always restartable after a crash at any instruction boundary.** The
//! server only acknowledges an ingest after the store rename landed, so
//! a crash can leave behind exactly three kinds of debris, all of which
//! this pass cleans up:
//!
//! 1. A stray `*.tmp` file — the crash hit between the temp-file write
//!    and the rename. The rename never happened, the iteration was
//!    never acknowledged: delete the temp file.
//! 2. An outstanding intent whose file is on disk with the journaled
//!    CRC — the crash hit between the rename and the commit append. The
//!    write *completed*; mark it so and move on.
//! 3. An outstanding intent whose file is missing, stale (a valid file
//!    from an earlier write at the same path), or damaged — the write
//!    never finished and was never acknowledged. Roll it back: leave a
//!    stale-but-valid file alone, quarantine a damaged one and run
//!    [`numarck_checkpoint::scrub::repair`] to re-anchor the chain.
//!
//! Either way the journal ends empty and every acknowledged iteration
//! restarts. The session's first post-recovery checkpoint is a forced
//! full (the manager starts with no previous iteration), so chain
//! integrity never depends on recovery guessing delta lineage.

use std::sync::Arc;

use numarck::error::NumarckError;
use numarck_checkpoint::{scrub, CheckpointFile, CheckpointStore};

use crate::journal::IntentJournal;

/// What a recovery pass found and did for one session directory.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Outstanding (uncommitted) intents replayed from the journal.
    pub replayed: usize,
    /// Intents whose store write is verifiably on disk (crash landed
    /// between the rename and the commit record).
    pub completed: usize,
    /// Intents rolled back: the write never finished and the iteration
    /// was never acknowledged.
    pub rolled_back: usize,
    /// Stray `*.tmp` files removed.
    pub tmp_removed: usize,
    /// Whether a half-applied write was quarantined and the chain
    /// re-anchored via [`scrub::repair`].
    pub repaired: bool,
}

impl RecoveryReport {
    /// True when the pass found nothing to do — a clean shutdown.
    pub fn is_noop(&self) -> bool {
        self.replayed == 0 && self.tmp_removed == 0
    }
}

/// Recover one session directory: sweep temp files, replay the intent
/// journal, resolve every outstanding intent, and hand back the (now
/// empty) journal for the session to keep using.
pub fn recover_session(
    store: &CheckpointStore,
) -> Result<(IntentJournal, RecoveryReport), NumarckError> {
    let backend = Arc::clone(store.backend());
    let mut report = RecoveryReport::default();

    // 1. Stray temp files: writes that never reached their rename.
    let names = backend
        .list_dir(store.dir())
        .map_err(|e| NumarckError::Io(format!("recovery listing failed: {e}")))?;
    for name in names {
        if name.ends_with(".tmp") {
            backend
                .remove_file(&store.dir().join(&name))
                .map_err(|e| NumarckError::Io(format!("removing {name} failed: {e}")))?;
            report.tmp_removed += 1;
        }
    }

    // 2. Replay the journal and resolve every outstanding intent.
    let (mut journal, outstanding) = IntentJournal::open(store.dir(), Arc::clone(&backend))
        .map_err(|e| NumarckError::Io(format!("journal replay failed: {e}")))?;
    report.replayed = outstanding.len();
    let mut need_repair = false;
    for intent in &outstanding {
        match store.read_raw(intent.iteration, intent.is_full) {
            Ok(bytes) if numarck::serialize::crc32(&bytes) == intent.content_crc => {
                // Rename landed, commit record didn't. The write is done.
                report.completed += 1;
            }
            Ok(bytes) => {
                report.rolled_back += 1;
                match CheckpointFile::from_bytes(&bytes) {
                    Ok(f) if f.iteration == intent.iteration => {
                        // A valid earlier write at the same path; the
                        // intended overwrite never happened. Keep it.
                    }
                    _ => {
                        // Neither the intended bytes nor a valid older
                        // file: half-applied. Quarantine and re-anchor.
                        store
                            .quarantine(intent.iteration, intent.is_full)
                            .map_err(|e| {
                                NumarckError::Io(format!(
                                    "quarantining iter={} failed: {e}",
                                    intent.iteration
                                ))
                            })?;
                        need_repair = true;
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                // The write never started. Nothing on disk to undo.
                report.rolled_back += 1;
            }
            Err(e) => {
                return Err(NumarckError::Io(format!(
                    "recovery read of iter={} failed: {e}",
                    intent.iteration
                )));
            }
        }
    }

    // 3. If we quarantined a half-applied file, downstream deltas may
    // now be orphaned; repair re-anchors the chain at the newest
    // restartable iteration.
    if need_repair {
        scrub::repair(store)?;
        report.repaired = true;
    }

    // 4. Every intent is resolved: start the journal fresh. An already
    // empty journal is left untouched — recovery of a clean session
    // must not write at all.
    if !journal.is_empty() {
        journal
            .reset()
            .map_err(|e| NumarckError::Io(format!("journal reset failed: {e}")))?;
    }

    Ok((journal, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use numarck::{Config, Strategy};
    use numarck_checkpoint::manager::{CheckpointManager, ManagerPolicy};
    use numarck_checkpoint::{FsBackend, RestartEngine, VariableSet};
    use std::path::PathBuf;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let path = std::env::temp_dir().join(format!(
                "numarck-recovery-{tag}-{}-{}",
                std::process::id(),
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .expect("clock after epoch")
                    .as_nanos()
            ));
            std::fs::create_dir_all(&path).expect("create temp dir");
            Self(path)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn vars(iteration: u64) -> VariableSet {
        let mut v = VariableSet::new();
        v.insert(
            "x".into(),
            (0..150).map(|j| (j as f64 + 1.0) * 1.002f64.powi(iteration as i32)).collect(),
        );
        v
    }

    fn config() -> Config {
        Config::new(8, 0.001, Strategy::Clustering).unwrap()
    }

    /// A store with iterations 0..=n ingested through the journal the
    /// way the server does it: prepare → begin → commit → commit.
    fn build(tmp: &TempDir, n: u64) -> (CheckpointStore, IntentJournal) {
        let store = CheckpointStore::open_with(&tmp.0, Arc::new(FsBackend)).unwrap();
        let (mut journal, outstanding) =
            IntentJournal::open(store.dir(), Arc::clone(store.backend())).unwrap();
        assert!(outstanding.is_empty());
        let mut manager =
            CheckpointManager::new(store.clone(), config(), ManagerPolicy::fixed(4));
        for i in 0..=n {
            let prepared = manager.prepare(i, &vars(i)).unwrap();
            let seq = journal
                .begin(prepared.iteration(), prepared.is_full(), prepared.content_crc())
                .unwrap();
            manager.commit(prepared).unwrap();
            journal.commit(seq).unwrap();
        }
        (store, journal)
    }

    #[test]
    fn clean_shutdown_recovers_to_a_noop() {
        let tmp = TempDir::new("clean");
        let (store, journal) = build(&tmp, 5);
        drop(journal);
        let (_, report) = recover_session(&store).unwrap();
        assert!(report.is_noop(), "unexpected work: {report:?}");
        assert_eq!(report.completed, 0);
    }

    #[test]
    fn stray_tmp_file_is_swept() {
        let tmp = TempDir::new("tmp");
        let (store, _) = build(&tmp, 3);
        std::fs::write(tmp.0.join("ckpt_0000000004.tmp"), b"half a write").unwrap();
        let (_, report) = recover_session(&store).unwrap();
        assert_eq!(report.tmp_removed, 1);
        assert!(!tmp.0.join("ckpt_0000000004.tmp").exists());
    }

    #[test]
    fn intent_with_landed_write_counts_as_completed() {
        let tmp = TempDir::new("landed");
        let (store, mut journal) = build(&tmp, 3);
        // Crash between rename and commit append: write iteration 4 by
        // hand, journal the intent, skip the commit record.
        let mut manager =
            CheckpointManager::new(store.clone(), config(), ManagerPolicy::fixed(4));
        let prepared = manager.prepare(4, &vars(4)).unwrap();
        journal
            .begin(prepared.iteration(), prepared.is_full(), prepared.content_crc())
            .unwrap();
        manager.commit(prepared).unwrap();
        drop(journal);

        let (_, report) = recover_session(&store).unwrap();
        assert_eq!(report.replayed, 1);
        assert_eq!(report.completed, 1);
        assert_eq!(report.rolled_back, 0);
        assert!(!report.repaired);
        // The iteration the crash interrupted is restartable.
        let engine = RestartEngine::new(store);
        assert!(engine.restart_at(4).is_ok());
    }

    #[test]
    fn intent_with_no_write_rolls_back() {
        let tmp = TempDir::new("missing");
        let (store, mut journal) = build(&tmp, 3);
        // Crash right after the intent append: nothing on disk.
        journal.begin(4, false, 0xDEAD_BEEF).unwrap();
        drop(journal);
        let (_, report) = recover_session(&store).unwrap();
        assert_eq!(report.replayed, 1);
        assert_eq!(report.rolled_back, 1);
        assert!(!report.repaired);
        // Iterations 0..=3 are untouched.
        let engine = RestartEngine::new(store);
        assert!(engine.restart_at(3).is_ok());
    }

    #[test]
    fn half_applied_write_is_quarantined_and_chain_repaired() {
        let tmp = TempDir::new("torn");
        let (store, mut journal) = build(&tmp, 3);
        journal.begin(4, false, 0xDEAD_BEEF).unwrap();
        // A torn rename: the destination exists but holds garbage that
        // matches neither the journaled CRC nor any valid checkpoint.
        std::fs::write(tmp.0.join("ckpt_0000000004.delta"), b"torn garbage").unwrap();
        drop(journal);

        let (_, report) = recover_session(&store).unwrap();
        assert_eq!(report.rolled_back, 1);
        assert!(report.repaired);
        // The garbage is gone from the chain and 0..=3 still restart.
        let engine = RestartEngine::new(store.clone());
        assert!(engine.restart_at(3).is_ok());
        assert!(store.read_raw(4, false).is_err());
    }

    #[test]
    fn stale_valid_file_under_an_intent_is_left_alone() {
        let tmp = TempDir::new("stale");
        // Iterations 0..=5 exist and committed; journal an uncommitted
        // *re-write* of iteration 5 (a delta) that never happened. The
        // old valid file must survive.
        let (store, mut journal) = build(&tmp, 5);
        let old = store.read_raw(5, false).unwrap();
        journal.begin(5, false, 0x1234_5678).unwrap();
        drop(journal);

        let (_, report) = recover_session(&store).unwrap();
        assert_eq!(report.rolled_back, 1);
        assert!(!report.repaired);
        assert_eq!(store.read_raw(5, false).unwrap(), old);
    }

    #[test]
    fn recovered_journal_is_empty_and_usable() {
        let tmp = TempDir::new("reuse");
        let (store, mut journal) = build(&tmp, 2);
        journal.begin(3, false, 0x1).unwrap();
        drop(journal);
        let (mut journal, _) = recover_session(&store).unwrap();
        assert_eq!(journal.outstanding(), 0);
        // Sequence numbering keeps working after reset.
        let seq = journal.begin(3, false, 0x2).unwrap();
        journal.commit(seq).unwrap();
    }
}
