/root/repo/target/debug/deps/fig3-08a3a7e1b7db0d01.d: crates/numarck-bench/src/bin/fig3.rs

/root/repo/target/debug/deps/libfig3-08a3a7e1b7db0d01.rmeta: crates/numarck-bench/src/bin/fig3.rs

crates/numarck-bench/src/bin/fig3.rs:
