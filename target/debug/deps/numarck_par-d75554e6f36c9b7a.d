/root/repo/target/debug/deps/numarck_par-d75554e6f36c9b7a.d: crates/numarck-par/src/lib.rs crates/numarck-par/src/chunk.rs crates/numarck-par/src/histogram.rs crates/numarck-par/src/pool.rs crates/numarck-par/src/quantile.rs crates/numarck-par/src/reduce.rs crates/numarck-par/src/rng.rs crates/numarck-par/src/scan.rs

/root/repo/target/debug/deps/libnumarck_par-d75554e6f36c9b7a.rlib: crates/numarck-par/src/lib.rs crates/numarck-par/src/chunk.rs crates/numarck-par/src/histogram.rs crates/numarck-par/src/pool.rs crates/numarck-par/src/quantile.rs crates/numarck-par/src/reduce.rs crates/numarck-par/src/rng.rs crates/numarck-par/src/scan.rs

/root/repo/target/debug/deps/libnumarck_par-d75554e6f36c9b7a.rmeta: crates/numarck-par/src/lib.rs crates/numarck-par/src/chunk.rs crates/numarck-par/src/histogram.rs crates/numarck-par/src/pool.rs crates/numarck-par/src/quantile.rs crates/numarck-par/src/reduce.rs crates/numarck-par/src/rng.rs crates/numarck-par/src/scan.rs

crates/numarck-par/src/lib.rs:
crates/numarck-par/src/chunk.rs:
crates/numarck-par/src/histogram.rs:
crates/numarck-par/src/pool.rs:
crates/numarck-par/src/quantile.rs:
crates/numarck-par/src/reduce.rs:
crates/numarck-par/src/rng.rs:
crates/numarck-par/src/scan.rs:
