/root/repo/target/debug/deps/ext2_anomaly-56f3b28f53207f0c.d: crates/numarck-bench/src/bin/ext2_anomaly.rs

/root/repo/target/debug/deps/libext2_anomaly-56f3b28f53207f0c.rmeta: crates/numarck-bench/src/bin/ext2_anomaly.rs

crates/numarck-bench/src/bin/ext2_anomaly.rs:
