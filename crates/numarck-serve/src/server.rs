//! The checkpoint service: acceptor + bounded queue + worker pool.
//!
//! One acceptor thread polls a non-blocking listener and hands accepted
//! connections to a fixed worker pool over a bounded
//! [`std::sync::mpsc::sync_channel`]. When the queue is full the
//! acceptor answers the connection with a single [`Response::Busy`]
//! frame and drops it — typed backpressure instead of an ever-growing
//! accept backlog. Each worker serves one connection at a time, request
//! after request, until the peer closes (so a connection has session
//! affinity for free; concurrency across sessions comes from the pool).
//!
//! Sessions are named; each maps to a subdirectory of the server root
//! and is backed by a [`CheckpointManager`], so every ingest inherits
//! the store's retry/backoff and quarantine machinery. Per-session locks
//! let distinct sessions ingest in parallel while serialising writes
//! within one session (the delta chain is inherently ordered).
//!
//! Drain (`Shutdown` request or SIGTERM/SIGINT) flips one flag: the
//! acceptor closes the listener and stops feeding the queue, workers
//! finish the request they are on, answer anything further with
//! `Error { Draining }`, and exit once their connection goes idle. State
//! is all on disk already (every `Put` is durable before it is acked),
//! so drain has nothing to flush — it only has to stop cleanly.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use numarck::error::NumarckError;
use numarck::Config;
use numarck_checkpoint::backend::StorageBackend;
use numarck_checkpoint::{
    scrub, CheckpointManager, CheckpointOutcome, CheckpointStore, FsBackend, ManagerPolicy,
    RestartEngine, RetryPolicy, SystemClock,
};
use numarck_compact::{CompactionConfig, Compactor, CostModel};
use numarck_obs::{Counter, Gauge, Histogram, HistogramSummary, Level, Registry, Snapshot};

use crate::journal::IntentJournal;
use crate::recovery::{self, RecoveryReport};
use crate::wire::{
    self, ErrorCode, LatencyStat, PutOutcome, ReadOutcome, Request, Response, SessionStat,
    StatsReply, WrittenKind,
};

/// How long the acceptor sleeps between accept polls.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Directory under which each session gets a checkpoint store.
    pub root: PathBuf,
    /// Worker threads serving connections.
    pub workers: usize,
    /// Bounded hand-off queue depth between acceptor and workers; a full
    /// queue makes the acceptor answer [`Response::Busy`].
    pub queue_depth: usize,
    /// Per-request socket deadline: the longest a worker will wait for
    /// the rest of a started frame (or for a response write to make
    /// progress) before failing the connection. Doubles as the idle poll
    /// interval between requests.
    pub io_timeout: Duration,
    /// How long a connection may sit idle *between* requests before the
    /// worker hangs up and reclaims itself. Guards the fixed-size pool
    /// against peers that connect and then go silent (slowloris): with
    /// `workers` connections held open and mute, no one else is served.
    pub idle_timeout: Duration,
    /// NUMARCK compression config for delta checkpoints.
    pub compression: Config,
    /// Full-checkpoint interval for every session.
    pub full_interval: u64,
    /// Storage retry policy (inherited by every session's manager).
    pub retry: RetryPolicy,
    /// Storage backend for every session store (tests inject faults).
    pub backend: Arc<dyn StorageBackend>,
    /// Background chain maintenance (compaction, full placement, GC) run
    /// over every session at `compact_interval`; `None` disables the
    /// maintenance worker entirely.
    pub compaction: Option<CompactionConfig>,
    /// How often the maintenance worker sweeps the sessions.
    pub compact_interval: Duration,
}

impl ServerConfig {
    /// Defaults: 4 workers, queue depth 16, 5s deadline, 60s idle
    /// timeout, fulls every 16 iterations, default retry policy, real
    /// filesystem.
    pub fn new(root: impl Into<PathBuf>, compression: Config) -> Self {
        Self {
            root: root.into(),
            workers: 4,
            queue_depth: 16,
            io_timeout: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(60),
            compression,
            full_interval: 16,
            retry: RetryPolicy::default(),
            backend: Arc::new(FsBackend),
            compaction: None,
            compact_interval: Duration::from_secs(60),
        }
    }
}

/// One open session.
struct SessionState {
    id: u64,
    name: String,
    manager: CheckpointManager,
    /// Write-ahead intent journal: every ingest journals (iteration,
    /// content CRC) and fsyncs *before* the store mutates.
    journal: IntentJournal,
}

/// Per-server instruments, backed by a *private* [`Registry`] so
/// several servers in one process (tests, embedded use) do not blur
/// each other's numbers. `/metrics` and [`ServerHandle::metrics_snapshot`]
/// merge this registry with the process-global one (encoder + checkpoint
/// instruments), whose names carry disjoint prefixes.
struct Instruments {
    registry: Arc<Registry>,
    accepted: Arc<Counter>,
    served: Arc<Counter>,
    busy_rejected: Arc<Counter>,
    iterations_ingested: Arc<Counter>,
    bytes_ingested: Arc<Counter>,
    write_retries: Arc<Counter>,
    journal_replayed: Arc<Counter>,
    journal_rolled_back: Arc<Counter>,
    recovery_repairs: Arc<Counter>,
    idle_disconnects: Arc<Counter>,
    queue_depth: Arc<Gauge>,
    req_open: Arc<Histogram>,
    req_put: Arc<Histogram>,
    req_restart: Arc<Histogram>,
    req_scrub: Arc<Histogram>,
    req_stats: Arc<Histogram>,
    req_close: Arc<Histogram>,
    req_shutdown: Arc<Histogram>,
}

impl Instruments {
    fn new() -> Self {
        let registry = Arc::new(Registry::new());
        Self {
            accepted: registry.counter("nsrv_accepted_total"),
            served: registry.counter("nsrv_served_total"),
            busy_rejected: registry.counter("nsrv_busy_rejected_total"),
            iterations_ingested: registry.counter("nsrv_iterations_ingested_total"),
            bytes_ingested: registry.counter("nsrv_bytes_ingested_total"),
            write_retries: registry.counter("nsrv_write_retries_total"),
            journal_replayed: registry.counter("nsrv_journal_replayed_total"),
            journal_rolled_back: registry.counter("nsrv_journal_rolled_back_total"),
            recovery_repairs: registry.counter("nsrv_recovery_repairs_total"),
            idle_disconnects: registry.counter("nsrv_idle_disconnects_total"),
            queue_depth: registry.gauge("nsrv_queue_depth"),
            req_open: registry.histogram("nsrv_request_open_ns"),
            req_put: registry.histogram("nsrv_request_put_ns"),
            req_restart: registry.histogram("nsrv_request_restart_ns"),
            req_scrub: registry.histogram("nsrv_request_scrub_ns"),
            req_stats: registry.histogram("nsrv_request_stats_ns"),
            req_close: registry.histogram("nsrv_request_close_ns"),
            req_shutdown: registry.histogram("nsrv_request_shutdown_ns"),
            registry,
        }
    }

    /// Fold one session's recovery outcome into the counters (and the
    /// event ring, when there was anything to recover).
    fn record_recovery(&self, session: &str, report: &RecoveryReport) {
        self.journal_replayed.add(report.replayed as u64);
        self.journal_rolled_back.add(report.rolled_back as u64);
        self.recovery_repairs.add(u64::from(report.repaired));
        if !report.is_noop() {
            self.registry.events().push(
                Level::Warn,
                format!(
                    "recovered session {session:?}: {} intents replayed \
                     ({} completed, {} rolled back), {} tmp files swept{}",
                    report.replayed,
                    report.completed,
                    report.rolled_back,
                    report.tmp_removed,
                    if report.repaired { ", chain re-anchored" } else { "" },
                ),
            );
        }
    }

    /// The latency histogram a request type is timed into.
    fn request_hist(&self, req: &Request) -> &Histogram {
        match req {
            Request::OpenSession { .. } => &self.req_open,
            Request::PutIterations { .. } => &self.req_put,
            Request::Restart { .. } => &self.req_restart,
            Request::Scrub { .. } => &self.req_scrub,
            Request::Stats => &self.req_stats,
            Request::CloseSession { .. } => &self.req_close,
            Request::Shutdown => &self.req_shutdown,
        }
    }

    /// Latency summaries for the stats-reply extension, fixed order.
    fn latencies(&self) -> Vec<LatencyStat> {
        [
            ("nsrv_request_open_ns", &self.req_open),
            ("nsrv_request_put_ns", &self.req_put),
            ("nsrv_request_restart_ns", &self.req_restart),
            ("nsrv_request_scrub_ns", &self.req_scrub),
            ("nsrv_request_stats_ns", &self.req_stats),
            ("nsrv_request_close_ns", &self.req_close),
            ("nsrv_request_shutdown_ns", &self.req_shutdown),
        ]
        .into_iter()
        .map(|(name, h)| LatencyStat { name: name.to_owned(), summary: HistogramSummary::of(h) })
        .collect()
    }
}

/// State shared by the acceptor, the workers, and the handle.
struct Shared {
    config: ServerConfig,
    draining: AtomicBool,
    /// Counters/gauges/latency histograms (see `StatsReply` and
    /// DESIGN.md §7 for meanings).
    obs: Instruments,
    next_session_id: AtomicU64,
    /// name → id for idempotent `OpenSession`.
    by_name: Mutex<HashMap<String, u64>>,
    /// id → session. Per-session mutexes so sessions proceed in
    /// parallel; this outer map lock is only held to look up the `Arc`.
    sessions: Mutex<HashMap<u64, Arc<Mutex<SessionState>>>>,
}

impl Shared {
    fn stats(&self) -> StatsReply {
        let mut sessions: Vec<SessionStat> = Vec::new();
        let handles: Vec<Arc<Mutex<SessionState>>> =
            self.sessions.lock().expect("sessions lock").values().cloned().collect();
        for handle in handles {
            let sess = handle.lock().expect("session lock");
            let files =
                sess.manager.list_iterations().map(|l| l.len() as u32).unwrap_or(0);
            sessions.push(SessionStat {
                id: sess.id,
                name: sess.name.clone(),
                files,
                latest_restartable: sess.manager.latest_restartable(),
            });
        }
        sessions.sort_by_key(|s| s.id);
        StatsReply {
            accepted: self.obs.accepted.get(),
            served: self.obs.served.get(),
            busy_rejected: self.obs.busy_rejected.get(),
            iterations_ingested: self.obs.iterations_ingested.get(),
            bytes_ingested: self.obs.bytes_ingested.get(),
            write_retries: self.obs.write_retries.get(),
            draining: self.draining.load(Ordering::Relaxed),
            sessions,
            queue_depth: self.obs.queue_depth.get(),
            latencies: self.obs.latencies(),
            journal_replayed: self.obs.journal_replayed.get(),
            journal_rolled_back: self.obs.journal_rolled_back.get(),
            recovery_repairs: self.obs.recovery_repairs.get(),
            idle_disconnects: self.obs.idle_disconnects.get(),
            // The replica counters live in the process-global registry
            // (they are bumped by numarck-checkpoint's scrub/backends,
            // which know nothing of this server).
            replica_repairs: Registry::global().counter("ckpt_replica_repairs_total").get(),
            replica_quorum_failures: Registry::global()
                .counter("ckpt_replica_quorum_failures_total")
                .get(),
            // The compaction counters also live in the process-global
            // registry (numarck-compact's policy engine bumps them).
            compact_runs: Registry::global().counter("nck_compact_runs_total").get(),
            compact_deltas_merged: Registry::global()
                .counter("nck_compact_deltas_merged_total")
                .get(),
            compact_bytes_reclaimed: Registry::global()
                .counter("nck_compact_bytes_reclaimed_total")
                .get(),
            gc_files_removed: Registry::global().counter("nck_gc_files_removed_total").get(),
        }
    }

    /// This server's registry merged with the process-global one.
    fn metrics_snapshot(&self) -> Snapshot {
        let mut snap = self.obs.registry.snapshot();
        snap.merge(Registry::global().snapshot());
        snap
    }
}

/// Running server: the acceptor/worker threads plus control surface.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    maintenance: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the listener is bound to (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Begin draining: stop accepting, let in-flight work finish.
    /// Idempotent; returns immediately.
    pub fn trigger_drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
    }

    /// Whether a drain has been triggered (by request, signal, or
    /// [`Self::trigger_drain`]).
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Snapshot of this server's metrics registry merged with the
    /// process-global registry (encoder + checkpoint instruments).
    pub fn metrics_snapshot(&self) -> Snapshot {
        self.shared.metrics_snapshot()
    }

    /// A cloneable, `'static` snapshot source for a `/metrics` listener
    /// ([`numarck_obs::MetricsServer::start`] wants one that outlives
    /// the handle's borrows).
    pub fn metrics_source(&self) -> impl Fn() -> Snapshot + Send + Sync + 'static {
        let shared = Arc::clone(&self.shared);
        move || shared.metrics_snapshot()
    }

    /// Block until the acceptor and every worker have exited. Only
    /// returns after a drain has been triggered somehow.
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(maintenance) = self.maintenance.take() {
            let _ = maintenance.join();
        }
    }

    /// Drain and wait: [`Self::trigger_drain`] + [`Self::join`].
    pub fn shutdown(self) {
        self.trigger_drain();
        self.join();
    }
}

/// Install SIGTERM/SIGINT handlers that flip [`signal_drain_requested`].
///
/// Uses the raw libc `signal(2)` symbol so the crate stays free of
/// external dependencies. Safe to call more than once.
#[cfg(unix)]
pub fn install_signal_handlers() {
    static INSTALLED: AtomicBool = AtomicBool::new(false);
    if INSTALLED.swap(true, Ordering::SeqCst) {
        return;
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    extern "C" fn on_signal(_signum: i32) {
        SIGNAL_DRAIN.store(true, Ordering::SeqCst);
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
    }
}

/// No-op off unix.
#[cfg(not(unix))]
pub fn install_signal_handlers() {}

static SIGNAL_DRAIN: AtomicBool = AtomicBool::new(false);

/// True once a SIGTERM/SIGINT has been received (after
/// [`install_signal_handlers`]). The acceptor polls this.
pub fn signal_drain_requested() -> bool {
    SIGNAL_DRAIN.load(Ordering::SeqCst)
}

/// The server. Construct with [`Server::spawn`].
pub struct Server;

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// start the acceptor and worker threads. Returns once the listener
    /// is live; the returned handle controls shutdown.
    pub fn spawn(addr: &str, config: ServerConfig) -> io::Result<ServerHandle> {
        assert!(config.workers >= 1, "need at least one worker");
        assert!(config.queue_depth >= 1, "need at least one queue slot");
        // Resolve lane-kernel dispatch up front: encode/decode inherit the
        // cached level, and the `simd_dispatch_level` gauge is present in
        // every stats snapshot from the first scrape on.
        numarck_simd::active_level();
        config.backend.create_dir_all(&config.root)?;
        let shared = Arc::new(Shared {
            config,
            draining: AtomicBool::new(false),
            obs: Instruments::new(),
            next_session_id: AtomicU64::new(1),
            by_name: Mutex::new(HashMap::new()),
            sessions: Mutex::new(HashMap::new()),
        });
        // Recover every existing session directory *before* the listener
        // goes live: no request can observe a half-applied ingest.
        recover_root(&shared)?;
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let (tx, rx) = mpsc::sync_channel::<TcpStream>(shared.config.queue_depth);
        let rx = Arc::new(Mutex::new(rx));
        let mut workers = Vec::with_capacity(shared.config.workers);
        for i in 0..shared.config.workers {
            let rx = Arc::clone(&rx);
            let shared = Arc::clone(&shared);
            workers.push(
                thread::Builder::new()
                    .name(format!("nsrv-worker-{i}"))
                    .spawn(move || worker_loop(&rx, &shared))
                    .expect("spawn worker"),
            );
        }
        let acceptor = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("nsrv-acceptor".into())
                .spawn(move || acceptor_loop(listener, tx, &shared))
                .expect("spawn acceptor")
        };
        let maintenance = shared.config.compaction.map(|compaction| {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("nsrv-maintenance".into())
                .spawn(move || maintenance_loop(&shared, compaction))
                .expect("spawn maintenance")
        });
        Ok(ServerHandle { addr: local, shared, acceptor: Some(acceptor), workers, maintenance })
    }
}

/// Background chain maintenance: every `compact_interval`, run one
/// compaction/placement/GC pass over each open session. Each pass holds
/// that session's lock (exactly as scrub does), so maintenance never
/// races the session's own ingest, and its writes go through the
/// session's write-ahead intent journal — to crash recovery they are
/// indistinguishable from ingest writes. Exits when drain is triggered.
fn maintenance_loop(shared: &Shared, compaction: CompactionConfig) {
    let mut last_sweep = Instant::now();
    loop {
        if shared.draining.load(Ordering::SeqCst) {
            return;
        }
        if last_sweep.elapsed() < shared.config.compact_interval {
            thread::sleep(ACCEPT_POLL);
            continue;
        }
        last_sweep = Instant::now();
        let handles: Vec<Arc<Mutex<SessionState>>> =
            shared.sessions.lock().expect("sessions lock").values().cloned().collect();
        for handle in handles {
            if shared.draining.load(Ordering::SeqCst) {
                return;
            }
            let mut sess = handle.lock().expect("session lock");
            let store = sess.manager.store().clone();
            let name = sess.name.clone();
            // Re-seed the restart cost model from the decode timings the
            // replay path has actually measured (`numarck_decode_ns`),
            // scaled by this session's variable count — placement then
            // chases observed latency, not the compile-time default.
            let cost = CostModel::from_obs(sess.manager.variable_count());
            let compactor = Compactor::new(CompactionConfig { cost, ..compaction });
            match compactor.run(&store, &mut sess.journal) {
                Ok(report) => {
                    if report.merges > 0 || report.fulls_promoted > 0 || report.gc.removed > 0 {
                        shared.obs.registry.events().push(
                            Level::Info,
                            format!(
                                "maintenance on session {name:?}: {} merges \
                                 ({} deltas), {} fulls promoted, {} files \
                                 collected, {} bytes reclaimed",
                                report.merges,
                                report.deltas_merged,
                                report.fulls_promoted,
                                report.gc.removed,
                                report.bytes_reclaimed,
                            ),
                        );
                    }
                }
                Err(e) => {
                    // A failed pass quarantined anything it damaged and
                    // left its intent outstanding; scrub/recovery own the
                    // repair. Maintenance itself just reports and moves on.
                    shared.obs.registry.events().push(
                        Level::Error,
                        format!("maintenance on session {name:?} failed: {e}"),
                    );
                }
            }
        }
    }
}

/// Startup recovery sweep: every subdirectory of the root that looks
/// like a session store gets its intent journal replayed and its debris
/// cleaned before the server accepts traffic. A directory recovery
/// failure fails the spawn — serving over a store in an unknown state
/// would silently break the durability contract.
fn recover_root(shared: &Shared) -> io::Result<()> {
    let backend = &shared.config.backend;
    for name in backend.list_dir(&shared.config.root)? {
        if !valid_session_name(&name) {
            continue;
        }
        let dir = shared.config.root.join(&name);
        // Session stores are directories; a listing succeeding is the
        // backend-portable way to tell (and what recovery needs anyway).
        if backend.list_dir(&dir).is_err() {
            continue;
        }
        let store = CheckpointStore::open_with(&dir, Arc::clone(backend))?;
        let (_, report) = recovery::recover_session(&store).map_err(|e| {
            io::Error::other(format!("recovery of session {name:?} failed: {e}"))
        })?;
        shared.obs.record_recovery(&name, &report);
    }
    Ok(())
}

/// Accept until drain; full queue ⇒ Busy + drop.
fn acceptor_loop(listener: TcpListener, tx: SyncSender<TcpStream>, shared: &Shared) {
    loop {
        if signal_drain_requested() {
            shared.draining.store(true, Ordering::SeqCst);
        }
        if shared.draining.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => match tx.try_send(stream) {
                Ok(()) => {
                    shared.obs.accepted.inc();
                    // Decremented by the worker that picks it up.
                    shared.obs.queue_depth.inc();
                }
                Err(TrySendError::Full(stream)) => {
                    shared.obs.busy_rejected.inc();
                    shared
                        .obs
                        .registry
                        .events()
                        .push(Level::Warn, "hand-off queue full: connection rejected with Busy");
                    reject_busy(stream, shared.config.io_timeout);
                }
                Err(TrySendError::Disconnected(_)) => break,
            },
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => thread::sleep(ACCEPT_POLL),
        }
    }
    // Dropping `tx` here wakes every idle worker with Disconnected.
}

/// Tell an over-quota connection it lost, without blocking the acceptor
/// for long.
fn reject_busy(stream: TcpStream, timeout: Duration) {
    let _ = stream.set_write_timeout(Some(timeout));
    let mut stream = stream;
    let _ = wire::write_frame(&mut stream, Response::Busy.opcode(), 0, &Response::Busy.payload());
}

/// Pull connections off the queue and serve each to completion.
fn worker_loop(rx: &Arc<Mutex<Receiver<TcpStream>>>, shared: &Shared) {
    loop {
        // Hold the receiver lock only for the poll itself so workers
        // take turns; poll with a timeout so drain is noticed even with
        // no traffic.
        let conn = {
            let rx = rx.lock().expect("receiver lock");
            rx.recv_timeout(ACCEPT_POLL)
        };
        match conn {
            Ok(stream) => {
                shared.obs.queue_depth.dec();
                serve_connection(stream, shared);
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if shared.draining.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }
}

/// How often an idle connection re-checks the drain flag.
const IDLE_POLL: Duration = Duration::from_millis(100);

/// Serve one connection: read frames, dispatch, respond, until the peer
/// closes, the deadline is violated, or drain finishes the conversation.
///
/// Two timescales: *between* requests the socket is polled every
/// [`IDLE_POLL`] so drain is noticed promptly on quiet connections;
/// once a frame's first byte arrives, the socket timeout widens to the
/// per-request `io_timeout` deadline — a peer that starts a frame and
/// stalls past the deadline loses the connection.
fn serve_connection(stream: TcpStream, shared: &Shared) {
    let timeout = shared.config.io_timeout;
    if stream.set_write_timeout(Some(timeout)).is_err() {
        return;
    }
    let mut stream = stream;
    let mut last_activity = Instant::now();
    loop {
        let outcome = read_next_frame(&mut stream, timeout);
        let frame = match outcome {
            Ok(ReadOutcome::Frame(frame)) => frame,
            Ok(ReadOutcome::Idle) => {
                // Idle tick: keep waiting unless the server is draining
                // or the peer has been mute past the idle budget — a
                // worker parked on a silent connection is a worker some
                // other client doesn't get (slowloris).
                if shared.draining.load(Ordering::SeqCst) {
                    return;
                }
                if last_activity.elapsed() >= shared.config.idle_timeout {
                    shared.obs.idle_disconnects.inc();
                    shared.obs.registry.events().push(
                        Level::Warn,
                        "idle connection disconnected; worker reclaimed",
                    );
                    return;
                }
                continue;
            }
            Ok(ReadOutcome::Closed) => return,
            Err(_) => {
                // Deadline violation or garbage: the stream may not be
                // frame-aligned any more, so answer (best-effort) and
                // hang up.
                let resp = Response::Error {
                    code: ErrorCode::Malformed,
                    message: "unreadable frame; closing connection".into(),
                };
                let _ = wire::write_frame(&mut stream, resp.opcode(), 0, &resp.payload());
                return;
            }
        };
        last_activity = Instant::now();
        let req_id = frame.req_id;
        let (resp, close_after) = match Request::from_frame(&frame) {
            Ok(req) => {
                // Per-request-type latency: the span covers dispatch
                // only (session lookup + store work), not socket I/O.
                let _span = shared.obs.request_hist(&req).span();
                dispatch(req, shared)
            }
            Err(e) => (
                Response::Error { code: ErrorCode::Malformed, message: e.to_string() },
                true,
            ),
        };
        shared.obs.served.inc();
        if wire::write_frame(&mut stream, resp.opcode(), req_id, &resp.payload()).is_err() {
            return;
        }
        if close_after {
            return;
        }
    }
}

/// One idle-aware frame read: poll for the first byte at [`IDLE_POLL`],
/// then read the rest of the frame under the full `deadline`.
fn read_next_frame(stream: &mut TcpStream, deadline: Duration) -> io::Result<ReadOutcome> {
    if stream.set_read_timeout(Some(IDLE_POLL)).is_err() {
        return Ok(ReadOutcome::Closed);
    }
    let mut first = [0u8; 1];
    loop {
        match io::Read::read(stream, &mut first) {
            Ok(0) => return Ok(ReadOutcome::Closed),
            Ok(_) => break,
            Err(e)
                if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) =>
            {
                return Ok(ReadOutcome::Idle)
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    stream.set_read_timeout(Some(deadline))?;
    wire::read_frame_rest(first[0], stream).map(ReadOutcome::Frame)
}

/// Handle one request. Returns the response and whether the connection
/// should close afterwards.
fn dispatch(req: Request, shared: &Shared) -> (Response, bool) {
    // Draining: only `Stats` (observability) still answers normally.
    if shared.draining.load(Ordering::SeqCst) && !matches!(req, Request::Stats) {
        return (
            Response::Error {
                code: ErrorCode::Draining,
                message: "server is draining; not accepting new work".into(),
            },
            true,
        );
    }
    match req {
        Request::OpenSession { name } => (open_session(&name, shared), false),
        Request::PutIterations { session, iterations } => {
            (put_iterations(session, iterations, shared), false)
        }
        Request::Restart { session, at_or_before } => {
            (restart(session, at_or_before, shared), false)
        }
        Request::Scrub { session, repair } => (run_scrub(session, repair, shared), false),
        Request::Stats => (Response::StatsData(Box::new(shared.stats())), false),
        Request::CloseSession { session } => (close_session(session, shared), false),
        Request::Shutdown => {
            shared.draining.store(true, Ordering::SeqCst);
            (Response::ShuttingDown, true)
        }
    }
}

/// Session names double as directory names; keep them boring.
fn valid_session_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name.bytes().all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
        && name != "."
        && name != ".."
}

fn open_session(name: &str, shared: &Shared) -> Response {
    if !valid_session_name(name) {
        return Response::Error {
            code: ErrorCode::BadRequest,
            message: format!(
                "invalid session name {name:?}: need 1-64 chars of [A-Za-z0-9._-]"
            ),
        };
    }
    // Idempotent: re-opening a name returns the existing id.
    let mut by_name = shared.by_name.lock().expect("by_name lock");
    if let Some(&id) = by_name.get(name) {
        return Response::SessionOpened { session: id };
    }
    let store = match CheckpointStore::open_with(
        shared.config.root.join(name),
        Arc::clone(&shared.config.backend),
    ) {
        Ok(store) => store,
        Err(e) => {
            return Response::Error {
                code: ErrorCode::Io,
                message: format!("cannot open session store: {e}"),
            }
        }
    };
    // Recover before first use: a session dir left behind by a crashed
    // server (or created while this one ran) may hold an unresolved
    // intent journal. A noop for fresh or cleanly-shut-down sessions.
    let journal = match recovery::recover_session(&store) {
        Ok((journal, report)) => {
            shared.obs.record_recovery(name, &report);
            journal
        }
        Err(e) => {
            return Response::Error {
                code: ErrorCode::Io,
                message: format!("session recovery failed: {e}"),
            }
        }
    };
    let manager = CheckpointManager::with_retry(
        store,
        shared.config.compression,
        ManagerPolicy::fixed(shared.config.full_interval),
        shared.config.retry,
        Arc::new(SystemClock),
    );
    let id = shared.next_session_id.fetch_add(1, Ordering::Relaxed);
    by_name.insert(name.to_string(), id);
    shared
        .sessions
        .lock()
        .expect("sessions lock")
        .insert(
            id,
            Arc::new(Mutex::new(SessionState { id, name: name.to_string(), manager, journal })),
        );
    Response::SessionOpened { session: id }
}

fn session_handle(id: u64, shared: &Shared) -> Result<Arc<Mutex<SessionState>>, Response> {
    shared.sessions.lock().expect("sessions lock").get(&id).cloned().ok_or_else(|| {
        Response::Error {
            code: ErrorCode::UnknownSession,
            message: format!("session {id} is not open"),
        }
    })
}

fn put_iterations(
    id: u64,
    iterations: Vec<(u64, numarck_checkpoint::VariableSet)>,
    shared: &Shared,
) -> Response {
    if iterations.is_empty() {
        return Response::Error {
            code: ErrorCode::BadRequest,
            message: "empty iteration batch".into(),
        };
    }
    let handle = match session_handle(id, shared) {
        Ok(h) => h,
        Err(resp) => return resp,
    };
    // One lock per batch: iterations within a batch are ordered by the
    // chain anyway, and the per-session lock is what lets *other*
    // sessions make progress meanwhile.
    let mut sess = handle.lock().expect("session lock");
    let mut outcomes = Vec::with_capacity(iterations.len());
    for (iteration, vars) in &iterations {
        let bytes: u64 = vars.values().map(|v| v.len() as u64 * 8).sum();
        // Write-ahead: encode first, journal the intent (fsynced), then
        // let the store mutate, then mark the intent committed. A crash
        // anywhere in between is classified by recovery on restart —
        // and nothing is acknowledged until the whole sequence ran.
        let journaled = sess.manager.prepare(*iteration, vars).and_then(|prepared| {
            let seq = begin_with_retry(&mut sess.journal, &prepared, shared)
                .map_err(|e| NumarckError::Io(format!("intent journal append failed: {e}")))?;
            let report = sess.manager.commit(prepared)?;
            // Best-effort: a lost commit record only means recovery
            // re-verifies this iteration's CRC after a crash.
            let _ = sess.journal.commit(seq);
            Ok(report)
        });
        match journaled {
            Ok(report) => {
                shared.obs.iterations_ingested.inc();
                shared.obs.bytes_ingested.add(bytes);
                shared.obs.write_retries.add(u64::from(report.retries));
                let kind = match report.outcome {
                    CheckpointOutcome::Full => WrittenKind::Full,
                    CheckpointOutcome::FullOnDrift { .. } => WrittenKind::FullOnDrift,
                    CheckpointOutcome::Delta(_) => WrittenKind::Delta,
                };
                outcomes.push(PutOutcome { iteration: *iteration, kind, retries: report.retries });
            }
            Err(e) => {
                // Partial batches are reported as errors: the client
                // cannot tell which prefix landed from a PutDone, and
                // the next Put will re-anchor with a forced full anyway.
                let code = match &e {
                    NumarckError::Io(_) => ErrorCode::Io,
                    _ => ErrorCode::Compress,
                };
                return Response::Error {
                    code,
                    message: format!(
                        "iteration {iteration} failed after {} of {} landed: {e}",
                        outcomes.len(),
                        iterations.len()
                    ),
                };
            }
        }
    }
    Response::PutDone { outcomes }
}

/// Journal an intent under the same transient-retry judgement the
/// manager applies to store writes. A torn append left behind by a
/// failed attempt is harmless: replay stops at the damage, and every
/// acknowledged iteration before it still resolves from its on-disk CRC.
fn begin_with_retry(
    journal: &mut IntentJournal,
    prepared: &numarck_checkpoint::PreparedCheckpoint,
    shared: &Shared,
) -> io::Result<u64> {
    let mut attempt: u32 = 0;
    loop {
        match journal.begin(prepared.iteration(), prepared.is_full(), prepared.content_crc()) {
            Ok(seq) => return Ok(seq),
            Err(e)
                if numarck_checkpoint::manager::is_transient(&e)
                    && attempt < shared.config.retry.max_retries =>
            {
                thread::sleep(shared.config.retry.backoff_for(attempt));
                attempt += 1;
                shared.obs.write_retries.inc();
            }
            Err(e) => return Err(e),
        }
    }
}

fn restart(id: u64, at_or_before: u64, shared: &Shared) -> Response {
    let handle = match session_handle(id, shared) {
        Ok(h) => h,
        Err(resp) => return resp,
    };
    let store = {
        let sess = handle.lock().expect("session lock");
        sess.manager.store().clone()
    };
    // The chain replay runs on a clone of the store *outside* the
    // session lock: restarts are reads and must not stall ingest.
    match RestartEngine::new(store).restart_at_or_before(at_or_before) {
        Ok(degraded) => Response::RestartData {
            achieved: degraded.achieved(),
            base: degraded.result.base_iteration,
            deltas_applied: degraded.result.deltas_applied,
            lost: degraded.lost.len() as u32,
            vars: degraded.result.vars,
        },
        Err(e) => Response::Error {
            code: ErrorCode::NotFound,
            message: format!("nothing restartable at or before {at_or_before}: {e}"),
        },
    }
}

fn run_scrub(id: u64, repair: bool, shared: &Shared) -> Response {
    let handle = match session_handle(id, shared) {
        Ok(h) => h,
        Err(resp) => return resp,
    };
    // Scrub holds the session lock: it may quarantine and rewrite files,
    // which must not race the session's own ingest.
    let sess = handle.lock().expect("session lock");
    let store = sess.manager.store();
    if repair {
        match scrub::repair(store) {
            Ok(report) => Response::ScrubDone {
                checked: report.scrub.checked as u32,
                quarantined: report.scrub.quarantined.len() as u32,
                anchored_at: report.anchored_at,
                lost: report.lost.len() as u32,
            },
            Err(e) => Response::Error { code: ErrorCode::Io, message: format!("repair failed: {e}") },
        }
    } else {
        match scrub::scrub(store) {
            Ok(report) => Response::ScrubDone {
                checked: report.checked as u32,
                quarantined: report.quarantined.len() as u32,
                anchored_at: None,
                lost: 0,
            },
            Err(e) => Response::Error { code: ErrorCode::Io, message: format!("scrub failed: {e}") },
        }
    }
}

fn close_session(id: u64, shared: &Shared) -> Response {
    let removed = shared.sessions.lock().expect("sessions lock").remove(&id);
    match removed {
        Some(handle) => {
            let name = handle.lock().expect("session lock").name.clone();
            shared.by_name.lock().expect("by_name lock").remove(&name);
            Response::SessionClosed
        }
        None => Response::Error {
            code: ErrorCode::UnknownSession,
            message: format!("session {id} is not open"),
        },
    }
}
