/root/repo/target/debug/examples/quickstart-184196d8b10a39c6.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-184196d8b10a39c6: examples/quickstart.rs

examples/quickstart.rs:
