//! Small deterministic PRNGs for reproducible experiments.
//!
//! The experiment harness must regenerate the paper's figures bit-for-bit
//! across runs and thread counts, so the synthetic data generators and the
//! k-means++ initialiser use these seedable generators rather than an
//! OS-seeded source. `SplitMix64` is used for seeding/stream-splitting and
//! `Xoshiro256PlusPlus` as the workhorse generator (both public domain
//! algorithms by Blackman & Vigna).

/// SplitMix64: tiny, fast, passes BigCrush; ideal for seeding.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded constructor.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// Xoshiro256++: the general-purpose generator for the simulators.
#[derive(Debug, Clone)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Seed via SplitMix64 expansion (never produces the all-zero state).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self { s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()] }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform double in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform double in `[lo, hi)`.
    #[inline]
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)` via Lemire's multiply-shift (unbiased
    /// enough for our workloads; exact rejection is overkill here).
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Standard normal via Box–Muller (polar form avoided for simplicity;
    /// the trig form is branch-free and deterministic).
    pub fn normal(&mut self) -> f64 {
        // Guard against log(0).
        let u1 = loop {
            let u = self.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal with explicit mean and standard deviation.
    #[inline]
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal()
    }

    /// Split off an independent generator stream (for per-thread or
    /// per-variable streams with a shared master seed).
    pub fn split(&mut self) -> Self {
        Self::seed_from_u64(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Xoshiro256PlusPlus::seed_from_u64(1);
        let mut b = Xoshiro256PlusPlus::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.uniform(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&x));
        }
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(11);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let i = rng.below(10);
            assert!(i < 10);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear in 10k draws");
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean: f64 = xs.iter().sum::<f64>() / n as f64;
        let var: f64 = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean={mean}");
        assert!((var - 1.0).abs() < 0.03, "var={var}");
    }

    #[test]
    fn split_streams_are_independent_and_deterministic() {
        let mut master1 = Xoshiro256PlusPlus::seed_from_u64(99);
        let mut master2 = Xoshiro256PlusPlus::seed_from_u64(99);
        let mut s1 = master1.split();
        let mut s2 = master2.split();
        for _ in 0..50 {
            assert_eq!(s1.next_u64(), s2.next_u64());
        }
        let mut a = master1.split();
        let overlap = (0..16).filter(|_| a.next_u64() == s2.next_u64()).count();
        assert_eq!(overlap, 0);
    }
}
