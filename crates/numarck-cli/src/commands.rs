//! The CLI commands.

use std::path::Path;

use numarck::metrics::{max_relative_error, mean_relative_error, pearson, rmse};
use numarck::{decode, Config, DeltaChain, ReferenceMode, Strategy};

use crate::args;
use crate::chainfile::ChainFile;
use crate::seqfile;
use crate::{CliError, CliResult};

pub(crate) fn parse_strategy(name: &str) -> Result<Strategy, String> {
    Strategy::all()
        .into_iter()
        .find(|s| s.name() == name)
        .ok_or_else(|| format!("unknown strategy '{name}' (equal-width|log-scale|clustering)"))
}

/// Argument-structure problems (unknown flag, missing value, wrong
/// positional count) exit with [`crate::exit_code::USAGE`].
pub(crate) fn parse_args(
    raw: &[String],
    value_flags: &[&str],
    switch_flags: &[&str],
) -> Result<args::Parsed, CliError> {
    args::parse(raw, value_flags, switch_flags).map_err(CliError::usage)
}

/// `numarck gen`: produce a `.f64s` sequence from one of the built-in
/// simulators.
pub fn gen(raw: &[String]) -> CliResult {
    let p = parse_args(raw, &["source", "iterations", "out", "grid", "seed"], &[])?;
    p.expect_positionals(0, "").map_err(CliError::usage)?;
    let source = p.require("source").map_err(CliError::usage)?;
    let iterations: usize = p.get_parsed("iterations", 10)?;
    let seed: u64 = p.get_parsed("seed", 42)?;
    let out = p.require("out").map_err(CliError::usage)?.to_string();
    if iterations == 0 {
        return Err("--iterations must be at least 1".into());
    }

    let seq: Vec<Vec<f64>> = match source.split_once(':') {
        Some(("climate", var_name)) => {
            let var = climate_sim::ClimateVar::from_name(var_name)
                .ok_or_else(|| format!("unknown climate variable '{var_name}'"))?;
            let grid = match p.get("grid") {
                None => climate_sim::Grid::cmip5(),
                Some(spec) => {
                    let (w, h) = spec
                        .split_once('x')
                        .ok_or_else(|| format!("--grid expects WxH, got '{spec}'"))?;
                    let w: usize = w.parse().map_err(|_| format!("bad grid width '{w}'"))?;
                    let h: usize = h.parse().map_err(|_| format!("bad grid height '{h}'"))?;
                    if w == 0 || h == 0 {
                        return Err("grid dimensions must be positive".into());
                    }
                    climate_sim::Grid::new(w, h)
                }
            };
            let mut model = climate_sim::ClimateModel::with_grid(var, grid, seed);
            let mut seq = vec![model.current().to_vec()];
            for _ in 1..iterations {
                seq.push(model.step().to_vec());
            }
            seq
        }
        Some(("flash", var_name)) => {
            let var = flash_sim::FlashVar::from_name(var_name)
                .ok_or_else(|| format!("unknown FLASH variable '{var_name}'"))?;
            let mut sim = flash_sim::FlashSimulation::paper_default(
                flash_sim::Problem::SedovBlast,
                4,
                4,
            );
            sim.run_steps(20);
            let mut seq = Vec::with_capacity(iterations);
            for i in 0..iterations {
                if i > 0 {
                    sim.run_steps(2);
                }
                let field = sim.checkpoint().remove(&var).ok_or_else(|| {
                    format!("FLASH checkpoint does not contain variable '{var_name}'")
                })?;
                seq.push(field);
            }
            seq
        }
        _ => {
            return Err(format!(
                "--source must be climate:<var> or flash:<var>, got '{source}'"
            )
            .into())
        }
    };
    seqfile::write(Path::new(&out), &seq)?;
    Ok(format!(
        "wrote {out}: {} iterations × {} points",
        seq.len(),
        seq.first().map(|v| v.len()).unwrap_or(0)
    ))
}

/// `numarck compress`: `.f64s` → `.nmkc`.
pub fn compress(raw: &[String]) -> CliResult {
    let p =
        parse_args(raw, &["out", "bits", "tolerance", "strategy"], &["closed-loop", "entropy"])?;
    let input = &p.expect_positionals(1, "input .f64s").map_err(CliError::usage)?[0];
    let out = p.require("out").map_err(CliError::usage)?.to_string();
    let bits: u8 = p.get_parsed("bits", 8)?;
    let tolerance: f64 = p.get_parsed("tolerance", 0.001)?;
    let strategy = parse_strategy(p.get("strategy").unwrap_or("clustering"))?;
    let mode = if p.has("closed-loop") {
        ReferenceMode::Reconstructed
    } else {
        ReferenceMode::TrueValues
    };

    let seq = seqfile::read(Path::new(input))?;
    if seq.is_empty() {
        return Err("input sequence is empty".into());
    }
    let config = Config::new(bits, tolerance, strategy).map_err(|e| e.to_string())?;
    let mut chain = DeltaChain::with_mode(seq[0].clone(), config, mode);
    let mut gamma_sum = 0.0;
    for it in &seq[1..] {
        let stats = chain.append(it).map_err(|e| e.to_string())?;
        gamma_sum += stats.incompressible_ratio;
    }
    let deltas = seq.len() - 1;
    let file = ChainFile {
        bits,
        tolerance,
        strategy,
        mode,
        base: chain.base().to_vec(),
        deltas: chain.deltas().to_vec(),
    };
    let encoding = if p.has("entropy") {
        numarck::serialize::IndexEncoding::Huffman
    } else {
        numarck::serialize::IndexEncoding::FixedWidth
    };
    file.save_with(Path::new(&out), encoding)?;
    let raw_bytes = seq.iter().map(|v| v.len() * 8).sum::<usize>();
    let stored = std::fs::metadata(&out).map(|m| m.len()).unwrap_or(0) as usize;
    Ok(format!(
        "wrote {out}: base + {deltas} deltas, {:.2}% total compression (mean γ {:.2}%)",
        (1.0 - stored as f64 / raw_bytes as f64) * 100.0,
        if deltas > 0 { gamma_sum / deltas as f64 * 100.0 } else { 0.0 }
    ))
}

/// `numarck decompress`: `.nmkc` → `.f64s` (base + every reconstructed
/// iteration).
pub fn decompress(raw: &[String]) -> CliResult {
    let p = parse_args(raw, &["out"], &[])?;
    let input = &p.expect_positionals(1, "input .nmkc").map_err(CliError::usage)?[0];
    let out = p.require("out").map_err(CliError::usage)?.to_string();
    let chain = ChainFile::load(Path::new(input))?;
    let mut iterations = Vec::with_capacity(chain.deltas.len() + 1);
    let mut state = chain.base.clone();
    iterations.push(state.clone());
    for (i, delta) in chain.deltas.iter().enumerate() {
        state = decode::reconstruct(&state, delta)
            .map_err(|e| format!("delta {i}: {e}"))?;
        iterations.push(state.clone());
    }
    seqfile::write(Path::new(&out), &iterations)?;
    Ok(format!(
        "wrote {out}: {} iterations × {} points (reconstructed)",
        iterations.len(),
        chain.base.len()
    ))
}

/// `numarck inspect`: human-readable summary of a chain file.
pub fn inspect(raw: &[String]) -> CliResult {
    let p = parse_args(raw, &[], &[])?;
    let input = &p.expect_positionals(1, "input .nmkc").map_err(CliError::usage)?[0];
    let chain = ChainFile::load(Path::new(input))?;
    let mut out = String::new();
    out.push_str(&format!(
        "{input}: B = {} bits, E = {}, strategy = {}, mode = {:?}\n",
        chain.bits, chain.tolerance, chain.strategy, chain.mode
    ));
    out.push_str(&format!(
        "base: {} points ({} bytes raw); {} deltas ({} bytes total)\n",
        chain.base.len(),
        chain.base.len() * 8,
        chain.deltas.len(),
        chain.delta_bytes()
    ));
    for (i, d) in chain.deltas.iter().enumerate() {
        out.push_str(&format!(
            "  delta {:3}: γ {:6.3}%, table {:3} entries, Eq.3 ratio {:6.2}%\n",
            i + 1,
            d.incompressible_ratio() * 100.0,
            d.table.len(),
            d.compression_ratio_eq3() * 100.0
        ));
    }
    Ok(out)
}

/// `numarck anomaly-scan`: scan every transition of a sequence for
/// soft-error outliers.
pub fn anomaly_scan(raw: &[String]) -> CliResult {
    let p = parse_args(raw, &["fence-multiplier"], &[])?;
    let input = &p.expect_positionals(1, "input .f64s").map_err(CliError::usage)?[0];
    let fence: f64 = p.get_parsed("fence-multiplier", 3.0)?;
    let seq = seqfile::read(Path::new(input))?;
    if seq.len() < 2 {
        return Err("anomaly scan needs at least two iterations".into());
    }
    let config = numarck::anomaly::AnomalyConfig {
        fence_multiplier: fence,
        ..Default::default()
    };
    let mut out = String::new();
    let mut total = 0usize;
    for (i, w) in seq.windows(2).enumerate() {
        let report = numarck::anomaly::detect(&w[0], &w[1], &config)
            .map_err(|e| e.to_string())?;
        total += report.anomalies.len();
        if report.is_clean() {
            out.push_str(&format!("transition {i:3}: clean\n"));
        } else {
            out.push_str(&format!(
                "transition {i:3}: {} suspect point(s), fence [{:.4}, {:.4}]\n",
                report.anomalies.len(),
                report.fence_lo,
                report.fence_hi
            ));
            for a in report.anomalies.iter().take(5) {
                out.push_str(&format!(
                    "    point {:8}: ratio {:?}, score {:.1}\n",
                    a.index, a.ratio, a.score
                ));
            }
        }
    }
    out.push_str(&format!("total suspect points: {total}\n"));
    Ok(out)
}

/// `numarck drift`: print the change-distribution drift series of a
/// sequence (the signal the adaptive checkpoint policy consumes).
pub fn drift(raw: &[String]) -> CliResult {
    let p = parse_args(raw, &["tolerance", "cap"], &[])?;
    let input = &p.expect_positionals(1, "input .f64s").map_err(CliError::usage)?[0];
    let tolerance: f64 = p.get_parsed("tolerance", 0.001)?;
    let cap: f64 = p.get_parsed("cap", 0.5)?;
    let seq = seqfile::read(Path::new(input))?;
    if seq.len() < 3 {
        return Err("drift needs at least three iterations".into());
    }
    let mut tracker = numarck::drift::DriftTracker::new();
    let mut out = String::from("transition   L1      KL      EMD\n");
    for (i, w) in seq.windows(2).enumerate() {
        let dist =
            numarck::drift::ChangeDistribution::from_iterations(&w[0], &w[1], tolerance, cap)
                .map_err(|e| e.to_string())?;
        if let Some(report) = tracker.observe(dist) {
            out.push_str(&format!(
                "{:10}  {:.4}  {:.4}  {:.5}\n",
                i, report.l1, report.kl, report.emd
            ));
        }
    }
    Ok(out)
}

/// `numarck verify`: compare two sequences point-wise, or — with
/// `--store` — check every iteration of a checkpoint store for
/// restartability.
pub fn verify(raw: &[String]) -> CliResult {
    let p = parse_args(raw, &["tolerance", "store", "replicas"], &[])?;
    if let Some(dir) = p.get("store") {
        p.expect_positionals(0, "").map_err(CliError::usage)?;
        return verify_store(dir, replica_count(&p)?);
    }
    let pos = p.expect_positionals(2, "reference .f64s, candidate .f64s").map_err(CliError::usage)?;
    let tolerance: f64 = p.get_parsed("tolerance", 0.001)?;
    let a = seqfile::read(Path::new(&pos[0]))?;
    let b = seqfile::read(Path::new(&pos[1]))?;
    if a.len() != b.len() {
        return Err(CliError::corrupt(format!(
            "FAIL: iteration counts differ ({} vs {})",
            a.len(),
            b.len()
        )));
    }
    let mut report = String::new();
    let mut worst_overall = 0.0f64;
    for (i, (x, y)) in a.iter().zip(&b).enumerate() {
        if x.len() != y.len() {
            return Err(CliError::corrupt(format!("FAIL: iteration {i} lengths differ")));
        }
        let max = max_relative_error(x, y);
        let mean = mean_relative_error(x, y);
        worst_overall = worst_overall.max(max);
        report.push_str(&format!(
            "iteration {i:3}: max rel {:.3e}, mean rel {:.3e}, ρ {:.6}, ξ {:.6}\n",
            max,
            mean,
            pearson(x, y),
            rmse(x, y)
        ));
    }
    // Chained open-loop reconstruction compounds; allow the chain budget
    // for the sequence length.
    let budget = (1.0 + tolerance / (1.0 - tolerance.min(0.5))).powi(a.len() as i32) - 1.0;
    if worst_overall <= budget {
        Ok(format!(
            "{report}PASS: worst relative error {worst_overall:.3e} within chain budget {budget:.3e}"
        ))
    } else {
        Err(CliError::corrupt(format!(
            "{report}FAIL: worst relative error {worst_overall:.3e} exceeds chain budget {budget:.3e}"
        )))
    }
}

/// `numarck verify --store`: restartability report for a checkpoint
/// store directory.
fn verify_store(dir: &str, replicas: usize) -> CliResult {
    let store = open_store(dir, replicas)?;
    let diagnosis = numarck_checkpoint::fault::diagnose_store(&store)
        .map_err(|e| format!("cannot scan {dir}: {e}"))?;
    if diagnosis.is_empty() {
        return Err(CliError::missing(format!("FAIL: {dir} contains no checkpoint files")));
    }
    let mut report = String::new();
    let mut broken = 0usize;
    // Tally container format versions alongside restartability: a chain
    // that mixes v1 and v2 files still restarts (the codec seam sniffs
    // per file), but it means an upgrade is half-finished — worth
    // flagging so the operator runs compaction to completion.
    let mut versions = std::collections::BTreeMap::<u16, usize>::new();
    for d in &diagnosis {
        let ver = store
            .read_raw(d.iteration, d.is_full)
            .ok()
            .and_then(|bytes| numarck_checkpoint::sniff_version(&bytes).ok());
        if let Some(v) = ver {
            *versions.entry(v).or_insert(0) += 1;
        }
        let ver = ver.map(|v| format!("v{v}")).unwrap_or_else(|| "v?".into());
        match &d.error {
            None => report.push_str(&format!(
                "iteration {:3} ({}, {ver}): restartable\n",
                d.iteration,
                kind_name(d.is_full)
            )),
            Some(err) => {
                broken += 1;
                report.push_str(&format!(
                    "iteration {:3} ({}, {ver}): BROKEN — {err}\n",
                    d.iteration,
                    kind_name(d.is_full)
                ));
            }
        }
    }
    let tally: Vec<String> = versions.iter().map(|(v, n)| format!("v{v} x{n}")).collect();
    report.push_str(&format!("container versions: {}\n", tally.join(", ")));
    if versions.len() > 1 {
        report.push_str(
            "WARNING: mixed-version chain — old files stay readable forever, but \
             'numarck compact' rewrites merged windows in the current format\n",
        );
    }
    if broken == 0 {
        Ok(format!("{report}PASS: all {} iteration(s) restartable", diagnosis.len()))
    } else {
        Err(CliError::corrupt(format!(
            "{report}FAIL: {broken} of {} iteration(s) not restartable (try 'numarck scrub' then 'numarck repair')",
            diagnosis.len()
        )))
    }
}

fn kind_name(is_full: bool) -> &'static str {
    if is_full {
        "full"
    } else {
        "delta"
    }
}

/// `--replicas N` for the local store commands; `1` (the default) is
/// the single-copy layout.
pub(crate) fn replica_count(p: &crate::args::Parsed) -> Result<usize, CliError> {
    let n: usize = p.get_parsed("replicas", 1)?;
    if n == 0 {
        return Err(CliError::usage("--replicas must be at least 1"));
    }
    Ok(n)
}

/// Open `dir` as a checkpoint store. With `replicas > 1` the store is
/// N-way replicated under `dir/@replica-{i}` with a majority write
/// quorum — the layout `ReplicatedBackend` lays down — and scrub
/// cross-compares the copies with read-repair.
pub(crate) fn open_store(
    dir: &str,
    replicas: usize,
) -> Result<numarck_checkpoint::CheckpointStore, CliError> {
    if !Path::new(dir).is_dir() {
        return Err(CliError::missing(format!("store directory '{dir}' does not exist")));
    }
    if replicas > 1 {
        let backend = numarck_checkpoint::ReplicatedBackend::with_fs_replicas(
            Path::new(dir),
            replicas,
            replicas / 2 + 1,
        )
        .map_err(|e| format!("cannot open {replicas} replicas under {dir}: {e}"))?;
        numarck_checkpoint::CheckpointStore::open_with(dir, std::sync::Arc::new(backend))
            .map_err(|e| format!("cannot open {dir}: {e}").into())
    } else {
        numarck_checkpoint::CheckpointStore::open(dir)
            .map_err(|e| format!("cannot open {dir}: {e}").into())
    }
}

/// Render the cross-replica half of a scrub report, when there is one.
fn replica_summary(report: &numarck_checkpoint::ScrubReport) -> String {
    match &report.replicas {
        Some(r) => format!(
            "replicas: {} file(s) cross-compared, {} read-repair(s), {} quorum failure(s)\n",
            r.files_compared, r.repaired, r.quorum_failures
        ),
        None => String::new(),
    }
}

/// `numarck scrub`: CRC-verify every file of a checkpoint store, moving
/// damaged ones to its `quarantine/` directory.
pub fn scrub(raw: &[String]) -> CliResult {
    let p = parse_args(raw, &["replicas"], &[])?;
    let dir = &p.expect_positionals(1, "checkpoint store directory").map_err(CliError::usage)?[0];
    let store = open_store(dir, replica_count(&p)?)?;
    let report = numarck_checkpoint::scrub(&store).map_err(|e| e.to_string())?;
    let mut out = format!("scrubbed {dir}: {} file(s) checked\n", report.checked);
    out.push_str(&replica_summary(&report));
    for f in &report.quarantined {
        out.push_str(&format!(
            "quarantined iteration {} ({}): {} -> {}\n",
            f.entry.iteration,
            kind_name(f.entry.is_full),
            f.reason,
            f.quarantined_to.display()
        ));
    }
    if report.is_clean() {
        out.push_str("clean: no damage found\n");
        Ok(out)
    } else {
        out.push_str(&format!(
            "{} file(s) quarantined; run 'numarck repair {dir}' to re-anchor the chain\n",
            report.quarantined.len()
        ));
        // Damage found (and set aside) is a distinct, scriptable outcome.
        Err(CliError::quarantined(out))
    }
}

/// `numarck repair`: scrub, quarantine orphaned chain segments, and
/// re-anchor the store with a fresh full checkpoint at the newest
/// restartable iteration.
pub fn repair(raw: &[String]) -> CliResult {
    let p = parse_args(raw, &["replicas"], &[])?;
    let dir = &p.expect_positionals(1, "checkpoint store directory").map_err(CliError::usage)?[0];
    let store = open_store(dir, replica_count(&p)?)?;
    let report = numarck_checkpoint::repair(&store).map_err(|e| e.to_string())?;
    let mut out = format!(
        "repaired {dir}: {} file(s) checked, {} quarantined by scrub\n",
        report.scrub.checked,
        report.scrub.quarantined.len()
    );
    out.push_str(&replica_summary(&report.scrub));
    for l in &report.lost {
        out.push_str(&format!("lost iteration {}: {}\n", l.iteration, l.reason));
    }
    match report.anchored_at {
        Some(anchor) if report.wrote_full => out.push_str(&format!(
            "re-anchored: fresh full checkpoint materialized at iteration {anchor}\n"
        )),
        Some(anchor) => {
            out.push_str(&format!("anchor intact: full checkpoint at iteration {anchor}\n"))
        }
        None => {
            return Err(CliError::missing(format!(
                "{out}FAIL: no restartable iteration remains in {dir}"
            )))
        }
    }
    Ok(out)
}
