/root/repo/target/debug/deps/numarck_linalg-b2e6118d8a834eb1.d: crates/numarck-linalg/src/lib.rs crates/numarck-linalg/src/banded.rs crates/numarck-linalg/src/bspline.rs crates/numarck-linalg/src/tridiag.rs

/root/repo/target/debug/deps/numarck_linalg-b2e6118d8a834eb1: crates/numarck-linalg/src/lib.rs crates/numarck-linalg/src/banded.rs crates/numarck-linalg/src/bspline.rs crates/numarck-linalg/src/tridiag.rs

crates/numarck-linalg/src/lib.rs:
crates/numarck-linalg/src/banded.rs:
crates/numarck-linalg/src/bspline.rs:
crates/numarck-linalg/src/tridiag.rs:
