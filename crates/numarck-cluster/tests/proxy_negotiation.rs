//! Wire version negotiation *through a forwarding hop*: a stock client
//! talking to the router must get typed results even when the shards
//! behind it speak older dialects of the stats reply — the base format
//! with no extensions, or the observability extension without the
//! durability tail. The router decodes each shard's reply with the same
//! tolerant rules a direct client uses, aggregates, and re-encodes in
//! the current format; nothing old leaks through to the client.
//!
//! The shards here are fakes: bare TCP threads that frame-decode
//! requests and answer `Stats` with hand-encoded payloads frozen in the
//! old layouts. They also answer the router's health prober (which is
//! just a `Stats` round-trip), so the router keeps them marked up.

use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use numarck_cluster::{Router, RouterConfig, RouterHandle};
use numarck_serve::wire::{self, opcode};
use numarck_serve::Client;

const TIMEOUT: Duration = Duration::from_secs(10);

fn put_string(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u16).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

/// A base-format (pre-extension) `StatsData` payload: counters, the
/// draining flag, and one session — exactly where an old encoder
/// stopped.
fn old_format_stats_payload() -> Vec<u8> {
    let mut payload = Vec::new();
    for v in [5u64, 40, 2, 64, 1 << 20, 3] {
        payload.extend_from_slice(&v.to_le_bytes());
    }
    payload.push(0); // draining
    payload.extend_from_slice(&1u32.to_le_bytes()); // one session
    payload.extend_from_slice(&7u64.to_le_bytes()); // shard-local id
    put_string(&mut payload, "legacy");
    payload.extend_from_slice(&16u32.to_le_bytes()); // files
    payload.push(1); // latest_restartable present
    payload.extend_from_slice(&15u64.to_le_bytes());
    payload
}

/// A payload with the observability extension but no durability tail:
/// the current encoding truncated by exactly the trailing durability
/// (six u64s) + compaction (four u64s) extensions.
fn obs_only_stats_payload() -> Vec<u8> {
    let full = numarck_serve::Response::StatsData(Box::new(numarck_serve::StatsReply {
        accepted: 2,
        served: 9,
        iterations_ingested: 11,
        queue_depth: 4,
        journal_replayed: 99, // must NOT survive the truncation
        ..Default::default()
    }));
    let mut payload = full.payload();
    payload.truncate(payload.len() - 80);
    payload
}

/// A payload cut *inside* the observability extension: bytes present
/// but not a whole extension. Direct clients treat this as a decode
/// error; the router must too, and must not let it poison the fan-out.
fn torn_extension_stats_payload() -> Vec<u8> {
    let mut payload = obs_only_stats_payload();
    payload.truncate(payload.len() - 3);
    payload
}

/// Serve `stats_payload` for every `Stats` request, forever, on a
/// dedicated listener. Handles concurrent connections (the router's
/// upstream plus the prober's).
fn spawn_fake_shard(stats_payload: Vec<u8>, stop: Arc<AtomicBool>) -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind fake shard");
    let addr = listener.local_addr().unwrap().to_string();
    thread::spawn(move || {
        for stream in listener.incoming() {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            let Ok(stream) = stream else { continue };
            let payload = stats_payload.clone();
            thread::spawn(move || serve_connection(stream, &payload));
        }
    });
    addr
}

fn serve_connection(mut stream: TcpStream, stats_payload: &[u8]) {
    let _ = stream.set_read_timeout(Some(TIMEOUT));
    loop {
        let frame = match wire::read_frame(&mut stream) {
            Ok(f) => f,
            Err(_) => return, // peer hung up or went quiet
        };
        let reply = match frame.opcode {
            opcode::STATS => wire::encode_frame(opcode::STATS_DATA, frame.req_id, stats_payload),
            other => wire::encode_frame(
                opcode::ERROR,
                frame.req_id,
                &error_payload(&format!("fake shard only speaks Stats, got {other:#x}")),
            ),
        };
        if stream.write_all(&reply).is_err() || stream.flush().is_err() {
            return;
        }
    }
}

fn error_payload(message: &str) -> Vec<u8> {
    let mut p = 1u16.to_le_bytes().to_vec(); // ErrorCode::Malformed on the wire
    put_string(&mut p, message);
    p
}

fn router_over(shards: Vec<String>) -> RouterHandle {
    Router::spawn(
        "127.0.0.1:0",
        RouterConfig {
            shards,
            probe_interval: Duration::from_millis(100),
            probe_timeout: Duration::from_secs(2),
            ..RouterConfig::default()
        },
    )
    .expect("spawn router")
}

#[test]
fn old_format_shard_reply_proxies_to_typed_defaults() {
    let stop = Arc::new(AtomicBool::new(false));
    let addr = spawn_fake_shard(old_format_stats_payload(), Arc::clone(&stop));
    let router = router_over(vec![addr]);

    let mut client = Client::connect(router.addr(), TIMEOUT).expect("connect via router");
    let stats = client.stats().expect("stats via router from old-format shard");
    assert_eq!(stats.accepted, 5);
    assert_eq!(stats.write_retries, 3);
    assert_eq!(stats.sessions.len(), 1);
    assert_eq!(stats.sessions[0].name, "legacy");
    assert_eq!(stats.sessions[0].latest_restartable, Some(15));
    assert_eq!(stats.queue_depth, 0, "observability extension defaults through the hop");
    assert!(stats.latencies.is_empty(), "observability extension defaults through the hop");
    assert_eq!(stats.journal_replayed, 0, "durability extension defaults through the hop");
    assert!(!stats.draining, "draining reflects the router, and it is not draining");

    stop.store(true, Ordering::SeqCst);
    drop(client);
    router.shutdown();
}

#[test]
fn obs_only_shard_reply_proxies_with_durability_defaults() {
    let stop = Arc::new(AtomicBool::new(false));
    let addr = spawn_fake_shard(obs_only_stats_payload(), Arc::clone(&stop));
    let router = router_over(vec![addr]);

    let mut client = Client::connect(router.addr(), TIMEOUT).expect("connect via router");
    let stats = client.stats().expect("stats via router from obs-only shard");
    assert_eq!(stats.served, 9);
    assert_eq!(stats.queue_depth, 4, "observability extension survives the hop");
    assert_eq!(stats.journal_replayed, 0, "missing durability extension decodes to defaults");
    assert_eq!(stats.replica_repairs, 0);

    stop.store(true, Ordering::SeqCst);
    drop(client);
    router.shutdown();
}

#[test]
fn torn_extension_reply_is_dropped_not_proxied() {
    // One healthy old-format shard, one shard whose reply is cut inside
    // an extension. The fan-out must keep the decodable reply and
    // discard the torn one — the client still gets typed results.
    let stop = Arc::new(AtomicBool::new(false));
    let good = spawn_fake_shard(old_format_stats_payload(), Arc::clone(&stop));
    let torn = spawn_fake_shard(torn_extension_stats_payload(), Arc::clone(&stop));
    let router = router_over(vec![good, torn]);

    let mut client = Client::connect(router.addr(), TIMEOUT).expect("connect via router");
    let stats = client.stats().expect("stats via router with one torn shard");
    assert_eq!(stats.accepted, 5, "the decodable shard's counters survive");
    assert_eq!(stats.sessions.len(), 1);
    assert_eq!(stats.served, 40, "only the good shard contributes (torn reply dropped)");

    stop.store(true, Ordering::SeqCst);
    drop(client);
    router.shutdown();
}
