/root/repo/target/release/deps/numarck_serve-b8cca787341dc351.d: crates/numarck-serve/src/lib.rs crates/numarck-serve/src/client.rs crates/numarck-serve/src/journal.rs crates/numarck-serve/src/recovery.rs crates/numarck-serve/src/server.rs crates/numarck-serve/src/wire.rs

/root/repo/target/release/deps/libnumarck_serve-b8cca787341dc351.rlib: crates/numarck-serve/src/lib.rs crates/numarck-serve/src/client.rs crates/numarck-serve/src/journal.rs crates/numarck-serve/src/recovery.rs crates/numarck-serve/src/server.rs crates/numarck-serve/src/wire.rs

/root/repo/target/release/deps/libnumarck_serve-b8cca787341dc351.rmeta: crates/numarck-serve/src/lib.rs crates/numarck-serve/src/client.rs crates/numarck-serve/src/journal.rs crates/numarck-serve/src/recovery.rs crates/numarck-serve/src/server.rs crates/numarck-serve/src/wire.rs

crates/numarck-serve/src/lib.rs:
crates/numarck-serve/src/client.rs:
crates/numarck-serve/src/journal.rs:
crates/numarck-serve/src/recovery.rs:
crates/numarck-serve/src/server.rs:
crates/numarck-serve/src/wire.rs:
