//! Gamma-law equation of state.
//!
//! FLASH couples a pluggable EOS; for the shock problems the paper's
//! checkpoints come from, a perfect-gas gamma-law EOS is the standard
//! choice and keeps `gamc`/`game` constant fields — which matches the
//! paper's observation that those two variables compress trivially.

/// Perfect-gas EOS with adiabatic index `gamma`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GammaLaw {
    /// Adiabatic index (1.4 for diatomic-like test problems).
    pub gamma: f64,
}

impl GammaLaw {
    /// Standard diatomic index used by the Sod/Sedov test problems.
    pub const AIR: GammaLaw = GammaLaw { gamma: 1.4 };

    /// Construct with an explicit index.
    ///
    /// # Panics
    /// Panics unless `gamma > 1`.
    pub fn new(gamma: f64) -> Self {
        assert!(gamma > 1.0, "gamma must exceed 1");
        Self { gamma }
    }

    /// Pressure from density and *specific* internal energy:
    /// `p = (γ − 1)·ρ·e`.
    #[inline]
    pub fn pressure(&self, dens: f64, eint: f64) -> f64 {
        (self.gamma - 1.0) * dens * eint
    }

    /// Specific internal energy from density and pressure.
    #[inline]
    pub fn internal_energy(&self, dens: f64, pres: f64) -> f64 {
        pres / ((self.gamma - 1.0) * dens)
    }

    /// Sound speed `c = sqrt(γ·p/ρ)`.
    #[inline]
    pub fn sound_speed(&self, dens: f64, pres: f64) -> f64 {
        (self.gamma * pres / dens).sqrt()
    }

    /// Ideal-gas temperature with unit gas constant: `T = p/ρ`.
    #[inline]
    pub fn temperature(&self, dens: f64, pres: f64) -> f64 {
        pres / dens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pressure_energy_are_inverse() {
        let eos = GammaLaw::AIR;
        let (d, e) = (1.3, 2.7);
        let p = eos.pressure(d, e);
        assert!((eos.internal_energy(d, p) - e).abs() < 1e-14);
    }

    #[test]
    fn sound_speed_known_value() {
        let eos = GammaLaw::AIR;
        // rho = 1, p = 1: c = sqrt(1.4).
        assert!((eos.sound_speed(1.0, 1.0) - 1.4f64.sqrt()).abs() < 1e-15);
    }

    #[test]
    fn temperature_is_p_over_rho() {
        let eos = GammaLaw::AIR;
        assert_eq!(eos.temperature(2.0, 6.0), 3.0);
    }

    #[test]
    #[should_panic(expected = "gamma")]
    fn gamma_below_one_rejected() {
        GammaLaw::new(0.9);
    }
}
