/root/repo/target/debug/deps/ablate_kmeans_init-866718cd0ff3c4a8.d: crates/numarck-bench/benches/ablate_kmeans_init.rs

/root/repo/target/debug/deps/libablate_kmeans_init-866718cd0ff3c4a8.rmeta: crates/numarck-bench/benches/ablate_kmeans_init.rs

crates/numarck-bench/benches/ablate_kmeans_init.rs:
