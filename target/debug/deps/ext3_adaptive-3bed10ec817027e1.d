/root/repo/target/debug/deps/ext3_adaptive-3bed10ec817027e1.d: crates/numarck-bench/src/bin/ext3_adaptive.rs

/root/repo/target/debug/deps/libext3_adaptive-3bed10ec817027e1.rmeta: crates/numarck-bench/src/bin/ext3_adaptive.rs

crates/numarck-bench/src/bin/ext3_adaptive.rs:
