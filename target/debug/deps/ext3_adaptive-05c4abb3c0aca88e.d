/root/repo/target/debug/deps/ext3_adaptive-05c4abb3c0aca88e.d: crates/numarck-bench/src/bin/ext3_adaptive.rs

/root/repo/target/debug/deps/ext3_adaptive-05c4abb3c0aca88e: crates/numarck-bench/src/bin/ext3_adaptive.rs

crates/numarck-bench/src/bin/ext3_adaptive.rs:
