//! `perf` — the reproducible encode/decode throughput harness.
//!
//! Times the three stages of the compression path — change-ratio
//! transform, full encode (transform + table fit + rank-partitioned
//! packing), and parallel decode — over FLASH- and climate-shaped
//! workloads at thread counts 1, 2, and all available cores, then emits
//! `BENCH_encode.json` (transform + encode rows) and `BENCH_decode.json`
//! (decode rows) so every future change has a throughput trajectory to
//! regress against.
//!
//! Usage:
//!
//! ```text
//! perf [--smoke] [--out-dir DIR]
//! ```
//!
//! `--smoke` shrinks the workloads to a few thousand points so CI can run
//! the harness end-to-end in seconds; the JSON schema is identical.

use std::fmt::Write as _;
use std::time::Instant;

use climate_sim::ClimateVar;
use flash_sim::FlashVar;

use numarck::{decode, encode, ratio, Config, Strategy};
use numarck_bench::data::{climate_sequence, flash_sequence, tile_to, FlashConfig};
use numarck_bench::report::{host_meta_json, print_table};
use numarck_obs::{render_json as obs_metrics_json, set_timing_enabled, Registry};
use numarck_par::pool::{available_threads, build_pool};

/// One timed measurement.
struct Sample {
    workload: &'static str,
    stage: &'static str,
    points: usize,
    threads: usize,
    secs: f64,
    speedup_vs_1t: f64,
}

impl Sample {
    fn points_per_sec(&self) -> f64 {
        self.points as f64 / self.secs
    }

    fn mb_per_sec(&self) -> f64 {
        // 8-byte doubles; MB/s of raw input processed.
        self.points as f64 * 8.0 / self.secs / 1e6
    }
}

fn main() {
    let mut smoke = false;
    let mut out_dir = ".".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out-dir" => {
                out_dir = args.next().unwrap_or_else(|| usage("--out-dir needs a value"))
            }
            "--help" | "-h" => usage("perf [--smoke] [--out-dir DIR]"),
            other => usage(&format!("unknown argument: {other}")),
        }
    }

    let points = if smoke { 8_192 } else { 2 << 20 };
    let reps = if smoke { 2 } else { 5 };
    let config = Config::new(8, 0.001, Strategy::Clustering).expect("paper-default config");

    // Thread counts 1, 2, all — deduplicated (a 1- or 2-core host runs
    // fewer columns rather than timing the same pool twice).
    let mut threads = vec![1usize, 2, available_threads()];
    threads.sort_unstable();
    threads.dedup();

    // Resolve the lane-kernel dispatch level once, up front: the name
    // lands in both JSON files (so a regression diff that crosses a
    // dispatch change is visible as such) and the call seeds the
    // `simd_dispatch_level` gauge in the metrics snapshot below.
    let dispatch = numarck_simd::active_level().name();

    println!(
        "perf: {points} points/workload, {reps} reps (best-of), threads {threads:?}, \
         simd dispatch {dispatch}{}",
        if smoke { ", SMOKE" } else { "" }
    );

    // FLASH-shaped: a Sedov blast density checkpoint pair, tiled to size.
    // Climate-shaped: a CMIP5-like radiation field on the 144×90 grid.
    let flash = tile_to(
        &flash_sequence(
            FlashConfig { blocks: 4, warmup_steps: if smoke { 4 } else { 20 }, ..Default::default() },
            FlashVar::Dens,
            2,
        ),
        points,
    );
    let climate = tile_to(&climate_sequence(ClimateVar::Rlus, 2), points);
    let workloads: [(&'static str, &Vec<Vec<f64>>); 2] =
        [("flash_sedov_dens", &flash), ("climate_rlus", &climate)];

    let mut samples: Vec<Sample> = Vec::new();
    for (name, seq) in workloads {
        let (prev, curr) = (&seq[0], &seq[1]);
        for &t in &threads {
            let pool = build_pool(t);

            let transform_secs = best_of(reps, || {
                let r = pool.install(|| ratio::compute(prev, curr, config.tolerance()));
                std::hint::black_box(r.expect("finite bench data"));
            });
            let encode_secs = best_of(reps, || {
                let r = pool.install(|| encode::encode(prev, curr, &config));
                std::hint::black_box(r.expect("finite bench data"));
            });
            let (block, _) = encode::encode(prev, curr, &config).expect("finite bench data");
            let decode_secs = best_of(reps, || {
                let r = pool.install(|| decode::reconstruct(prev, &block));
                std::hint::black_box(r.expect("self-produced block decodes"));
            });

            for (stage, secs) in
                [("transform", transform_secs), ("encode", encode_secs), ("decode", decode_secs)]
            {
                let base = samples
                    .iter()
                    .find(|s| s.workload == name && s.stage == stage && s.threads == 1)
                    .map_or(secs, |s| s.secs);
                samples.push(Sample {
                    workload: name,
                    stage,
                    points,
                    threads: t,
                    secs,
                    speedup_vs_1t: base / secs,
                });
            }
        }
    }

    let mut rows = vec![vec![
        "workload".to_string(),
        "stage".to_string(),
        "threads".to_string(),
        "ms".to_string(),
        "Mpoints/s".to_string(),
        "MB/s".to_string(),
        "speedup".to_string(),
    ]];
    for s in &samples {
        rows.push(vec![
            s.workload.to_string(),
            s.stage.to_string(),
            s.threads.to_string(),
            format!("{:.2}", s.secs * 1e3),
            format!("{:.2}", s.points_per_sec() / 1e6),
            format!("{:.1}", s.mb_per_sec()),
            format!("{:.2}x", s.speedup_vs_1t),
        ]);
    }
    print_table(&rows);

    // Per-kernel × per-level microbench: each lane kernel timed at every
    // dispatch level this host supports, single-threaded. These rows are
    // informational (not regression-gated): they answer "which level is
    // the dispatcher picking, and what is each level worth here".
    let kernels = kernel_microbench(points, reps);
    let mut krows = vec![vec![
        "kernel".to_string(),
        "level".to_string(),
        "Mpoints/s".to_string(),
    ]];
    for k in &kernels {
        krows.push(vec![
            k.kernel.to_string(),
            k.level.to_string(),
            format!("{:.2}", k.points as f64 / k.secs / 1e6),
        ]);
    }
    print_table(&krows);

    // Observability overhead: the same encode workload with span timing
    // globally disabled vs enabled (counters stay on in both runs, so
    // the delta isolates the clock reads in the phase spans). The
    // budget in DESIGN.md §7 is < 2% on the encode path.
    let overhead = {
        let (prev, curr) = (&flash[0], &flash[1]);
        let t = *threads.last().expect("non-empty thread list");
        let pool = build_pool(t);
        set_timing_enabled(false);
        let secs_off = best_of(reps, || {
            let r = pool.install(|| encode::encode(prev, curr, &config));
            std::hint::black_box(r.expect("finite bench data"));
        });
        set_timing_enabled(true);
        let secs_on = best_of(reps, || {
            let r = pool.install(|| encode::encode(prev, curr, &config));
            std::hint::black_box(r.expect("finite bench data"));
        });
        let o = ObsOverhead { secs_off, secs_on, threads: t };
        println!(
            "obs overhead (flash_sedov_dens encode, {t} threads): \
             timing off {:.2} ms, on {:.2} ms, delta {:+.2}%",
            secs_off * 1e3,
            secs_on * 1e3,
            o.delta_pct()
        );
        o
    };

    // Point-in-time metrics snapshot of everything the harness itself
    // drove through the instrumented encoder/decoder.
    let metrics = obs_metrics_json(&Registry::global().snapshot());

    let encode_rows: Vec<&Sample> =
        samples.iter().filter(|s| s.stage != "decode").collect();
    let decode_rows: Vec<&Sample> =
        samples.iter().filter(|s| s.stage == "decode").collect();
    for (file, rows, overhead, kernel_rows) in [
        ("BENCH_encode.json", &encode_rows, Some(&overhead), Some(kernels.as_slice())),
        ("BENCH_decode.json", &decode_rows, None, None),
    ] {
        let path = format!("{out_dir}/{file}");
        std::fs::create_dir_all(&out_dir).expect("create output directory");
        std::fs::write(&path, render_json(rows, smoke, overhead, &metrics, dispatch, kernel_rows))
            .expect("write benchmark JSON");
        println!("wrote {path}");
    }
}

/// One lane-kernel measurement at one explicit dispatch level.
struct KernelSample {
    kernel: &'static str,
    level: &'static str,
    points: usize,
    secs: f64,
}

/// Time the four lane kernels at every dispatch level the host supports.
///
/// Inputs are shaped like real encoder traffic: ratios spread over a
/// 255-entry representative table with a mix of small changes and
/// escapes, and an 8-bit packed index stream for the unpack kernel.
fn kernel_microbench(points: usize, reps: usize) -> Vec<KernelSample> {
    use numarck_simd::{popcount, quantize, transform, unpack};

    let prev: Vec<f64> = (0..points).map(|i| 1.0 + ((i * 31) % 1009) as f64 / 100.0).collect();
    let curr: Vec<f64> =
        prev.iter().enumerate().map(|(i, v)| v * (1.0 + 0.01 * ((i % 7) as f64))).collect();
    let mut ratios = vec![0.0f64; points];
    let _ = transform::change_ratios(&prev, &curr, &mut ratios);
    let table: Vec<f64> = (0..255).map(|t| -0.02 + t as f64 * 0.08 / 254.0).collect();
    let words = vec![0x9E37_79B9_7F4A_7C15u64; points / 64 + 1];
    let bits = 8u8;
    let packed_words = vec![0x0102_0304_0506_0708u64; (points * bits as usize).div_ceil(64) + 1];

    let mut out = Vec::new();
    for level in numarck_simd::Level::all_supported() {
        let name = level.name();
        let mut rbuf = vec![0.0f64; points];
        let transform_secs = best_of(reps, || {
            std::hint::black_box(transform::change_ratios_with(level, &prev, &curr, &mut rbuf));
        });
        let mut codes = vec![0u32; points];
        let mut errs = vec![0.0f64; points];
        let quantize_secs = best_of(reps, || {
            quantize::classify_quantize_with(level, &ratios, &table, 0.001, &mut codes, &mut errs);
            std::hint::black_box(codes.last());
        });
        let popcount_secs = best_of(reps, || {
            std::hint::black_box(popcount::popcount_sum_with(level, &words));
        });
        let mut unpacked = vec![0u32; points];
        let unpack_secs = best_of(reps, || {
            unpack::unpack_with(level, &packed_words, bits, 0, &mut unpacked);
            std::hint::black_box(unpacked.last());
        });
        for (kernel, secs) in [
            ("transform", transform_secs),
            ("quantize", quantize_secs),
            ("popcount", popcount_secs),
            ("unpack", unpack_secs),
        ] {
            out.push(KernelSample { kernel, level: name, points, secs });
        }
    }
    out
}

/// Timing-off vs timing-on encode wall time for the instrumentation
/// overhead line in `BENCH_encode.json`.
struct ObsOverhead {
    secs_off: f64,
    secs_on: f64,
    threads: usize,
}

impl ObsOverhead {
    fn delta_pct(&self) -> f64 {
        (self.secs_on / self.secs_off - 1.0) * 100.0
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2)
}

/// Best (minimum) wall time of `reps` runs — the standard noise filter
/// for throughput numbers.
fn best_of(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Hand-rolled JSON (the workspace deliberately has no JSON dependency):
/// a flat, line-per-result layout that stays trivially diffable.
fn render_json(
    samples: &[&Sample],
    smoke: bool,
    overhead: Option<&ObsOverhead>,
    metrics: &str,
    dispatch: &str,
    kernels: Option<&[KernelSample]>,
) -> String {
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"harness\": \"numarck-bench perf\",");
    let _ = writeln!(s, "  \"smoke\": {smoke},");
    let _ = writeln!(s, "  \"simd_dispatch\": \"{dispatch}\",");
    let _ = writeln!(s, "  \"format_version\": {},", numarck_checkpoint::WRITE_VERSION);
    let _ = writeln!(s, "  \"host\": {},", host_meta_json());
    if let Some(ks) = kernels {
        let _ = writeln!(s, "  \"kernels\": [");
        for (i, k) in ks.iter().enumerate() {
            let comma = if i + 1 == ks.len() { "" } else { "," };
            let _ = writeln!(
                s,
                "    {{\"kernel\": \"{}\", \"level\": \"{}\", \"points\": {}, \
                 \"secs\": {:.6}, \"points_per_sec\": {:.1}}}{comma}",
                k.kernel,
                k.level,
                k.points,
                k.secs,
                k.points as f64 / k.secs,
            );
        }
        let _ = writeln!(s, "  ],");
    }
    if let Some(o) = overhead {
        let _ = writeln!(
            s,
            "  \"obs_overhead\": {{\"stage\": \"encode\", \"threads\": {}, \
             \"secs_timing_off\": {:.6}, \"secs_timing_on\": {:.6}, \"delta_pct\": {:.3}}},",
            o.threads, o.secs_off, o.secs_on,
            o.delta_pct(),
        );
    }
    let _ = writeln!(s, "  \"metrics\": {metrics},");
    let _ = writeln!(s, "  \"results\": [");
    for (i, r) in samples.iter().enumerate() {
        let comma = if i + 1 == samples.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "    {{\"workload\": \"{}\", \"stage\": \"{}\", \"points\": {}, \"threads\": {}, \
             \"secs\": {:.6}, \"points_per_sec\": {:.1}, \"mb_per_sec\": {:.3}, \
             \"speedup_vs_1t\": {:.3}}}{comma}",
            r.workload,
            r.stage,
            r.points,
            r.threads,
            r.secs,
            r.points_per_sec(),
            r.mb_per_sec(),
            r.speedup_vs_1t,
        );
    }
    s.push_str("  ]\n}\n");
    s
}
