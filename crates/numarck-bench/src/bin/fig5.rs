//! Figure 5: NUMARCK on FLASH data — incompressible ratio and mean error
//! rate per iteration for each approximation strategy.
//!
//! Settings per the paper: `E = 0.1%`, `B = 8`. Expected shape:
//! clustering achieves a low incompressible ratio on all FLASH
//! variables (paper: < 7%), markedly easier than CMIP5 (fig4), and mean
//! errors stay far below `E`.

use numarck_bench::data::{flash_figure_vars, flash_sequences, FlashConfig};
use numarck_bench::report::{pct, print_table, write_csv};
use numarck_bench::run::{mean_of, strategy_sweep};
use numarck_bench::RESULTS_DIR;

fn main() {
    let checkpoints = 40usize;
    let bits = 8u8;
    let tolerance = 0.001;
    let cfg = FlashConfig::default();

    println!(
        "Fig. 5: FLASH ({} on {}x{} blocks), E = 0.1%, B = {bits} — mean over {} transitions",
        cfg.problem,
        cfg.blocks,
        cfg.blocks,
        checkpoints - 1
    );
    let sequences = flash_sequences(cfg, checkpoints);

    let mut summary = vec![vec![
        "variable".to_string(),
        "strategy".to_string(),
        "incompressible %".to_string(),
        "mean error %".to_string(),
        "compression % (Eq.3)".to_string(),
    ]];
    let mut csv = vec![vec![
        "variable".to_string(),
        "strategy".to_string(),
        "iteration".to_string(),
        "incompressible_ratio".to_string(),
        "mean_error".to_string(),
        "compression_eq3".to_string(),
    ]];

    for var in flash_figure_vars() {
        let seq = &sequences[&var];
        for (strategy, stats) in strategy_sweep(seq, bits, tolerance) {
            for (i, st) in stats.iter().enumerate() {
                csv.push(vec![
                    var.name().to_string(),
                    strategy.name().to_string(),
                    (i + 1).to_string(),
                    st.incompressible_ratio.to_string(),
                    st.mean_error_rate.to_string(),
                    st.compression_ratio_eq3.to_string(),
                ]);
            }
            summary.push(vec![
                var.name().to_string(),
                strategy.name().to_string(),
                pct(mean_of(&stats, |s| s.incompressible_ratio), 2),
                pct(mean_of(&stats, |s| s.mean_error_rate), 4),
                pct(mean_of(&stats, |s| s.compression_ratio_eq3), 2),
            ]);
        }
    }
    print_table(&summary);
    println!("\n(paper: clustering < 7% incompressible on all FLASH data; easier than CMIP5)");
    match write_csv(RESULTS_DIR, "fig5_flash_per_iteration", &csv) {
        Ok(p) => println!("wrote {p}"),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
