//! Property-based, cross-crate verification of the central guarantee:
//! for every compressed point, the approximated change ratio is within
//! the user tolerance of the true change ratio — regardless of data,
//! strategy, precision, or tolerance.

use proptest::prelude::*;

use numarck::ratio::change_ratio;
use numarck::{decode, Compressor, Config};

fn strategy_strategy() -> impl Strategy<Value = numarck::Strategy> {
    prop_oneof![
        Just(numarck::Strategy::EqualWidth),
        Just(numarck::Strategy::LogScale),
        Just(numarck::Strategy::Clustering),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn change_ratio_error_is_bounded(
        prev in proptest::collection::vec(
            prop_oneof![Just(0.0f64), -100.0f64..100.0, 1e-6f64..1e-3, 1e3f64..1e9],
            1..400
        ),
        rates in proptest::collection::vec(-0.9f64..2.0, 1..400),
        bits in 2u8..12,
        tol in 1e-5f64..0.02,
        strategy in strategy_strategy(),
    ) {
        let n = prev.len().min(rates.len());
        let prev = &prev[..n];
        let curr: Vec<f64> = (0..n).map(|i| prev[i] * (1.0 + rates[i])).collect();
        let compressor = Compressor::new(Config::new(bits, tol, strategy).expect("valid"));
        let (block, stats) = compressor.compress(prev, &curr).expect("finite input");
        prop_assert!(stats.max_error_rate <= tol + 1e-12);

        // Verify the bound point-by-point on the reconstruction too.
        let restored = decode::reconstruct(prev, &block).expect("self-produced");
        for j in 0..n {
            if let Some(true_ratio) = change_ratio(prev[j], curr[j]) {
                if prev[j] != 0.0 {
                    let approx_ratio = (restored[j] - prev[j]) / prev[j];
                    if block.is_compressible(j) {
                        prop_assert!(
                            (true_ratio - approx_ratio).abs() <= tol + 1e-9,
                            "point {j}: |{true_ratio} - {approx_ratio}| > {tol}"
                        );
                    } else {
                        // Escaped points are bit-exact.
                        prop_assert_eq!(restored[j].to_bits(), curr[j].to_bits());
                    }
                }
            }
        }
    }

    #[test]
    fn serialization_never_changes_semantics(
        prev in proptest::collection::vec(0.1f64..1e3, 1..300),
        rates in proptest::collection::vec(-0.4f64..0.4, 1..300),
        bits in 2u8..11,
        strategy in strategy_strategy(),
    ) {
        let n = prev.len().min(rates.len());
        let prev = &prev[..n];
        let curr: Vec<f64> = (0..n).map(|i| prev[i] * (1.0 + rates[i])).collect();
        let compressor =
            Compressor::new(Config::new(bits, 0.003, strategy).expect("valid"));
        let (block, _) = compressor.compress(prev, &curr).expect("finite");
        let bytes = numarck::serialize::to_bytes(&block);
        let back = numarck::serialize::from_bytes(&bytes).expect("round trip");
        prop_assert_eq!(&back, &block);
        prop_assert_eq!(
            decode::reconstruct(prev, &back).expect("valid"),
            decode::reconstruct(prev, &block).expect("valid")
        );
    }

    #[test]
    fn chained_reconstruction_respects_compound_budget(
        base in proptest::collection::vec(1.0f64..100.0, 10..150),
        steps in 1usize..6,
        tol in 1e-4f64..0.005,
    ) {
        let config = Config::new(8, tol, numarck::Strategy::Clustering).expect("valid");
        let mut chain = numarck::DeltaChain::new(base.clone(), config);
        let mut truth = vec![base];
        for s in 0..steps {
            let next: Vec<f64> = truth
                .last()
                .expect("non-empty")
                .iter()
                .enumerate()
                .map(|(i, v)| v * (1.0 + 0.002 * (((i + s) % 5) as f64 - 2.0)))
                .collect();
            chain.append(&next).expect("finite");
            truth.push(next);
        }
        let rec = chain.reconstruct(steps).expect("in range");
        // Worst case per step in value space: tol scaled by prev/curr
        // (≤ 1/(1 − 0.004) here), compounded over the chain.
        let per_step = tol / (1.0 - 0.005);
        let budget = (1.0 + per_step).powi(steps as i32) - 1.0 + 1e-9;
        for (r, t) in rec.iter().zip(&truth[steps]) {
            prop_assert!(((r - t) / t).abs() <= budget);
        }
    }
}
