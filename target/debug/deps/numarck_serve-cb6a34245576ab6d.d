/root/repo/target/debug/deps/numarck_serve-cb6a34245576ab6d.d: crates/numarck-serve/src/lib.rs crates/numarck-serve/src/client.rs crates/numarck-serve/src/journal.rs crates/numarck-serve/src/recovery.rs crates/numarck-serve/src/server.rs crates/numarck-serve/src/wire.rs Cargo.toml

/root/repo/target/debug/deps/libnumarck_serve-cb6a34245576ab6d.rmeta: crates/numarck-serve/src/lib.rs crates/numarck-serve/src/client.rs crates/numarck-serve/src/journal.rs crates/numarck-serve/src/recovery.rs crates/numarck-serve/src/server.rs crates/numarck-serve/src/wire.rs Cargo.toml

crates/numarck-serve/src/lib.rs:
crates/numarck-serve/src/client.rs:
crates/numarck-serve/src/journal.rs:
crates/numarck-serve/src/recovery.rs:
crates/numarck-serve/src/server.rs:
crates/numarck-serve/src/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
