//! Soft-error / anomaly detection over change ratios.
//!
//! Paper §V: "NUMARCK's mechanisms in learning the evolving data
//! distributions can also enable understanding anomalies at scale,
//! thereby potentially identifying erroneous calculations due to soft
//! errors or hardware errors." A silent bit flip in a floating-point
//! value typically changes it by many orders of magnitude more than the
//! physics does between two checkpoints, so it shows up as an extreme
//! outlier of the change-ratio distribution.
//!
//! The detector brackets the bulk of the current iteration's ratio
//! distribution with approximate quantiles (computed from a
//! high-resolution histogram in O(n)) and flags points beyond a fence a
//! few bracket-spans outside it — plus any point whose ratio is
//! undefined/non-finite when its neighbours' are not.

use numarck_par::histogram::{FixedHistogram, HistogramSpec};
use numarck_par::reduce::par_min_max;

use crate::error::NumarckError;
use crate::ratio::{self, RatioClass};

/// Detector configuration: a robust quantile fence.
///
/// Physical change distributions are heavy-tailed (shock fronts, rain
/// events), so location/scale rules like median±k·MAD flag genuine
/// physics. Instead the fence brackets the observed bulk — the
/// `[tail_quantile, 1 − tail_quantile]` ratio range — and extends it by
/// `fence_multiplier` spans on each side. Anything beyond sits outside
/// the distribution the physics produced this step; a bit flip in the
/// exponent or sign lands there by hundreds of spans.
#[derive(Debug, Clone, Copy)]
pub struct AnomalyConfig {
    /// Quantile defining the bulk bracket (e.g. 0.0025 ⇒ central 99.5%).
    pub tail_quantile: f64,
    /// Fence distance beyond the bracket, in bracket-span units.
    pub fence_multiplier: f64,
    /// Absolute floor on the fence half-width, so near-constant
    /// iterations (span ≈ 0) don't flag numerical dust.
    pub min_radius: f64,
}

impl Default for AnomalyConfig {
    fn default() -> Self {
        Self { tail_quantile: 0.0025, fence_multiplier: 3.0, min_radius: 1e-6 }
    }
}

/// One flagged point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Anomaly {
    /// Point index.
    pub index: usize,
    /// The offending change ratio (`None` when the ratio itself was
    /// undefined — e.g. the value was smashed to make `prev` look zero).
    pub ratio: Option<f64>,
    /// Distance beyond the fence in bracket-span units;
    /// `f64::INFINITY` for undefined ratios.
    pub score: f64,
}

/// Detection result.
#[derive(Debug, Clone)]
pub struct AnomalyReport {
    /// Flagged points, ascending by index.
    pub anomalies: Vec<Anomaly>,
    /// Lower fence on the change ratio.
    pub fence_lo: f64,
    /// Upper fence on the change ratio.
    pub fence_hi: f64,
    /// Points examined.
    pub num_points: usize,
}

impl AnomalyReport {
    /// True when nothing was flagged.
    pub fn is_clean(&self) -> bool {
        self.anomalies.is_empty()
    }
}

/// Histogram-based approximate quantile: value below which `q` of the
/// mass lies, with iterative zoom.
///
/// One histogram pass resolves `range / 4096`; when a single
/// astronomical outlier (a bit-flipped exponent!) stretches the range,
/// that resolution is useless, so the search re-histograms inside the
/// bin containing the target quantile until the bin width stops
/// improving — exponential convergence, a handful of O(n) passes.
fn approx_quantile(data: &[f64], q: f64) -> f64 {
    debug_assert!(!data.is_empty());
    let mm = par_min_max(data);
    if mm.range() == 0.0 {
        return mm.min;
    }
    let (mut lo, mut hi) = (mm.min, mm.max);
    let mut mass_below_lo = 0u64; // data strictly below the zoom window
    let total = data.len() as u64;
    for _ in 0..8 {
        let spec = HistogramSpec::new(lo, hi, 4096);
        let hist = FixedHistogram::fill_par(spec, data);
        // Mass below the window that the spec counted as out-of-range is
        // `mass_below_lo`; recompute the in-window target accordingly.
        let target = q * total as f64 - mass_below_lo as f64;
        let mut acc = 0u64;
        let mut located = None;
        for (i, &c) in hist.counts.iter().enumerate() {
            if (acc + c) as f64 >= target {
                located = Some((i, acc, c));
                break;
            }
            acc += c;
        }
        let Some((bin, below, in_bin)) = located else {
            return hi;
        };
        let bin_lo = spec.edge(bin);
        let bin_hi = bin_lo + spec.width();
        // Zoom when the bin still holds enough points to matter and the
        // width is not yet tight relative to the window.
        if in_bin <= 1 || spec.width() <= 0.0 {
            let frac =
                if in_bin == 0 { 0.5 } else { ((target - below as f64) / in_bin as f64).clamp(0.0, 1.0) };
            return bin_lo + frac * spec.width();
        }
        mass_below_lo += below;
        lo = bin_lo;
        hi = bin_hi;
        // Degenerate or non-finite bounds (lo not strictly below hi)
        // cannot be zoomed further.
        if lo.partial_cmp(&hi) != Some(std::cmp::Ordering::Less) {
            return lo;
        }
    }
    // Final interpolation at the reached resolution.
    let spec = HistogramSpec::new(lo, hi, 4096);
    let hist = FixedHistogram::fill_par(spec, data);
    let target = q * total as f64 - mass_below_lo as f64;
    let mut acc = 0u64;
    for (i, &c) in hist.counts.iter().enumerate() {
        if (acc + c) as f64 >= target {
            let frac = if c == 0 { 0.5 } else { ((target - acc as f64) / c as f64).clamp(0.0, 1.0) };
            return spec.edge(i) + frac * spec.width();
        }
        acc += c;
    }
    hi
}

/// Scan the transition `prev → curr` for anomalous points.
///
/// Unlike the compressor, non-finite values in `curr` are *expected*
/// here (they are precisely what a soft error can produce), so inputs
/// are not rejected — non-finite points are flagged instead. `prev` is
/// assumed good (it was validated when it was checkpointed).
pub fn detect(
    prev: &[f64],
    curr: &[f64],
    config: &AnomalyConfig,
) -> Result<AnomalyReport, NumarckError> {
    if prev.len() != curr.len() {
        return Err(NumarckError::LengthMismatch { prev: prev.len(), curr: curr.len() });
    }
    let n = prev.len();
    if n == 0 {
        return Ok(AnomalyReport {
            anomalies: Vec::new(),
            fence_lo: 0.0,
            fence_hi: 0.0,
            num_points: 0,
        });
    }

    // Per-point ratios; non-finite curr values get None.
    let ratios: Vec<Option<f64>> = prev
        .iter()
        .zip(curr)
        .map(|(&p, &c)| if c.is_finite() { ratio::change_ratio(p, c) } else { None })
        .collect();
    let defined: Vec<f64> = ratios.iter().flatten().copied().collect();
    if defined.is_empty() {
        // Nothing comparable: flag everything with a finite... no —
        // report all points as undefined anomalies only if prev was
        // non-zero (a zero prev legitimately has no ratio).
        let anomalies = (0..n)
            .filter(|&j| prev[j] != 0.0)
            .map(|j| Anomaly { index: j, ratio: None, score: f64::INFINITY })
            .collect();
        return Ok(AnomalyReport { anomalies, fence_lo: 0.0, fence_hi: 0.0, num_points: n });
    }

    let (fence_lo, fence_hi, span) = fences(&defined, config);
    let mut anomalies = Vec::new();
    for (j, r) in ratios.iter().enumerate() {
        match r {
            Some(r) => {
                let outside = if *r < fence_lo {
                    fence_lo - r
                } else if *r > fence_hi {
                    r - fence_hi
                } else {
                    continue;
                };
                anomalies.push(Anomaly {
                    index: j,
                    ratio: Some(*r),
                    score: if span > 0.0 { outside / span } else { f64::INFINITY },
                });
            }
            None => {
                // Undefined ratio where prev was non-zero: either curr is
                // non-finite or the division overflowed — both anomalous.
                if prev[j] != 0.0 {
                    anomalies.push(Anomaly { index: j, ratio: None, score: f64::INFINITY });
                }
            }
        }
    }
    Ok(AnomalyReport { anomalies, fence_lo, fence_hi, num_points: n })
}

/// Quantile fence: `(lo, hi, span)` for the defined ratios.
fn fences(defined: &[f64], config: &AnomalyConfig) -> (f64, f64, f64) {
    let q_lo = approx_quantile(defined, config.tail_quantile);
    let q_hi = approx_quantile(defined, 1.0 - config.tail_quantile);
    let span = (q_hi - q_lo).max(0.0);
    let radius = (config.fence_multiplier * span).max(config.min_radius);
    (q_lo - radius, q_hi + radius, span)
}

/// Convenience for checkpoint pipelines: detect against the change-ratio
/// transform an encoder already computed (uses only `Large` ratios for
/// statistics, so it can share work with compression).
pub fn detect_from_ratios(
    ratios: &crate::ratio::ChangeRatios,
    config: &AnomalyConfig,
) -> Vec<usize> {
    let defined: Vec<f64> = ratios
        .iter_classes()
        .filter_map(|c| match c {
            RatioClass::Large(r) => Some(r),
            _ => None,
        })
        .collect();
    if defined.is_empty() {
        return Vec::new();
    }
    let (fence_lo, fence_hi, _) = fences(&defined, config);
    ratios
        .iter_classes()
        .enumerate()
        .filter_map(|(j, c)| match c {
            RatioClass::Large(r) if r < fence_lo || r > fence_hi => Some(j),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth_pair(n: usize) -> (Vec<f64>, Vec<f64>) {
        let prev: Vec<f64> = (0..n).map(|i| 10.0 + (i as f64 * 0.01).sin()).collect();
        let curr: Vec<f64> = prev
            .iter()
            .enumerate()
            .map(|(i, v)| v * (1.0 + 0.001 * ((i % 7) as f64 - 3.0) / 3.0))
            .collect();
        (prev, curr)
    }

    #[test]
    fn clean_transition_is_clean() {
        let (prev, curr) = smooth_pair(10_000);
        let report = detect(&prev, &curr, &AnomalyConfig::default()).unwrap();
        assert!(report.is_clean(), "{:?}", report.anomalies);
        assert!(report.fence_hi > report.fence_lo);
    }

    #[test]
    fn single_bit_flip_is_caught() {
        let (prev, mut curr) = smooth_pair(10_000);
        // Flip a high exponent bit of one value: value changes by ~2^512.
        let victim = 4321;
        curr[victim] = f64::from_bits(curr[victim].to_bits() ^ (1u64 << 62));
        let report = detect(&prev, &curr, &AnomalyConfig::default()).unwrap();
        assert_eq!(report.anomalies.len(), 1);
        assert_eq!(report.anomalies[0].index, victim);
        assert!(report.anomalies[0].score > 100.0);
    }

    #[test]
    fn mantissa_flip_in_high_bits_is_caught() {
        let (prev, mut curr) = smooth_pair(10_000);
        let victim = 77;
        // Highest mantissa bit: ~50% relative change vs ~0.1% background.
        curr[victim] = f64::from_bits(curr[victim].to_bits() ^ (1u64 << 51));
        let report = detect(&prev, &curr, &AnomalyConfig::default()).unwrap();
        assert!(report.anomalies.iter().any(|a| a.index == victim));
    }

    #[test]
    fn nan_from_soft_error_is_flagged() {
        let (prev, mut curr) = smooth_pair(1_000);
        curr[500] = f64::NAN;
        let report = detect(&prev, &curr, &AnomalyConfig::default()).unwrap();
        assert_eq!(report.anomalies.len(), 1);
        assert_eq!(report.anomalies[0].index, 500);
        assert_eq!(report.anomalies[0].ratio, None);
    }

    #[test]
    fn multiple_flips_all_found() {
        let (prev, mut curr) = smooth_pair(50_000);
        let victims = [10usize, 999, 25_000, 49_999];
        for &v in &victims {
            curr[v] *= 1e6;
        }
        let report = detect(&prev, &curr, &AnomalyConfig::default()).unwrap();
        let found: Vec<usize> = report.anomalies.iter().map(|a| a.index).collect();
        assert_eq!(found, victims);
    }

    #[test]
    fn low_mantissa_flips_are_invisible_by_design() {
        // A flip in the low mantissa bits changes the value by ~1e-12
        // relatively — indistinguishable from physics, and harmless.
        let (prev, mut curr) = smooth_pair(10_000);
        curr[123] = f64::from_bits(curr[123].to_bits() ^ 1);
        let report = detect(&prev, &curr, &AnomalyConfig::default()).unwrap();
        assert!(report.is_clean());
    }

    #[test]
    fn near_constant_iteration_uses_min_radius() {
        // All ratios identical: MAD = 0; without the floor everything at
        // the tiniest numerical wobble would flag.
        let prev = vec![5.0; 1000];
        let mut curr: Vec<f64> = prev.iter().map(|v| v * 1.001).collect();
        curr[7] = 50.0; // genuine anomaly (10x)
        let report = detect(&prev, &curr, &AnomalyConfig::default()).unwrap();
        assert_eq!(report.anomalies.len(), 1);
        assert_eq!(report.anomalies[0].index, 7);
    }

    #[test]
    fn zero_prev_is_not_an_anomaly() {
        // A zero previous value has no defined ratio — that is a known
        // property of the data (the compressor escapes it), not a soft
        // error, so it must not be flagged.
        let (mut prev, mut curr) = smooth_pair(2_000);
        prev[100] = 0.0;
        curr[100] = 3.0;
        let report = detect(&prev, &curr, &AnomalyConfig::default()).unwrap();
        assert!(report.is_clean(), "{:?}", report.anomalies);
    }

    #[test]
    fn length_mismatch_rejected() {
        assert!(detect(&[1.0], &[1.0, 2.0], &AnomalyConfig::default()).is_err());
    }

    #[test]
    fn empty_input() {
        let report = detect(&[], &[], &AnomalyConfig::default()).unwrap();
        assert!(report.is_clean());
        assert_eq!(report.num_points, 0);
    }

    #[test]
    fn detect_from_ratios_matches_detect_on_large_ratios() {
        let (prev, mut curr) = smooth_pair(5_000);
        curr[42] *= 100.0;
        let tolerance = 1e-6; // classify everything as Large
        let ratios = crate::ratio::compute(&prev, &curr, tolerance).unwrap();
        let flagged = detect_from_ratios(&ratios, &AnomalyConfig::default());
        assert_eq!(flagged, vec![42]);
    }

    #[test]
    fn quantile_approximation_is_close() {
        let data: Vec<f64> = (0..10_001).map(|i| i as f64).collect();
        let q50 = approx_quantile(&data, 0.5);
        assert!((q50 - 5000.0).abs() < 10.0, "median {q50}");
        let q90 = approx_quantile(&data, 0.9);
        assert!((q90 - 9000.0).abs() < 10.0, "p90 {q90}");
        assert_eq!(approx_quantile(&[3.0, 3.0], 0.5), 3.0);
    }
}

/// Streaming soft-error monitor for in-situ use.
///
/// The batch [`detect`] needs the whole transition in memory. When the
/// solver produces values point-by-point (or tile-by-tile), this monitor
/// keeps P² quantile sketches ([`numarck_par::quantile`]) of the ratio
/// stream and flags each observation against the fence learned from all
/// *previous* observations — O(1) memory, one pass, no second scan.
///
/// Because the fence is causal (built only from the past), the first
/// observations of a fresh monitor are never flagged; feed it a warmup
/// transition (or the first few tiles) before trusting its verdicts.
#[derive(Debug, Clone)]
pub struct StreamingDetector {
    bracket: numarck_par::quantile::QuantileBracket,
    config: AnomalyConfig,
    observed: usize,
}

/// Minimum observations before the streaming fence activates.
pub const STREAM_WARMUP: usize = 64;

impl StreamingDetector {
    /// Fresh monitor.
    pub fn new(config: AnomalyConfig) -> Self {
        Self {
            bracket: numarck_par::quantile::QuantileBracket::new(config.tail_quantile),
            config,
            observed: 0,
        }
    }

    /// Observations folded in so far.
    pub fn observed(&self) -> usize {
        self.observed
    }

    /// Feed the transition of one point; returns `true` when the point
    /// is anomalous under the fence learned so far. Undefined ratios
    /// (non-finite `curr` with non-zero `prev`) are always anomalous
    /// after warmup.
    pub fn observe(&mut self, prev: f64, curr: f64) -> bool {
        let ratio = if curr.is_finite() { ratio::change_ratio(prev, curr) } else { None };
        match ratio {
            Some(r) => {
                let flagged = self.observed >= STREAM_WARMUP && self.is_outlier(r);
                // Flagged or not, the observation is folded into the
                // sketches: P² quantile markers barely move for one
                // extreme sample, while *excluding* flagged points would
                // freeze the fence at whatever the early stream looked
                // like and flag every later regime change forever.
                self.bracket.observe(r);
                self.observed += 1;
                flagged
            }
            None => prev != 0.0 && self.observed >= STREAM_WARMUP,
        }
    }

    /// Current fence, if enough data has been seen.
    pub fn fence(&self) -> Option<(f64, f64)> {
        if self.observed < STREAM_WARMUP {
            return None;
        }
        let (lo, _, hi) = self.bracket.estimates()?;
        let span = (hi - lo).max(0.0);
        let radius = (self.config.fence_multiplier * span).max(self.config.min_radius);
        Some((lo - radius, hi + radius))
    }

    fn is_outlier(&self, r: f64) -> bool {
        match self.fence() {
            Some((lo, hi)) => r < lo || r > hi,
            None => false,
        }
    }
}

#[cfg(test)]
mod streaming_tests {
    use super::*;

    #[test]
    fn warmup_never_flags() {
        let mut d = StreamingDetector::new(AnomalyConfig::default());
        for i in 0..STREAM_WARMUP {
            assert!(!d.observe(1.0, 1.0 + 1e9 * i as f64), "warmup observation {i}");
        }
    }

    #[test]
    fn flags_spikes_after_warmup() {
        let mut d = StreamingDetector::new(AnomalyConfig::default());
        let mut rng = numarck_par::rng::Xoshiro256PlusPlus::seed_from_u64(5);
        for _ in 0..10_000 {
            let prev = 10.0 + rng.uniform(0.0, 1.0);
            let curr = prev * (1.0 + rng.normal_with(0.0, 0.001));
            assert!(!d.observe(prev, curr), "clean stream should not flag");
        }
        assert!(d.observe(10.0, 10.0 * 1e8), "exponent-scale spike missed");
        // The spike was excluded from the sketches: the fence is intact
        // and the next clean value passes.
        assert!(!d.observe(10.0, 10.001));
        assert!(d.observe(5.0, f64::NAN), "NaN after warmup must flag");
    }

    #[test]
    fn fence_tracks_the_stream_scale() {
        let mut d = StreamingDetector::new(AnomalyConfig::default());
        let mut rng = numarck_par::rng::Xoshiro256PlusPlus::seed_from_u64(6);
        for _ in 0..50_000 {
            d.observe(1.0, 1.0 + rng.normal_with(0.0, 0.01));
        }
        let (lo, hi) = d.fence().unwrap();
        // ±(bracket span + 3 spans): bracket ≈ ±2.8σ at q=0.0025, so the
        // fence sits at roughly ±4 × 2.8σ ≈ ±0.11 — order 0.1, not 1.
        assert!(lo < -0.05 && lo > -0.5, "lo {lo}");
        assert!(hi > 0.05 && hi < 0.5, "hi {hi}");
    }

    #[test]
    fn streaming_agrees_with_batch_on_planted_error() {
        // Plant one corrupt point mid-stream; both detectors must agree.
        let n = 20_000;
        let prev: Vec<f64> = (0..n).map(|i| 10.0 + (i % 13) as f64).collect();
        let mut curr: Vec<f64> =
            prev.iter().enumerate().map(|(i, v)| v * (1.0 + 1e-4 * ((i % 7) as f64 - 3.0))).collect();
        curr[15_000] *= 1e7;
        let config = AnomalyConfig::default();
        let batch = detect(&prev, &curr, &config).unwrap();
        assert_eq!(batch.anomalies.len(), 1);
        let mut streaming = StreamingDetector::new(config);
        let mut flagged = Vec::new();
        for (j, (&p, &c)) in prev.iter().zip(&curr).enumerate() {
            if streaming.observe(p, c) {
                flagged.push(j);
            }
        }
        assert_eq!(flagged, vec![15_000]);
    }
}
