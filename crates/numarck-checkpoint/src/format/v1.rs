//! Container format **v1** — frozen.
//!
//! This is the original on-disk layout, kept bit-for-bit forever so any
//! chain ever written stays readable. Do not evolve it; new layout work
//! belongs in [`super::v2`] (or a future v3 behind the same seam).
//!
//! ```text
//! [0..4)   magic b"NCKP"
//! [4..6)   version (u16) = 1
//! [6]      kind: 0 = full, 1 = delta
//! [7]      reserved
//! [8..16)  iteration number (u64)
//! [16..20) variable count (u32)
//! [20..24) delta span (u32): for deltas, how far back the base state
//!          lives. 0 (the historic reserved value) and 1 both mean
//!          "applies against iteration − 1"; a merged delta produced by
//!          compaction stores s ≥ 2 meaning "applies against the state
//!          at iteration − s". Always 0 for full checkpoints.
//! per variable:
//!   name_len (u16) | name bytes (UTF-8)
//!   payload_len (u64) | payload bytes
//!     full:  num_points × f64 LE
//!     delta: a numarck::serialize blob
//! crc32 of everything above (u32)
//! ```

use bytes::{Buf, BufMut, BytesMut};

use numarck::error::NumarckError;
use numarck::serialize as nser;

use super::{CheckpointFile, CheckpointKind, MAGIC, VERSION_V1};
use crate::VariableSet;

/// Serialise a checkpoint in the frozen v1 layout.
pub(super) fn to_bytes(file: &CheckpointFile) -> Vec<u8> {
    let mut buf = BytesMut::new();
    buf.put_slice(&MAGIC);
    buf.put_u16_le(VERSION_V1);
    let (kind_byte, count) = match &file.kind {
        CheckpointKind::Full(vars) => (0u8, vars.len()),
        CheckpointKind::Delta(blocks) => (1u8, blocks.len()),
    };
    buf.put_u8(kind_byte);
    buf.put_u8(0);
    buf.put_u64_le(file.iteration);
    buf.put_u32_le(count as u32);
    let span = match &file.kind {
        CheckpointKind::Full(_) => 0,
        CheckpointKind::Delta(_) => file.delta_span,
    };
    buf.put_u32_le(span);
    match &file.kind {
        CheckpointKind::Full(vars) => {
            for (name, data) in vars {
                put_name(&mut buf, name);
                buf.put_u64_le((data.len() * 8) as u64);
                for &v in data {
                    buf.put_f64_le(v);
                }
            }
        }
        CheckpointKind::Delta(blocks) => {
            for (name, block) in blocks {
                put_name(&mut buf, name);
                let payload = nser::to_bytes(block);
                buf.put_u64_le(payload.len() as u64);
                buf.put_slice(&payload);
            }
        }
    }
    let crc = nser::crc32(&buf);
    buf.put_u32_le(crc);
    buf.to_vec()
}

/// Parse and validate v1 bytes (the version field must already be 1;
/// [`super::CheckpointFile::from_bytes`] dispatches here).
pub(super) fn from_bytes(data: &[u8]) -> Result<CheckpointFile, NumarckError> {
    const HEADER: usize = 24;
    if data.len() < HEADER + 4 {
        return Err(NumarckError::Corrupt("checkpoint file too short".into()));
    }
    let body = &data[..data.len() - 4];
    let stored = u32::from_le_bytes(data[data.len() - 4..].try_into().expect("4 bytes"));
    let computed = nser::crc32(body);
    if stored != computed {
        return Err(NumarckError::Corrupt(format!(
            "checkpoint crc mismatch: stored {stored:#x}, computed {computed:#x}"
        )));
    }
    let mut cur = body;
    let mut magic = [0u8; 4];
    cur.copy_to_slice(&mut magic);
    if magic != MAGIC {
        return Err(NumarckError::Corrupt("bad checkpoint magic".into()));
    }
    let version = cur.get_u16_le();
    if version != VERSION_V1 {
        return Err(NumarckError::VersionMismatch { found: version, expected: VERSION_V1 });
    }
    let kind_byte = cur.get_u8();
    let _ = cur.get_u8();
    let iteration = cur.get_u64_le();
    let count = cur.get_u32_le() as usize;
    let stored_span = cur.get_u32_le();

    let kind = match kind_byte {
        0 => {
            let mut vars = VariableSet::new();
            for _ in 0..count {
                let (name, payload) = read_entry(&mut cur)?;
                if payload.len() % 8 != 0 {
                    return Err(NumarckError::Corrupt(format!(
                        "full payload for '{name}' not a multiple of 8 bytes"
                    )));
                }
                let values: Vec<f64> = payload
                    .chunks_exact(8)
                    .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
                    .collect();
                vars.insert(name, values);
            }
            CheckpointKind::Full(vars)
        }
        1 => {
            let mut blocks = std::collections::BTreeMap::new();
            for _ in 0..count {
                let (name, payload) = read_entry(&mut cur)?;
                blocks.insert(name, nser::from_bytes(&payload)?);
            }
            CheckpointKind::Delta(blocks)
        }
        k => return Err(NumarckError::Corrupt(format!("unknown checkpoint kind {k}"))),
    };
    if cur.remaining() != 0 {
        return Err(NumarckError::Corrupt(format!(
            "{} trailing bytes after last variable",
            cur.remaining()
        )));
    }
    let delta_span = match kind {
        CheckpointKind::Full(_) => 0,
        CheckpointKind::Delta(_) => stored_span,
    };
    Ok(CheckpointFile { iteration, kind, delta_span })
}

/// Per-variable section sizes without decoding the payloads, for the
/// inspector ([`super::describe`]). Runs after the CRC gate.
pub(super) fn describe(data: &[u8]) -> Result<Vec<super::SectionInfo>, NumarckError> {
    // Reuse the full parser's validation for the frame, then re-walk the
    // entry list cheaply for the sizes (v1 files are small enough that
    // the double pass is irrelevant next to the decode the parse did).
    from_bytes(data)?;
    let mut cur = &data[24..data.len() - 4];
    let mut sections = Vec::new();
    while cur.remaining() > 0 {
        let (name, payload) = read_entry(&mut cur)?;
        sections.push(super::SectionInfo { name, bytes: payload.len() as u64 });
    }
    Ok(sections)
}

fn read_entry(cur: &mut &[u8]) -> Result<(String, Vec<u8>), NumarckError> {
    if cur.remaining() < 2 {
        return Err(NumarckError::Corrupt("truncated variable name".into()));
    }
    let name_len = cur.get_u16_le() as usize;
    if cur.remaining() < name_len {
        return Err(NumarckError::Corrupt("truncated variable name".into()));
    }
    let mut name_bytes = vec![0u8; name_len];
    cur.copy_to_slice(&mut name_bytes);
    let name = String::from_utf8(name_bytes)
        .map_err(|_| NumarckError::Corrupt("variable name not UTF-8".into()))?;
    if cur.remaining() < 8 {
        return Err(NumarckError::Corrupt("truncated payload length".into()));
    }
    let payload_len = cur.get_u64_le() as usize;
    if cur.remaining() < payload_len {
        return Err(NumarckError::Corrupt(format!(
            "payload for '{name}' truncated: want {payload_len}, have {}",
            cur.remaining()
        )));
    }
    let mut payload = vec![0u8; payload_len];
    cur.copy_to_slice(&mut payload);
    Ok((name, payload))
}

fn put_name(buf: &mut BytesMut, name: &str) {
    assert!(name.len() <= u16::MAX as usize, "variable name too long");
    buf.put_u16_le(name.len() as u16);
    buf.put_slice(name.as_bytes());
}
