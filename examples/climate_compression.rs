//! Compare the three NUMARCK strategies and the two baseline lossy
//! compressors on a year of synthetic CMIP5-like climate data.
//!
//! Run with: `cargo run --release --example climate_compression`

use climate_sim::{ClimateModel, ClimateVar};
use numarck::metrics::{pearson, rmse};
use numarck::{decode, Compressor, Config, Strategy};
use numarck_baselines::{BSplineCompressor, IsabelaCompressor, LossyCompressor};

fn main() {
    let days = 30usize;
    println!("NUMARCK vs baselines on {days} days of synthetic CMIP5 variables\n");

    for var in [ClimateVar::Rlus, ClimateVar::Abs550aer] {
        let mut model = ClimateModel::new(var, 42);
        let mut iterations = vec![model.current().to_vec()];
        for _ in 1..days {
            iterations.push(model.step().to_vec());
        }
        println!("=== {var} (grid {} points) ===", iterations[0].len());

        // NUMARCK, per strategy.
        for strategy in Strategy::all() {
            let config = Config::new(9, 0.005, strategy).expect("valid parameters");
            let compressor = Compressor::new(config);
            let mut gammas = Vec::new();
            let mut ratios = Vec::new();
            let mut rhos = Vec::new();
            let mut xis = Vec::new();
            for w in iterations.windows(2) {
                let (block, stats) = compressor.compress(&w[0], &w[1]).expect("finite");
                let restored = decode::reconstruct(&w[0], &block).expect("valid");
                gammas.push(stats.incompressible_ratio);
                ratios.push(stats.compression_ratio_eq3);
                rhos.push(pearson(&w[1], &restored));
                xis.push(rmse(&w[1], &restored));
            }
            let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
            println!(
                "  NUMARCK/{:<11} γ {:5.2}%  R {:5.2}%  ρ {:.4}  ξ {:.4}",
                strategy.name(),
                mean(&gammas) * 100.0,
                mean(&ratios) * 100.0,
                mean(&rhos),
                mean(&xis)
            );
        }

        // Baselines on the final day's snapshot.
        let last = iterations.last().expect("non-empty");
        for comp in
            [&BSplineCompressor::paper_default() as &dyn LossyCompressor, &IsabelaCompressor::cmip5_default()]
        {
            let (restored, bits) = comp.roundtrip(last);
            println!(
                "  {:<19} R {:5.2}%  ρ {:.4}  ξ {:.4}",
                comp.name(),
                (1.0 - bits as f64 / (last.len() as f64 * 64.0)) * 100.0,
                pearson(last, &restored),
                rmse(last, &restored)
            );
        }
        println!();
    }
    println!("(NUMARCK's advantage: temporal change coding + per-point error bound;");
    println!(" the baselines compress each snapshot spatially with no such bound)");
}
