//! Evaluation metrics (paper §III-B and §III-F).
//!
//! * incompressible ratio `γ` and the Eq. 3 compression ratio live on
//!   [`crate::encode::CompressedIteration`];
//! * this module provides the *accuracy* metrics used for the baseline
//!   comparison (Table II): root-mean-square error `ξ` (Eq. 4) and
//!   Pearson's correlation coefficient `ρ` between original and
//!   decompressed data.

use numarck_par::reduce::{par_moments, par_zip_sum};

/// Root-mean-square error between `original` and `decompressed` (Eq. 4).
///
/// # Panics
/// Panics if lengths differ.
pub fn rmse(original: &[f64], decompressed: &[f64]) -> f64 {
    assert_eq!(original.len(), decompressed.len(), "rmse needs equal lengths");
    if original.is_empty() {
        return 0.0;
    }
    let ss = par_zip_sum(original, decompressed, |a, b| (a - b) * (a - b));
    (ss / original.len() as f64).sqrt()
}

/// Pearson correlation coefficient between `original` and `decompressed`.
///
/// Returns 1.0 when both inputs are constant and identical-up-to-shift
/// (zero variance on both sides is treated as perfect correlation when
/// the RMSE is 0, and 0.0 otherwise — the conventional guard for
/// degenerate inputs).
///
/// # Panics
/// Panics if lengths differ.
pub fn pearson(original: &[f64], decompressed: &[f64]) -> f64 {
    assert_eq!(original.len(), decompressed.len(), "pearson needs equal lengths");
    if original.is_empty() {
        return 0.0;
    }
    let n = original.len() as f64;
    let ma = par_moments(original);
    let mb = par_moments(decompressed);
    let cov = par_zip_sum(original, decompressed, |a, b| a * b) / n - ma.mean() * mb.mean();
    let denom = ma.std_dev() * mb.std_dev();
    if denom == 0.0 {
        return if rmse(original, decompressed) == 0.0 { 1.0 } else { 0.0 };
    }
    (cov / denom).clamp(-1.0, 1.0)
}

/// Mean absolute relative error `mean(|a − b| / |a|)`, skipping points
/// where `a == 0`. Used for the restart-error figures (Fig. 8).
pub fn mean_relative_error(original: &[f64], decompressed: &[f64]) -> f64 {
    assert_eq!(original.len(), decompressed.len());
    if original.is_empty() {
        return 0.0;
    }
    let sum = par_zip_sum(original, decompressed, |a, b| {
        if a == 0.0 {
            0.0
        } else {
            ((a - b) / a).abs()
        }
    });
    let nonzero = original.iter().filter(|&&a| a != 0.0).count();
    if nonzero == 0 {
        0.0
    } else {
        sum / nonzero as f64
    }
}

/// Maximum absolute relative error, skipping points where `a == 0`.
pub fn max_relative_error(original: &[f64], decompressed: &[f64]) -> f64 {
    assert_eq!(original.len(), decompressed.len());
    original
        .iter()
        .zip(decompressed)
        .filter(|(a, _)| **a != 0.0)
        .map(|(a, b)| ((a - b) / a).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmse_zero_for_identical() {
        let a = vec![1.0, 2.0, 3.0];
        assert_eq!(rmse(&a, &a), 0.0);
    }

    #[test]
    fn rmse_hand_computed() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [1.0, 2.0, 3.0, 6.0];
        // sqrt(4/4) = 1
        assert!((rmse(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_perfect_linear() {
        let a: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let b: Vec<f64> = a.iter().map(|x| 3.0 * x + 7.0).collect();
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
        let c: Vec<f64> = a.iter().map(|x| -2.0 * x).collect();
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_uncorrelated_is_small() {
        let a: Vec<f64> = (0..10_000).map(|i| ((i * 2654435761_usize) % 1000) as f64).collect();
        let b: Vec<f64> = (0..10_000).map(|i| ((i * 40503_usize + 7) % 997) as f64).collect();
        assert!(pearson(&a, &b).abs() < 0.05);
    }

    #[test]
    fn pearson_degenerate_constant_inputs() {
        let a = vec![5.0; 10];
        assert_eq!(pearson(&a, &a), 1.0);
        let b = vec![6.0; 10];
        assert_eq!(pearson(&a, &b), 0.0);
    }

    #[test]
    fn relative_errors_skip_zero_reference() {
        let a = [0.0, 2.0, 4.0];
        let b = [9.0, 2.2, 4.0];
        assert!((mean_relative_error(&a, &b) - 0.05).abs() < 1e-12);
        assert!((max_relative_error(&a, &b) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(rmse(&[], &[]), 0.0);
        assert_eq!(pearson(&[], &[]), 0.0);
        assert_eq!(mean_relative_error(&[], &[]), 0.0);
        assert_eq!(max_relative_error(&[], &[]), 0.0);
    }

    #[test]
    fn all_zero_reference() {
        let a = [0.0, 0.0];
        let b = [1.0, 2.0];
        assert_eq!(mean_relative_error(&a, &b), 0.0);
        assert_eq!(max_relative_error(&a, &b), 0.0);
    }
}
