//! Kill-anywhere crash injection against the real `numarck serve`
//! binary.
//!
//! The contract under test: **an acknowledged iteration is never lost.**
//! A `put` reply only goes out after the checkpoint's rename + fsync
//! landed, and the intent journal lets startup recovery roll back
//! whatever a crash half-applied — so killing the server at *any*
//! instruction boundary and restarting it must leave every acknowledged
//! iteration restartable and the chain readable.
//!
//! Two kill mechanisms:
//!
//! - `--die-after-ops K` makes the server's storage backend abort the
//!   whole process (fail-stop, same observable effect as `kill -9`) at
//!   the entry of storage operation K+1. Sweeping K walks the kill
//!   point deterministically through session open, journal appends,
//!   temp writes, renames and directory fsyncs.
//! - A literal SIGKILL from outside, for the boundaries that are not
//!   storage operations at all.
//!
//! Environment knobs (for CI):
//!
//! - `NUMARCK_CRASH_POINTS=N` — sweep kill points `0..N` (default 24;
//!   the CI smoke job sets a bounded count).
//! - `NUMARCK_CRASH_REPORT=PATH` — append one JSON line per kill point
//!   (the surviving-chain report uploaded as a CI artifact).

use std::io::{BufRead, BufReader, Write as _};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use numarck_checkpoint::VariableSet;
use numarck_serve::Client;

const BIN: &str = env!("CARGO_BIN_EXE_numarck");
const TIMEOUT: Duration = Duration::from_secs(5);
/// Iterations offered per kill point; the sweep kills long before the
/// ingest loop runs out of work.
const OFFERED: u64 = 12;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "numarck-crash-{tag}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .expect("after epoch")
                .as_nanos()
        ));
        std::fs::create_dir_all(&path).expect("mkdir");
        Self(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A `numarck serve` child plus the address it printed.
struct ServeProc {
    child: Child,
    addr: String,
}

impl ServeProc {
    /// SIGKILL the server — no drain, no flush, no goodbye.
    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for ServeProc {
    fn drop(&mut self) {
        self.kill();
    }
}

/// Spawn the real binary on an ephemeral port and wait for its
/// "listening on" line. `None` when the process dies before binding —
/// with an aggressive `--die-after-ops` the startup recovery scan
/// itself is a valid kill point.
fn spawn_serve(root: &Path, extra: &[&str]) -> Option<ServeProc> {
    let mut child = Command::new(BIN)
        .arg("serve")
        .arg("--root")
        .arg(root)
        .args(["--addr", "127.0.0.1:0", "--full-interval", "4"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn numarck serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => {
                let _ = child.wait();
                return None;
            }
            Ok(_) => {
                if let Some(addr) = line.trim().strip_prefix("listening on ") {
                    let addr = addr.to_string();
                    return Some(ServeProc { child, addr });
                }
            }
        }
    }
}

fn vars(iteration: u64) -> VariableSet {
    let mut v = VariableSet::new();
    v.insert(
        "x".into(),
        (0..96).map(|j| (j as f64 + 1.0) * 1.004f64.powi(iteration as i32)).collect(),
    );
    v
}

/// Ingest up to `OFFERED` iterations, returning the ones the server
/// *acknowledged* before dying (any error ends the run — a reply that
/// never arrived was never promised).
fn ingest_until_death(addr: &str, session_name: &str) -> Vec<u64> {
    ingest_range_until_death(addr, session_name, 0..OFFERED)
}

/// Same, over an explicit iteration range (for sweeps that resume an
/// existing session).
fn ingest_range_until_death(
    addr: &str,
    session_name: &str,
    range: std::ops::Range<u64>,
) -> Vec<u64> {
    let mut acked = Vec::new();
    let Ok(mut client) = Client::connect(addr, TIMEOUT) else {
        return acked;
    };
    let Ok(session) = client.open_session(session_name) else {
        return acked;
    };
    for it in range {
        match client.put_iteration(session, it, &vars(it)) {
            Ok(_) => acked.push(it),
            Err(_) => break,
        }
    }
    acked
}

/// Restart the server clean over the same root and check the contract:
/// every acknowledged iteration restarts to exactly itself, the chain
/// scrubs clean, and the session accepts the next ingest.
fn assert_survivors(root: &Path, session_name: &str, acked: &[u64]) {
    let server = spawn_serve(root, &[]).expect("clean restart must come up");
    let mut client = Client::connect(&server.addr as &str, TIMEOUT).expect("connect survivor");
    let session = client.open_session(session_name).expect("reopen session");
    for &it in acked {
        let reply = client
            .restart(session, it)
            .unwrap_or_else(|e| panic!("acked iteration {it} lost: {e}"));
        assert_eq!(reply.achieved, it, "acked iteration {it} must restart to itself");
    }
    let reply = client.scrub(session, false).expect("scrub after recovery");
    assert_eq!(reply.quarantined, 0, "recovery must leave no damage behind");
    let next = acked.last().map_or(0, |&it| it + 1);
    client.put_iteration(session, next, &vars(next)).expect("session must accept new work");
    assert_eq!(client.restart(session, next).expect("restart new work").achieved, next);
}

fn sweep_points() -> u64 {
    std::env::var("NUMARCK_CRASH_POINTS").ok().and_then(|v| v.parse().ok()).unwrap_or(24)
}

/// Append one JSON line per kill point when `NUMARCK_CRASH_REPORT` is
/// set — the surviving-chain report CI uploads as an artifact.
fn report_line(kill_after_ops: u64, label: &str, acked: &[u64]) {
    let Ok(path) = std::env::var("NUMARCK_CRASH_REPORT") else {
        return;
    };
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .expect("open crash report");
    writeln!(
        f,
        "{{\"suite\":\"{label}\",\"kill_after_ops\":{kill_after_ops},\"acked\":{},\"survived\":{},\"chain_ok\":true}}",
        acked.len(),
        acked.len(),
    )
    .expect("append crash report");
}

/// The deterministic sweep: fail-stop at storage operation K+1 for
/// every K in the swept range, restart, and demand zero
/// acknowledged-iteration loss each time.
#[test]
fn kill_sweep_loses_no_acknowledged_iteration() {
    let points = sweep_points();
    for k in 0..points {
        let tmp = TempDir::new(&format!("sweep-{k}"));
        let root = tmp.0.join("root");
        let die = k.to_string();
        let acked = match spawn_serve(&root, &["--die-after-ops", &die]) {
            Some(mut server) => {
                let acked = ingest_until_death(&server.addr, "sim");
                // A generous budget can outlive the offered work; the
                // survivor then dies by SIGKILL instead — every sweep
                // point ends in a hard kill either way.
                server.kill();
                acked
            }
            // Died during startup recovery, before binding: nothing was
            // ever acknowledged, and the restart must still come up.
            None => Vec::new(),
        };
        std::fs::create_dir_all(&root).expect("root for restart");
        assert_survivors(&root, "sim", &acked);
        report_line(k, "fail-stop", &acked);
    }
}

/// The same sweep composed with `--replicas 3`: quorum writes and the
/// intent journal must uphold the same contract when every logical
/// storage operation fans out to three replicas.
#[test]
fn kill_sweep_with_replicas_loses_no_acknowledged_iteration() {
    // A bounded slice of the sweep: replication triples the I/O per
    // point, and the single-backend sweep already walks every boundary.
    let points = sweep_points().min(8);
    for k in 0..points {
        let tmp = TempDir::new(&format!("rep-sweep-{k}"));
        let root = tmp.0.join("root");
        let die = k.to_string();
        let acked = match spawn_serve(&root, &["--replicas", "3", "--die-after-ops", &die]) {
            Some(mut server) => {
                let acked = ingest_until_death(&server.addr, "sim");
                server.kill();
                acked
            }
            None => Vec::new(),
        };
        std::fs::create_dir_all(&root).expect("root for restart");
        // The survivor must come up replicated too: quorum reads need
        // the replica layout, not the single-copy one.
        let server = spawn_serve(&root, &["--replicas", "3"]).expect("replicated restart");
        let mut client = Client::connect(&server.addr as &str, TIMEOUT).expect("connect");
        let session = client.open_session("sim").expect("reopen session");
        for &it in &acked {
            let reply = client
                .restart(session, it)
                .unwrap_or_else(|e| panic!("acked iteration {it} lost (replicated): {e}"));
            assert_eq!(reply.achieved, it);
        }
        report_line(k, "fail-stop-replicated", &acked);
    }
}

/// The kill sweep over a *mixed-version* chain: the session's early
/// iterations are rewritten in the frozen v1 container (as a store
/// written by an old deployment and only partially upgraded), then the
/// sweep kills the server while it extends that chain with v2 files.
/// Recovery, restart and scrub must treat the versions as one chain —
/// every acknowledged iteration restartable, regardless of which
/// container layout holds it.
#[test]
fn mixed_version_kill_sweep_loses_no_acknowledged_iteration() {
    const OLD: u64 = 5;
    let points = sweep_points().min(8);
    for k in 0..points {
        let tmp = TempDir::new(&format!("mixed-sweep-{k}"));
        let root = tmp.0.join("root");

        // Seed the session with OLD acknowledged iterations, then hard
        // kill: the chain on disk is complete (acked ⇒ durable).
        let mut server = spawn_serve(&root, &[]).expect("seed server must come up");
        let seeded = ingest_range_until_death(&server.addr, "sim", 0..OLD);
        assert_eq!(seeded.len() as u64, OLD, "healthy server must ack the seed");
        server.kill();

        // Downgrade every seeded file to the v1 layout in place.
        let store = numarck_checkpoint::CheckpointStore::open(root.join("sim"))
            .expect("open session store");
        let mut rewritten = 0;
        for entry in store.list().expect("list seeded chain") {
            let bytes = store.read_raw(entry.iteration, entry.is_full).expect("read");
            let file =
                numarck_checkpoint::CheckpointFile::from_bytes(&bytes).expect("parse seeded file");
            store.write_raw(entry.iteration, entry.is_full, &file.to_bytes_v1()).expect("write v1");
            rewritten += 1;
        }
        assert!(rewritten >= 2, "seed must leave a chain to downgrade");

        // Now the sweep proper: extend the v1 chain with v2 writes and
        // die at storage operation k+1.
        let die = k.to_string();
        let acked = match spawn_serve(&root, &["--die-after-ops", &die]) {
            Some(mut server) => {
                let acked = ingest_range_until_death(&server.addr, "sim", OLD..OFFERED);
                server.kill();
                acked
            }
            None => Vec::new(),
        };

        let all: Vec<u64> = seeded.iter().chain(&acked).copied().collect();
        assert_survivors(&root, "sim", &all);
        report_line(k, "fail-stop-mixed-version", &all);
    }
}

/// A literal `kill -9` from outside, landing between requests rather
/// than inside a storage operation — the boundaries `--die-after-ops`
/// cannot reach.
#[test]
fn external_sigkill_mid_session_loses_no_acknowledged_iteration() {
    let tmp = TempDir::new("sigkill");
    let root = tmp.0.join("root");
    let mut server = spawn_serve(&root, &[]).expect("serve must come up");
    let acked = ingest_until_death(&server.addr, "sim");
    assert_eq!(acked.len() as u64, OFFERED, "healthy server must ack everything offered");
    server.kill();
    assert_survivors(&root, "sim", &acked);
    report_line(0, "external-sigkill", &acked);
}
