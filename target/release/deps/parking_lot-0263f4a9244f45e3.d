/root/repo/target/release/deps/parking_lot-0263f4a9244f45e3.d: .stubs/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-0263f4a9244f45e3.rlib: .stubs/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-0263f4a9244f45e3.rmeta: .stubs/parking_lot/src/lib.rs

.stubs/parking_lot/src/lib.rs:
