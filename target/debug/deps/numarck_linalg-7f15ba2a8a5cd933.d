/root/repo/target/debug/deps/numarck_linalg-7f15ba2a8a5cd933.d: crates/numarck-linalg/src/lib.rs crates/numarck-linalg/src/banded.rs crates/numarck-linalg/src/bspline.rs crates/numarck-linalg/src/tridiag.rs

/root/repo/target/debug/deps/libnumarck_linalg-7f15ba2a8a5cd933.rlib: crates/numarck-linalg/src/lib.rs crates/numarck-linalg/src/banded.rs crates/numarck-linalg/src/bspline.rs crates/numarck-linalg/src/tridiag.rs

/root/repo/target/debug/deps/libnumarck_linalg-7f15ba2a8a5cd933.rmeta: crates/numarck-linalg/src/lib.rs crates/numarck-linalg/src/banded.rs crates/numarck-linalg/src/bspline.rs crates/numarck-linalg/src/tridiag.rs

crates/numarck-linalg/src/lib.rs:
crates/numarck-linalg/src/banded.rs:
crates/numarck-linalg/src/bspline.rs:
crates/numarck-linalg/src/tridiag.rs:
