/root/repo/target/debug/deps/fig8-7aec0c920856760a.d: crates/numarck-bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-7aec0c920856760a: crates/numarck-bench/src/bin/fig8.rs

crates/numarck-bench/src/bin/fig8.rs:
