//! Linear-algebra substrate for the baseline lossy compressors.
//!
//! The paper's comparison targets — cubic B-splines (Chou & Piegl) and
//! ISABELA (Lakshminarasimhan et al.) — both reduce to least-squares
//! cubic-B-spline fits. A cubic spline's design matrix has 4 non-zeros
//! per row, so the normal equations are symmetric positive-definite with
//! bandwidth 3; everything needed is:
//!
//! * [`banded`] — symmetric banded storage + banded Cholesky factor/solve
//!   (O(n·p²) instead of O(n³));
//! * [`tridiag`] — Thomas algorithm for tridiagonal systems;
//! * [`bspline`] — clamped uniform cubic B-spline basis, evaluation, and
//!   least-squares fitting built on the banded solver.

pub mod banded;
pub mod bspline;
pub mod tridiag;

pub use banded::SymBanded;
pub use bspline::CubicBSpline;
