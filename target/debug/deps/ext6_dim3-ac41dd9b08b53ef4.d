/root/repo/target/debug/deps/ext6_dim3-ac41dd9b08b53ef4.d: crates/numarck-bench/src/bin/ext6_dim3.rs

/root/repo/target/debug/deps/ext6_dim3-ac41dd9b08b53ef4: crates/numarck-bench/src/bin/ext6_dim3.rs

crates/numarck-bench/src/bin/ext6_dim3.rs:
