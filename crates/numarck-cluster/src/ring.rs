//! Consistent-hash ring with fixed virtual nodes.
//!
//! Placement must be a pure function of `(shard_count, vnodes)` and the
//! session name — the router, the CLI, tests, and any future second
//! router instance must all agree on where a session lives without
//! coordination. So the ring is built from nothing but those inputs:
//! each shard contributes `vnodes` points at
//! `hash("vnode-{shard}-{v}")`, and a name is placed by walking the
//! ring clockwise from `hash(name)`, collecting the first `n` distinct
//! shards.
//!
//! The hash is FNV-1a (64-bit) finished with a splitmix64 mix step.
//! FNV alone clusters badly on short strings with shared prefixes
//! (exactly what `"vnode-0-1"`, `"vnode-0-2"`, ... are); the finalizer
//! spreads the points. Both functions are fixed constants of the wire
//! format now: changing either reshuffles every session, so they are
//! pinned by tests below.

/// Default virtual nodes contributed by each shard.
pub const DEFAULT_VNODES: usize = 64;

/// FNV-1a 64-bit over `bytes`, finished with splitmix64.
pub fn ring_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // splitmix64 finalizer.
    h = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = h;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The ring: sorted virtual-node points, each owned by a shard.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(point, shard)` sorted by point.
    points: Vec<(u64, u16)>,
    shards: usize,
}

impl HashRing {
    /// Build a ring over `shards` shard indices (`0..shards`), each
    /// contributing `vnodes` points.
    pub fn new(shards: usize, vnodes: usize) -> Self {
        assert!(shards > 0, "ring needs at least one shard");
        assert!(shards <= u16::MAX as usize, "too many shards");
        assert!(vnodes > 0, "ring needs at least one vnode per shard");
        let mut points = Vec::with_capacity(shards * vnodes);
        for s in 0..shards {
            for v in 0..vnodes {
                let key = format!("vnode-{s}-{v}");
                points.push((ring_hash(key.as_bytes()), s as u16));
            }
        }
        points.sort_unstable();
        HashRing { points, shards }
    }

    /// Number of shards on the ring.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// The first `n` distinct shards encountered walking clockwise from
    /// `hash(name)`: the session's placement, primary first. Returns
    /// fewer than `n` only when the ring has fewer shards.
    pub fn shards_for(&self, name: &str, n: usize) -> Vec<usize> {
        let want = n.min(self.shards);
        let h = ring_hash(name.as_bytes());
        let start = self.points.partition_point(|&(p, _)| p < h);
        let mut out = Vec::with_capacity(want);
        for i in 0..self.points.len() {
            let (_, shard) = self.points[(start + i) % self.points.len()];
            let shard = shard as usize;
            if !out.contains(&shard) {
                out.push(shard);
                if out.len() == want {
                    break;
                }
            }
        }
        out
    }

    /// The primary shard for a name (first entry of [`Self::shards_for`]).
    pub fn primary(&self, name: &str) -> usize {
        self.shards_for(name, 1)[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Placement is a wire-format constant now: these exact vectors are
    /// what a 3-shard, 64-vnode ring assigns. If this test breaks, the
    /// hash or ring layout changed and every deployed cluster would
    /// reshuffle its sessions — don't "fix" the expectations without a
    /// migration story.
    #[test]
    fn placement_is_pinned() {
        let ring = HashRing::new(3, DEFAULT_VNODES);
        let placed: Vec<Vec<usize>> = ["smoke", "ha", "sim-0", "climate.rlus", "a"]
            .iter()
            .map(|name| ring.shards_for(name, 2))
            .collect();
        assert_eq!(
            placed,
            vec![vec![1, 0], vec![1, 2], vec![1, 0], vec![0, 2], vec![2, 1]],
            "pinned 3-shard RF=2 placement changed"
        );
        assert_eq!(ring.primary("smoke"), 1);
    }

    #[test]
    fn hash_is_pinned() {
        // The two-layer hash itself is part of the placement contract;
        // pin one value so an "innocent" tweak to either layer shows up
        // here before it silently reshuffles a cluster.
        assert_eq!(ring_hash(b"numarck"), 0x9aaf_ff3a_bca2_ca6d, "pinned ring_hash value changed");
        assert_ne!(ring_hash(b"vnode-0-0"), ring_hash(b"vnode-0-1"));
    }

    #[test]
    fn replicas_are_distinct_and_bounded() {
        let ring = HashRing::new(5, 32);
        for i in 0..200 {
            let name = format!("sess-{i}");
            let t = ring.shards_for(&name, 3);
            assert_eq!(t.len(), 3);
            let mut sorted = t.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "duplicate shard in {t:?}");
        }
        // Asking for more replicas than shards caps at the shard count.
        assert_eq!(ring.shards_for("x", 99).len(), 5);
    }

    #[test]
    fn load_is_roughly_balanced() {
        let ring = HashRing::new(3, DEFAULT_VNODES);
        let mut counts = [0usize; 3];
        for i in 0..3000 {
            counts[ring.primary(&format!("session-{i}"))] += 1;
        }
        for (shard, &c) in counts.iter().enumerate() {
            // Each shard should own a meaningful chunk of a fair 1/3
            // split; with 64 vnodes the spread stays well inside this.
            assert!(c > 3000 / 6, "shard {shard} owns only {c}/3000");
        }
    }

    #[test]
    fn growing_the_ring_moves_a_minority_of_sessions() {
        let before = HashRing::new(3, DEFAULT_VNODES);
        let after = HashRing::new(4, DEFAULT_VNODES);
        let moved = (0..2000)
            .filter(|i| {
                let name = format!("session-{i}");
                before.primary(&name) != after.primary(&name)
            })
            .count();
        // Consistent hashing moves ~1/4 of keys when going 3 → 4
        // shards; naive modulo would move ~3/4.
        assert!(moved < 2000 / 2, "{moved}/2000 sessions moved");
        assert!(moved > 0, "a new shard must take some load");
    }
}
