/root/repo/target/debug/deps/ext6_dim3-4447248601cbf7b9.d: crates/numarck-bench/src/bin/ext6_dim3.rs

/root/repo/target/debug/deps/libext6_dim3-4447248601cbf7b9.rmeta: crates/numarck-bench/src/bin/ext6_dim3.rs

crates/numarck-bench/src/bin/ext6_dim3.rs:
