/root/repo/target/debug/deps/concurrent_scrub-ac8a841617bd8388.d: crates/numarck-serve/tests/concurrent_scrub.rs crates/numarck-serve/tests/util/mod.rs

/root/repo/target/debug/deps/libconcurrent_scrub-ac8a841617bd8388.rmeta: crates/numarck-serve/tests/concurrent_scrub.rs crates/numarck-serve/tests/util/mod.rs

crates/numarck-serve/tests/concurrent_scrub.rs:
crates/numarck-serve/tests/util/mod.rs:
