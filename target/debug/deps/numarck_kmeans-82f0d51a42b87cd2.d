/root/repo/target/debug/deps/numarck_kmeans-82f0d51a42b87cd2.d: crates/numarck-kmeans/src/lib.rs crates/numarck-kmeans/src/general.rs crates/numarck-kmeans/src/init.rs crates/numarck-kmeans/src/lloyd1d.rs

/root/repo/target/debug/deps/libnumarck_kmeans-82f0d51a42b87cd2.rmeta: crates/numarck-kmeans/src/lib.rs crates/numarck-kmeans/src/general.rs crates/numarck-kmeans/src/init.rs crates/numarck-kmeans/src/lloyd1d.rs

crates/numarck-kmeans/src/lib.rs:
crates/numarck-kmeans/src/general.rs:
crates/numarck-kmeans/src/init.rs:
crates/numarck-kmeans/src/lloyd1d.rs:
