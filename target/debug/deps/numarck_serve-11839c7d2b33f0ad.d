/root/repo/target/debug/deps/numarck_serve-11839c7d2b33f0ad.d: crates/numarck-serve/src/lib.rs crates/numarck-serve/src/client.rs crates/numarck-serve/src/journal.rs crates/numarck-serve/src/recovery.rs crates/numarck-serve/src/server.rs crates/numarck-serve/src/wire.rs

/root/repo/target/debug/deps/numarck_serve-11839c7d2b33f0ad: crates/numarck-serve/src/lib.rs crates/numarck-serve/src/client.rs crates/numarck-serve/src/journal.rs crates/numarck-serve/src/recovery.rs crates/numarck-serve/src/server.rs crates/numarck-serve/src/wire.rs

crates/numarck-serve/src/lib.rs:
crates/numarck-serve/src/client.rs:
crates/numarck-serve/src/journal.rs:
crates/numarck-serve/src/recovery.rs:
crates/numarck-serve/src/server.rs:
crates/numarck-serve/src/wire.rs:
