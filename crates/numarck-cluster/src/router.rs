//! The gateway/router: one readiness-driven event loop fronting N
//! `numarck-serve` shards.
//!
//! The router speaks the existing versioned CRC wire protocol on both
//! sides, so a stock pre-router client works unchanged: it connects,
//! opens a session, ingests, restarts — and the router decides *where*
//! that work lands.
//!
//! ## Structure
//!
//! One thread (`ncl-loop`) owns everything: the listener, every client
//! connection, every upstream shard connection, and the gateway session
//! table. All sockets are non-blocking; a [`Poller`] (epoll on Linux,
//! `poll(2)` fallback) wakes the loop when any of them is ready. No
//! locks anywhere on the data path — cross-thread state is limited to
//! the health table (atomics) and the metrics registry (lock-free).
//!
//! ## Per-connection state machine
//!
//! A client connection is a byte accumulator plus at most one in-flight
//! request (the protocol is strict request→response, so pipelined bytes
//! simply wait in the read buffer until the current request resolves):
//!
//! ```text
//!            bytes arrive                 all fan-out replies in
//! [idle] ───────────────► [pending] ───────────────────────► [idle]
//!    │  frame parsed,           │  response queued, flushed      │
//!    │  fan-out forwarded       │  as the socket allows          │
//!    └── idle > timeout: closed └── drain: close after flush ────┘
//! ```
//!
//! Upstream connections are per `(client, shard)`, created lazily at
//! forward time and torn down with the client. A shard's `Busy` or an
//! I/O failure feeds the health table, so real traffic marks a dead
//! shard down faster than the prober's next round.
//!
//! ## Routing
//!
//! * `OpenSession` fans out to the ring's first `replication` live
//!   shards; the gateway allocates its own session id (shards number
//!   sessions independently, so shard-local ids cannot be surfaced).
//! * `PutIterations` replicates to every live target; the primary's
//!   reply is the client's ack, a replica ack stands in when the
//!   primary fails mid-batch (counted as a failover).
//! * `Restart` goes to the primary and fails over down the replica
//!   list on error/busy/death — the acceptance path for surviving a
//!   primary SIGKILL.
//! * `Scrub` fans out to all live targets (each shard runs its own
//!   scrub→quarantine→read-repair machinery) and the reports merge.
//! * `Stats` fans out to every live shard and folds into one reply
//!   ([`crate::stats::aggregate`]).
//!
//! Session ids travel in the first 8 payload bytes of the session ops,
//! so forwarding patches them per shard and reseals the frame CRC
//! ([`wire::patch_session_id`]) — the payload itself is never decoded
//! on the ingest path.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use numarck_obs::{Counter, Gauge, Registry, Snapshot};
use numarck_serve::server::signal_drain_requested;
use numarck_serve::wire::{self, opcode, ErrorCode, Frame, Request, Response, StatsReply};

use crate::health::{spawn_prober, HealthInstruments, Membership, ProberConfig};
use crate::poller::{Interest, Poller};
use crate::ring::{HashRing, DEFAULT_VNODES};
use crate::stats;

/// Router tunables. `Default` matches the shard-side conventions
/// (60 s idle timeout, replication factor 2).
pub struct RouterConfig {
    /// Shard addresses, indexed by position (the ring's shard ids).
    pub shards: Vec<String>,
    /// Replicas per session (capped at the shard count).
    pub replication: usize,
    /// Virtual nodes per shard on the hash ring.
    pub vnodes: usize,
    /// Client connections held at once; excess gets a typed `Busy`.
    pub max_connections: usize,
    /// Close client connections idle longer than this; also the
    /// deadline for a shard to answer a forwarded request.
    pub idle_timeout: Duration,
    /// Bounded upstream connect (the one blocking call on the loop;
    /// kept short, and down shards are skipped entirely).
    pub connect_timeout: Duration,
    /// Delay between health-probe rounds.
    pub probe_interval: Duration,
    /// Per-probe connect + I/O timeout.
    pub probe_timeout: Duration,
    /// Consecutive failures before a shard is marked down.
    pub markdown_after: u32,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            shards: Vec::new(),
            replication: 2,
            vnodes: DEFAULT_VNODES,
            max_connections: 4096,
            idle_timeout: Duration::from_secs(60),
            connect_timeout: Duration::from_millis(250),
            probe_interval: Duration::from_millis(500),
            probe_timeout: Duration::from_secs(1),
            markdown_after: 3,
        }
    }
}

/// Router-side instruments (`ncl_` prefix), in the router's private
/// registry and merged with the process-global one at exposition.
struct Instruments {
    requests: Arc<Counter>,
    forwarded: Arc<Counter>,
    failovers: Arc<Counter>,
    busy: Arc<Counter>,
    replica_put_failures: Arc<Counter>,
    degraded_opens: Arc<Counter>,
    idle_disconnects: Arc<Counter>,
    malformed: Arc<Counter>,
    connections: Arc<Gauge>,
    open_sessions: Arc<Gauge>,
}

impl Instruments {
    fn new(registry: &Registry) -> Instruments {
        Instruments {
            requests: registry.counter("ncl_requests_total"),
            forwarded: registry.counter("ncl_forwarded_total"),
            failovers: registry.counter("ncl_failovers_total"),
            busy: registry.counter("ncl_busy_total"),
            replica_put_failures: registry.counter("ncl_replica_put_failures_total"),
            degraded_opens: registry.counter("ncl_degraded_opens_total"),
            idle_disconnects: registry.counter("ncl_idle_disconnects_total"),
            malformed: registry.counter("ncl_malformed_total"),
            connections: registry.gauge("ncl_client_connections"),
            open_sessions: registry.gauge("ncl_open_sessions"),
        }
    }
}

struct Shared {
    registry: Registry,
    membership: Arc<Membership>,
    health: Arc<HealthInstruments>,
    draining: AtomicBool,
}

impl Shared {
    fn metrics_snapshot(&self) -> Snapshot {
        let mut snap = Registry::global().snapshot();
        snap.merge(self.registry.snapshot());
        snap
    }
}

/// Handle to a spawned router. Dropping it does *not* stop the router;
/// call [`Self::shutdown`] (or [`Self::trigger_drain`] + [`Self::join`]).
pub struct RouterHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    ring: HashRing,
    replication: usize,
    backend: &'static str,
    loop_thread: Option<thread::JoinHandle<()>>,
    prober: Option<thread::JoinHandle<()>>,
    prober_stop: Arc<AtomicBool>,
}

impl RouterHandle {
    /// The bound listen address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Which poller backend the event loop runs on.
    pub fn poller_backend(&self) -> &'static str {
        self.backend
    }

    /// The shared shard-health table.
    pub fn membership(&self) -> &Membership {
        &self.shared.membership
    }

    /// Ring placement for a session name, primary first — pure ring
    /// arithmetic, so tests and operators can predict where a session
    /// lands without asking the shards.
    pub fn plan(&self, name: &str) -> Vec<usize> {
        self.ring.shards_for(name, self.replication)
    }

    /// Ask the router to drain: refuse new connections, finish
    /// in-flight requests, exit once the last client is gone.
    pub fn trigger_drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
    }

    /// Whether a drain has been triggered.
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Router registry merged with the process-global registry.
    pub fn metrics_snapshot(&self) -> Snapshot {
        self.shared.metrics_snapshot()
    }

    /// A cloneable `'static` snapshot source for a `/metrics` listener.
    pub fn metrics_source(&self) -> impl Fn() -> Snapshot + Send + Sync + 'static {
        let shared = Arc::clone(&self.shared);
        move || shared.metrics_snapshot()
    }

    /// Block until the event loop exits (requires a drain trigger),
    /// then stop the prober.
    pub fn join(mut self) {
        if let Some(h) = self.loop_thread.take() {
            let _ = h.join();
        }
        self.prober_stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.prober.take() {
            let _ = h.join();
        }
    }

    /// Drain and wait.
    pub fn shutdown(self) {
        self.trigger_drain();
        self.join();
    }
}

/// The router. Construct with [`Router::spawn`].
pub struct Router;

impl Router {
    /// Bind `addr`, spawn the event loop and the health prober, and
    /// return a handle. Fails fast on an empty shard list or a bind
    /// error; shard reachability is a health matter, not a spawn error.
    pub fn spawn(addr: impl ToSocketAddrs, config: RouterConfig) -> io::Result<RouterHandle> {
        if config.shards.is_empty() {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "router needs at least one shard"));
        }
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;

        let registry = Registry::new();
        let instruments = Instruments::new(&registry);
        let health = Arc::new(HealthInstruments {
            markdowns: registry.counter("ncl_shard_markdowns_total"),
            markups: registry.counter("ncl_shard_markups_total"),
            probe_failures: registry.counter("ncl_probe_failures_total"),
            shard_up: (0..config.shards.len())
                .map(|i| {
                    let g = registry.gauge(&format!("ncl_shard_up_{i}"));
                    g.set(1);
                    g
                })
                .collect(),
        });
        let membership = Arc::new(Membership::new(config.shards.clone(), config.markdown_after));
        let ring = HashRing::new(config.shards.len(), config.vnodes);
        let replication = config.replication.max(1);
        let shared = Arc::new(Shared {
            registry,
            membership: Arc::clone(&membership),
            health: Arc::clone(&health),
            draining: AtomicBool::new(false),
        });

        let poller = Poller::new()?;
        let backend = poller.backend_name();
        let prober_stop = Arc::new(AtomicBool::new(false));
        let prober = spawn_prober(
            membership,
            health,
            ProberConfig { interval: config.probe_interval, timeout: config.probe_timeout },
            Arc::clone(&prober_stop),
        );

        let loop_shared = Arc::clone(&shared);
        let loop_ring = ring.clone();
        let loop_thread = thread::Builder::new()
            .name("ncl-loop".into())
            .spawn(move || {
                EventLoop::new(listener, poller, loop_ring, config, loop_shared, instruments).run();
            })?;

        Ok(RouterHandle {
            addr: local,
            shared,
            ring,
            replication,
            backend,
            loop_thread: Some(loop_thread),
            prober: Some(prober),
            prober_stop,
        })
    }
}

// ---------------------------------------------------------------------
// Event loop internals
// ---------------------------------------------------------------------

const LISTENER_TOKEN: usize = 0;

/// One shard's contribution to a fan-out.
enum ShardResult {
    /// A complete response frame.
    Frame(Frame),
    /// The shard's acceptor answered `Busy`.
    Busy,
    /// Connect/write/read failed before a response arrived.
    Failed(String),
}

enum PendingKind {
    Open { name: String, planned: usize },
    Put { primary: usize },
    Restart { template: Vec<u8>, remaining: Vec<(usize, u64)> },
    Scrub { primary: usize },
    Stats,
    Close { session: u64 },
}

/// The one in-flight request a client connection may have.
struct Pending {
    req_id: u64,
    awaiting: usize,
    started: Instant,
    results: Vec<(usize, ShardResult)>,
    kind: PendingKind,
}

struct ClientConn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    wpos: usize,
    last_activity: Instant,
    pending: Option<Pending>,
    /// shard index → upstream slab token.
    upstreams: HashMap<usize, usize>,
    close_after_flush: bool,
    want_write: bool,
}

struct UpstreamConn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    wpos: usize,
    shard: usize,
    client: usize,
    in_flight: bool,
    want_write: bool,
}

enum Entry {
    Client(ClientConn),
    Upstream(UpstreamConn),
}

struct GatewaySession {
    name: String,
    /// `(shard, shard-local session id)` in ring-plan order.
    targets: Vec<(usize, u64)>,
}

struct EventLoop {
    listener: Option<TcpListener>,
    poller: Poller,
    ring: HashRing,
    config: RouterConfig,
    shared: Arc<Shared>,
    instruments: Instruments,
    entries: Vec<Option<Entry>>,
    free: Vec<usize>,
    /// Tokens freed during the current event batch; recycled only
    /// after the batch so a stale event cannot hit a reused slot.
    pending_free: Vec<usize>,
    sessions: HashMap<u64, GatewaySession>,
    by_name: HashMap<String, u64>,
    next_session: u64,
    client_count: usize,
    last_sweep: Instant,
}

enum FlushOutcome {
    Done,
    Partial,
    Failed,
}

fn flush_buf(stream: &mut TcpStream, wbuf: &mut Vec<u8>, wpos: &mut usize) -> FlushOutcome {
    while *wpos < wbuf.len() {
        match stream.write(&wbuf[*wpos..]) {
            Ok(0) => return FlushOutcome::Failed,
            Ok(n) => *wpos += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return FlushOutcome::Partial,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return FlushOutcome::Failed,
        }
    }
    wbuf.clear();
    *wpos = 0;
    FlushOutcome::Done
}

enum ReadStatus {
    Progress,
    Closed,
}

fn read_available(stream: &mut TcpStream, buf: &mut Vec<u8>) -> ReadStatus {
    let mut tmp = [0u8; 16 * 1024];
    loop {
        match stream.read(&mut tmp) {
            Ok(0) => return ReadStatus::Closed,
            Ok(n) => buf.extend_from_slice(&tmp[..n]),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return ReadStatus::Progress,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return ReadStatus::Closed,
        }
    }
}

/// Best explanation when no shard produced a usable reply: prefer the
/// typed `Busy`, then a shard's own error verbatim, then a generic Io.
fn error_response_from(results: &[(usize, ShardResult)]) -> Response {
    if results.iter().any(|(_, r)| matches!(r, ShardResult::Busy)) {
        return Response::Busy;
    }
    for (_, r) in results {
        if let ShardResult::Frame(f) = r {
            if f.opcode == opcode::ERROR {
                if let Ok(resp) = Response::from_frame(f) {
                    return resp;
                }
            }
        }
    }
    let detail = results
        .iter()
        .find_map(|(_, r)| match r {
            ShardResult::Failed(m) => Some(m.as_str()),
            _ => None,
        })
        .unwrap_or("no shard available");
    Response::Error { code: ErrorCode::Io, message: format!("cluster: {detail}") }
}

/// Merge per-replica scrub reports: totals sum (each shard checked its
/// own copy of the chain), the re-anchor point is the primary's when it
/// answered, otherwise the first replica's.
fn finish_scrub(primary: usize, results: &[(usize, ShardResult)]) -> Response {
    let mut decoded: Vec<(usize, u32, u32, Option<u64>, u32)> = Vec::new();
    for (shard, r) in results {
        if let ShardResult::Frame(f) = r {
            if f.opcode == opcode::SCRUB_DONE {
                if let Ok(Response::ScrubDone { checked, quarantined, anchored_at, lost }) =
                    Response::from_frame(f)
                {
                    decoded.push((*shard, checked, quarantined, anchored_at, lost));
                }
            }
        }
    }
    if decoded.is_empty() {
        return error_response_from(results);
    }
    let anchored_at = decoded
        .iter()
        .find(|(s, ..)| *s == primary)
        .map(|&(_, _, _, a, _)| a)
        .unwrap_or(decoded[0].3);
    Response::ScrubDone {
        checked: decoded.iter().map(|d| d.1).sum(),
        quarantined: decoded.iter().map(|d| d.2).sum(),
        anchored_at,
        lost: decoded.iter().map(|d| d.4).sum(),
    }
}

impl EventLoop {
    fn new(
        listener: TcpListener,
        poller: Poller,
        ring: HashRing,
        config: RouterConfig,
        shared: Arc<Shared>,
        instruments: Instruments,
    ) -> EventLoop {
        EventLoop {
            listener: Some(listener),
            poller,
            ring,
            config,
            shared,
            instruments,
            entries: vec![None], // slot 0 reserved for the listener
            free: Vec::new(),
            pending_free: Vec::new(),
            sessions: HashMap::new(),
            by_name: HashMap::new(),
            next_session: 1,
            client_count: 0,
            last_sweep: Instant::now(),
        }
    }

    fn run(&mut self) {
        if let Some(l) = &self.listener {
            if self.poller.register(l.as_raw_fd(), LISTENER_TOKEN, Interest::READ).is_err() {
                return;
            }
        }
        let mut events = Vec::new();
        loop {
            if signal_drain_requested() {
                self.shared.draining.store(true, Ordering::SeqCst);
            }
            if self.draining() {
                self.begin_drain();
                if self.client_count == 0 {
                    return;
                }
            }
            if self.poller.wait(&mut events, Some(Duration::from_millis(200))).is_err() {
                thread::sleep(Duration::from_millis(10));
                continue;
            }
            for ev in &events {
                if ev.token == LISTENER_TOKEN {
                    self.accept_ready();
                    continue;
                }
                match self.entries.get(ev.token).and_then(|e| e.as_ref()) {
                    Some(Entry::Client(_)) => self.client_ready(ev.token, ev.readable, ev.writable, ev.error),
                    Some(Entry::Upstream(_)) => self.upstream_ready(ev.token, ev.readable, ev.writable, ev.error),
                    None => {}
                }
            }
            self.free.append(&mut self.pending_free);
            if self.last_sweep.elapsed() >= Duration::from_secs(1) {
                self.sweep();
                self.last_sweep = Instant::now();
                self.free.append(&mut self.pending_free);
            }
        }
    }

    fn draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    // -- slab -----------------------------------------------------------

    fn alloc(&mut self, entry: Entry) -> usize {
        if let Some(t) = self.free.pop() {
            self.entries[t] = Some(entry);
            t
        } else {
            self.entries.push(Some(entry));
            self.entries.len() - 1
        }
    }

    // -- accept ---------------------------------------------------------

    fn accept_ready(&mut self) {
        loop {
            let accepted = match &self.listener {
                Some(l) => l.accept(),
                None => return,
            };
            match accepted {
                Ok((stream, _)) => self.on_accept(stream),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn on_accept(&mut self, stream: TcpStream) {
        if self.draining() {
            return; // listener closes momentarily; refuse quietly
        }
        if self.client_count >= self.config.max_connections {
            // Typed backpressure, same as the shard acceptor: a Busy
            // frame (best-effort, bounded) and the connection drops.
            self.instruments.busy.inc();
            let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
            let mut s = stream;
            let _ = s.write_all(&wire::encode_frame(opcode::BUSY, 0, &[]));
            return;
        }
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let token = self.alloc(Entry::Client(ClientConn {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            last_activity: Instant::now(),
            pending: None,
            upstreams: HashMap::new(),
            close_after_flush: false,
            want_write: false,
        }));
        let fd = match self.entries[token].as_ref() {
            Some(Entry::Client(c)) => c.stream.as_raw_fd(),
            _ => unreachable!(),
        };
        if self.poller.register(fd, token, Interest::READ).is_err() {
            self.entries[token] = None;
            self.pending_free.push(token);
            return;
        }
        self.client_count += 1;
        self.instruments.connections.add(1);
    }

    // -- client side ----------------------------------------------------

    fn client_ready(&mut self, token: usize, readable: bool, writable: bool, error: bool) {
        if error {
            self.close_client(token);
            return;
        }
        if writable && !self.flush_client(token) {
            return;
        }
        if readable {
            let closed = {
                let Some(Entry::Client(c)) = self.entries[token].as_mut() else { return };
                c.last_activity = Instant::now();
                matches!(read_available(&mut c.stream, &mut c.rbuf), ReadStatus::Closed)
            };
            if closed {
                self.close_client(token);
                return;
            }
            self.process_client_rbuf(token);
        }
    }

    /// Parse and dispatch frames while the connection is idle (one
    /// request in flight at a time; pipelined bytes wait their turn).
    fn process_client_rbuf(&mut self, token: usize) {
        loop {
            let parsed = {
                let Some(Entry::Client(c)) = self.entries[token].as_mut() else { return };
                if c.pending.is_some() || c.close_after_flush {
                    return;
                }
                match wire::frame_from_bytes(&c.rbuf) {
                    Ok(None) => return,
                    Ok(Some((frame, used))) => {
                        c.rbuf.drain(..used);
                        Ok(frame)
                    }
                    Err(e) => Err(e),
                }
            };
            match parsed {
                Ok(frame) => self.handle_request(token, frame),
                Err(e) => {
                    self.instruments.malformed.inc();
                    self.respond(token, &Response::Error { code: ErrorCode::Malformed, message: e.to_string() }, 0);
                    self.close_after_flush(token);
                    return;
                }
            }
        }
    }

    fn handle_request(&mut self, token: usize, frame: Frame) {
        self.instruments.requests.inc();
        if self.draining() && frame.opcode != opcode::SHUTDOWN {
            self.respond(
                token,
                &Response::Error { code: ErrorCode::Draining, message: "router is draining".into() },
                frame.req_id,
            );
            self.close_after_flush(token);
            return;
        }
        match frame.opcode {
            opcode::OPEN_SESSION => self.handle_open(token, frame),
            opcode::PUT_ITERATIONS | opcode::RESTART | opcode::SCRUB | opcode::CLOSE_SESSION => {
                self.handle_session_op(token, frame)
            }
            opcode::STATS => self.handle_stats(token, frame),
            opcode::SHUTDOWN => {
                // Drains the *router*; shards are managed independently.
                self.shared.draining.store(true, Ordering::SeqCst);
                self.respond(token, &Response::ShuttingDown, frame.req_id);
                self.close_after_flush(token);
            }
            other => {
                self.instruments.malformed.inc();
                self.respond(
                    token,
                    &Response::Error {
                        code: ErrorCode::Malformed,
                        message: format!("unknown request opcode {other:#x}"),
                    },
                    frame.req_id,
                );
                self.close_after_flush(token);
            }
        }
    }

    fn handle_open(&mut self, token: usize, frame: Frame) {
        let name = match Request::from_frame(&frame) {
            Ok(Request::OpenSession { name }) => name,
            _ => {
                self.instruments.malformed.inc();
                self.respond(
                    token,
                    &Response::Error { code: ErrorCode::Malformed, message: "bad open payload".into() },
                    frame.req_id,
                );
                self.close_after_flush(token);
                return;
            }
        };
        let planned = self.ring.shards_for(&name, self.config.replication.max(1));
        let live: Vec<usize> =
            planned.iter().copied().filter(|&s| self.shared.membership.is_up(s)).collect();
        if live.is_empty() {
            self.respond(
                token,
                &Response::Error { code: ErrorCode::Io, message: "no live shard for session".into() },
                frame.req_id,
            );
            return;
        }
        let raw = wire::encode_frame(frame.opcode, frame.req_id, &frame.payload);
        let sends: Vec<(usize, Vec<u8>)> = live.iter().map(|&s| (s, raw.clone())).collect();
        self.start_fanout(
            token,
            frame.req_id,
            PendingKind::Open { name, planned: planned.len() },
            sends,
        );
    }

    fn handle_session_op(&mut self, token: usize, frame: Frame) {
        if frame.payload.len() < 8 {
            self.instruments.malformed.inc();
            self.respond(
                token,
                &Response::Error { code: ErrorCode::Malformed, message: "payload too short".into() },
                frame.req_id,
            );
            self.close_after_flush(token);
            return;
        }
        let session = u64::from_le_bytes(frame.payload[0..8].try_into().expect("8 bytes"));
        let Some(sess) = self.sessions.get(&session) else {
            self.respond(
                token,
                &Response::Error {
                    code: ErrorCode::UnknownSession,
                    message: format!("session {session} is not open on this router"),
                },
                frame.req_id,
            );
            return;
        };
        let live: Vec<(usize, u64)> = sess
            .targets
            .iter()
            .copied()
            .filter(|&(s, _)| self.shared.membership.is_up(s))
            .collect();
        if live.is_empty() {
            self.respond(
                token,
                &Response::Error {
                    code: ErrorCode::Io,
                    message: format!("no live replica for session {session}"),
                },
                frame.req_id,
            );
            return;
        }
        let raw = wire::encode_frame(frame.opcode, frame.req_id, &frame.payload);
        let patched = |sid: u64| {
            let mut b = raw.clone();
            wire::patch_session_id(&mut b, sid).expect("session opcode");
            b
        };
        let (kind, sends): (PendingKind, Vec<(usize, Vec<u8>)>) = match frame.opcode {
            opcode::PUT_ITERATIONS => (
                PendingKind::Put { primary: live[0].0 },
                live.iter().map(|&(s, sid)| (s, patched(sid))).collect(),
            ),
            opcode::RESTART => {
                let (&(first, first_sid), rest) = live.split_first().expect("non-empty");
                (
                    PendingKind::Restart { template: raw.clone(), remaining: rest.to_vec() },
                    vec![(first, patched(first_sid))],
                )
            }
            opcode::SCRUB => (
                PendingKind::Scrub { primary: live[0].0 },
                live.iter().map(|&(s, sid)| (s, patched(sid))).collect(),
            ),
            opcode::CLOSE_SESSION => (
                PendingKind::Close { session },
                live.iter().map(|&(s, sid)| (s, patched(sid))).collect(),
            ),
            _ => unreachable!("caller matched session opcodes"),
        };
        self.start_fanout(token, frame.req_id, kind, sends);
    }

    fn handle_stats(&mut self, token: usize, frame: Frame) {
        let live: Vec<usize> =
            (0..self.shared.membership.len()).filter(|&s| self.shared.membership.is_up(s)).collect();
        if live.is_empty() {
            self.respond(
                token,
                &Response::Error { code: ErrorCode::Io, message: "no live shard".into() },
                frame.req_id,
            );
            return;
        }
        let raw = wire::encode_frame(frame.opcode, frame.req_id, &frame.payload);
        let sends: Vec<(usize, Vec<u8>)> = live.iter().map(|&s| (s, raw.clone())).collect();
        self.start_fanout(token, frame.req_id, PendingKind::Stats, sends);
    }

    // -- fan-out --------------------------------------------------------

    fn start_fanout(
        &mut self,
        token: usize,
        req_id: u64,
        kind: PendingKind,
        sends: Vec<(usize, Vec<u8>)>,
    ) {
        debug_assert!(!sends.is_empty());
        {
            let Some(Entry::Client(c)) = self.entries[token].as_mut() else { return };
            c.pending = Some(Pending {
                req_id,
                awaiting: sends.len(),
                started: Instant::now(),
                results: Vec::with_capacity(sends.len()),
                kind,
            });
        }
        for (shard, bytes) in sends {
            if let Err(msg) = self.forward(token, shard, bytes) {
                self.record_result(token, shard, ShardResult::Failed(msg));
            }
        }
    }

    /// Queue `bytes` on the client's upstream connection to `shard`,
    /// creating it (bounded connect) if needed.
    fn forward(&mut self, token: usize, shard: usize, bytes: Vec<u8>) -> Result<(), String> {
        let existing = {
            let Some(Entry::Client(c)) = self.entries[token].as_mut() else {
                return Err("client gone".into());
            };
            c.upstreams.get(&shard).copied()
        };
        let up_token = match existing.filter(|&t| matches!(self.entries.get(t).and_then(|e| e.as_ref()), Some(Entry::Upstream(_)))) {
            Some(t) => t,
            None => self.connect_upstream(token, shard)?,
        };
        {
            let Some(Entry::Upstream(u)) = self.entries[up_token].as_mut() else {
                return Err("upstream vanished".into());
            };
            u.wbuf.extend_from_slice(&bytes);
            u.in_flight = true;
        }
        self.instruments.forwarded.inc();
        self.flush_upstream(up_token);
        Ok(())
    }

    fn connect_upstream(&mut self, client: usize, shard: usize) -> Result<usize, String> {
        let addr = self.shared.membership.addr(shard).to_string();
        let sockaddr = addr
            .to_socket_addrs()
            .ok()
            .and_then(|mut it| it.next())
            .ok_or_else(|| format!("unresolvable shard address {addr}"))?;
        let stream = match TcpStream::connect_timeout(&sockaddr, self.config.connect_timeout) {
            Ok(s) => s,
            Err(e) => {
                if self.shared.membership.report_failure(shard) {
                    self.shared.membership.record_transition(shard, &self.shared.health);
                }
                return Err(format!("connect {addr}: {e}"));
            }
        };
        stream.set_nonblocking(true).map_err(|e| e.to_string())?;
        let _ = stream.set_nodelay(true);
        let up_token = self.alloc(Entry::Upstream(UpstreamConn {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            shard,
            client,
            in_flight: false,
            want_write: false,
        }));
        let fd = match self.entries[up_token].as_ref() {
            Some(Entry::Upstream(u)) => u.stream.as_raw_fd(),
            _ => unreachable!(),
        };
        if self.poller.register(fd, up_token, Interest::READ).is_err() {
            self.entries[up_token] = None;
            self.pending_free.push(up_token);
            return Err("poller registration failed".into());
        }
        if let Some(Entry::Client(c)) = self.entries[client].as_mut() {
            c.upstreams.insert(shard, up_token);
        }
        Ok(up_token)
    }

    fn record_result(&mut self, client: usize, shard: usize, result: ShardResult) {
        let finalize = {
            let Some(Entry::Client(c)) = self.entries.get_mut(client).and_then(|e| e.as_mut()) else {
                return;
            };
            let Some(p) = c.pending.as_mut() else { return };
            if let ShardResult::Frame(f) = &result {
                if f.opcode != opcode::BUSY && f.req_id != p.req_id {
                    return; // stale response from a superseded request
                }
            }
            p.results.push((shard, result));
            p.awaiting = p.awaiting.saturating_sub(1);
            p.awaiting == 0
        };
        if finalize {
            self.finalize(client);
        }
    }

    fn finalize(&mut self, token: usize) {
        let pending = {
            let Some(Entry::Client(c)) = self.entries[token].as_mut() else { return };
            match c.pending.take() {
                Some(p) => p,
                None => return,
            }
        };
        let req_id = pending.req_id;
        match pending.kind {
            PendingKind::Open { name, planned } => {
                let resp = self.finish_open(name, planned, &pending.results);
                self.respond(token, &resp, req_id);
            }
            PendingKind::Put { primary } => self.finish_put(token, req_id, primary, pending.results),
            PendingKind::Restart { template, remaining } => {
                self.finish_restart(token, req_id, template, remaining, pending.results);
            }
            PendingKind::Scrub { primary } => {
                let resp = finish_scrub(primary, &pending.results);
                self.respond(token, &resp, req_id);
            }
            PendingKind::Stats => {
                let resp = self.finish_stats(&pending.results);
                self.respond(token, &resp, req_id);
            }
            PendingKind::Close { session } => {
                let resp = self.finish_close(session, &pending.results);
                self.respond(token, &resp, req_id);
            }
        }
        if self.draining() {
            self.close_after_flush(token);
        } else {
            self.process_client_rbuf(token);
        }
    }

    fn finish_open(&mut self, name: String, planned: usize, results: &[(usize, ShardResult)]) -> Response {
        let mut successes: Vec<(usize, u64)> = Vec::new();
        for (shard, r) in results {
            if let ShardResult::Frame(f) = r {
                if f.opcode == opcode::SESSION_OPENED {
                    if let Ok(Response::SessionOpened { session }) = Response::from_frame(f) {
                        successes.push((*shard, session));
                    }
                }
            }
        }
        if successes.is_empty() {
            return error_response_from(results);
        }
        if successes.len() < planned {
            self.instruments.degraded_opens.inc();
        }
        let plan = self.ring.shards_for(&name, self.config.replication.max(1));
        let gid = *self.by_name.entry(name.clone()).or_insert_with(|| {
            let id = self.next_session;
            self.next_session += 1;
            id
        });
        let entry = self
            .sessions
            .entry(gid)
            .or_insert_with(|| GatewaySession { name, targets: Vec::new() });
        for (shard, sid) in successes {
            match entry.targets.iter_mut().find(|(s, _)| *s == shard) {
                Some(t) => t.1 = sid,
                None => entry.targets.push((shard, sid)),
            }
        }
        entry
            .targets
            .sort_by_key(|(s, _)| plan.iter().position(|p| p == s).unwrap_or(usize::MAX));
        self.instruments.open_sessions.set(self.sessions.len() as i64);
        Response::SessionOpened { session: gid }
    }

    fn finish_put(&mut self, token: usize, req_id: u64, primary: usize, results: Vec<(usize, ShardResult)>) {
        for (shard, r) in &results {
            let ok = matches!(r, ShardResult::Frame(f) if f.opcode == opcode::PUT_DONE);
            if *shard != primary && !ok {
                self.instruments.replica_put_failures.inc();
            }
        }
        // The primary's ack is the client's ack; a replica ack stands
        // in when the primary died mid-batch (the data is durable on
        // the replica — that is what replication is for).
        let primary_frame = results.iter().find_map(|(s, r)| match r {
            ShardResult::Frame(f) if *s == primary => Some(f),
            _ => None,
        });
        match primary_frame {
            Some(f) if f.opcode == opcode::PUT_DONE => {
                let bytes = wire::encode_frame(f.opcode, f.req_id, &f.payload);
                self.queue_bytes(token, &bytes);
            }
            other => {
                let replica_ack = results.iter().find_map(|(s, r)| match r {
                    ShardResult::Frame(f) if *s != primary && f.opcode == opcode::PUT_DONE => Some(f),
                    _ => None,
                });
                if let Some(f) = replica_ack {
                    self.instruments.failovers.inc();
                    let bytes = wire::encode_frame(f.opcode, f.req_id, &f.payload);
                    self.queue_bytes(token, &bytes);
                } else if let Some(f) = other {
                    // Primary answered with a typed error: forward it.
                    let bytes = wire::encode_frame(f.opcode, f.req_id, &f.payload);
                    self.queue_bytes(token, &bytes);
                } else {
                    let resp = error_response_from(&results);
                    self.respond(token, &resp, req_id);
                }
            }
        }
    }

    fn finish_restart(
        &mut self,
        token: usize,
        req_id: u64,
        template: Vec<u8>,
        mut remaining: Vec<(usize, u64)>,
        results: Vec<(usize, ShardResult)>,
    ) {
        let success = results.iter().find_map(|(_, r)| match r {
            ShardResult::Frame(f) if f.opcode != opcode::ERROR && f.opcode != opcode::BUSY => Some(f),
            _ => None,
        });
        if let Some(f) = success {
            let bytes = wire::encode_frame(f.opcode, f.req_id, &f.payload);
            self.queue_bytes(token, &bytes);
            return;
        }
        if !remaining.is_empty() {
            // Fail over to the next replica with the same request.
            let (shard, sid) = remaining.remove(0);
            self.instruments.failovers.inc();
            let mut bytes = template.clone();
            let _ = wire::patch_session_id(&mut bytes, sid);
            {
                let Some(Entry::Client(c)) = self.entries[token].as_mut() else { return };
                c.pending = Some(Pending {
                    req_id,
                    awaiting: 1,
                    started: Instant::now(),
                    results: Vec::new(),
                    kind: PendingKind::Restart { template, remaining },
                });
            }
            if let Err(msg) = self.forward(token, shard, bytes) {
                self.record_result(token, shard, ShardResult::Failed(msg));
            }
            return;
        }
        let resp = error_response_from(&results);
        self.respond(token, &resp, req_id);
    }

    fn finish_stats(&mut self, results: &[(usize, ShardResult)]) -> Response {
        let mut replies: Vec<StatsReply> = Vec::new();
        for (_, r) in results {
            if let ShardResult::Frame(f) = r {
                if f.opcode == opcode::STATS_DATA {
                    if let Ok(Response::StatsData(s)) = Response::from_frame(f) {
                        replies.push(*s);
                    }
                }
            }
        }
        if replies.is_empty() {
            return error_response_from(results);
        }
        let by_name = &self.by_name;
        let merged = stats::aggregate(&replies, |name| by_name.get(name).copied(), self.draining());
        Response::StatsData(Box::new(merged))
    }

    fn finish_close(&mut self, session: u64, results: &[(usize, ShardResult)]) -> Response {
        let any_closed = results
            .iter()
            .any(|(_, r)| matches!(r, ShardResult::Frame(f) if f.opcode == opcode::SESSION_CLOSED));
        if !any_closed {
            return error_response_from(results);
        }
        if let Some(sess) = self.sessions.remove(&session) {
            self.by_name.remove(&sess.name);
        }
        self.instruments.open_sessions.set(self.sessions.len() as i64);
        Response::SessionClosed
    }

    // -- upstream side --------------------------------------------------

    fn upstream_ready(&mut self, token: usize, readable: bool, writable: bool, error: bool) {
        if error {
            self.upstream_failed(token, "socket error");
            return;
        }
        if writable && !self.flush_upstream(token) {
            return;
        }
        if readable {
            let closed = {
                let Some(Entry::Upstream(u)) = self.entries[token].as_mut() else { return };
                matches!(read_available(&mut u.stream, &mut u.rbuf), ReadStatus::Closed)
            };
            // Parse what arrived before acting on EOF: a shard may
            // answer and close in one burst (Busy does exactly that).
            loop {
                let parsed = {
                    let Some(Entry::Upstream(u)) = self.entries[token].as_mut() else { return };
                    wire::frame_from_bytes(&u.rbuf).map(|opt| {
                        opt.map(|(frame, used)| {
                            u.rbuf.drain(..used);
                            frame
                        })
                    })
                };
                match parsed {
                    Ok(Some(frame)) => self.on_upstream_frame(token, frame),
                    Ok(None) => break,
                    Err(_) => {
                        self.upstream_failed(token, "malformed response from shard");
                        return;
                    }
                }
            }
            if closed {
                self.upstream_failed(token, "shard closed the connection");
            }
        }
    }

    fn on_upstream_frame(&mut self, token: usize, frame: Frame) {
        let (client, shard, busy) = {
            let Some(Entry::Upstream(u)) = self.entries[token].as_mut() else { return };
            u.in_flight = false;
            (u.client, u.shard, frame.opcode == opcode::BUSY)
        };
        if busy {
            // The shard's acceptor is saturated and will close on us;
            // tear the upstream down and surface the typed signal.
            self.drop_upstream_quiet(token);
            self.record_result(client, shard, ShardResult::Busy);
            return;
        }
        if self.shared.membership.report_success(shard) {
            self.shared.membership.record_transition(shard, &self.shared.health);
        }
        self.record_result(client, shard, ShardResult::Frame(frame));
    }

    fn upstream_failed(&mut self, token: usize, msg: &str) {
        if !matches!(self.entries.get(token).and_then(|e| e.as_ref()), Some(Entry::Upstream(_))) {
            return;
        }
        let Some(Entry::Upstream(u)) = self.entries[token].take() else { unreachable!() };
        let _ = self.poller.deregister(u.stream.as_raw_fd());
        self.pending_free.push(token);
        if let Some(Entry::Client(c)) = self.entries.get_mut(u.client).and_then(|e| e.as_mut()) {
            c.upstreams.remove(&u.shard);
        }
        if self.shared.membership.report_failure(u.shard) {
            self.shared.membership.record_transition(u.shard, &self.shared.health);
        }
        if u.in_flight {
            self.record_result(u.client, u.shard, ShardResult::Failed(msg.to_string()));
        }
    }

    /// Tear down an upstream without a health report or pending result
    /// (Busy handling and client teardown record their own outcomes).
    fn drop_upstream_quiet(&mut self, token: usize) {
        if !matches!(self.entries.get(token).and_then(|e| e.as_ref()), Some(Entry::Upstream(_))) {
            return;
        }
        let Some(Entry::Upstream(u)) = self.entries[token].take() else { unreachable!() };
        let _ = self.poller.deregister(u.stream.as_raw_fd());
        self.pending_free.push(token);
        if let Some(Entry::Client(c)) = self.entries.get_mut(u.client).and_then(|e| e.as_mut()) {
            c.upstreams.remove(&u.shard);
        }
    }

    // -- plumbing -------------------------------------------------------

    fn respond(&mut self, token: usize, resp: &Response, req_id: u64) {
        // Busy travels with request id 0, matching the shard acceptor
        // (the client exempts Busy from its id-echo check).
        let (req_id, is_busy) = match resp {
            Response::Busy => (0, true),
            _ => (req_id, false),
        };
        if is_busy {
            self.instruments.busy.inc();
        }
        let bytes = wire::encode_frame(resp.opcode(), req_id, &resp.payload());
        self.queue_bytes(token, &bytes);
    }

    fn queue_bytes(&mut self, token: usize, bytes: &[u8]) {
        {
            let Some(Entry::Client(c)) = self.entries[token].as_mut() else { return };
            c.wbuf.extend_from_slice(bytes);
            c.last_activity = Instant::now();
        }
        self.flush_client(token);
    }

    fn close_after_flush(&mut self, token: usize) {
        let flushed = {
            let Some(Entry::Client(c)) = self.entries[token].as_mut() else { return };
            c.close_after_flush = true;
            c.wpos >= c.wbuf.len()
        };
        if flushed {
            self.close_client(token);
        }
    }

    /// Returns false if the connection was closed.
    fn flush_client(&mut self, token: usize) -> bool {
        let (outcome, close_after) = {
            let Some(Entry::Client(c)) = self.entries[token].as_mut() else { return false };
            (flush_buf(&mut c.stream, &mut c.wbuf, &mut c.wpos), c.close_after_flush)
        };
        match outcome {
            FlushOutcome::Failed => {
                self.close_client(token);
                false
            }
            FlushOutcome::Done if close_after => {
                self.close_client(token);
                false
            }
            _ => {
                self.refresh_interest(token);
                true
            }
        }
    }

    /// Returns false if the upstream died.
    fn flush_upstream(&mut self, token: usize) -> bool {
        let outcome = {
            let Some(Entry::Upstream(u)) = self.entries[token].as_mut() else { return false };
            flush_buf(&mut u.stream, &mut u.wbuf, &mut u.wpos)
        };
        match outcome {
            FlushOutcome::Failed => {
                self.upstream_failed(token, "write to shard failed");
                false
            }
            _ => {
                self.refresh_interest(token);
                true
            }
        }
    }

    fn refresh_interest(&mut self, token: usize) {
        let (fd, want, registered) = match self.entries[token].as_mut() {
            Some(Entry::Client(c)) => (c.stream.as_raw_fd(), c.wpos < c.wbuf.len(), &mut c.want_write),
            Some(Entry::Upstream(u)) => (u.stream.as_raw_fd(), u.wpos < u.wbuf.len(), &mut u.want_write),
            None => return,
        };
        if want != *registered {
            *registered = want;
            let interest = if want { Interest::READ_WRITE } else { Interest::READ };
            let _ = self.poller.reregister(fd, token, interest);
        }
    }

    fn close_client(&mut self, token: usize) {
        if !matches!(self.entries.get(token).and_then(|e| e.as_ref()), Some(Entry::Client(_))) {
            return;
        }
        let Some(Entry::Client(c)) = self.entries[token].take() else { unreachable!() };
        let _ = self.poller.deregister(c.stream.as_raw_fd());
        self.pending_free.push(token);
        for (_, up) in c.upstreams {
            self.drop_upstream_quiet(up);
        }
        self.client_count -= 1;
        self.instruments.connections.add(-1);
    }

    // -- maintenance ----------------------------------------------------

    fn begin_drain(&mut self) {
        if let Some(l) = self.listener.take() {
            let _ = self.poller.deregister(l.as_raw_fd());
            drop(l);
            // Idle connections have nothing to wait for.
            let idle: Vec<usize> = self
                .entries
                .iter()
                .enumerate()
                .filter_map(|(t, e)| match e {
                    Some(Entry::Client(c)) if c.pending.is_none() && c.wpos >= c.wbuf.len() => Some(t),
                    _ => None,
                })
                .collect();
            for t in idle {
                self.close_client(t);
            }
        }
    }

    fn sweep(&mut self) {
        enum Action {
            Idle,
            StuckRequest,
        }
        let now = Instant::now();
        let timeout = self.config.idle_timeout;
        let actions: Vec<(usize, Action)> = self
            .entries
            .iter()
            .enumerate()
            .filter_map(|(t, e)| match e {
                Some(Entry::Client(c)) => match &c.pending {
                    Some(p) if now.duration_since(p.started) > timeout => {
                        Some((t, Action::StuckRequest))
                    }
                    None if now.duration_since(c.last_activity) > timeout => Some((t, Action::Idle)),
                    _ => None,
                },
                _ => None,
            })
            .collect();
        for (t, action) in actions {
            match action {
                Action::Idle => {
                    self.instruments.idle_disconnects.inc();
                    self.close_client(t);
                }
                Action::StuckRequest => {
                    // A shard accepted the request and never answered;
                    // the upstream's state is unknowable, so answer the
                    // client with a typed error and drop the lot.
                    if let Some(Entry::Client(c)) = self.entries[t].as_mut() {
                        c.pending = None;
                    }
                    self.respond(
                        t,
                        &Response::Error { code: ErrorCode::Io, message: "shard timed out".into() },
                        0,
                    );
                    self.close_after_flush(t);
                }
            }
        }
    }
}
