/root/repo/target/debug/deps/end_to_end_climate-a3f41ecf307f9758.d: tests/end_to_end_climate.rs

/root/repo/target/debug/deps/libend_to_end_climate-a3f41ecf307f9758.rmeta: tests/end_to_end_climate.rs

tests/end_to_end_climate.rs:
