//! High-level compression pipeline: the [`Compressor`] front-end and the
//! [`DeltaChain`] that models a full-checkpoint-plus-deltas sequence
//! (Algorithm 1 in the paper).

use crate::config::Config;
use crate::decode;
use crate::encode::{self, CompressedIteration, IterationStats};
use crate::error::NumarckError;

/// The user-facing compressor: holds a validated [`Config`] and encodes
/// iteration pairs.
#[derive(Debug, Clone)]
pub struct Compressor {
    config: Config,
}

impl Compressor {
    /// Build from a validated config.
    pub fn new(config: Config) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Compress the transition `prev → curr`.
    pub fn compress(
        &self,
        prev: &[f64],
        curr: &[f64],
    ) -> Result<(CompressedIteration, IterationStats), NumarckError> {
        encode::encode(prev, curr, &self.config)
    }
}

/// Which previous iteration the encoder computes change ratios against.
///
/// The paper encodes between *true* consecutive iterations
/// ([`ReferenceMode::TrueValues`]): cheap in memory and deterministic,
/// but the decoder replays deltas against *reconstructions*, so restart
/// error compounds with chain length (§II-D, Fig. 8). The closed-loop
/// alternative ([`ReferenceMode::Reconstructed`]) encodes against the
/// decoder's own previous reconstruction — exactly what video codecs do
/// to stop drift — so the reconstruction error of *every* iteration is
/// bounded by a single `E`, at the cost of running the decode path
/// in-situ at encode time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReferenceMode {
    /// Paper-faithful open loop: ratios between true iterations.
    #[default]
    TrueValues,
    /// Closed loop: ratios against the previous reconstruction; error
    /// does not accumulate along the chain.
    Reconstructed,
}

/// A full checkpoint followed by a chain of compressed deltas — the
/// on-storage shape of a NUMARCK checkpoint sequence for one variable.
///
/// `base` is iteration `S` stored exactly (the paper's `D_0`); each delta
/// `d` reconstructs iteration `S + d + 1` from the *reconstruction* of the
/// previous iteration. With the default [`ReferenceMode::TrueValues`]
/// restart error accumulates exactly as in the paper's §II-D.
#[derive(Debug, Clone)]
pub struct DeltaChain {
    base: Vec<f64>,
    deltas: Vec<CompressedIteration>,
    /// Stats of each appended delta, aligned with `deltas`.
    pub stats: Vec<IterationStats>,
    config: Config,
    mode: ReferenceMode,
    /// The encoding reference for the next append: the latest true
    /// iteration (open loop) or its reconstruction (closed loop).
    reference: Vec<f64>,
}

impl DeltaChain {
    /// Start a chain from a full (exact) checkpoint, open-loop (the
    /// paper's scheme).
    pub fn new(base: Vec<f64>, config: Config) -> Self {
        Self::with_mode(base, config, ReferenceMode::TrueValues)
    }

    /// Start a chain with an explicit reference mode.
    pub fn with_mode(base: Vec<f64>, config: Config, mode: ReferenceMode) -> Self {
        let reference = base.clone();
        Self { base, deltas: Vec::new(), stats: Vec::new(), config, mode, reference }
    }

    /// The reference mode this chain encodes with.
    pub fn mode(&self) -> ReferenceMode {
        self.mode
    }

    /// The exact base checkpoint.
    pub fn base(&self) -> &[f64] {
        &self.base
    }

    /// Number of deltas appended.
    pub fn len(&self) -> usize {
        self.deltas.len()
    }

    /// True when no deltas have been appended.
    pub fn is_empty(&self) -> bool {
        self.deltas.is_empty()
    }

    /// The compressed deltas.
    pub fn deltas(&self) -> &[CompressedIteration] {
        &self.deltas
    }

    /// Append the next iteration. Open loop computes change ratios
    /// against the *true* previous iteration (faithful to the paper);
    /// closed loop computes them against the previous *reconstruction*,
    /// so the decoder's state never drifts from the encoder's.
    pub fn append(&mut self, next: &[f64]) -> Result<IterationStats, NumarckError> {
        let (block, stats) = encode::encode(&self.reference, next, &self.config)?;
        self.reference = match self.mode {
            ReferenceMode::TrueValues => next.to_vec(),
            // Mirror the decoder: reconstruct against the previous
            // reference (which is itself a reconstruction).
            ReferenceMode::Reconstructed => decode::reconstruct(&self.reference, &block)?,
        };
        self.deltas.push(block);
        self.stats.push(stats);
        Ok(stats)
    }

    /// Reconstruct iteration `idx` (0 = base, `len()` = latest) by
    /// replaying the delta chain.
    pub fn reconstruct(&self, idx: usize) -> Result<Vec<f64>, NumarckError> {
        if idx > self.deltas.len() {
            return Err(NumarckError::Corrupt(format!(
                "iteration {idx} beyond chain length {}",
                self.deltas.len()
            )));
        }
        let mut state = self.base.clone();
        for block in &self.deltas[..idx] {
            state = decode::reconstruct(&state, block)?;
        }
        Ok(state)
    }

    /// Reconstruct every iteration 0..=len(), reusing the running state
    /// (O(chain) instead of O(chain²) for callers that need them all).
    pub fn reconstruct_all(&self) -> Result<Vec<Vec<f64>>, NumarckError> {
        let mut out = Vec::with_capacity(self.deltas.len() + 1);
        let mut state = self.base.clone();
        out.push(state.clone());
        for block in &self.deltas {
            state = decode::reconstruct(&state, block)?;
            out.push(state.clone());
        }
        Ok(out)
    }

    /// Total serialized bytes of the chain (base stored raw + deltas).
    pub fn storage_bytes(&self) -> usize {
        self.base.len() * 8
            + self.deltas.iter().map(crate::serialize::serialized_len).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Strategy;

    fn cfg() -> Config {
        Config::new(8, 0.001, Strategy::Clustering).unwrap()
    }

    fn evolve(state: &[f64], step: usize) -> Vec<f64> {
        state
            .iter()
            .enumerate()
            .map(|(i, v)| v * (1.0 + 0.002 * (((i + step) % 5) as f64 - 2.0)))
            .collect()
    }

    #[test]
    fn chain_reconstructs_base_exactly() {
        let base: Vec<f64> = (0..500).map(|i| 1.0 + i as f64).collect();
        let chain = DeltaChain::new(base.clone(), cfg());
        assert_eq!(chain.reconstruct(0).unwrap(), base);
    }

    #[test]
    fn chain_error_stays_within_compound_budget() {
        let base: Vec<f64> = (0..2000).map(|i| 1.0 + (i % 37) as f64).collect();
        let mut chain = DeltaChain::new(base.clone(), cfg());
        let mut truth = vec![base];
        for s in 1..=6 {
            let next = evolve(truth.last().unwrap(), s);
            chain.append(&next).unwrap();
            truth.push(next);
        }
        for idx in 0..=6usize {
            let rec = chain.reconstruct(idx).unwrap();
            let budget = (1.0f64 + 0.001).powi(idx as i32) - 1.0 + 1e-9;
            for (r, t) in rec.iter().zip(&truth[idx]) {
                let rel = ((r - t) / t).abs();
                assert!(rel <= budget, "iter {idx}: rel {rel} > {budget}");
            }
        }
    }

    #[test]
    fn reconstruct_all_matches_pointwise() {
        let base: Vec<f64> = (0..300).map(|i| 2.0 + (i % 11) as f64).collect();
        let mut chain = DeltaChain::new(base, cfg());
        for s in 1..=4 {
            let next = evolve(&chain.reconstruct(s - 1).unwrap(), s);
            // Note: evolving the reconstruction, not truth — still a valid
            // sequence for this equivalence test.
            chain.append(&next).unwrap();
        }
        let all = chain.reconstruct_all().unwrap();
        assert_eq!(all.len(), 5);
        for (i, rec) in all.iter().enumerate() {
            assert_eq!(rec, &chain.reconstruct(i).unwrap());
        }
    }

    #[test]
    fn out_of_range_iteration_rejected() {
        let chain = DeltaChain::new(vec![1.0], cfg());
        assert!(chain.reconstruct(1).is_err());
    }

    #[test]
    fn storage_is_much_smaller_than_raw() {
        let n = 50_000;
        let base: Vec<f64> = (0..n).map(|i| 1.0 + ((i * 7) % 101) as f64).collect();
        let mut chain = DeltaChain::new(base, cfg());
        let mut state = chain.base().to_vec();
        let steps = 10;
        for s in 1..=steps {
            state = evolve(&state, s);
            chain.append(&state).unwrap();
        }
        let raw = n * 8 * (steps + 1);
        let stored = chain.storage_bytes();
        assert!(
            (stored as f64) < raw as f64 * 0.25,
            "chain storage {stored} should be far below raw {raw}"
        );
    }

    #[test]
    fn closed_loop_error_does_not_accumulate() {
        // Open loop: error budget grows with chain length. Closed loop:
        // every iteration's reconstruction is within ~E of truth no
        // matter how long the chain is.
        let tol = 0.001;
        let config = Config::new(8, tol, Strategy::Clustering).unwrap();
        let base: Vec<f64> = (0..1500).map(|i| 1.0 + (i % 23) as f64).collect();
        let mut open = DeltaChain::new(base.clone(), config);
        let mut closed = DeltaChain::with_mode(base.clone(), config, ReferenceMode::Reconstructed);
        let steps = 20usize;
        let mut truth = vec![base];
        for s in 1..=steps {
            let next = evolve(truth.last().unwrap(), s);
            open.append(&next).unwrap();
            closed.append(&next).unwrap();
            truth.push(next);
        }
        let max_rel = |rec: &[f64], exact: &[f64]| {
            rec.iter()
                .zip(exact)
                .map(|(r, t)| ((r - t) / t).abs())
                .fold(0.0f64, f64::max)
        };
        let closed_rec = closed.reconstruct(steps).unwrap();
        let closed_err = max_rel(&closed_rec, &truth[steps]);
        // Single-step bound (ratio error E transfers with a prev/curr
        // factor; changes here are ≤ 0.4%).
        assert!(
            closed_err <= tol / 0.99 + 1e-12,
            "closed-loop error {closed_err} exceeds single-step bound"
        );
        // And the closed loop is at least as accurate as the open loop at
        // the end of a long chain.
        let open_rec = open.reconstruct(steps).unwrap();
        let open_err = max_rel(&open_rec, &truth[steps]);
        assert!(
            closed_err <= open_err + 1e-12,
            "closed {closed_err} should not exceed open {open_err}"
        );
    }

    #[test]
    fn closed_loop_reconstruction_matches_encoder_reference() {
        // The decoder's chain state must equal the encoder's running
        // reference bit-for-bit — that is the closed-loop invariant.
        let config = Config::new(8, 0.002, Strategy::LogScale).unwrap();
        let base: Vec<f64> = (0..400).map(|i| 2.0 + (i % 13) as f64).collect();
        let mut chain = DeltaChain::with_mode(base, config, ReferenceMode::Reconstructed);
        let mut state = chain.base().to_vec();
        for s in 1..=6 {
            state = evolve(&state, s);
            chain.append(&state).unwrap();
        }
        let rec = chain.reconstruct(6).unwrap();
        assert_eq!(rec, chain.reference);
    }

    #[test]
    fn mode_and_accessors() {
        let chain = DeltaChain::with_mode(vec![1.0], cfg(), ReferenceMode::Reconstructed);
        assert_eq!(chain.mode(), ReferenceMode::Reconstructed);
        assert!(chain.is_empty());
        assert_eq!(chain.len(), 0);
        assert!(chain.deltas().is_empty());
        let open = DeltaChain::new(vec![1.0], cfg());
        assert_eq!(open.mode(), ReferenceMode::TrueValues);
    }

    #[test]
    fn compressor_front_end_equals_encode() {
        let prev: Vec<f64> = (0..100).map(|i| 1.0 + i as f64).collect();
        let curr: Vec<f64> = prev.iter().map(|v| v * 1.01).collect();
        let c = Compressor::new(cfg());
        let (a, _) = c.compress(&prev, &curr).unwrap();
        let (b, _) = crate::encode::encode(&prev, &curr, c.config()).unwrap();
        assert_eq!(a, b);
    }
}
