//! # numarck-compact — chain-shape policy engine
//!
//! Restart cost in a NUMARCK checkpoint chain grows linearly with the
//! distance to the last full checkpoint (the paper's §II-D replay).
//! This crate owns the three policies that bound it, generalising the
//! repair path's "materialize a fresh full" trick into background
//! maintenance:
//!
//! * [`merge`] — **compaction**: k consecutive deltas become one merged
//!   delta whose replay is bit-exact equal to the original chain's, by
//!   construction (exact composed ratios where the float math is
//!   invertible, exact escaped copies where it is not) and verified end
//!   to end through the serialised bytes before anything is written.
//!   Merged deltas record their span in the container header, and the
//!   restart engine's backward walk follows spans natively.
//! * [`chain`] + [`policy`] — **tiered full placement**: a linear
//!   [`chain::CostModel`] (seeded from measured `numarck_decode_ns`
//!   timings) models each iteration's restart latency; fulls are
//!   promoted until the worst case meets a configurable SLO.
//! * [`gc`] — **retention GC**: keep-last-N-fulls / keep-every-kth /
//!   min-age rules compute the retained iterations, reachability over
//!   the span graph computes liveness, and deletion happens only after
//!   every live replacement is CRC-verified on disk.
//!
//! Every write goes through [`policy::IntentLog`] — implemented by
//! numarck-serve's write-ahead intent journal — plus the store's
//! atomic-rename discipline, so a crash at any instruction boundary
//! leaves the chain either untouched or verifiably advanced. See
//! DESIGN.md "Compaction & placement policy" for the error-composition
//! rule and the GC safety invariants.

pub mod chain;
pub mod gc;
pub mod merge;
pub mod obs;
pub mod policy;

pub use chain::{ChainEntry, ChainView, CostModel, ResolvedChain};
pub use gc::GcReport;
pub use merge::{build_merged_block, merge_window, MergeStats, MergedDelta};
pub use policy::{CompactionConfig, CompactionReport, Compactor, IntentLog, NoJournal};
