/root/repo/target/debug/deps/numarck_suite-efde08ee9137ac9d.d: src/lib.rs

/root/repo/target/debug/deps/libnumarck_suite-efde08ee9137ac9d.rmeta: src/lib.rs

src/lib.rs:
