/root/repo/target/debug/deps/all_experiments-436c2f82c89157ef.d: crates/numarck-bench/src/bin/all_experiments.rs

/root/repo/target/debug/deps/all_experiments-436c2f82c89157ef: crates/numarck-bench/src/bin/all_experiments.rs

crates/numarck-bench/src/bin/all_experiments.rs:
