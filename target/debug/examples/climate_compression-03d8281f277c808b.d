/root/repo/target/debug/examples/climate_compression-03d8281f277c808b.d: examples/climate_compression.rs

/root/repo/target/debug/examples/climate_compression-03d8281f277c808b: examples/climate_compression.rs

examples/climate_compression.rs:
