/root/repo/target/debug/deps/baseline_comparison-86a1ab29b82a9dfa.d: tests/baseline_comparison.rs

/root/repo/target/debug/deps/libbaseline_comparison-86a1ab29b82a9dfa.rmeta: tests/baseline_comparison.rs

tests/baseline_comparison.rs:
