//! # NUMARCK — error-bounded lossy checkpoint compression
//!
//! A from-scratch Rust implementation of *NUMARCK: Machine Learning
//! Algorithm for Resiliency and Checkpointing* (Chen et al., SC 2014).
//!
//! Scientific checkpoint data is high-entropy: the raw floating-point
//! snapshots of a simulation have few repeated bit patterns and resist
//! lossless compression. NUMARCK's observation is that the *relative
//! change* of each data point between two consecutive checkpoints is
//! highly structured — most points change by a small amount drawn from a
//! narrow, learnable distribution. The algorithm therefore:
//!
//! 1. computes the **change ratio** `Δ_ij = (D_i,j − D_{i−1,j}) / D_{i−1,j}`
//!    for every point (forward predictive coding, [`ratio`]);
//! 2. **learns the distribution** of the ratios with one of three
//!    strategies — equal-width binning, log-scale binning, or K-means
//!    clustering seeded from the equal-width histogram ([`strategy`]) —
//!    producing at most `2^B − 1` representative ratios;
//! 3. **encodes** each point as a `B`-bit index into that table
//!    ([`encode`]). Index 0 means `|Δ| < E` (carry the previous value).
//!    Any point whose best representative misses the true ratio by more
//!    than the user tolerance `E` is escaped to exact 8-byte storage, so
//!    the per-point error bound holds *by construction*;
//! 4. **restarts** a simulation by replaying the compressed delta chain on
//!    top of the last full checkpoint ([`decode`]).
//!
//! ## Quick start
//!
//! ```
//! use numarck::{Compressor, Config, Strategy};
//!
//! // Two consecutive checkpoints of the same variable.
//! let prev: Vec<f64> = (0..4096).map(|i| 1.0 + (i as f64 * 0.01).sin()).collect();
//! let curr: Vec<f64> = prev.iter().map(|v| v * 1.002).collect(); // 0.2% growth
//!
//! let config = Config::new(8, 0.001, Strategy::Clustering).unwrap();
//! let compressor = Compressor::new(config);
//! let (compressed, stats) = compressor.compress(&prev, &curr).unwrap();
//!
//! // Per-point error bound holds by construction.
//! let restored = numarck::decode::reconstruct(&prev, &compressed).unwrap();
//! for (r, c) in restored.iter().zip(&curr) {
//!     assert!(((r - c) / c).abs() <= 0.001 + 1e-12);
//! }
//! assert!(stats.compression_ratio_eq3 > 0.5);
//! ```

pub mod anomaly;
pub mod autotune;
pub mod bitstream;
pub mod config;
pub mod decode;
pub mod drift;
pub mod encode;
pub mod error;
pub mod fpc;
pub mod group;
pub mod huffman;
pub mod metrics;
pub mod obs;
pub mod pipeline;
pub mod ratio;
pub mod serialize;
pub mod strategy;
pub mod table;

pub use config::{ClusteringOptions, Config};
pub use encode::{CompressedIteration, IterationStats};
pub use error::NumarckError;
pub use pipeline::{Compressor, DeltaChain, ReferenceMode};
pub use strategy::Strategy;
pub use table::BinTable;
