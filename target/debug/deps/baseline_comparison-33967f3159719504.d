/root/repo/target/debug/deps/baseline_comparison-33967f3159719504.d: tests/baseline_comparison.rs

/root/repo/target/debug/deps/baseline_comparison-33967f3159719504: tests/baseline_comparison.rs

tests/baseline_comparison.rs:
