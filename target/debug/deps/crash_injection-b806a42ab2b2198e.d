/root/repo/target/debug/deps/crash_injection-b806a42ab2b2198e.d: crates/numarck-cli/tests/crash_injection.rs Cargo.toml

/root/repo/target/debug/deps/libcrash_injection-b806a42ab2b2198e.rmeta: crates/numarck-cli/tests/crash_injection.rs Cargo.toml

crates/numarck-cli/tests/crash_injection.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_numarck=placeholder:numarck
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
