//! Throughput of the baseline compressors (Table I/II comparators).
//! ISABELA's cost is dominated by the per-window sort + 30-coefficient
//! spline fit; B-Splines by one huge banded least-squares solve.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use numarck_baselines::{BSplineCompressor, IsabelaCompressor, LossyCompressor};
use numarck_par::rng::Xoshiro256PlusPlus;

fn snapshot(n: usize) -> Vec<f64> {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
    (0..n).map(|_| rng.uniform(-100.0, 100.0)).collect()
}

fn bench_baselines(c: &mut Criterion) {
    let n = 1 << 16;
    let data = snapshot(n);
    let mut group = c.benchmark_group("baseline_roundtrip");
    group.throughput(Throughput::Bytes((n * 8) as u64));
    group.sample_size(10);
    group.bench_function("isabela_w512", |b| {
        let comp = IsabelaCompressor::cmip5_default();
        b.iter(|| comp.roundtrip(&data));
    });
    group.bench_function("isabela_w256", |b| {
        let comp = IsabelaCompressor::flash_default();
        b.iter(|| comp.roundtrip(&data));
    });
    group.bench_function("bsplines_p08", |b| {
        let comp = BSplineCompressor::paper_default();
        b.iter(|| comp.roundtrip(&data));
    });
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
