/root/repo/target/debug/deps/climate_sim-5a31a4aa67f6573f.d: crates/climate-sim/src/lib.rs crates/climate-sim/src/dataset.rs crates/climate-sim/src/field.rs crates/climate-sim/src/grid.rs crates/climate-sim/src/variables.rs

/root/repo/target/debug/deps/libclimate_sim-5a31a4aa67f6573f.rlib: crates/climate-sim/src/lib.rs crates/climate-sim/src/dataset.rs crates/climate-sim/src/field.rs crates/climate-sim/src/grid.rs crates/climate-sim/src/variables.rs

/root/repo/target/debug/deps/libclimate_sim-5a31a4aa67f6573f.rmeta: crates/climate-sim/src/lib.rs crates/climate-sim/src/dataset.rs crates/climate-sim/src/field.rs crates/climate-sim/src/grid.rs crates/climate-sim/src/variables.rs

crates/climate-sim/src/lib.rs:
crates/climate-sim/src/dataset.rs:
crates/climate-sim/src/field.rs:
crates/climate-sim/src/grid.rs:
crates/climate-sim/src/variables.rs:
