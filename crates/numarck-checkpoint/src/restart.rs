//! Read-side restart engine (the paper's §II-D).
//!
//! "NUMARCK first reads the latest uncompressed, complete full
//! checkpoint ... then reads the intermediate checkpoint files and
//! applies each of them to the full checkpoint data in order to build
//! the restart file." Replaying deltas against *reconstructed* state is
//! what accumulates error with distance from the full checkpoint — the
//! effect Fig. 8 measures.

use numarck::decode;
use numarck::error::NumarckError;

use crate::format::CheckpointKind;
use crate::store::CheckpointStore;
use crate::VariableSet;

/// Replays checkpoint chains out of a store.
#[derive(Debug, Clone)]
pub struct RestartEngine {
    store: CheckpointStore,
}

/// A successful restart.
#[derive(Debug, Clone)]
pub struct RestartResult {
    /// The reconstructed variables at the requested iteration.
    pub vars: VariableSet,
    /// Iteration of the full checkpoint the chain started from.
    pub base_iteration: u64,
    /// Number of delta files applied on top of the base.
    pub deltas_applied: u64,
}

/// An iteration that could not be recovered during a degraded restart,
/// and why.
#[derive(Debug, Clone)]
pub struct LostIteration {
    /// The unrecoverable iteration.
    pub iteration: u64,
    /// The error that made it unrecoverable.
    pub reason: String,
}

/// Outcome of [`RestartEngine::restart_at_or_before`]: the best
/// recoverable state, plus an account of what was given up to get it.
#[derive(Debug, Clone)]
pub struct DegradedRestart {
    /// The iteration originally asked for.
    pub requested: u64,
    /// The restart that actually succeeded (its iteration is
    /// `base_iteration + deltas_applied`).
    pub result: RestartResult,
    /// Iterations between `requested` and the achieved one (inclusive of
    /// `requested` when it failed), newest first, with reasons.
    pub lost: Vec<LostIteration>,
}

impl DegradedRestart {
    /// The iteration actually recovered.
    pub fn achieved(&self) -> u64 {
        self.result.base_iteration + self.result.deltas_applied
    }

    /// True when the requested iteration itself was recovered.
    pub fn is_exact(&self) -> bool {
        self.lost.is_empty()
    }
}

impl RestartEngine {
    /// Engine over `store`.
    pub fn new(store: CheckpointStore) -> Self {
        Self { store }
    }

    /// Rebuild the state at `target` iteration: load the newest full
    /// checkpoint at or before `target`, then apply every delta up to
    /// and including `target`.
    ///
    /// Fails loudly if the full checkpoint is missing, any delta in the
    /// chain is missing or corrupt, or variable sets don't line up.
    pub fn restart_at(&self, target: u64) -> Result<RestartResult, NumarckError> {
        let base_iteration = self
            .store
            .latest_full_at_or_before(target)
            .map_err(|e| NumarckError::Corrupt(format!("store listing failed: {e}")))?
            .ok_or_else(|| {
                NumarckError::Corrupt(format!("no full checkpoint at or before {target}"))
            })?;
        let base = self.store.read(base_iteration, true)?;
        let mut vars = match base.kind {
            CheckpointKind::Full(vars) => vars,
            CheckpointKind::Delta(_) => {
                return Err(NumarckError::Corrupt(format!(
                    "checkpoint {base_iteration} has .full name but delta payload"
                )))
            }
        };
        let mut deltas_applied = 0;
        for iter in base_iteration + 1..=target {
            let file = self.store.read(iter, false)?;
            let blocks = match file.kind {
                CheckpointKind::Delta(blocks) => blocks,
                CheckpointKind::Full(full_vars) => {
                    // A newer full inside the range would have been the
                    // base; reaching here means inconsistent store state.
                    // Be permissive: adopt it and continue.
                    vars = full_vars;
                    continue;
                }
            };
            if blocks.len() != vars.len()
                || !blocks.keys().zip(vars.keys()).all(|(a, b)| a == b)
            {
                return Err(NumarckError::Corrupt(format!(
                    "delta {iter} variable set does not match the chain"
                )));
            }
            for (name, block) in &blocks {
                let prev = vars.get_mut(name).expect("key checked above");
                *prev = decode::reconstruct(prev, block)?;
            }
            deltas_applied += 1;
        }
        Ok(RestartResult { vars, base_iteration, deltas_applied })
    }

    /// Degraded restart: recover the newest intact iteration at or
    /// before `target`.
    ///
    /// Tries `target` first; on failure walks backwards through the
    /// stored iterations, recording each unrecoverable one with the
    /// error that disqualified it. Succeeds with a [`DegradedRestart`]
    /// describing what was achieved and what was lost; errs only when
    /// *no* iteration at or before `target` can be rebuilt.
    pub fn restart_at_or_before(&self, target: u64) -> Result<DegradedRestart, NumarckError> {
        let mut candidates: Vec<u64> = self
            .store
            .list()
            .map_err(|e| NumarckError::Io(format!("store listing failed: {e}")))?
            .into_iter()
            .map(|e| e.iteration)
            .filter(|&it| it <= target)
            .collect();
        candidates.dedup();
        candidates.reverse();
        let mut lost = Vec::new();
        if candidates.first() != Some(&target) {
            lost.push(LostIteration {
                iteration: target,
                reason: "no checkpoint file stored for this iteration".into(),
            });
        }
        for it in candidates {
            match self.restart_at(it) {
                Ok(result) => return Ok(DegradedRestart { requested: target, result, lost }),
                Err(e) => lost.push(LostIteration { iteration: it, reason: e.to_string() }),
            }
        }
        Err(NumarckError::Io(format!(
            "no restartable iteration at or before {target}: {} candidate(s) failed",
            lost.len()
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::{CheckpointManager, ManagerPolicy};
    use crate::store::testutil::TempDir;
    use numarck::{Config, Strategy};

    fn truth_sequence(iters: u64, n: usize) -> Vec<VariableSet> {
        let mut out = Vec::new();
        let mut state: Vec<f64> = (0..n).map(|i| 1.0 + (i % 11) as f64).collect();
        for it in 0..iters {
            if it > 0 {
                for (i, v) in state.iter_mut().enumerate() {
                    *v *= 1.0 + 0.003 * (((i as u64 + it) % 7) as f64 - 3.0) / 3.0;
                }
            }
            let mut vars = VariableSet::new();
            vars.insert("x".into(), state.clone());
            out.push(vars);
        }
        out
    }

    fn build_store(tmp: &TempDir, truth: &[VariableSet], full_interval: u64) -> CheckpointStore {
        let store = CheckpointStore::open(&tmp.0).unwrap();
        let cfg = Config::new(8, 0.001, Strategy::Clustering).unwrap();
        let mut mgr =
            CheckpointManager::new(store.clone(), cfg, ManagerPolicy::fixed(full_interval));
        for (it, vars) in truth.iter().enumerate() {
            mgr.checkpoint(it as u64, vars).unwrap();
        }
        store
    }

    #[test]
    fn restart_at_full_checkpoint_is_exact() {
        let tmp = TempDir::new("restart-exact");
        let truth = truth_sequence(12, 500);
        let store = build_store(&tmp, &truth, 5);
        let engine = RestartEngine::new(store);
        for full_iter in [0u64, 5, 10] {
            let r = engine.restart_at(full_iter).unwrap();
            assert_eq!(r.deltas_applied, 0);
            assert_eq!(r.base_iteration, full_iter);
            assert_eq!(r.vars["x"], truth[full_iter as usize]["x"]);
        }
    }

    #[test]
    fn restart_mid_chain_is_error_bounded() {
        let tmp = TempDir::new("restart-bounded");
        let truth = truth_sequence(12, 500);
        let store = build_store(&tmp, &truth, 5);
        let engine = RestartEngine::new(store);
        for target in 0..12u64 {
            let r = engine.restart_at(target).unwrap();
            let exact = &truth[target as usize]["x"];
            let rebuilt = &r.vars["x"];
            let budget = (1.0f64 + 0.0011).powi(r.deltas_applied as i32) - 1.0 + 1e-12;
            for (a, b) in exact.iter().zip(rebuilt) {
                let rel = ((a - b) / a).abs();
                assert!(rel <= budget, "iter {target}: rel {rel} > {budget}");
            }
        }
    }

    #[test]
    fn deltas_applied_counts_distance_from_base() {
        let tmp = TempDir::new("restart-count");
        let truth = truth_sequence(9, 100);
        let store = build_store(&tmp, &truth, 4);
        let engine = RestartEngine::new(store);
        assert_eq!(engine.restart_at(6).unwrap().base_iteration, 4);
        assert_eq!(engine.restart_at(6).unwrap().deltas_applied, 2);
        assert_eq!(engine.restart_at(3).unwrap().base_iteration, 0);
        assert_eq!(engine.restart_at(3).unwrap().deltas_applied, 3);
    }

    #[test]
    fn missing_full_checkpoint_is_loud() {
        let tmp = TempDir::new("restart-nofull");
        let store = CheckpointStore::open(&tmp.0).unwrap();
        let engine = RestartEngine::new(store);
        assert!(engine.restart_at(3).is_err());
    }

    #[test]
    fn missing_delta_in_chain_is_loud() {
        let tmp = TempDir::new("restart-hole");
        let truth = truth_sequence(8, 100);
        let store = build_store(&tmp, &truth, 8);
        // Punch a hole at iteration 3.
        std::fs::remove_file(store.path_of(3, false)).unwrap();
        let engine = RestartEngine::new(store);
        assert!(engine.restart_at(5).is_err());
        // Targets before the hole still work.
        assert!(engine.restart_at(2).is_ok());
    }

    #[test]
    fn degraded_restart_on_healthy_store_is_exact() {
        let tmp = TempDir::new("restart-degraded-clean");
        let truth = truth_sequence(10, 100);
        let store = build_store(&tmp, &truth, 4);
        let engine = RestartEngine::new(store);
        let d = engine.restart_at_or_before(7).unwrap();
        assert!(d.is_exact());
        assert_eq!(d.achieved(), 7);
        assert_eq!(d.requested, 7);
    }

    #[test]
    fn degraded_restart_falls_back_past_a_broken_delta() {
        let tmp = TempDir::new("restart-degraded-hole");
        let truth = truth_sequence(10, 100);
        // Fulls at 0, 4, 8.
        let store = build_store(&tmp, &truth, 4);
        // Destroy delta 5: every chain through it breaks.
        std::fs::write(store.path_of(5, false), b"garbage").unwrap();
        let engine = RestartEngine::new(store);
        let d = engine.restart_at_or_before(7).unwrap();
        assert_eq!(d.achieved(), 4, "newest intact iteration <= 7 is the full at 4");
        assert!(!d.is_exact());
        let lost: Vec<u64> = d.lost.iter().map(|l| l.iteration).collect();
        assert_eq!(lost, vec![7, 6, 5]);
        assert!(d.lost.iter().all(|l| !l.reason.is_empty()));
        // Targets past the next full are unaffected.
        assert!(engine.restart_at_or_before(9).unwrap().is_exact());
    }

    #[test]
    fn degraded_restart_beyond_newest_checkpoint_reports_the_gap() {
        let tmp = TempDir::new("restart-degraded-beyond");
        let truth = truth_sequence(6, 100);
        let store = build_store(&tmp, &truth, 4);
        let engine = RestartEngine::new(store);
        // Newest stored iteration is 5; ask for 100.
        let d = engine.restart_at_or_before(100).unwrap();
        assert_eq!(d.achieved(), 5);
        assert_eq!(d.lost.len(), 1);
        assert_eq!(d.lost[0].iteration, 100);
    }

    #[test]
    fn degraded_restart_with_nothing_recoverable_is_loud() {
        let tmp = TempDir::new("restart-degraded-empty");
        let store = CheckpointStore::open(&tmp.0).unwrap();
        let engine = RestartEngine::new(store.clone());
        assert!(engine.restart_at_or_before(5).is_err());
        // A store with only a corrupt full is just as unrecoverable.
        std::fs::write(store.path_of(0, true), b"junk").unwrap();
        let err = engine.restart_at_or_before(5).unwrap_err();
        assert!(matches!(err, NumarckError::Io(_)));
    }
}
