//! Baseline lossy compressors for the paper's §III-F comparison
//! (Tables I and II).
//!
//! * [`bsplines`] — plain cubic-B-spline data reduction (Chou & Piegl):
//!   fit the whole data vector with `P_S = 0.8·n` control points. Its
//!   compression ratio is structural — always `1 − P_S/n = 20%`.
//! * [`isabela`] — ISABELA (Lakshminarasimhan et al., Euro-Par'11):
//!   window the data, *sort* each window (storing the permutation as
//!   `log2 W₀`-bit ranks), and fit the now-monotone window with a fixed
//!   `P_I = 30`-coefficient cubic B-spline. Sorting is the
//!   preconditioning trick that makes "incompressible" data fit tightly.
//!
//! Both implement [`LossyCompressor`], the minimal interface the
//! benchmark harness needs: reconstruct the data and report the stored
//! size in bits.

pub mod bsplines;
pub mod isabela;

pub use bsplines::BSplineCompressor;
pub use isabela::IsabelaCompressor;

/// Minimal interface for the Table I/II harness.
pub trait LossyCompressor {
    /// Display name used in report rows.
    fn name(&self) -> &'static str;

    /// Compress then decompress `data`, returning the reconstruction and
    /// the number of bits the compressed form occupies.
    fn roundtrip(&self, data: &[f64]) -> (Vec<f64>, u64);

    /// Compression ratio as the paper defines it (Eq. 2, fraction saved).
    fn compression_ratio(&self, data: &[f64]) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let (_, bits) = self.roundtrip(data);
        1.0 - bits as f64 / (data.len() as f64 * 64.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trait_objects_work() {
        let comps: Vec<Box<dyn LossyCompressor>> = vec![
            Box::new(BSplineCompressor::paper_default()),
            Box::new(IsabelaCompressor::cmip5_default()),
        ];
        let data: Vec<f64> = (0..1024).map(|i| (i as f64 * 0.01).sin() * 10.0).collect();
        for c in &comps {
            let (restored, bits) = c.roundtrip(&data);
            assert_eq!(restored.len(), data.len(), "{}", c.name());
            assert!(bits > 0, "{}", c.name());
            assert!(c.compression_ratio(&data) > 0.0, "{}", c.name());
        }
    }
}
