//! Figure 3: the histogram of the 255 bins for FLASH `dens` between two
//! mid-run iterations, under each of the three approximation strategies.
//!
//! The point of the figure: equal-width binning leaves most bins nearly
//! empty (population concentrated in a few bins), log-scale spreads the
//! small-change mass better, and clustering places its representatives
//! where the data is — visible here as a much more even population
//! profile.

use flash_sim::FlashVar;
use numarck_bench::data::{flash_sequence, FlashConfig};
use numarck_bench::report::{print_table, write_csv};
use numarck_bench::RESULTS_DIR;
use numarck::ratio;
use numarck::strategy::{fit_table, Strategy};
use numarck::ClusteringOptions;

fn main() {
    // "dens FLASH data between iteration 32 and 33": warm up 32
    // checkpoints' worth of steps, take two consecutive checkpoints.
    let cfg = FlashConfig { warmup_steps: 64, steps_per_checkpoint: 2, ..Default::default() };
    let seq = flash_sequence(cfg, FlashVar::Dens, 2);
    let tolerance = 0.001;
    let k = 255usize; // B = 8

    let ratios = ratio::compute(&seq[0], &seq[1], tolerance).expect("finite sim data");
    println!(
        "dens: {} points, {} with |Δ| >= E (fit sample), {} small, {} undefined",
        ratios.len(),
        ratios.fit_sample.len(),
        ratios.class_counts().0,
        ratios.class_counts().2
    );

    let mut csv = vec![vec![
        "bin".to_string(),
        "equal_width_center".to_string(),
        "equal_width_count".to_string(),
        "log_scale_center".to_string(),
        "log_scale_count".to_string(),
        "clustering_center".to_string(),
        "clustering_count".to_string(),
    ]];
    let mut columns: Vec<(Strategy, Vec<f64>, Vec<u64>)> = Vec::new();
    for s in Strategy::all() {
        let table = fit_table(s, &ratios.fit_sample, k, &ClusteringOptions::default());
        let mut counts = vec![0u64; table.len()];
        for &r in &ratios.fit_sample {
            if let Some((idx, _, _)) = table.quantize(r) {
                counts[idx] += 1;
            }
        }
        columns.push((s, table.representatives().to_vec(), counts));
    }
    for bin in 0..k {
        let mut row = vec![bin.to_string()];
        for (_, reps, counts) in &columns {
            if bin < reps.len() {
                row.push(format!("{:.6}", reps[bin]));
                row.push(counts[bin].to_string());
            } else {
                row.push(String::new());
                row.push(String::new());
            }
        }
        csv.push(row);
    }

    println!("\nFig. 3 summary: how evenly each strategy populates its 255 bins");
    let mut rows = vec![vec![
        "strategy".to_string(),
        "bins used".to_string(),
        "occupied (>0)".to_string(),
        "max bin count".to_string(),
        "top-5 bins hold".to_string(),
    ]];
    for (s, reps, counts) in &columns {
        let total: u64 = counts.iter().sum();
        let occupied = counts.iter().filter(|&&c| c > 0).count();
        let mut sorted = counts.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top5: u64 = sorted.iter().take(5).sum();
        rows.push(vec![
            s.name().to_string(),
            reps.len().to_string(),
            occupied.to_string(),
            sorted.first().copied().unwrap_or(0).to_string(),
            format!("{:.1}%", top5 as f64 / total.max(1) as f64 * 100.0),
        ]);
    }
    print_table(&rows);
    println!("\n(paper: clustering spreads population across bins; equal-width concentrates it)");
    match write_csv(RESULTS_DIR, "fig3_bin_histograms", &csv) {
        Ok(p) => println!("wrote {p}"),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
