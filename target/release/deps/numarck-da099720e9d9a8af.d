/root/repo/target/release/deps/numarck-da099720e9d9a8af.d: crates/numarck-cli/src/main.rs

/root/repo/target/release/deps/numarck-da099720e9d9a8af: crates/numarck-cli/src/main.rs

crates/numarck-cli/src/main.rs:
