//! Centre initialisation strategies for 1-D K-means.
//!
//! The paper (§II-C.3) initialises "with prior-knowledge from the
//! equal-width histogram to achieve more reliable segmentation results".
//! We implement that, plus k-means++ and uniform spread as ablation
//! baselines.

use numarck_par::histogram::{FixedHistogram, HistogramSpec};
use numarck_par::reduce::par_min_max;
use numarck_par::rng::Xoshiro256PlusPlus;

/// Which initialiser to use for the 1-D clustering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Init1D {
    /// Seed centres from the most populated equal-width histogram bins
    /// (the paper's method). Deterministic.
    #[default]
    Histogram,
    /// k-means++ sampling (Arthur & Vassilvitskii). Randomised but
    /// reproducible via the options seed.
    KMeansPlusPlus,
    /// `k` centres spread uniformly over `[min, max]`. Deterministic; the
    /// weakest baseline — equivalent to equal-width bin centres.
    UniformSpread,
}

/// Number of histogram bins used for histogram seeding when `k` clusters
/// are requested. Oversampling by 8× gives the equal-mass quantile
/// extraction enough resolution to place centres inside dense regions.
fn seeding_bins(k: usize) -> usize {
    (8 * k).max(64)
}

/// Produce `k` sorted, deduplicated initial centres for `data`.
///
/// Fewer than `k` centres can be returned when the data has fewer than `k`
/// distinct values — callers must handle a shorter centre list (the
/// encoder simply uses a smaller table).
pub fn initial_centers(method: Init1D, data: &[f64], k: usize, seed: u64) -> Vec<f64> {
    assert!(k >= 1, "need at least one cluster");
    if data.is_empty() {
        return Vec::new();
    }
    let mut centers = match method {
        Init1D::Histogram => histogram_seed(data, k),
        Init1D::KMeansPlusPlus => kmeanspp_seed(data, k, seed),
        Init1D::UniformSpread => uniform_seed(data, k),
    };
    centers.sort_by(|a, b| a.partial_cmp(b).expect("non-finite center"));
    centers.dedup_by(|a, b| *a == *b);
    centers
}

/// Histogram seeding (the paper's "prior-knowledge from the equal-width
/// histogram"): fill an oversampled equal-width histogram and place the
/// `k` initial centres at the equal-mass quantiles of its CDF, linearly
/// interpolated inside bins. Every centre therefore starts with roughly
/// `n/k` points — dense regions get many centres, empty stretches get
/// none, and no centre is born memberless (Lloyd cannot move a centre
/// that owns no points, which is what strands uniform seeds on
/// heavy-tailed change distributions).
fn histogram_seed(data: &[f64], k: usize) -> Vec<f64> {
    let mm = par_min_max(data);
    if mm.count == 0 {
        return Vec::new();
    }
    if mm.range() == 0.0 {
        return vec![mm.min];
    }
    let spec = HistogramSpec::new(mm.min, mm.max, seeding_bins(k));
    let hist = FixedHistogram::fill_par(spec, data);
    let total = hist.total();
    if total == 0 {
        return vec![mm.min];
    }
    // Blended measure: true counts plus a uniform pseudo-count of equal
    // total mass. Pure equal-mass quantiles starve sparse-but-wide tails
    // (those points all escape); pure equal-width starves dense modes.
    // Half-and-half seeds ~k/2 centres by population and ~k/2 by
    // coverage; Lloyd refines from there.
    let pseudo = total as f64 / spec.bins as f64;
    let weight = |b: usize| hist.counts[b] as f64 + pseudo;
    let blended_total = 2.0 * total as f64;
    let mut centers = Vec::with_capacity(k);
    let mut bin = 0usize;
    let mut cum = 0.0f64; // blended mass strictly before `bin`
    for i in 0..k {
        let target = (i as f64 + 0.5) * blended_total / k as f64;
        while bin + 1 < spec.bins && cum + weight(bin) <= target {
            cum += weight(bin);
            bin += 1;
        }
        let frac = ((target - cum) / weight(bin)).clamp(0.0, 1.0);
        centers.push(spec.edge(bin) + frac * spec.width());
    }
    centers
}

/// k-means++ for 1-D data: first centre uniform at random, subsequent
/// centres sampled proportional to squared distance to the nearest chosen
/// centre. O(n·k) — only used for ablation, so the cost is acceptable.
fn kmeanspp_seed(data: &[f64], k: usize, seed: u64) -> Vec<f64> {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
    let mut centers = Vec::with_capacity(k);
    centers.push(data[rng.below(data.len())]);
    let mut d2: Vec<f64> = data.iter().map(|&x| sq(x - centers[0])).collect();
    while centers.len() < k {
        let total: f64 = d2.iter().sum();
        if total <= 0.0 {
            break; // all points coincide with a centre already
        }
        let target = rng.next_f64() * total;
        let mut acc = 0.0;
        let mut chosen = data.len() - 1;
        for (i, &w) in d2.iter().enumerate() {
            acc += w;
            if acc >= target {
                chosen = i;
                break;
            }
        }
        let c = data[chosen];
        centers.push(c);
        for (i, &x) in data.iter().enumerate() {
            let nd = sq(x - c);
            if nd < d2[i] {
                d2[i] = nd;
            }
        }
    }
    centers
}

/// `k` centres evenly spread across `[min, max]` (bin centres of an
/// equal-width partition).
fn uniform_seed(data: &[f64], k: usize) -> Vec<f64> {
    let mm = par_min_max(data);
    if mm.count == 0 {
        return Vec::new();
    }
    if mm.range() == 0.0 {
        return vec![mm.min];
    }
    let w = mm.range() / k as f64;
    (0..k).map(|i| mm.min + (i as f64 + 0.5) * w).collect()
}

#[inline]
fn sq(x: f64) -> f64 {
    x * x
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bimodal() -> Vec<f64> {
        // Two tight modes at 0 and 10 plus a couple of outliers.
        let mut v = Vec::new();
        for i in 0..500 {
            v.push(0.0 + 0.01 * (i % 10) as f64);
            v.push(10.0 + 0.01 * (i % 10) as f64);
        }
        v.push(100.0);
        v
    }

    #[test]
    fn histogram_seed_allocates_mass_to_modes() {
        // With 8 centres over bimodal data (modes at 0 and 10, one
        // outlier at 100), the blended quantile seeding must put at
        // least one centre near each mode — mass pulls half the seeds
        // into [0, 11] even though that is 11% of the range.
        let data = bimodal();
        let c = initial_centers(Init1D::Histogram, &data, 8, 0);
        assert_eq!(c.len(), 8);
        let near_low = c.iter().filter(|&&x| x < 11.0).count();
        assert!(near_low >= 3, "seeds near the modes: {c:?}");
        // ...and the coverage half reaches toward the outlier.
        assert!(c.iter().any(|&x| x > 20.0), "no coverage seed in the tail: {c:?}");
    }

    #[test]
    fn uniform_seed_ignores_density() {
        let data = bimodal();
        let c = initial_centers(Init1D::UniformSpread, &data, 4, 0);
        assert_eq!(c.len(), 4);
        // Spread over [0, 100]: centres at 12.5, 37.5, 62.5, 87.5.
        assert!((c[0] - 12.5).abs() < 1.0);
        assert!((c[3] - 87.5).abs() < 1.0);
    }

    #[test]
    fn kmeanspp_is_reproducible() {
        let data = bimodal();
        let a = initial_centers(Init1D::KMeansPlusPlus, &data, 5, 123);
        let b = initial_centers(Init1D::KMeansPlusPlus, &data, 5, 123);
        assert_eq!(a, b);
    }

    #[test]
    fn kmeanspp_spreads_centers() {
        let data = bimodal();
        let c = initial_centers(Init1D::KMeansPlusPlus, &data, 2, 42);
        assert_eq!(c.len(), 2);
        assert!(c[1] - c[0] > 5.0, "k-means++ should pick distant centres: {c:?}");
    }

    #[test]
    fn constant_data_yields_single_center() {
        let data = vec![3.5; 1000];
        for m in [Init1D::Histogram, Init1D::KMeansPlusPlus, Init1D::UniformSpread] {
            let c = initial_centers(m, &data, 8, 1);
            assert_eq!(c, vec![3.5], "method {m:?}");
        }
    }

    #[test]
    fn empty_data_yields_no_centers() {
        for m in [Init1D::Histogram, Init1D::KMeansPlusPlus, Init1D::UniformSpread] {
            assert!(initial_centers(m, &[], 4, 0).is_empty());
        }
    }

    #[test]
    fn centers_are_sorted_and_unique() {
        let data: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64).collect();
        for m in [Init1D::Histogram, Init1D::KMeansPlusPlus, Init1D::UniformSpread] {
            let c = initial_centers(m, &data, 16, 7);
            for w in c.windows(2) {
                assert!(w[0] < w[1], "method {m:?}: centres not strictly sorted: {c:?}");
            }
        }
    }

    #[test]
    fn fewer_distinct_values_than_k() {
        let data = vec![1.0, 2.0, 1.0, 2.0, 1.0];
        let c = initial_centers(Init1D::KMeansPlusPlus, &data, 10, 3);
        assert!(c.len() <= 2, "only two distinct values exist: {c:?}");
    }
}
