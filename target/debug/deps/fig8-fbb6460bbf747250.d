/root/repo/target/debug/deps/fig8-fbb6460bbf747250.d: crates/numarck-bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-fbb6460bbf747250: crates/numarck-bench/src/bin/fig8.rs

crates/numarck-bench/src/bin/fig8.rs:
