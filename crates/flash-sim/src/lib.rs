//! A block-structured compressible-Euler simulator standing in for FLASH.
//!
//! The paper evaluates NUMARCK on checkpoints of FLASH, a production
//! block-structured adaptive-mesh hydrodynamics code. NUMARCK only
//! consumes the per-variable checkpoint arrays and their
//! iteration-to-iteration change ratios, so the substitution implemented
//! here is a single-node 2-D finite-volume Euler solver that preserves
//! what matters:
//!
//! * the same block layout FLASH checkpoints use — `16×16` interior cells
//!   with 4 guard cells per side, many blocks per "process" ([`block`],
//!   [`mesh`]);
//! * the same 10 checkpoint variables: `dens, eint, ener, gamc, game,
//!   pres, temp, velx, vely, velz` ([`vars`]);
//! * physically honest temporal dynamics: a gamma-law-EOS Euler solve
//!   (Rusanov fluxes, CFL time stepping) on shock-tube and blast
//!   problems, so smooth regions produce tightly clustered change ratios
//!   while fronts produce heavy tails ([`euler`], [`problems`]);
//! * checkpoint/restart hooks: extract variables, overwrite the state
//!   from (possibly lossily reconstructed) variables, and continue the
//!   run — the paper's §III-G experiment ([`sim`]).
//!
//! Not reproduced (documented in DESIGN.md): AMR refinement and MPI
//! distribution, which affect scalability but not the statistics of the
//! checkpoint streams NUMARCK sees.

pub mod block;
pub mod dim3;
pub mod eos;
pub mod euler;
pub mod mesh;
pub mod problems;
pub mod sim;
pub mod vars;

pub use problems::Problem;
pub use sim::FlashSimulation;
pub use vars::FlashVar;
