//! Canonical Huffman coding of the index stream.
//!
//! The paper stores every compressible point with exactly `B` bits and
//! notes that "a lossless compression technique like FPC" could be
//! layered on top. The index stream is in fact highly skewed — index 0
//! (change below tolerance) frequently holds most of the mass, and the
//! cluster populations follow the learned distribution — so simple
//! entropy coding beats fixed-width storage substantially. This module
//! implements a canonical Huffman coder over the indices: the code is
//! fully described by one byte (code length) per symbol, decode is
//! table-free canonical decoding, and the `ext5_entropy` experiment
//! measures the bits-per-point win on the paper's datasets.

use crate::bitstream::{BitReader, BitWriter};
use crate::encode::CompressedIteration;
use crate::error::NumarckError;

/// Longest admissible code. With ≤ 2^16 symbols Huffman depth is bounded
/// by ~Fibonacci growth of frequencies; 48 bits would need frequency
/// ratios beyond any real index stream, so this is a structural cap, not
/// a length-limiting rewrite.
pub const MAX_CODE_LEN: u8 = 48;

/// A canonical Huffman code over symbols `0..lengths.len()`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HuffmanCode {
    /// Code length per symbol; 0 = symbol does not occur.
    lengths: Vec<u8>,
}

/// An entropy-coded symbol stream.
#[derive(Debug, Clone, PartialEq)]
pub struct HuffmanEncoded {
    /// The code (needed to decode).
    pub code: HuffmanCode,
    /// Packed codeword stream.
    pub words: Vec<u64>,
    /// Valid bits in `words`.
    pub len_bits: usize,
    /// Number of symbols encoded.
    pub count: usize,
}

impl HuffmanCode {
    /// Build the optimal prefix code for `frequencies` (index = symbol).
    /// Symbols with zero frequency get no code. A single-symbol alphabet
    /// gets a 1-bit code.
    pub fn from_frequencies(frequencies: &[u64]) -> Self {
        let n = frequencies.len();
        let mut lengths = vec![0u8; n];
        let present: Vec<usize> = (0..n).filter(|&s| frequencies[s] > 0).collect();
        match present.len() {
            0 => return Self { lengths },
            1 => {
                lengths[present[0]] = 1;
                return Self { lengths };
            }
            _ => {}
        }
        // Package-free Huffman via two-queue method after sorting by
        // frequency (O(n log n) in the sort, O(n) merge).
        let mut leaves: Vec<(u64, usize)> =
            present.iter().map(|&s| (frequencies[s], s)).collect();
        leaves.sort_unstable();
        // Tree nodes: (freq, node id); children recorded for depth walk.
        let mut children: Vec<Option<(usize, usize)>> = vec![None; leaves.len()];
        let mut leaf_of: Vec<Option<usize>> = leaves.iter().map(|&(_, s)| Some(s)).collect();
        let mut q1: std::collections::VecDeque<(u64, usize)> =
            leaves.iter().enumerate().map(|(i, &(f, _))| (f, i)).collect();
        let mut q2: std::collections::VecDeque<(u64, usize)> = std::collections::VecDeque::new();
        let pop_min = |q1: &mut std::collections::VecDeque<(u64, usize)>,
                           q2: &mut std::collections::VecDeque<(u64, usize)>| {
            match (q1.front().copied(), q2.front().copied()) {
                (Some(a), Some(b)) => {
                    if a.0 <= b.0 {
                        q1.pop_front().expect("present")
                    } else {
                        q2.pop_front().expect("present")
                    }
                }
                (Some(_), None) => q1.pop_front().expect("present"),
                (None, Some(_)) => q2.pop_front().expect("present"),
                (None, None) => unreachable!("loop guard keeps >= 2 nodes"),
            }
        };
        while q1.len() + q2.len() >= 2 {
            let a = pop_min(&mut q1, &mut q2);
            let b = pop_min(&mut q1, &mut q2);
            let id = children.len();
            children.push(Some((a.1, b.1)));
            leaf_of.push(None);
            q2.push_back((a.0 + b.0, id));
        }
        let root = q2.pop_front().or_else(|| q1.pop_front()).expect("one root remains").1;
        // Iterative depth walk.
        let mut stack = vec![(root, 0u8)];
        while let Some((node, depth)) = stack.pop() {
            if let Some(symbol) = leaf_of[node] {
                debug_assert!(depth <= MAX_CODE_LEN);
                lengths[symbol] = depth.max(1);
            } else if let Some((l, r)) = children[node] {
                stack.push((l, depth + 1));
                stack.push((r, depth + 1));
            }
        }
        Self { lengths }
    }

    /// The per-symbol code lengths (0 = absent).
    pub fn lengths(&self) -> &[u8] {
        &self.lengths
    }

    /// Rebuild a code from stored lengths (the wire format of
    /// [`crate::serialize`]'s Huffman variant). Rejects length tables
    /// that are not a valid prefix code (Kraft sum > 1, overlong codes,
    /// or an incomplete multi-symbol code), so corrupt input cannot
    /// drive the decoder out of bounds.
    pub fn from_lengths(lengths: Vec<u8>) -> Result<Self, NumarckError> {
        let mut kraft_num = 0u128; // Σ 2^(MAX − len), exact in u128
        let present = lengths.iter().filter(|&&l| l > 0).count();
        for &l in &lengths {
            if l > MAX_CODE_LEN {
                return Err(NumarckError::Corrupt(format!("huffman length {l} too long")));
            }
            if l > 0 {
                kraft_num += 1u128 << (MAX_CODE_LEN - l);
            }
        }
        // Kraft: Σ 2^-len ≤ 1 ⇔ kraft_num ≤ 2^MAX. A lone 1-bit code
        // (degenerate alphabet) is allowed despite being incomplete.
        if kraft_num > 1u128 << MAX_CODE_LEN {
            return Err(NumarckError::Corrupt("huffman lengths violate Kraft".into()));
        }
        if present > 1 && kraft_num != 1u128 << MAX_CODE_LEN {
            return Err(NumarckError::Corrupt("huffman code incomplete".into()));
        }
        Ok(Self { lengths })
    }

    /// Canonical codewords per symbol (None for absent symbols).
    /// Canonical order: shorter codes first, ties by symbol value.
    fn codewords(&self) -> Vec<Option<(u64, u8)>> {
        let mut order: Vec<usize> =
            (0..self.lengths.len()).filter(|&s| self.lengths[s] > 0).collect();
        order.sort_by_key(|&s| (self.lengths[s], s));
        let mut out = vec![None; self.lengths.len()];
        let mut code = 0u64;
        let mut prev_len = 0u8;
        for &s in &order {
            let len = self.lengths[s];
            code <<= len - prev_len;
            out[s] = Some((code, len));
            code += 1;
            prev_len = len;
        }
        out
    }

    /// Expected bits per symbol under `frequencies`.
    pub fn mean_bits(&self, frequencies: &[u64]) -> f64 {
        let total: u64 = frequencies.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let bits: u64 = frequencies
            .iter()
            .zip(&self.lengths)
            .map(|(&f, &l)| f * l as u64)
            .sum();
        bits as f64 / total as f64
    }
}

/// Shannon entropy (bits/symbol) of a frequency table.
pub fn entropy(frequencies: &[u64]) -> f64 {
    let total: u64 = frequencies.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    -frequencies
        .iter()
        .filter(|&&f| f > 0)
        .map(|&f| {
            let p = f as f64 / t;
            p * p.log2()
        })
        .sum::<f64>()
}

/// Entropy-encode a symbol stream drawn from `0..num_symbols`.
pub fn encode_symbols(symbols: impl Iterator<Item = u32> + Clone, num_symbols: usize) -> HuffmanEncoded {
    let mut freqs = vec![0u64; num_symbols];
    let mut count = 0usize;
    for s in symbols.clone() {
        freqs[s as usize] += 1;
        count += 1;
    }
    let code = HuffmanCode::from_frequencies(&freqs);
    let words = code.codewords();
    let mut writer = BitWriter::new();
    for s in symbols {
        let (cw, len) = words[s as usize].expect("symbol was counted");
        // Write MSB-first so canonical prefix decoding works.
        for b in (0..len).rev() {
            writer.push(((cw >> b) & 1) as u32, 1);
        }
    }
    let len_bits = writer.len_bits();
    HuffmanEncoded { code, words: writer.into_words(), len_bits, count }
}

/// Decode an entropy-coded stream.
pub fn decode_symbols(encoded: &HuffmanEncoded) -> Result<Vec<u32>, NumarckError> {
    if encoded.len_bits > encoded.words.len() * 64 {
        return Err(NumarckError::Corrupt(format!(
            "huffman stream claims {} bits but buffer holds only {}",
            encoded.len_bits,
            encoded.words.len() * 64
        )));
    }
    let lengths = encoded.code.lengths();
    // Canonical decode tables: for each length, the first code value and
    // the symbols of that length in canonical order.
    let mut by_len: Vec<Vec<u32>> = vec![Vec::new(); MAX_CODE_LEN as usize + 1];
    let mut order: Vec<usize> = (0..lengths.len()).filter(|&s| lengths[s] > 0).collect();
    order.sort_by_key(|&s| (lengths[s], s));
    for &s in &order {
        by_len[lengths[s] as usize].push(s as u32);
    }
    let mut first_code = vec![0u64; MAX_CODE_LEN as usize + 2];
    {
        let mut code = 0u64;
        for len in 1..=MAX_CODE_LEN as usize {
            first_code[len] = code;
            code = (code + by_len[len].len() as u64) << 1;
        }
    }
    let mut reader = BitReader::new(&encoded.words, encoded.len_bits);
    let mut out = Vec::with_capacity(encoded.count);
    for _ in 0..encoded.count {
        let mut code = 0u64;
        let mut len = 0usize;
        loop {
            let bit = reader
                .read(1)
                .ok_or_else(|| NumarckError::Corrupt("huffman stream exhausted".into()))?;
            code = (code << 1) | bit as u64;
            len += 1;
            if len > MAX_CODE_LEN as usize {
                return Err(NumarckError::Corrupt("huffman code overlong".into()));
            }
            let slot = code.wrapping_sub(first_code[len]);
            if !by_len[len].is_empty() && code >= first_code[len] && (slot as usize) < by_len[len].len()
            {
                out.push(by_len[len][slot as usize]);
                break;
            }
        }
    }
    Ok(out)
}

/// Entropy statistics for a compressed block's index stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexEntropyStats {
    /// Fixed-width bits per compressible point (= `B`).
    pub fixed_bits: f64,
    /// Huffman bits per compressible point (including nothing for the
    /// code table — see `table_bits`).
    pub huffman_bits: f64,
    /// Shannon entropy of the index distribution.
    pub entropy_bits: f64,
    /// One-off cost of shipping the code lengths (8 bits per possible
    /// symbol).
    pub table_bits: usize,
}

/// Measure how much entropy coding would save on a block's indices.
pub fn index_entropy_stats(block: &CompressedIteration) -> IndexEntropyStats {
    let num_symbols = block.table.len() + 1;
    let mut freqs = vec![0u64; num_symbols];
    for i in 0..block.num_compressible {
        let code = crate::bitstream::read_at(&block.index_words, block.bits, i);
        freqs[code as usize] += 1;
    }
    let code = HuffmanCode::from_frequencies(&freqs);
    IndexEntropyStats {
        fixed_bits: block.bits as f64,
        huffman_bits: code.mean_bits(&freqs),
        entropy_bits: entropy(&freqs),
        table_bits: num_symbols * 8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(symbols: &[u32], num_symbols: usize) {
        let enc = encode_symbols(symbols.iter().copied(), num_symbols);
        let dec = decode_symbols(&enc).unwrap();
        assert_eq!(dec, symbols);
    }

    #[test]
    fn empty_stream() {
        roundtrip(&[], 10);
    }

    #[test]
    fn single_symbol_alphabet() {
        roundtrip(&[3, 3, 3, 3, 3], 8);
        let enc = encode_symbols([3u32; 5].into_iter(), 8);
        assert_eq!(enc.len_bits, 5, "degenerate alphabet costs 1 bit/symbol");
    }

    #[test]
    fn two_symbols() {
        roundtrip(&[0, 1, 0, 0, 1, 0], 2);
    }

    #[test]
    fn skewed_stream_beats_fixed_width() {
        // 95% index 0, the rest spread: fixed 8 bits, Huffman ~ < 1.5.
        let mut symbols = vec![0u32; 9500];
        for i in 0..500 {
            symbols.push(1 + (i % 255) as u32);
        }
        let enc = encode_symbols(symbols.iter().copied(), 256);
        let bits_per = enc.len_bits as f64 / symbols.len() as f64;
        assert!(bits_per < 1.5, "got {bits_per} bits/symbol");
        roundtrip(&symbols, 256);
    }

    #[test]
    fn mean_length_within_entropy_plus_one() {
        // Huffman optimality bound: H <= L < H + 1.
        let mut freqs = vec![0u64; 64];
        for (i, f) in freqs.iter_mut().enumerate() {
            *f = ((i * i + 1) % 97) as u64;
        }
        let code = HuffmanCode::from_frequencies(&freqs);
        let h = entropy(&freqs);
        let l = code.mean_bits(&freqs);
        assert!(l >= h - 1e-9, "L {l} below entropy {h}");
        assert!(l < h + 1.0, "L {l} above H+1 {}", h + 1.0);
    }

    #[test]
    fn kraft_inequality_holds() {
        let freqs: Vec<u64> = (0..300).map(|i| 1 + (i * 7919) as u64 % 1000).collect();
        let code = HuffmanCode::from_frequencies(&freqs);
        let kraft: f64 =
            code.lengths().iter().filter(|&&l| l > 0).map(|&l| 2f64.powi(-(l as i32))).sum();
        assert!(kraft <= 1.0 + 1e-12, "kraft sum {kraft}");
        // Huffman codes are complete: equality.
        assert!((kraft - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_stream_costs_about_log_n() {
        let symbols: Vec<u32> = (0..4096).map(|i| i % 256).collect();
        let enc = encode_symbols(symbols.iter().copied(), 256);
        let bits_per = enc.len_bits as f64 / symbols.len() as f64;
        assert!((bits_per - 8.0).abs() < 0.01, "uniform over 256: {bits_per}");
        roundtrip(&symbols, 256);
    }

    #[test]
    fn truncated_stream_detected() {
        let symbols: Vec<u32> = (0..100).map(|i| i % 7).collect();
        let mut enc = encode_symbols(symbols.iter().copied(), 7);
        enc.len_bits /= 2;
        assert!(decode_symbols(&enc).is_err());
    }

    #[test]
    fn block_index_stats_are_consistent() {
        use crate::{Compressor, Config, Strategy};
        let n = 20_000;
        let prev: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
        // 90% tiny changes (index 0), 10% at a common ratio.
        let curr: Vec<f64> = prev
            .iter()
            .enumerate()
            .map(|(i, v)| if i % 10 == 0 { v * 1.05 } else { v * 1.0001 })
            .collect();
        let config = Config::new(8, 0.001, Strategy::Clustering).unwrap();
        let (block, _) = Compressor::new(config).compress(&prev, &curr).unwrap();
        let stats = index_entropy_stats(&block);
        assert_eq!(stats.fixed_bits, 8.0);
        assert!(stats.entropy_bits < 1.0, "two-spike distribution: H = {}", stats.entropy_bits);
        assert!(stats.huffman_bits < stats.fixed_bits / 4.0);
        assert!(stats.huffman_bits >= stats.entropy_bits - 1e-9);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn roundtrip_random_streams(
                symbols in proptest::collection::vec(0u32..50, 0..2000)
            ) {
                roundtrip(&symbols, 50);
            }

            #[test]
            fn roundtrip_highly_skewed(
                runs in proptest::collection::vec((0u32..4, 1usize..100), 0..50)
            ) {
                let symbols: Vec<u32> = runs
                    .iter()
                    .flat_map(|&(s, n)| std::iter::repeat_n(s, n))
                    .collect();
                roundtrip(&symbols, 4);
            }
        }
    }
}
