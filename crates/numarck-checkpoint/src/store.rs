//! A directory of checkpoint files.
//!
//! Files are named `ckpt_<iteration>.<full|delta>`. Writes go through a
//! temp file + rename + parent-directory fsync so a crash mid-write (or
//! just after the rename) never loses or half-applies an entry; the CRC
//! catches torn writes that slip below the rename discipline anyway.
//!
//! All filesystem traffic goes through a
//! [`StorageBackend`](crate::backend::StorageBackend), so tests inject
//! faults at the syscall boundary instead of mutating files after the
//! fact. Files that fail validation can be moved into a `quarantine/`
//! subdirectory (see [`crate::scrub`]) rather than deleted, so no byte
//! of operator data is ever destroyed by the recovery machinery.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use numarck::error::NumarckError;

use crate::backend::{FsBackend, StorageBackend};
use crate::format::{CheckpointFile, CheckpointKind};

/// Name of the subdirectory corrupt files are moved into.
pub const QUARANTINE_DIR: &str = "quarantine";

/// Directory-backed checkpoint store.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
    backend: Arc<dyn StorageBackend>,
}

/// A store listing entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct StoreEntry {
    /// Iteration the file captures.
    pub iteration: u64,
    /// True for full checkpoints.
    pub is_full: bool,
}

impl CheckpointStore {
    /// Open (creating if needed) a store at `dir` on the real filesystem.
    pub fn open(dir: impl AsRef<Path>) -> std::io::Result<Self> {
        Self::open_with(dir, Arc::new(FsBackend))
    }

    /// Open (creating if needed) a store at `dir` over an explicit
    /// backend — the fault-injection entry point.
    pub fn open_with(
        dir: impl AsRef<Path>,
        backend: Arc<dyn StorageBackend>,
    ) -> std::io::Result<Self> {
        backend.create_dir_all(dir.as_ref())?;
        Ok(Self { dir: dir.as_ref().to_path_buf(), backend })
    }

    /// The backing directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The storage backend.
    pub fn backend(&self) -> &Arc<dyn StorageBackend> {
        &self.backend
    }

    /// Path of the file for `iteration`.
    pub fn path_of(&self, iteration: u64, is_full: bool) -> PathBuf {
        let ext = if is_full { "full" } else { "delta" };
        self.dir.join(format!("ckpt_{iteration:010}.{ext}"))
    }

    /// The quarantine subdirectory.
    pub fn quarantine_dir(&self) -> PathBuf {
        self.dir.join(QUARANTINE_DIR)
    }

    /// Write a checkpoint atomically (temp file + rename + dir fsync).
    pub fn write(&self, file: &CheckpointFile) -> std::io::Result<PathBuf> {
        let is_full = matches!(file.kind, CheckpointKind::Full(_));
        self.write_raw(file.iteration, is_full, &file.to_bytes())
    }

    /// Write pre-serialized checkpoint bytes atomically (temp file +
    /// rename + dir fsync) — the commit half of a prepare/commit
    /// checkpoint, where the caller has already recorded the exact
    /// bytes' CRC in a write-ahead intent journal.
    pub fn write_raw(
        &self,
        iteration: u64,
        is_full: bool,
        bytes: &[u8],
    ) -> std::io::Result<PathBuf> {
        let path = self.path_of(iteration, is_full);
        let tmp = path.with_extension("tmp");
        self.backend.write(&tmp, bytes)?;
        self.backend.rename(&tmp, &path)?;
        // A rename is only durable once the directory entry is; without
        // this a crash just after the rename can lose the checkpoint.
        self.backend.sync_dir(&self.dir)?;
        Ok(path)
    }

    /// Read the raw bytes of the checkpoint for `iteration`, without
    /// validation (the scrubber's entry point).
    pub fn read_raw(&self, iteration: u64, is_full: bool) -> std::io::Result<Vec<u8>> {
        self.backend.read(&self.path_of(iteration, is_full))
    }

    /// Read the checkpoint for `iteration` as aligned bytes, memory-
    /// mapped when the backend supports it (plain filesystem stores do;
    /// replicated and fault-injected backends fall back to an aligned
    /// copy so their read semantics keep applying). No validation —
    /// callers hand the bytes to the versioned codec seam.
    pub fn map_raw(&self, iteration: u64, is_full: bool) -> std::io::Result<crate::AlignedBytes> {
        self.backend.map(&self.path_of(iteration, is_full))
    }

    /// Read and validate the checkpoint for `iteration`.
    pub fn read(&self, iteration: u64, is_full: bool) -> Result<CheckpointFile, NumarckError> {
        let path = self.path_of(iteration, is_full);
        let bytes = self
            .backend
            .read(&path)
            .map_err(|e| NumarckError::Io(format!("cannot read {}: {e}", path.display())))?;
        let file = CheckpointFile::from_bytes(&bytes)?;
        if file.iteration != iteration {
            return Err(NumarckError::Corrupt(format!(
                "file {} claims iteration {}, expected {iteration}",
                path.display(),
                file.iteration
            )));
        }
        Ok(file)
    }

    /// List all checkpoints, sorted by iteration (fulls before deltas at
    /// the same iteration). Quarantined files are not listed.
    pub fn list(&self) -> std::io::Result<Vec<StoreEntry>> {
        let mut entries = Vec::new();
        for name in self.backend.list_dir(&self.dir)? {
            let Some(rest) = name.strip_prefix("ckpt_") else { continue };
            let (digits, ext) = match rest.split_once('.') {
                Some(parts) => parts,
                None => continue,
            };
            let Ok(iteration) = digits.parse::<u64>() else { continue };
            let is_full = match ext {
                "full" => true,
                "delta" => false,
                _ => continue,
            };
            entries.push(StoreEntry { iteration, is_full });
        }
        entries.sort_by_key(|e| (e.iteration, !e.is_full));
        Ok(entries)
    }

    /// Latest full checkpoint at or before `iteration`, if any.
    pub fn latest_full_at_or_before(&self, iteration: u64) -> std::io::Result<Option<u64>> {
        Ok(self
            .list()?
            .into_iter()
            .filter(|e| e.is_full && e.iteration <= iteration)
            .map(|e| e.iteration)
            .max())
    }

    /// Delete the file for `iteration`.
    pub fn remove(&self, iteration: u64, is_full: bool) -> std::io::Result<()> {
        self.backend.remove_file(&self.path_of(iteration, is_full))
    }

    /// Move the file for `iteration` into the quarantine subdirectory
    /// (creating it if needed) and return its new path. The file keeps
    /// its name, so a later post-mortem can tell exactly what it was.
    pub fn quarantine(&self, iteration: u64, is_full: bool) -> std::io::Result<PathBuf> {
        let from = self.path_of(iteration, is_full);
        let qdir = self.quarantine_dir();
        self.backend.create_dir_all(&qdir)?;
        let to = qdir.join(from.file_name().expect("checkpoint paths have file names"));
        self.backend.rename(&from, &to)?;
        self.backend.sync_dir(&self.dir)?;
        Ok(to)
    }

    /// Delete everything in the store (test hygiene).
    pub fn clear(&self) -> std::io::Result<()> {
        for e in self.list()? {
            let _ = self.remove(e.iteration, e.is_full);
        }
        Ok(())
    }

    /// Retention: keep only the newest `keep_chains` restart chains.
    ///
    /// A *chain* is a full checkpoint plus the deltas up to (excluding)
    /// the next full. Everything older than the `keep_chains`-th newest
    /// full checkpoint is deleted; every kept iteration remains
    /// restartable because chains are only removed whole. Returns the
    /// number of files deleted.
    ///
    /// `keep_chains == 0` is rejected — it would delete the ability to
    /// restart at all.
    pub fn prune(&self, keep_chains: usize) -> std::io::Result<usize> {
        assert!(keep_chains >= 1, "must keep at least one chain");
        let entries = self.list()?;
        let mut fulls: Vec<u64> =
            entries.iter().filter(|e| e.is_full).map(|e| e.iteration).collect();
        fulls.sort_unstable();
        if fulls.len() <= keep_chains {
            return Ok(0);
        }
        let cutoff = fulls[fulls.len() - keep_chains];
        let mut removed = 0;
        for e in entries {
            if e.iteration < cutoff {
                self.remove(e.iteration, e.is_full)?;
                removed += 1;
            }
        }
        Ok(removed)
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use std::path::PathBuf;

    /// Self-cleaning unique temp directory.
    pub struct TempDir(pub PathBuf);

    impl TempDir {
        pub fn new(tag: &str) -> Self {
            let unique = format!(
                "numarck-test-{tag}-{}-{}",
                std::process::id(),
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .expect("clock after epoch")
                    .as_nanos()
            );
            let path = std::env::temp_dir().join(unique);
            std::fs::create_dir_all(&path).expect("create temp dir");
            Self(path)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::TempDir;
    use super::*;
    use crate::backend::{FaultSchedule, FaultyBackend, WriteFault};
    use crate::VariableSet;

    fn full(iter: u64) -> CheckpointFile {
        let mut vars = VariableSet::new();
        vars.insert("x".into(), vec![iter as f64; 16]);
        CheckpointFile::new(iter, CheckpointKind::Full(vars))
    }

    #[test]
    fn write_read_roundtrip() {
        let tmp = TempDir::new("store-rt");
        let store = CheckpointStore::open(&tmp.0).unwrap();
        let f = full(3);
        store.write(&f).unwrap();
        let back = store.read(3, true).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn listing_is_sorted_and_filtered() {
        let tmp = TempDir::new("store-list");
        let store = CheckpointStore::open(&tmp.0).unwrap();
        for i in [5u64, 1, 3] {
            store.write(&full(i)).unwrap();
        }
        // Noise files are ignored.
        std::fs::write(tmp.0.join("README"), b"hello").unwrap();
        std::fs::write(tmp.0.join("ckpt_bogus.full"), b"zzz").unwrap();
        let list = store.list().unwrap();
        let iters: Vec<u64> = list.iter().map(|e| e.iteration).collect();
        assert_eq!(iters, vec![1, 3, 5]);
        assert!(list.iter().all(|e| e.is_full));
    }

    #[test]
    fn latest_full_lookup() {
        let tmp = TempDir::new("store-latest");
        let store = CheckpointStore::open(&tmp.0).unwrap();
        for i in [0u64, 4, 8] {
            store.write(&full(i)).unwrap();
        }
        assert_eq!(store.latest_full_at_or_before(6).unwrap(), Some(4));
        assert_eq!(store.latest_full_at_or_before(8).unwrap(), Some(8));
        assert_eq!(store.latest_full_at_or_before(100).unwrap(), Some(8));
        let empty = CheckpointStore::open(tmp.0.join("sub")).unwrap();
        assert_eq!(empty.latest_full_at_or_before(5).unwrap(), None);
    }

    #[test]
    fn reading_missing_file_errors() {
        let tmp = TempDir::new("store-missing");
        let store = CheckpointStore::open(&tmp.0).unwrap();
        assert!(store.read(9, true).is_err());
    }

    #[test]
    fn iteration_mismatch_detected() {
        let tmp = TempDir::new("store-mismatch");
        let store = CheckpointStore::open(&tmp.0).unwrap();
        // Hand-write a file whose name disagrees with its header.
        let f = full(7);
        std::fs::write(store.path_of(9, true), f.to_bytes()).unwrap();
        assert!(store.read(9, true).is_err());
    }

    #[test]
    fn write_through_faulty_backend_surfaces_the_injected_error() {
        let tmp = TempDir::new("store-faulty");
        let backend = Arc::new(FaultyBackend::new(
            FaultSchedule::new()
                .fail_write(1, WriteFault::Error(std::io::ErrorKind::StorageFull)),
        ));
        let store = CheckpointStore::open_with(&tmp.0, backend).unwrap();
        let err = store.write(&full(1)).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::StorageFull);
        // Nothing was renamed into place.
        assert!(store.list().unwrap().is_empty());
        // The next write (no fault scheduled) succeeds.
        store.write(&full(1)).unwrap();
        assert_eq!(store.list().unwrap().len(), 1);
    }

    #[test]
    fn quarantine_moves_the_file_aside() {
        let tmp = TempDir::new("store-quarantine");
        let store = CheckpointStore::open(&tmp.0).unwrap();
        store.write(&full(2)).unwrap();
        store.write(&full(5)).unwrap();
        let to = store.quarantine(2, true).unwrap();
        assert!(to.starts_with(store.quarantine_dir()));
        assert!(to.ends_with("ckpt_0000000002.full"));
        assert!(std::fs::metadata(&to).unwrap().is_file());
        // Listing no longer sees it; the healthy file remains.
        let iters: Vec<u64> = store.list().unwrap().iter().map(|e| e.iteration).collect();
        assert_eq!(iters, vec![5]);
    }

    #[test]
    fn prune_keeps_the_newest_chains_whole() {
        use crate::format::CheckpointKind;
        use crate::VariableSet;
        let tmp = TempDir::new("store-prune");
        let store = CheckpointStore::open(&tmp.0).unwrap();
        // Fulls at 0, 4, 8; deltas elsewhere up to 10.
        for it in 0..=10u64 {
            let kind = if it % 4 == 0 {
                CheckpointKind::Full({
                    let mut v = VariableSet::new();
                    v.insert("x".into(), vec![it as f64; 4]);
                    v
                })
            } else {
                // A delta payload isn't needed for pruning tests; write a
                // full-shaped file under the delta name via the format
                // API would be wrong, so build a real (trivial) delta.
                let cfg = crate::manager::test_support::trivial_config();
                let prev = vec![1.0, 2.0, 3.0, 4.0];
                let curr = vec![1.001, 2.002, 3.003, 4.004];
                let (block, _) = numarck::encode::encode(&prev, &curr, &cfg).unwrap();
                let mut m = std::collections::BTreeMap::new();
                m.insert("x".to_string(), block);
                CheckpointKind::Delta(m)
            };
            store.write(&CheckpointFile::new(it, kind)).unwrap();
        }
        let removed = store.prune(2).unwrap();
        // Cutoff at full 4: iterations 0..=3 go (4 files).
        assert_eq!(removed, 4);
        let left: Vec<u64> = store.list().unwrap().iter().map(|e| e.iteration).collect();
        assert_eq!(left, vec![4, 5, 6, 7, 8, 9, 10]);
        // Keeping more chains than exist is a no-op.
        assert_eq!(store.prune(5).unwrap(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one chain")]
    fn prune_zero_rejected() {
        let tmp = TempDir::new("store-prune-zero");
        let store = CheckpointStore::open(&tmp.0).unwrap();
        let _ = store.prune(0);
    }

    #[test]
    fn clear_empties_the_store() {
        let tmp = TempDir::new("store-clear");
        let store = CheckpointStore::open(&tmp.0).unwrap();
        store.write(&full(1)).unwrap();
        store.clear().unwrap();
        assert!(store.list().unwrap().is_empty());
    }
}
