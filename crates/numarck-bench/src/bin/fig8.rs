//! Figure 8: restarting FLASH from lossily reconstructed checkpoints.
//!
//! Protocol (paper §III-G): run a reference simulation, checkpointing
//! periodically. Compress checkpoints 1..=4 as NUMARCK deltas on top of
//! the full checkpoint 0. For each restart point r ∈ {2, 3, 4}, rebuild
//! the state at r from the compressed chain (accumulating error), restart
//! the simulation from it, continue for 8 more checkpoints, and measure
//! the mean and maximum relative error against the uninterrupted
//! reference at each step — for each of the three binning strategies.
//!
//! Expected shape: the simulation runs to completion from every
//! reconstructed restart file; errors grow with the distance of the
//! restart point from the full checkpoint; clustering gives the lowest
//! maximum error and is the only strategy that stays inside the 0.1%
//! bound.

use std::collections::BTreeMap;

use flash_sim::{FlashSimulation, FlashVar, Problem};
use numarck::{Compressor, Config, Strategy};
use numarck_bench::report::{print_table, write_csv};
use numarck_bench::RESULTS_DIR;

type Checkpoint = BTreeMap<FlashVar, Vec<f64>>;

const STEPS_PER_CKPT: usize = 2;
// Checkpoint/restart experiments run in the post-transient phase (the
// expanding blast has left its violent early evolution); restarting into
// a developing shock front amplifies any perturbation at the front into
// O(1) pointwise differences, which no error-bounded compressor can
// mask. The paper's restarted runs are likewise production-phase.
const WARMUP: usize = 160;
const RESTART_POINTS: [usize; 3] = [2, 3, 4];
const CONTINUE_CKPTS: usize = 8;
const BLOCKS: usize = 4;

fn rel_errors(reference: &Checkpoint, restarted: &Checkpoint, vars: &[FlashVar]) -> (f64, f64) {
    let mut sum = 0.0;
    let mut count = 0usize;
    let mut max = 0.0f64;
    for v in vars {
        for (a, b) in reference[v].iter().zip(&restarted[v]) {
            if *a != 0.0 {
                let e = ((a - b) / a).abs();
                sum += e;
                count += 1;
                if e > max {
                    max = e;
                }
            }
        }
    }
    (if count == 0 { 0.0 } else { sum / count as f64 }, max)
}

fn main() {
    let tolerance = 0.001;
    let bits = 8u8;
    // The variables the paper's Fig. 8 panels plot. Velocity components are
    // excluded: they cross zero, where pointwise *relative* error is
    // ill-conditioned (division by ~0) regardless of compressor quality.
    let compare_vars = [FlashVar::Dens, FlashVar::Pres, FlashVar::Temp];
    let max_restart = *RESTART_POINTS.iter().max().expect("non-empty");
    let total_ckpts = max_restart + CONTINUE_CKPTS + 1;

    // Reference run: uninterrupted, checkpointing as it goes.
    let mut reference_sim = FlashSimulation::paper_default(Problem::SedovBlast, BLOCKS, BLOCKS);
    reference_sim.run_steps(WARMUP);
    let mut reference: Vec<Checkpoint> = vec![reference_sim.checkpoint()];
    for _ in 1..total_ckpts {
        reference_sim.run_steps(STEPS_PER_CKPT);
        reference.push(reference_sim.checkpoint());
    }

    println!(
        "Fig. 8: FLASH {} restart from reconstructed checkpoints (E = 0.1%, B = {bits})",
        Problem::SedovBlast
    );
    let mut table = vec![vec![
        "strategy".to_string(),
        "restart pt".to_string(),
        "ckpt".to_string(),
        "mean err %".to_string(),
        "max err %".to_string(),
    ]];
    let mut csv = vec![vec![
        "strategy".to_string(),
        "restart_point".to_string(),
        "checkpoint".to_string(),
        "mean_error".to_string(),
        "max_error".to_string(),
    ]];
    let mut clustering_restart_max = 0.0f64;

    for strategy in Strategy::all() {
        let config = Config::new(bits, tolerance, strategy).expect("valid");
        let compressor = Compressor::new(config);

        // Compress checkpoints 1..=max_restart as deltas between TRUE
        // consecutive checkpoints (the paper's encoder), then replay the
        // chain against reconstructions (the paper's restart).
        let mut blocks: Vec<BTreeMap<FlashVar, numarck::CompressedIteration>> = Vec::new();
        for i in 1..=max_restart {
            let mut per_var = BTreeMap::new();
            for v in FlashVar::all() {
                let (block, _) = compressor
                    .compress(&reference[i - 1][&v], &reference[i][&v])
                    .expect("finite sim data");
                per_var.insert(v, block);
            }
            blocks.push(per_var);
        }

        for &restart_point in &RESTART_POINTS {
            // Rebuild the state at restart_point from the chain.
            let mut state: Checkpoint = reference[0].clone();
            for per_var in blocks.iter().take(restart_point) {
                for v in FlashVar::all() {
                    let prev = state.get_mut(&v).expect("all vars");
                    *prev = numarck::decode::reconstruct(prev, &per_var[&v])
                        .expect("self-produced block");
                }
            }
            // Error at the restart file itself.
            let (m0, x0) = rel_errors(&reference[restart_point], &state, &compare_vars);
            if strategy == Strategy::Clustering {
                clustering_restart_max = clustering_restart_max.max(x0);
            }
            table.push(vec![
                strategy.name().to_string(),
                restart_point.to_string(),
                "restart".to_string(),
                format!("{:.5}", m0 * 100.0),
                format!("{:.5}", x0 * 100.0),
            ]);

            // Restart the simulation from the reconstruction and continue.
            let mut sim = FlashSimulation::paper_default(Problem::SedovBlast, BLOCKS, BLOCKS);
            sim.restore(&state).expect("shape matches");
            for k in 1..=CONTINUE_CKPTS {
                sim.run_steps(STEPS_PER_CKPT);
                let cp = sim.checkpoint();
                let (mean, max) = rel_errors(&reference[restart_point + k], &cp, &compare_vars);
                table.push(vec![
                    strategy.name().to_string(),
                    restart_point.to_string(),
                    format!("+{k}"),
                    format!("{:.5}", mean * 100.0),
                    format!("{:.5}", max * 100.0),
                ]);
                csv.push(vec![
                    strategy.name().to_string(),
                    restart_point.to_string(),
                    k.to_string(),
                    mean.to_string(),
                    max.to_string(),
                ]);
            }
        }
    }
    print_table(&table);
    println!(
        "\nclustering max error across restart files: {:.5}% (paper: only clustering stays within 0.1%/chain bound)",
        clustering_restart_max * 100.0
    );
    println!("(paper: FLASH restarts successfully from every reconstructed file; error grows");
    println!(" with restart distance from the full checkpoint; clustering lowest max error)");
    match write_csv(RESULTS_DIR, "fig8_restart_errors", &csv) {
        Ok(p) => println!("wrote {p}"),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
