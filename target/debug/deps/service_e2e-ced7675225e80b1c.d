/root/repo/target/debug/deps/service_e2e-ced7675225e80b1c.d: crates/numarck-serve/tests/service_e2e.rs crates/numarck-serve/tests/util/mod.rs

/root/repo/target/debug/deps/service_e2e-ced7675225e80b1c: crates/numarck-serve/tests/service_e2e.rs crates/numarck-serve/tests/util/mod.rs

crates/numarck-serve/tests/service_e2e.rs:
crates/numarck-serve/tests/util/mod.rs:
