/root/repo/target/debug/deps/ext4_group-08d7cd945ff4dda1.d: crates/numarck-bench/src/bin/ext4_group.rs

/root/repo/target/debug/deps/ext4_group-08d7cd945ff4dda1: crates/numarck-bench/src/bin/ext4_group.rs

crates/numarck-bench/src/bin/ext4_group.rs:
