/root/repo/target/debug/deps/fig6-979793bad865581e.d: crates/numarck-bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-979793bad865581e: crates/numarck-bench/src/bin/fig6.rs

crates/numarck-bench/src/bin/fig6.rs:
