/root/repo/target/debug/deps/numarck_obs-1bc6c320506317a3.d: crates/numarck-obs/src/lib.rs crates/numarck-obs/src/http.rs crates/numarck-obs/src/instrument.rs crates/numarck-obs/src/registry.rs crates/numarck-obs/src/ring.rs crates/numarck-obs/src/snapshot.rs Cargo.toml

/root/repo/target/debug/deps/libnumarck_obs-1bc6c320506317a3.rmeta: crates/numarck-obs/src/lib.rs crates/numarck-obs/src/http.rs crates/numarck-obs/src/instrument.rs crates/numarck-obs/src/registry.rs crates/numarck-obs/src/ring.rs crates/numarck-obs/src/snapshot.rs Cargo.toml

crates/numarck-obs/src/lib.rs:
crates/numarck-obs/src/http.rs:
crates/numarck-obs/src/instrument.rs:
crates/numarck-obs/src/registry.rs:
crates/numarck-obs/src/ring.rs:
crates/numarck-obs/src/snapshot.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
