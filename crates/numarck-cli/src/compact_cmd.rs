//! The `numarck compact` and `numarck chain` subcommands: the offline
//! front-end over [`numarck_compact`]'s chain-shape policy engine.
//!
//! `compact` runs one maintenance pass (delta merging, tiered full
//! placement, retention GC) against a store directory, replaying any
//! outstanding write-ahead intents first so maintenance never runs on a
//! half-applied chain. `chain` is the read-only inspector: per
//! iteration it prints what is stored (full / delta and its span),
//! bytes on disk, the variables inside, and the modeled restart cost.

use numarck::NumarckError;
use numarck_checkpoint::CheckpointStore;
use numarck_compact::{ChainView, CompactionConfig, Compactor, CostModel};

use crate::commands::{open_store, parse_args, replica_count};
use crate::{CliError, CliResult};

/// Map a policy-engine failure onto the CLI exit-code classes: damaged
/// payloads → [`crate::exit_code::CORRUPT`], everything else generic.
fn map_err(e: NumarckError) -> CliError {
    match e {
        NumarckError::Corrupt(_) => CliError::corrupt(e.to_string()),
        other => other.to_string().into(),
    }
}

/// `numarck compact`: one maintenance pass over a checkpoint store.
pub fn compact(raw: &[String]) -> CliResult {
    let p = parse_args(
        raw,
        &["window", "slo-ms", "keep-fulls", "keep-every", "min-age-secs", "replicas",
          "die-after-ops"],
        &[],
    )?;
    let dir = &p.expect_positionals(1, "checkpoint store directory").map_err(CliError::usage)?[0];
    let mut store = open_store(dir, replica_count(&p)?)?;
    // Crash-injection knob (undocumented, mirrors `serve`): fail-stop
    // the whole process at the entry of storage operation K+1, so the
    // kill-anywhere harness can walk a kill point through a pass.
    if p.get("die-after-ops").is_some() {
        let ops: u64 = p.get_parsed("die-after-ops", 0)?;
        let backend = std::sync::Arc::new(numarck_checkpoint::FaultyBackend::wrapping(
            std::sync::Arc::clone(store.backend()),
            numarck_checkpoint::FaultSchedule::new().die_after_ops(ops),
        ));
        store = CheckpointStore::open_with(dir, backend)
            .map_err(|e| format!("cannot reopen {dir}: {e}"))?;
    }

    let defaults = CompactionConfig::default();
    let slo_ms: u64 = p.get_parsed("slo-ms", 0)?;
    let config = CompactionConfig {
        merge_window: p.get_parsed("window", defaults.merge_window)?,
        restart_slo_ns: (slo_ms > 0).then(|| slo_ms.saturating_mul(1_000_000)),
        keep_last_fulls: p.get_parsed("keep-fulls", 0)?,
        keep_every: p.get_parsed("keep-every", 0)?,
        min_age_secs: p.get_parsed("min-age-secs", 0)?,
        cost: CostModel::default(),
    };
    if config.keep_last_fulls == 0
        && (p.get("keep-every").is_some() || p.get("min-age-secs").is_some())
    {
        return Err(CliError::usage(
            "--keep-every/--min-age-secs tune retention GC, which only runs with \
             --keep-fulls N (N >= 1)",
        ));
    }

    // Replay outstanding write-ahead intents before touching the chain:
    // maintenance on a half-applied store would bake the damage in.
    let (mut journal, recovery) =
        numarck_serve::recover_session(&store).map_err(|e| format!("journal recovery: {e}"))?;
    let mut out = String::new();
    if recovery.replayed > 0 {
        out.push_str(&format!(
            "journal: replayed {} outstanding intent(s) ({} completed, {} rolled back{})\n",
            recovery.replayed,
            recovery.completed,
            recovery.rolled_back,
            if recovery.repaired { ", chain re-anchored" } else { "" },
        ));
    }

    let report = Compactor::new(config).run(&store, &mut journal).map_err(map_err)?;
    out.push_str(&format!(
        "compacted {dir}: {} merge(s) superseding {} delta(s), {} full(s) promoted\n",
        report.merges, report.deltas_merged, report.fulls_promoted
    ));
    if report.merges > 0 {
        out.push_str(&format!(
            "merge points: {} unchanged, {} ratio-coded, {} escaped\n",
            report.merge_stats.unchanged, report.merge_stats.ratio_coded, report.merge_stats.escaped
        ));
    }
    if config.keep_last_fulls >= 1 {
        out.push_str(&format!(
            "gc: {} file(s) removed ({} bytes), {} live, {} kept young, {} unresolvable\n",
            report.gc.removed,
            report.gc.bytes_removed,
            report.gc.live,
            report.gc.kept_young,
            report.gc.unresolvable
        ));
    }
    out.push_str(&format!("reclaimed {} bytes\n", report.bytes_reclaimed));
    if let Some(worst) = report.worst_case_cost_ns {
        out.push_str(&format!("worst-case modeled restart: {}\n", fmt_cost(Some(worst))));
    }
    Ok(out)
}

/// `numarck chain`: print the chain layout of a checkpoint store.
pub fn chain(raw: &[String]) -> CliResult {
    let p = parse_args(raw, &["replicas"], &[])?;
    let dir = &p.expect_positionals(1, "checkpoint store directory").map_err(CliError::usage)?[0];
    let store = open_store(dir, replica_count(&p)?)?;
    let view = ChainView::load(&store).map_err(|e| format!("cannot list {dir}: {e}"))?;
    if view.is_empty() {
        return Ok(format!("chain for {dir}: empty (no checkpoint files)\n"));
    }
    let model = CostModel::default();
    let mut out = format!(
        "chain for {dir}: {} iteration(s), {} full(s), {} bytes\n",
        view.iterations().count(),
        view.fulls().len(),
        view.total_bytes()
    );
    out.push_str(&format!(
        "{:>10}  {:<12} {:>4}  {:>3}  {:>9}  {:>12}  sections\n",
        "iter", "kind", "span", "ver", "bytes", "est-restart"
    ));
    for it in view.iterations() {
        let entry = view.entry(it).expect("iterations() only yields stored entries");
        let cost = fmt_cost(view.restart_cost_ns(it, &model));
        if let Some(bytes) = entry.full_bytes {
            out.push_str(&row(&store, it, true, "full", 0, bytes, &cost));
        }
        if let Some(bytes) = entry.delta_bytes {
            let kind = if entry.delta_span >= 2 { "delta merged" } else { "delta" };
            out.push_str(&row(&store, it, false, kind, entry.delta_span, bytes, &cost));
        }
    }
    out.push_str(&format!(
        "worst-case modeled restart: {} (model: {} ns/byte full decode + {} ns/delta hop)\n",
        fmt_cost(view.worst_case_cost_ns(&model)),
        model.full_ns_per_byte,
        model.delta_replay_ns
    ));
    Ok(out)
}

/// One layout row; container detail comes from parsing the file itself
/// (`?` if the payload does not validate — `scrub` is the tool for that).
fn row(
    store: &CheckpointStore,
    iteration: u64,
    is_full: bool,
    kind: &str,
    span: u64,
    bytes: u64,
    cost: &str,
) -> String {
    let (ver, detail) =
        container_of(store, iteration, is_full).unwrap_or_else(|| ("?".into(), "?".into()));
    let span = if is_full { "-".into() } else { span.max(1).to_string() };
    format!("{iteration:>10}  {kind:<12} {span:>4}  {ver:>3}  {bytes:>9}  {cost:>12}  {detail}\n")
}

/// Container version and section/dictionary footprint of one stored
/// file: each variable's section size on disk, plus the shared centroid
/// dictionary (v2 deltas only) that those sections reference.
fn container_of(store: &CheckpointStore, iteration: u64, is_full: bool) -> Option<(String, String)> {
    let bytes = store.read_raw(iteration, is_full).ok()?;
    let info = numarck_checkpoint::describe(&bytes).ok()?;
    let sections: Vec<String> =
        info.sections.iter().map(|s| format!("{}:{}B", s.name, s.bytes)).collect();
    let mut detail = sections.join(",");
    if info.dict_entries > 0 {
        detail.push_str(&format!(
            " (dict: {} entries, {}B)",
            info.dict_entries, info.dict_bytes
        ));
    }
    Some((format!("v{}", info.version), detail))
}

/// Render a modeled restart cost in milliseconds.
fn fmt_cost(ns: Option<u64>) -> String {
    match ns {
        Some(ns) => format!("{:.2} ms", ns as f64 / 1e6),
        None => "unresolvable".into(),
    }
}

#[cfg(test)]
mod tests {
    use crate::testutil::{argv, TempDir};
    use crate::{exit_code, run};

    /// One full at iteration 0, then a long plain-delta run: maximal
    /// surface for the merge policy.
    fn build_store(dir: &std::path::Path, iters: u64) {
        use numarck_checkpoint::{CheckpointManager, CheckpointStore, ManagerPolicy};
        let store = CheckpointStore::open(dir).unwrap();
        let cfg = numarck::Config::new(8, 0.001, numarck::Strategy::Clustering).unwrap();
        let mut mgr = CheckpointManager::new(store, cfg, ManagerPolicy::fixed(1000));
        let mut state: Vec<f64> = (0..120).map(|i| 1.0 + (i % 7) as f64).collect();
        for it in 0..iters {
            if it > 0 {
                for v in state.iter_mut() {
                    *v *= 1.002;
                }
            }
            let mut vars = std::collections::BTreeMap::new();
            vars.insert("x".to_string(), state.clone());
            mgr.checkpoint(it, &vars).unwrap();
        }
    }

    #[test]
    fn compact_merges_and_chain_shows_the_layout() {
        let tmp = TempDir::new("compact-cli");
        build_store(&tmp.0, 10);
        let dir = tmp.0.display().to_string();

        let out = run(&argv(&["chain", &dir])).unwrap();
        assert!(out.contains("10 iteration(s), 1 full(s)"), "{out}");
        assert!(out.contains("full"), "{out}");
        assert!(out.contains("delta"), "{out}");
        assert!(out.contains("worst-case modeled restart"), "{out}");
        assert!(out.contains(" v2 "), "every writer emits v2: {out}");
        assert!(out.contains("x:"), "section sizes per variable: {out}");
        assert!(out.contains("dict:"), "v2 deltas carry a shared dictionary: {out}");

        let out = run(&argv(&["compact", &dir, "--window", "4"])).unwrap();
        assert!(out.contains("2 merge(s) superseding 8 delta(s)"), "{out}");
        assert!(out.contains("merge points:"), "{out}");

        // The merged chain restarts every iteration within tolerance.
        let out = run(&argv(&["verify", "--store", &dir])).unwrap();
        assert!(out.contains("PASS"), "{out}");

        // The inspector marks the merged spans.
        let out = run(&argv(&["chain", &dir])).unwrap();
        assert!(out.contains("delta merged"), "{out}");

        // A second pass has nothing left to do.
        let out = run(&argv(&["compact", &dir, "--window", "4"])).unwrap();
        assert!(out.contains("0 merge(s)"), "{out}");
    }

    #[test]
    fn chain_and_verify_flag_a_mixed_version_store() {
        use numarck_checkpoint::{CheckpointFile, CheckpointStore};
        let tmp = TempDir::new("mixed-version-cli");
        build_store(&tmp.0, 4);
        let dir = tmp.0.display().to_string();

        // Rewrite iteration 2's delta in the frozen v1 layout, as a
        // store written by an old deployment and partially upgraded.
        let store = CheckpointStore::open(&tmp.0).unwrap();
        let bytes = store.read_raw(2, false).unwrap();
        let file = CheckpointFile::from_bytes(&bytes).unwrap();
        store.write_raw(2, false, &file.to_bytes_v1()).unwrap();

        let out = run(&argv(&["chain", &dir])).unwrap();
        assert!(out.contains(" v1 "), "{out}");
        assert!(out.contains(" v2 "), "{out}");

        let out = run(&argv(&["verify", "--store", &dir])).unwrap();
        assert!(out.contains("PASS"), "mixed chains still restart: {out}");
        assert!(out.contains("container versions: v1 x1, v2 x3"), "{out}");
        assert!(out.contains("WARNING: mixed-version chain"), "{out}");

        // A uniform store verifies without the warning.
        let tmp2 = TempDir::new("uniform-version-cli");
        build_store(&tmp2.0, 3);
        let out = run(&argv(&["verify", "--store", &tmp2.0.display().to_string()])).unwrap();
        assert!(out.contains("container versions: v2 x3"), "{out}");
        assert!(!out.contains("WARNING"), "{out}");
    }

    #[test]
    fn compact_with_retention_gc_reports_removals() {
        let tmp = TempDir::new("compact-gc-cli");
        build_store(&tmp.0, 10);
        let dir = tmp.0.display().to_string();
        let out =
            run(&argv(&["compact", &dir, "--window", "4", "--keep-fulls", "1"])).unwrap();
        assert!(out.contains("gc:"), "{out}");
        assert!(out.contains("reclaimed"), "{out}");
    }

    #[test]
    fn gc_tuning_flags_require_keep_fulls() {
        let tmp = TempDir::new("compact-flags");
        build_store(&tmp.0, 4);
        let dir = tmp.0.display().to_string();
        let err = run(&argv(&["compact", &dir, "--keep-every", "4"])).unwrap_err();
        assert_eq!(err.code, exit_code::USAGE, "{err}");
    }

    #[test]
    fn chain_on_a_missing_store_is_missing() {
        let err = run(&argv(&["chain", "/nonexistent/numarck-chain-test"])).unwrap_err();
        assert_eq!(err.code, exit_code::MISSING, "{err}");
        let err = run(&argv(&["compact", "/nonexistent/numarck-chain-test"])).unwrap_err();
        assert_eq!(err.code, exit_code::MISSING, "{err}");
    }

    #[test]
    fn chain_on_an_empty_store_says_so() {
        let tmp = TempDir::new("chain-empty");
        let dir = tmp.0.display().to_string();
        let out = run(&argv(&["chain", &dir])).unwrap();
        assert!(out.contains("empty"), "{out}");
    }
}
