//! On-disk checkpoint container.
//!
//! ```text
//! [0..4)   magic b"NCKP"
//! [4..6)   version (u16)
//! [6]      kind: 0 = full, 1 = delta
//! [7]      reserved
//! [8..16)  iteration number (u64)
//! [16..20) variable count (u32)
//! [20..24) delta span (u32): for deltas, how far back the base state
//!          lives. 0 (the historic reserved value) and 1 both mean
//!          "applies against iteration − 1"; a merged delta produced by
//!          compaction stores s ≥ 2 meaning "applies against the state
//!          at iteration − s". Always 0 for full checkpoints.
//! per variable:
//!   name_len (u16) | name bytes (UTF-8)
//!   payload_len (u64) | payload bytes
//!     full:  num_points × f64 LE
//!     delta: a numarck::serialize blob
//! crc32 of everything above (u32)
//! ```

use bytes::{Buf, BufMut, BytesMut};

use numarck::encode::CompressedIteration;
use numarck::error::NumarckError;
use numarck::serialize as nser;

use crate::VariableSet;

/// Magic bytes of a checkpoint file.
pub const MAGIC: [u8; 4] = *b"NCKP";
/// Current container version.
pub const VERSION: u16 = 1;

/// Full (exact) or delta (NUMARCK-compressed) checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckpointKind {
    /// Raw `f64` arrays — the paper's `D_0`.
    Full(VariableSet),
    /// One compressed block per variable.
    Delta(std::collections::BTreeMap<String, CompressedIteration>),
}

/// A checkpoint ready to be written or just read.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointFile {
    /// Simulation iteration this checkpoint captures.
    pub iteration: u64,
    /// Payload.
    pub kind: CheckpointKind,
    /// How far back the base state of a delta lives: 0 or 1 both mean
    /// iteration − 1 (every file written before compaction existed has
    /// 0 here); s ≥ 2 marks a merged delta applying against the state
    /// at iteration − s. Meaningless (and 0) for full checkpoints.
    pub delta_span: u32,
}

impl CheckpointFile {
    /// A plain checkpoint: a full, or a delta against iteration − 1.
    pub fn new(iteration: u64, kind: CheckpointKind) -> Self {
        Self { iteration, kind, delta_span: 0 }
    }

    /// A merged delta applying against the state at `iteration − span`.
    pub fn merged_delta(
        iteration: u64,
        blocks: std::collections::BTreeMap<String, CompressedIteration>,
        span: u32,
    ) -> Self {
        assert!(span >= 1, "a delta always spans at least one iteration");
        Self { iteration, kind: CheckpointKind::Delta(blocks), delta_span: span }
    }

    /// Effective span: how many iterations back this file's base state
    /// lives. 0 for fulls (they are their own base); ≥ 1 for deltas,
    /// normalising the legacy reserved value 0 to 1.
    pub fn span(&self) -> u64 {
        match self.kind {
            CheckpointKind::Full(_) => 0,
            CheckpointKind::Delta(_) => u64::from(self.delta_span.max(1)),
        }
    }

    /// Serialise to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = BytesMut::new();
        buf.put_slice(&MAGIC);
        buf.put_u16_le(VERSION);
        let (kind_byte, count) = match &self.kind {
            CheckpointKind::Full(vars) => (0u8, vars.len()),
            CheckpointKind::Delta(blocks) => (1u8, blocks.len()),
        };
        buf.put_u8(kind_byte);
        buf.put_u8(0);
        buf.put_u64_le(self.iteration);
        buf.put_u32_le(count as u32);
        let span = match &self.kind {
            CheckpointKind::Full(_) => 0,
            CheckpointKind::Delta(_) => self.delta_span,
        };
        buf.put_u32_le(span);
        match &self.kind {
            CheckpointKind::Full(vars) => {
                for (name, data) in vars {
                    put_name(&mut buf, name);
                    buf.put_u64_le((data.len() * 8) as u64);
                    for &v in data {
                        buf.put_f64_le(v);
                    }
                }
            }
            CheckpointKind::Delta(blocks) => {
                for (name, block) in blocks {
                    put_name(&mut buf, name);
                    let payload = nser::to_bytes(block);
                    buf.put_u64_le(payload.len() as u64);
                    buf.put_slice(&payload);
                }
            }
        }
        let crc = nser::crc32(&buf);
        buf.put_u32_le(crc);
        buf.to_vec()
    }

    /// Parse and validate bytes.
    pub fn from_bytes(data: &[u8]) -> Result<Self, NumarckError> {
        const HEADER: usize = 24;
        if data.len() < HEADER + 4 {
            return Err(NumarckError::Corrupt("checkpoint file too short".into()));
        }
        let body = &data[..data.len() - 4];
        let stored = u32::from_le_bytes(data[data.len() - 4..].try_into().expect("4 bytes"));
        let computed = nser::crc32(body);
        if stored != computed {
            return Err(NumarckError::Corrupt(format!(
                "checkpoint crc mismatch: stored {stored:#x}, computed {computed:#x}"
            )));
        }
        let mut cur = body;
        let mut magic = [0u8; 4];
        cur.copy_to_slice(&mut magic);
        if magic != MAGIC {
            return Err(NumarckError::Corrupt("bad checkpoint magic".into()));
        }
        let version = cur.get_u16_le();
        if version != VERSION {
            return Err(NumarckError::VersionMismatch { found: version, expected: VERSION });
        }
        let kind_byte = cur.get_u8();
        let _ = cur.get_u8();
        let iteration = cur.get_u64_le();
        let count = cur.get_u32_le() as usize;
        let stored_span = cur.get_u32_le();

        let read_entry = |cur: &mut &[u8]| -> Result<(String, Vec<u8>), NumarckError> {
            if cur.remaining() < 2 {
                return Err(NumarckError::Corrupt("truncated variable name".into()));
            }
            let name_len = cur.get_u16_le() as usize;
            if cur.remaining() < name_len {
                return Err(NumarckError::Corrupt("truncated variable name".into()));
            }
            let mut name_bytes = vec![0u8; name_len];
            cur.copy_to_slice(&mut name_bytes);
            let name = String::from_utf8(name_bytes)
                .map_err(|_| NumarckError::Corrupt("variable name not UTF-8".into()))?;
            if cur.remaining() < 8 {
                return Err(NumarckError::Corrupt("truncated payload length".into()));
            }
            let payload_len = cur.get_u64_le() as usize;
            if cur.remaining() < payload_len {
                return Err(NumarckError::Corrupt(format!(
                    "payload for '{name}' truncated: want {payload_len}, have {}",
                    cur.remaining()
                )));
            }
            let mut payload = vec![0u8; payload_len];
            cur.copy_to_slice(&mut payload);
            Ok((name, payload))
        };

        let kind = match kind_byte {
            0 => {
                let mut vars = VariableSet::new();
                for _ in 0..count {
                    let (name, payload) = read_entry(&mut cur)?;
                    if payload.len() % 8 != 0 {
                        return Err(NumarckError::Corrupt(format!(
                            "full payload for '{name}' not a multiple of 8 bytes"
                        )));
                    }
                    let values: Vec<f64> = payload
                        .chunks_exact(8)
                        .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
                        .collect();
                    vars.insert(name, values);
                }
                CheckpointKind::Full(vars)
            }
            1 => {
                let mut blocks = std::collections::BTreeMap::new();
                for _ in 0..count {
                    let (name, payload) = read_entry(&mut cur)?;
                    blocks.insert(name, nser::from_bytes(&payload)?);
                }
                CheckpointKind::Delta(blocks)
            }
            k => return Err(NumarckError::Corrupt(format!("unknown checkpoint kind {k}"))),
        };
        if cur.remaining() != 0 {
            return Err(NumarckError::Corrupt(format!(
                "{} trailing bytes after last variable",
                cur.remaining()
            )));
        }
        let delta_span = match kind {
            CheckpointKind::Full(_) => 0,
            CheckpointKind::Delta(_) => stored_span,
        };
        Ok(Self { iteration, kind, delta_span })
    }
}

fn put_name(buf: &mut BytesMut, name: &str) {
    assert!(name.len() <= u16::MAX as usize, "variable name too long");
    buf.put_u16_le(name.len() as u16);
    buf.put_slice(name.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;
    use numarck::{Config, Strategy};

    fn sample_vars() -> VariableSet {
        let mut vars = VariableSet::new();
        vars.insert("dens".into(), (0..500).map(|i| 1.0 + (i % 7) as f64).collect());
        vars.insert("pres".into(), (0..500).map(|i| 0.5 + (i % 3) as f64).collect());
        vars
    }

    fn sample_delta() -> CheckpointFile {
        let cfg = Config::new(8, 0.001, Strategy::Clustering).unwrap();
        let vars = sample_vars();
        let mut blocks = std::collections::BTreeMap::new();
        for (name, data) in &vars {
            let next: Vec<f64> = data.iter().map(|v| v * 1.01).collect();
            let (block, _) = numarck::encode::encode(data, &next, &cfg).unwrap();
            blocks.insert(name.clone(), block);
        }
        CheckpointFile::new(42, CheckpointKind::Delta(blocks))
    }

    #[test]
    fn full_roundtrip() {
        let f = CheckpointFile::new(7, CheckpointKind::Full(sample_vars()));
        let back = CheckpointFile::from_bytes(&f.to_bytes()).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn delta_roundtrip() {
        let f = sample_delta();
        let back = CheckpointFile::from_bytes(&f.to_bytes()).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn merged_delta_span_roundtrips() {
        let mut f = sample_delta();
        f.delta_span = 5;
        let back = CheckpointFile::from_bytes(&f.to_bytes()).unwrap();
        assert_eq!(back.delta_span, 5);
        assert_eq!(back.span(), 5);
        assert_eq!(back, f);
    }

    #[test]
    fn legacy_zero_span_reads_as_one_iteration() {
        // Files written before compaction existed carry 0 in the span
        // slot; they are plain deltas against iteration − 1.
        let f = sample_delta();
        assert_eq!(f.delta_span, 0);
        assert_eq!(f.span(), 1);
        let full = CheckpointFile::new(7, CheckpointKind::Full(sample_vars()));
        assert_eq!(full.span(), 0);
    }

    #[test]
    fn empty_variable_set_roundtrip() {
        let f = CheckpointFile::new(0, CheckpointKind::Full(VariableSet::new()));
        let back = CheckpointFile::from_bytes(&f.to_bytes()).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn corruption_detected_everywhere() {
        let bytes = sample_delta().to_bytes();
        for pos in [0usize, 5, 9, 30, bytes.len() / 2, bytes.len() - 2] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x40;
            assert!(CheckpointFile::from_bytes(&bad).is_err(), "flip at {pos}");
        }
    }

    #[test]
    fn truncation_detected() {
        let bytes = sample_delta().to_bytes();
        for cut in [0usize, 10, 23, bytes.len() / 3, bytes.len() - 1] {
            assert!(CheckpointFile::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn unicode_variable_names() {
        let mut vars = VariableSet::new();
        vars.insert("ρ-density".into(), vec![1.0, 2.0]);
        let f = CheckpointFile::new(1, CheckpointKind::Full(vars));
        let back = CheckpointFile::from_bytes(&f.to_bytes()).unwrap();
        assert_eq!(back, f);
    }
}
