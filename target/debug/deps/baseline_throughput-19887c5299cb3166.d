/root/repo/target/debug/deps/baseline_throughput-19887c5299cb3166.d: crates/numarck-bench/benches/baseline_throughput.rs

/root/repo/target/debug/deps/libbaseline_throughput-19887c5299cb3166.rmeta: crates/numarck-bench/benches/baseline_throughput.rs

crates/numarck-bench/benches/baseline_throughput.rs:
