//! Satellite coverage: multi-threaded `PutIteration` traffic through a
//! `FaultyBackend` schedule while scrub→quarantine→repair cycles run,
//! asserting every session chain still restarts bit-exactly.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use numarck::{Config, DeltaChain, Strategy};
use numarck_checkpoint::fault::{inject, Fault};
use numarck_checkpoint::{
    CheckpointStore, FaultSchedule, FaultyBackend, VariableSet, WriteFault,
};
use numarck_serve::{Client, ClientError, Server, ServerConfig, WrittenKind};

mod util;
use util::TempDir;

const TIMEOUT: Duration = Duration::from_secs(10);
const SESSIONS: usize = 4;
const ITERS: u64 = 20;
const POINTS: usize = 200;

fn truth(session: usize, iters: u64) -> Vec<VariableSet> {
    let mut out = Vec::new();
    let mut x: Vec<f64> =
        (0..POINTS).map(|j| (1.0 + session as f64 * 0.25) * (1.0 + (j % 11) as f64)).collect();
    for it in 0..iters {
        if it > 0 {
            for (j, v) in x.iter_mut().enumerate() {
                *v *= 1.0 + 0.005 * (((j as u64 + 3 * it) % 13) as f64 - 6.0) / 6.0;
            }
        }
        let mut vars = VariableSet::new();
        vars.insert("x".into(), x.clone());
        out.push(vars);
    }
    out
}

/// Open-loop DeltaChain reference from the last acked full ≤ `target`.
fn expected_at(
    exact: &[VariableSet],
    kinds: &BTreeMap<u64, WrittenKind>,
    target: u64,
    config: Config,
) -> VariableSet {
    let base_iter = kinds
        .iter()
        .filter(|(it, kind)| **it <= target && !matches!(kind, WrittenKind::Delta))
        .map(|(it, _)| *it)
        .max()
        .expect("a full checkpoint at or before the target");
    let mut out = VariableSet::new();
    for (name, base) in &exact[base_iter as usize] {
        let mut chain = DeltaChain::new(base.clone(), config);
        for it in base_iter + 1..=target {
            chain.append(&exact[it as usize][name]).unwrap();
        }
        out.insert(name.clone(), chain.reconstruct(chain.len()).unwrap());
    }
    out
}

#[test]
fn concurrent_ingest_with_faults_and_scrub_repair_stays_bit_exact() {
    let tmp = TempDir::new("scrub-race");
    let config = Config::new(8, 0.001, Strategy::Clustering).unwrap();

    // Transient storage faults sprinkled through the run. Write #1 is
    // necessarily a session's ingest write (a repair can only write
    // after some ingest has landed), so at least that fault provably
    // costs a manager retry; the later ones land on whichever writer
    // (ingest, which retries, or a repair anchor write, whose scrub
    // cycle tolerates the failure and runs again).
    let schedule = FaultSchedule::new()
        .fail_write(1, WriteFault::Error(std::io::ErrorKind::StorageFull))
        .fail_write(11, WriteFault::Error(std::io::ErrorKind::Interrupted))
        .fail_write(23, WriteFault::Torn { keep: 9 })
        .fail_write(41, WriteFault::Error(std::io::ErrorKind::StorageFull));
    let backend = Arc::new(FaultyBackend::new(schedule));

    let mut server_config = ServerConfig::new(tmp.0.join("root"), config);
    server_config.full_interval = 6;
    server_config.io_timeout = TIMEOUT;
    server_config.backend = backend;
    // Enough workers that the scrubber and every ingest thread hold a
    // connection simultaneously — the race is the point of the test.
    server_config.workers = SESSIONS + 2;
    // Keep the default RetryPolicy (with real but tiny backoff): the
    // schedule's transient faults must be absorbed, not surfaced.
    let server = Server::spawn("127.0.0.1:0", server_config).unwrap();
    let addr = server.addr();

    let data: Vec<Vec<VariableSet>> = (0..SESSIONS).map(|s| truth(s, ITERS)).collect();
    let data = Arc::new(data);

    // A scrubber thread runs scrub→repair cycles across all sessions
    // for the whole ingest window. Repair may materialize anchor fulls
    // mid-chain; those hold exactly the open-loop replay state, so they
    // must not perturb bit-exactness. Transient backend faults can fail
    // a repair's anchor write — that is fine, the next cycle retries.
    let stop = Arc::new(AtomicBool::new(false));
    let scrubber = {
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut client = Client::connect(addr, TIMEOUT).unwrap();
            let ids: Vec<u64> = (0..SESSIONS)
                .map(|s| client.open_session(&format!("sess-{s}")).unwrap())
                .collect();
            let mut cycles = 0u32;
            while !stop.load(Ordering::SeqCst) {
                for &id in &ids {
                    match client.scrub(id, true) {
                        Ok(_) | Err(ClientError::Server { .. }) => {}
                        Err(e) => panic!("scrub transport failure: {e}"),
                    }
                }
                cycles += 1;
                thread::sleep(Duration::from_millis(5));
            }
            cycles
        })
    };

    // Concurrent ingest, one thread per session.
    let ingest: Vec<_> = (0..SESSIONS)
        .map(|s| {
            let data = Arc::clone(&data);
            thread::spawn(move || {
                let mut client = Client::connect(addr, TIMEOUT).unwrap();
                let session = client.open_session(&format!("sess-{s}")).unwrap();
                let mut kinds = BTreeMap::new();
                for it in 0..ITERS {
                    let outcome =
                        client.put_iteration(session, it, &data[s][it as usize]).unwrap();
                    kinds.insert(it, outcome.kind);
                }
                kinds
            })
        })
        .collect();
    let kinds_per_session: Vec<BTreeMap<u64, WrittenKind>> =
        ingest.into_iter().map(|h| h.join().unwrap()).collect();
    stop.store(true, Ordering::SeqCst);
    let scrub_cycles = scrubber.join().unwrap();
    assert!(scrub_cycles >= 1, "the scrubber must have run against live ingest");

    let mut client = Client::connect(addr, TIMEOUT).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.iterations_ingested, SESSIONS as u64 * ITERS);
    assert!(
        stats.write_retries >= 1,
        "the first scheduled fault hits an ingest write and must cost a retry"
    );

    // Every chain restarts bit-exactly despite faults + live repair.
    for s in 0..SESSIONS {
        let session = client.open_session(&format!("sess-{s}")).unwrap();
        let reply = client.restart(session, ITERS - 1).unwrap();
        assert_eq!(reply.achieved, ITERS - 1, "session {s}");
        let want = expected_at(&data[s], &kinds_per_session[s], ITERS - 1, config);
        assert_eq!(reply.vars.len(), want.len());
        for (name, want_vals) in &want {
            for (j, (g, w)) in reply.vars[name].iter().zip(want_vals).enumerate() {
                assert_eq!(g.to_bits(), w.to_bits(), "sess-{s}/{name}[{j}]");
            }
        }
    }

    // Now a *real* corruption: bit-flip the newest delta of session 0
    // on disk, scrub it out, repair, and confirm the degraded restart
    // is bit-exact. If one of the live repair cycles happened to anchor
    // a full at the same iteration, the flip only costs the redundant
    // delta and restart still achieves the victim; otherwise it falls
    // back one iteration. Both recoveries must be bit-exact.
    let store0 = CheckpointStore::open(tmp.0.join("root").join("sess-0")).unwrap();
    let victim = ITERS - 1;
    assert!(
        !matches!(kinds_per_session[0][&victim], WrittenKind::Full),
        "newest iteration should be a delta under full_interval=6"
    );
    inject(&store0.path_of(victim, false), Fault::BitFlip { offset: 40, mask: 0x08 }).unwrap();

    let session = client.open_session("sess-0").unwrap();
    let scrub_reply = client.scrub(session, false).unwrap();
    assert_eq!(scrub_reply.quarantined, 1, "the flipped delta must be quarantined");
    let repair_reply = client.scrub(session, true).unwrap();

    let reply = client.restart(session, victim).unwrap();
    assert!(
        reply.achieved == victim || reply.achieved == victim - 1,
        "achieved {} after losing the newest delta",
        reply.achieved
    );
    assert_eq!(repair_reply.anchored_at, Some(reply.achieved));
    let want = expected_at(&data[0], &kinds_per_session[0], reply.achieved, config);
    for (name, want_vals) in &want {
        for (j, (g, w)) in reply.vars[name].iter().zip(want_vals).enumerate() {
            assert_eq!(g.to_bits(), w.to_bits(), "degraded sess-0/{name}[{j}]");
        }
    }
    server.shutdown();
}
