//! Console tables and CSV emission.

use std::fs;
use std::io::Write;
use std::path::Path;

/// Print a fixed-width table. The first row is the header.
pub fn print_table(rows: &[Vec<String>]) {
    if rows.is_empty() {
        return;
    }
    let cols = rows.iter().map(|r| r.len()).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (c, cell) in row.iter().enumerate() {
            widths[c] = widths[c].max(cell.chars().count());
        }
    }
    let line = |row: &[String]| {
        let cells: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(c, cell)| format!("{cell:>width$}", width = widths[c]))
            .collect();
        println!("  {}", cells.join("  "));
    };
    line(&rows[0]);
    let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    line(&rule);
    for row in &rows[1..] {
        line(row);
    }
}

/// Write rows as CSV under `dir/name.csv` (creating `dir`), returning
/// the path written. Cells are written verbatim; callers only emit
/// numbers and simple identifiers.
pub fn write_csv(dir: &str, name: &str, rows: &[Vec<String>]) -> std::io::Result<String> {
    fs::create_dir_all(dir)?;
    let path = Path::new(dir).join(format!("{name}.csv"));
    let mut f = fs::File::create(&path)?;
    for row in rows {
        writeln!(f, "{}", row.join(","))?;
    }
    Ok(path.display().to_string())
}

/// Host metadata as a one-line JSON object, stamped into every
/// `BENCH_*.json` so throughput numbers carry the machine and revision
/// they were measured on.
pub fn host_meta_json() -> String {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let rayon_threads = numarck_par::pool::available_threads();
    let git_rev = std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string());
    format!(
        "{{\"cores\": {cores}, \"rayon_threads\": {rayon_threads}, \
         \"sequential_stub\": {}, \"git_rev\": \"{git_rev}\", \"os\": \"{}\"}}",
        sequential_stub(),
        std::env::consts::OS
    )
}

/// Whether the rayon underneath is the container's sequential stub
/// rather than a real thread pool. Detected empirically — a genuine
/// 2-thread pool runs `install` closures on a worker thread, the stub
/// runs them inline on the caller — so parallel-looking numbers in a
/// stamped report can be discounted honestly.
pub fn sequential_stub() -> bool {
    let caller = std::thread::current().id();
    numarck_par::pool::build_pool(2).install(|| std::thread::current().id() == caller)
}

/// Format a fraction as a percent with `dp` decimals.
pub fn pct(x: f64, dp: usize) -> String {
    format!("{:.dp$}", x * 100.0)
}

/// Format `mean ± std` the way the paper's tables do.
pub fn pm(mean: f64, std: f64, dp: usize) -> String {
    format!("{mean:.dp$}±{std:.dp$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_and_pm_format() {
        assert_eq!(pct(0.80078125, 3), "80.078");
        assert_eq!(pm(0.999, 0.0004, 3), "0.999±0.000");
    }

    #[test]
    fn csv_rows_written() {
        let dir = std::env::temp_dir().join(format!("numarck-csv-{}", std::process::id()));
        let rows = vec![
            vec!["a".to_string(), "b".to_string()],
            vec!["1".to_string(), "2".to_string()],
        ];
        let path = write_csv(dir.to_str().unwrap(), "t", &rows).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a,b\n1,2\n");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn print_table_handles_empty() {
        print_table(&[]); // must not panic
    }

    #[test]
    fn host_meta_has_all_fields() {
        let meta = host_meta_json();
        for key in
            ["\"cores\":", "\"rayon_threads\":", "\"sequential_stub\":", "\"git_rev\":", "\"os\":"]
        {
            assert!(meta.contains(key), "{meta}");
        }
        // The flag must be a bare JSON boolean, whichever rayon this is.
        assert!(
            meta.contains("\"sequential_stub\": true") || meta.contains("\"sequential_stub\": false"),
            "{meta}"
        );
    }
}
