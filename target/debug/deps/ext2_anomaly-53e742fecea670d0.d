/root/repo/target/debug/deps/ext2_anomaly-53e742fecea670d0.d: crates/numarck-bench/src/bin/ext2_anomaly.rs

/root/repo/target/debug/deps/ext2_anomaly-53e742fecea670d0: crates/numarck-bench/src/bin/ext2_anomaly.rs

crates/numarck-bench/src/bin/ext2_anomaly.rs:
