/root/repo/target/debug/examples/flash_checkpointing-6fd851433ddd501f.d: examples/flash_checkpointing.rs

/root/repo/target/debug/examples/libflash_checkpointing-6fd851433ddd501f.rmeta: examples/flash_checkpointing.rs

examples/flash_checkpointing.rs:
