/root/repo/target/debug/deps/kmeans_scaling-290cff89b61a7cfc.d: crates/numarck-bench/benches/kmeans_scaling.rs

/root/repo/target/debug/deps/libkmeans_scaling-290cff89b61a7cfc.rmeta: crates/numarck-bench/benches/kmeans_scaling.rs

crates/numarck-bench/benches/kmeans_scaling.rs:
