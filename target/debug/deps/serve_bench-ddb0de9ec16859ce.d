/root/repo/target/debug/deps/serve_bench-ddb0de9ec16859ce.d: crates/numarck-bench/src/bin/serve_bench.rs

/root/repo/target/debug/deps/serve_bench-ddb0de9ec16859ce: crates/numarck-bench/src/bin/serve_bench.rs

crates/numarck-bench/src/bin/serve_bench.rs:
