//! Minimal stand-in for the `bytes` crate: `Buf` over `&[u8]`,
//! `BufMut` over a growable buffer, and `Bytes`/`BytesMut` as thin
//! `Vec<u8>` wrappers. Little-endian accessors only — that is all the
//! NUMARCK serializers use.

use std::ops::{Deref, DerefMut};

/// Read cursor over a byte source. Implemented for `&[u8]`, advancing
/// the slice in place.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    fn advance(&mut self, cnt: usize);
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }

    fn advance(&mut self, cnt: usize) {
        assert!(self.len() >= cnt, "buffer underflow");
        *self = &self[cnt..];
    }
}

/// Write cursor appending to a growable buffer.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Immutable byte container.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    pub fn new() -> Self {
        Self(Vec::new())
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self(data.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self(v)
    }
}

/// Mutable byte builder; `freeze` converts into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    pub fn new() -> Self {
        Self(Vec::new())
    }

    pub fn with_capacity(cap: usize) -> Self {
        Self(Vec::with_capacity(cap))
    }

    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_little_endian() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(7);
        buf.put_u16_le(0x1234);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(42);
        buf.put_f64_le(1.5);
        buf.put_slice(b"xy");
        let frozen = buf.freeze();
        let mut cur: &[u8] = &frozen;
        assert_eq!(cur.get_u8(), 7);
        assert_eq!(cur.get_u16_le(), 0x1234);
        assert_eq!(cur.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cur.get_u64_le(), 42);
        assert_eq!(cur.get_f64_le(), 1.5);
        let mut rest = [0u8; 2];
        cur.copy_to_slice(&mut rest);
        assert_eq!(&rest, b"xy");
        assert_eq!(cur.remaining(), 0);
    }
}
