/root/repo/target/debug/deps/fig7-f943ab142150b5d0.d: crates/numarck-bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-f943ab142150b5d0: crates/numarck-bench/src/bin/fig7.rs

crates/numarck-bench/src/bin/fig7.rs:
