//! Write-side checkpointing policy (the paper's Algorithm 1).
//!
//! Every `full_interval` iterations a full checkpoint is stored; in
//! between, each variable's transition from the *exact* previous
//! iteration is NUMARCK-compressed into a delta checkpoint. The manager
//! therefore keeps one copy of the previous exact state — the in-situ
//! memory cost the paper's scheme pays for avoiding error feedback in
//! the encoder.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use numarck::drift::{ChangeDistribution, DriftTracker};
use numarck::encode::IterationStats;
use numarck::error::NumarckError;
use numarck::{Compressor, Config};

use crate::format::{CheckpointFile, CheckpointKind};
use crate::store::CheckpointStore;
use crate::VariableSet;

/// Time source for retry backoff. Production uses [`SystemClock`]; tests
/// inject a recording clock so backoff is asserted, not slept.
pub trait Clock: std::fmt::Debug + Send + Sync {
    /// Block the caller for `d`.
    fn sleep(&self, d: Duration);
}

/// The real wall clock ([`std::thread::sleep`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }
}

/// Bounded exponential-backoff retry for transient checkpoint-write
/// faults (ENOSPC while a reaper frees space, EIO blips, interrupted
/// syscalls). Attempt `n` (0-based) sleeps `base_backoff * 2^n`, capped
/// at `max_backoff`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = fail fast).
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub base_backoff: Duration,
    /// Ceiling on any single backoff.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 3,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(1),
        }
    }
}

impl RetryPolicy {
    /// Fail fast: no retries, no sleeping.
    pub fn none() -> Self {
        Self { max_retries: 0, base_backoff: Duration::ZERO, max_backoff: Duration::ZERO }
    }

    /// Backoff before retry number `retry` (0-based): exponential from
    /// `base_backoff`, saturating at `max_backoff`.
    pub fn backoff_for(&self, retry: u32) -> Duration {
        let factor = 1u32.checked_shl(retry.min(20)).unwrap_or(u32::MAX);
        self.base_backoff.saturating_mul(factor).min(self.max_backoff)
    }
}

/// Is this I/O error worth retrying? Permanent conditions (permission
/// denied, read-only filesystem, invalid path) are not; conditions that
/// plausibly clear on their own are. Public so callers writing *around*
/// the manager (e.g. an intent journal) retry on the same judgement.
pub fn is_transient(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::StorageFull
            | std::io::ErrorKind::Interrupted
            | std::io::ErrorKind::TimedOut
            | std::io::ErrorKind::WouldBlock
            | std::io::ErrorKind::Other
    ) || e.raw_os_error() == Some(5) // EIO
}

/// What one checkpoint call actually cost: the policy outcome plus how
/// hard the storage layer had to be pushed to land it.
#[derive(Debug, Clone)]
pub struct CheckpointReport {
    /// The policy-level outcome (full / drift full / delta).
    pub outcome: CheckpointOutcome,
    /// Write retries that were needed (0 = first attempt succeeded).
    pub retries: u32,
    /// Total backoff slept across those retries.
    pub backoff: Duration,
}

/// Adaptive full-checkpoint triggering (the paper's §V future-work item:
/// "determining dynamic checkpointing frequency based on how evolving
/// distributions change").
///
/// When the L1 distance between consecutive iterations' change-ratio
/// distributions exceeds `drift_threshold` for any variable, the regime
/// has shifted — the learned representatives are getting stale and
/// restart chains through the shift accumulate error faster — so a full
/// checkpoint is written immediately, resetting the chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptivePolicy {
    /// L1 drift (0..=2) above which a full checkpoint is forced.
    pub drift_threshold: f64,
    /// Support half-width for the distribution summaries.
    pub cap: f64,
}

impl Default for AdaptivePolicy {
    fn default() -> Self {
        Self { drift_threshold: 0.5, cap: 0.5 }
    }
}

/// Checkpointing policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ManagerPolicy {
    /// A full checkpoint at least every this many iterations (the first
    /// is always full). Must be >= 1.
    pub full_interval: u64,
    /// Optional drift-triggered early fulls.
    pub adaptive: Option<AdaptivePolicy>,
}

impl ManagerPolicy {
    /// Fixed-interval policy (the paper's baseline behaviour).
    pub fn fixed(full_interval: u64) -> Self {
        Self { full_interval, adaptive: None }
    }

    /// Fixed interval plus drift-triggered early fulls.
    pub fn adaptive(full_interval: u64, adaptive: AdaptivePolicy) -> Self {
        Self { full_interval, adaptive: Some(adaptive) }
    }
}

impl Default for ManagerPolicy {
    fn default() -> Self {
        Self::fixed(10)
    }
}

/// Outcome of one [`CheckpointManager::checkpoint`] call.
#[derive(Debug, Clone)]
pub enum CheckpointOutcome {
    /// A full checkpoint was written (on schedule, or forced by shape
    /// change / iteration gap).
    Full,
    /// A full checkpoint was written early because the change
    /// distribution drifted past the adaptive threshold.
    FullOnDrift {
        /// The variable whose drift tripped the trigger.
        variable: String,
        /// Its measured L1 drift.
        drift_l1: f64,
    },
    /// A delta checkpoint was written; per-variable compression stats.
    Delta(BTreeMap<String, IterationStats>),
}

/// A checkpoint that has been fully encoded but not yet written.
///
/// Produced by [`CheckpointManager::prepare`]: the policy decision,
/// compression, and serialization have all happened, so the exact bytes
/// that will land on disk — and their CRC — are known *before* the
/// store mutates. A write-ahead journal can therefore record an intent
/// (iteration + content hash) with nothing to lie about, then
/// [`CheckpointManager::commit`] makes the bytes durable.
#[derive(Debug)]
pub struct PreparedCheckpoint {
    iteration: u64,
    is_full: bool,
    outcome: CheckpointOutcome,
    bytes: Vec<u8>,
    content_crc: u32,
    vars: VariableSet,
}

impl PreparedCheckpoint {
    /// The iteration this checkpoint captures.
    pub fn iteration(&self) -> u64 {
        self.iteration
    }

    /// True when the encoded file is a full checkpoint.
    pub fn is_full(&self) -> bool {
        self.is_full
    }

    /// CRC32 of the exact serialized bytes
    /// [`CheckpointManager::commit`] will write.
    pub fn content_crc(&self) -> u32 {
        self.content_crc
    }

    /// Serialized size of the encoded file.
    pub fn len_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// The policy-level outcome this checkpoint will report on commit.
    pub fn outcome(&self) -> &CheckpointOutcome {
        &self.outcome
    }
}

/// The write-side manager.
#[derive(Debug)]
pub struct CheckpointManager {
    store: CheckpointStore,
    compressor: Compressor,
    policy: ManagerPolicy,
    retry: RetryPolicy,
    clock: Arc<dyn Clock>,
    previous: Option<(u64, VariableSet)>,
    drift_trackers: BTreeMap<String, DriftTracker>,
    lifetime_retries: u64,
    lifetime_backoff: Duration,
}

/// Lifetime write-retry totals accumulated by a [`CheckpointManager`]
/// across every checkpoint it has written (satellite of the PR 1 retry
/// machinery: visible even through the plain [`CheckpointManager::checkpoint`]
/// API that discards per-call reports).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RetryTotals {
    /// Write retries across the manager's lifetime.
    pub retries: u64,
    /// Total backoff slept across those retries.
    pub backoff: Duration,
}

impl CheckpointManager {
    /// Create over `store`, compressing deltas with `config`, with the
    /// default [`RetryPolicy`] on the system clock.
    ///
    /// # Panics
    /// Panics if `policy.full_interval == 0`.
    pub fn new(store: CheckpointStore, config: Config, policy: ManagerPolicy) -> Self {
        Self::with_retry(store, config, policy, RetryPolicy::default(), Arc::new(SystemClock))
    }

    /// Create with an explicit retry policy and clock (tests pass a
    /// recording clock so no real time is slept).
    ///
    /// # Panics
    /// Panics if `policy.full_interval == 0`.
    pub fn with_retry(
        store: CheckpointStore,
        config: Config,
        policy: ManagerPolicy,
        retry: RetryPolicy,
        clock: Arc<dyn Clock>,
    ) -> Self {
        assert!(policy.full_interval >= 1, "full_interval must be >= 1");
        Self {
            store,
            compressor: Compressor::new(config),
            policy,
            retry,
            clock,
            previous: None,
            drift_trackers: BTreeMap::new(),
            lifetime_retries: 0,
            lifetime_backoff: Duration::ZERO,
        }
    }

    /// Lifetime write-retry totals: every retry and backoff this manager
    /// has accumulated, including calls made through the plain
    /// [`Self::checkpoint`] API that discards per-call reports.
    pub fn retry_totals(&self) -> RetryTotals {
        RetryTotals { retries: self.lifetime_retries, backoff: self.lifetime_backoff }
    }

    /// The underlying store.
    pub fn store(&self) -> &CheckpointStore {
        &self.store
    }

    /// How many variables the last checkpoint carried (0 before the
    /// first). Delta replay cost scales with this, so maintenance uses
    /// it to seed restart cost models from per-block decode timings.
    pub fn variable_count(&self) -> usize {
        self.previous.as_ref().map(|(_, vars)| vars.len()).unwrap_or(0)
    }

    /// All checkpoints currently stored, sorted by iteration (fulls
    /// before deltas at the same iteration). Quarantined files are not
    /// listed.
    ///
    /// Takes `&self`: read-side queries never touch the manager's
    /// mutable encoding state, so a server can answer them on a shared
    /// reference while holding no write lock.
    pub fn list_iterations(&self) -> std::io::Result<Vec<crate::store::StoreEntry>> {
        self.store.list()
    }

    /// The newest iteration that restarts cleanly, or `None` when the
    /// store holds nothing restartable.
    ///
    /// Verifies by actually replaying the chain (via
    /// [`RestartEngine::restart_at_or_before`](crate::restart::RestartEngine::restart_at_or_before)),
    /// so a `Some(n)` answer is a guarantee, not a guess from file names.
    pub fn latest_restartable(&self) -> Option<u64> {
        let newest = self.store.list().ok()?.last()?.iteration;
        crate::restart::RestartEngine::new(self.store.clone())
            .restart_at_or_before(newest)
            .ok()
            .map(|d| d.achieved())
    }

    /// Checkpoint `vars` as iteration `iteration`.
    ///
    /// Writes a full checkpoint when the policy says so (or when this is
    /// the first call, or the variable shapes changed); otherwise writes
    /// a NUMARCK delta against the previous exact state.
    pub fn checkpoint(
        &mut self,
        iteration: u64,
        vars: &VariableSet,
    ) -> Result<CheckpointOutcome, NumarckError> {
        self.checkpoint_with_report(iteration, vars).map(|r| r.outcome)
    }

    /// Like [`Self::checkpoint`], but also reports how many write
    /// retries (and how much backoff) the storage layer needed.
    pub fn checkpoint_with_report(
        &mut self,
        iteration: u64,
        vars: &VariableSet,
    ) -> Result<CheckpointReport, NumarckError> {
        let prepared = self.prepare(iteration, vars)?;
        self.commit(prepared)
    }

    /// Encode `vars` as iteration `iteration` without touching the
    /// store: policy decision, compression, and serialization all
    /// happen, but no byte lands on disk until [`Self::commit`].
    ///
    /// The returned [`PreparedCheckpoint`] exposes the CRC of the exact
    /// bytes `commit` will write, so a caller can record a write-ahead
    /// intent (iteration + content hash) *before* the store mutates.
    /// Dropping a prepared checkpoint without committing is safe: the
    /// manager's chain state only advances on commit, so the next call
    /// re-encodes from the last committed iteration.
    pub fn prepare(
        &mut self,
        iteration: u64,
        vars: &VariableSet,
    ) -> Result<PreparedCheckpoint, NumarckError> {
        let needs_full = match &self.previous {
            None => true,
            Some((prev_iter, prev_vars)) => {
                iteration.is_multiple_of(self.policy.full_interval)
                    || iteration != prev_iter + 1
                    || !same_shape(prev_vars, vars)
            }
        };
        // Adaptive trigger: compare each variable's change distribution
        // with its previous one; any drift past the threshold forces a
        // full. (The trackers are fed regardless of which kind of
        // checkpoint ends up being written.)
        let mut drift_trigger: Option<(String, f64)> = None;
        if let (Some(adaptive), Some((prev_iter, prev_vars))) =
            (self.policy.adaptive, &self.previous)
        {
            if iteration == prev_iter + 1 && same_shape(prev_vars, vars) {
                let tolerance = self.compressor.config().tolerance();
                for (name, curr) in vars {
                    let dist = ChangeDistribution::from_iterations(
                        &prev_vars[name],
                        curr,
                        tolerance,
                        adaptive.cap,
                    )?;
                    let tracker = self.drift_trackers.entry(name.clone()).or_default();
                    if let Some(report) = tracker.observe(dist) {
                        if report.l1 > adaptive.drift_threshold
                            && drift_trigger
                                .as_ref()
                                .map(|(_, best)| report.l1 > *best)
                                .unwrap_or(true)
                        {
                            drift_trigger = Some((name.clone(), report.l1));
                        }
                    }
                }
            } else {
                // Chain break: distribution history no longer describes
                // consecutive iterations.
                self.drift_trackers.clear();
            }
        }
        let (outcome, kind) = if needs_full || drift_trigger.is_some() {
            let outcome = match (needs_full, drift_trigger) {
                (false, Some((variable, drift_l1))) => {
                    // The regime changed; drop the distribution history
                    // so the *next* transition (new regime vs new
                    // regime) is judged fresh instead of against the
                    // jump itself.
                    self.drift_trackers.clear();
                    CheckpointOutcome::FullOnDrift { variable, drift_l1 }
                }
                _ => CheckpointOutcome::Full,
            };
            (outcome, CheckpointKind::Full(vars.clone()))
        } else {
            let (_, prev_vars) = self.previous.as_ref().expect("checked above");
            // Group-encode the iteration: the fit samples of every
            // variable are pooled into one shared centroid table, which
            // the v2 container then persists exactly once as the
            // per-iteration dictionary instead of once per variable.
            let pairs: Vec<(&[f64], &[f64])> = vars
                .iter()
                .map(|(name, curr)| (prev_vars[name].as_slice(), curr.as_slice()))
                .collect();
            let (group_blocks, group_stats) =
                numarck::group::encode_group(&pairs, self.compressor.config())?;
            let mut stats = BTreeMap::new();
            let mut blocks = BTreeMap::new();
            for ((name, block), st) in
                vars.keys().zip(group_blocks).zip(group_stats.per_variable)
            {
                blocks.insert(name.clone(), block);
                stats.insert(name.clone(), st);
            }
            (CheckpointOutcome::Delta(stats), CheckpointKind::Delta(blocks))
        };
        let is_full = matches!(kind, CheckpointKind::Full(_));
        let file = CheckpointFile::new(iteration, kind);
        let bytes = file.to_bytes();
        let content_crc = numarck::serialize::crc32(&bytes);
        Ok(PreparedCheckpoint { iteration, is_full, outcome, bytes, content_crc, vars: vars.clone() })
    }

    /// Write a [`PreparedCheckpoint`] to the store (with the manager's
    /// retry policy) and advance the chain state. Only after this
    /// returns `Ok` is the checkpoint part of the chain; the bytes on
    /// disk are exactly those whose CRC
    /// [`PreparedCheckpoint::content_crc`] reported.
    pub fn commit(
        &mut self,
        prepared: PreparedCheckpoint,
    ) -> Result<CheckpointReport, NumarckError> {
        let PreparedCheckpoint { iteration, is_full, outcome, bytes, content_crc: _, vars } =
            prepared;
        let mut retries = 0;
        let mut backoff = Duration::ZERO;
        self.write_with_retry(iteration, is_full, &bytes, &mut retries, &mut backoff)?;
        match &outcome {
            CheckpointOutcome::Full => crate::obs::fulls_total().inc(),
            CheckpointOutcome::FullOnDrift { .. } => crate::obs::drift_fulls_total().inc(),
            CheckpointOutcome::Delta(_) => crate::obs::deltas_total().inc(),
        }
        self.previous = Some((iteration, vars));
        Ok(CheckpointReport { outcome, retries, backoff })
    }

    /// Write checkpoint bytes to the store, retrying transient I/O
    /// errors with exponential backoff per the manager's [`RetryPolicy`].
    /// Permanent errors and exhausted retries surface as
    /// [`NumarckError::Io`]. Every retry lands in the manager's lifetime
    /// totals and the global registry — including those of calls that
    /// ultimately fail.
    fn write_with_retry(
        &mut self,
        iteration: u64,
        is_full: bool,
        bytes: &[u8],
        retries: &mut u32,
        backoff: &mut Duration,
    ) -> Result<(), NumarckError> {
        let mut attempt: u32 = 0;
        loop {
            crate::obs::write_attempts_total().inc();
            let result = {
                let _span = crate::obs::write_ns().span();
                self.store.write_raw(iteration, is_full, bytes)
            };
            match result {
                Ok(_) => return Ok(()),
                Err(e) if is_transient(&e) && attempt < self.retry.max_retries => {
                    let delay = self.retry.backoff_for(attempt);
                    self.clock.sleep(delay);
                    *backoff = backoff.saturating_add(delay);
                    attempt += 1;
                    *retries = attempt;
                    self.lifetime_retries += 1;
                    self.lifetime_backoff = self.lifetime_backoff.saturating_add(delay);
                    crate::obs::write_retries_total().inc();
                    crate::obs::backoff_ns_total()
                        .add(u64::try_from(delay.as_nanos()).unwrap_or(u64::MAX));
                    numarck_obs::Registry::global().events().push(
                        numarck_obs::Level::Warn,
                        format!("ckpt write retry #{attempt} iter={iteration}: {e}"),
                    );
                }
                Err(e) => {
                    numarck_obs::Registry::global().events().push(
                        numarck_obs::Level::Error,
                        format!(
                            "ckpt write failed iter={iteration} after {} attempt(s): {e}",
                            attempt + 1
                        ),
                    );
                    return Err(NumarckError::Io(format!(
                        "checkpoint {iteration} write failed after {} attempt(s): {e}",
                        attempt + 1
                    )));
                }
            }
        }
    }
}

fn same_shape(a: &VariableSet, b: &VariableSet) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|((na, va), (nb, vb))| na == nb && va.len() == vb.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::testutil::TempDir;
    use numarck::Strategy;

    fn vars_at(iter: u64, n: usize) -> VariableSet {
        let mut vars = VariableSet::new();
        let f = 1.0 + iter as f64 * 0.002;
        vars.insert("a".into(), (0..n).map(|i| f * (1.0 + (i % 5) as f64)).collect());
        vars.insert("b".into(), (0..n).map(|i| f * (2.0 + (i % 3) as f64)).collect());
        vars
    }

    fn manager(tmp: &TempDir, interval: u64) -> CheckpointManager {
        let store = CheckpointStore::open(&tmp.0).unwrap();
        let cfg = Config::new(8, 0.001, Strategy::Clustering).unwrap();
        CheckpointManager::new(store, cfg, ManagerPolicy::fixed(interval))
    }

    #[test]
    fn first_checkpoint_is_full_then_deltas() {
        let tmp = TempDir::new("mgr-basic");
        let mut mgr = manager(&tmp, 10);
        assert!(matches!(mgr.checkpoint(1, &vars_at(1, 200)).unwrap(), CheckpointOutcome::Full));
        for i in 2..=5 {
            let out = mgr.checkpoint(i, &vars_at(i, 200)).unwrap();
            assert!(matches!(out, CheckpointOutcome::Delta(_)), "iteration {i}");
        }
        let list = mgr.store().list().unwrap();
        assert_eq!(list.len(), 5);
        assert_eq!(list.iter().filter(|e| e.is_full).count(), 1);
    }

    #[test]
    fn full_interval_is_honoured() {
        let tmp = TempDir::new("mgr-interval");
        let mut mgr = manager(&tmp, 4);
        for i in 1..=9 {
            mgr.checkpoint(i, &vars_at(i, 100)).unwrap();
        }
        let fulls: Vec<u64> = mgr
            .store()
            .list()
            .unwrap()
            .into_iter()
            .filter(|e| e.is_full)
            .map(|e| e.iteration)
            .collect();
        // Iteration 1 (first) plus multiples of 4.
        assert_eq!(fulls, vec![1, 4, 8]);
    }

    #[test]
    fn gap_in_iterations_forces_full() {
        let tmp = TempDir::new("mgr-gap");
        let mut mgr = manager(&tmp, 100);
        mgr.checkpoint(1, &vars_at(1, 50)).unwrap();
        mgr.checkpoint(2, &vars_at(2, 50)).unwrap();
        // Skip to 10: the delta chain would be wrong, so a full is forced.
        let out = mgr.checkpoint(10, &vars_at(10, 50)).unwrap();
        assert!(matches!(out, CheckpointOutcome::Full));
    }

    #[test]
    fn shape_change_forces_full() {
        let tmp = TempDir::new("mgr-shape");
        let mut mgr = manager(&tmp, 100);
        mgr.checkpoint(1, &vars_at(1, 50)).unwrap();
        let out = mgr.checkpoint(2, &vars_at(2, 60)).unwrap();
        assert!(matches!(out, CheckpointOutcome::Full));
    }

    #[test]
    fn delta_stats_cover_all_variables() {
        let tmp = TempDir::new("mgr-stats");
        let mut mgr = manager(&tmp, 10);
        mgr.checkpoint(1, &vars_at(1, 300)).unwrap();
        match mgr.checkpoint(2, &vars_at(2, 300)).unwrap() {
            CheckpointOutcome::Delta(stats) => {
                assert_eq!(stats.len(), 2);
                for (name, st) in stats {
                    assert_eq!(st.num_points, 300, "{name}");
                    assert!(st.max_error_rate <= 0.001 + 1e-12);
                }
            }
            CheckpointOutcome::Full | CheckpointOutcome::FullOnDrift { .. } => panic!("expected delta"),
        }
    }

    #[test]
    #[should_panic(expected = "full_interval")]
    fn zero_interval_rejected() {
        let tmp = TempDir::new("mgr-zero");
        manager(&tmp, 0);
    }

    /// Evolve with a given uniform growth rate.
    fn grow(vars: &VariableSet, rate: f64) -> VariableSet {
        vars.iter()
            .map(|(k, v)| (k.clone(), v.iter().map(|x| x * (1.0 + rate)).collect()))
            .collect()
    }

    #[test]
    fn adaptive_policy_fires_on_regime_change() {
        let tmp = TempDir::new("mgr-adaptive");
        let store = CheckpointStore::open(&tmp.0).unwrap();
        let cfg = Config::new(8, 0.001, Strategy::Clustering).unwrap();
        let policy = ManagerPolicy::adaptive(
            1000, // fixed interval effectively disabled
            AdaptivePolicy { drift_threshold: 0.5, cap: 0.5 },
        );
        let mut mgr = CheckpointManager::new(store, cfg, policy);
        let mut vars = vars_at(0, 400);
        mgr.checkpoint(0, &vars).unwrap(); // initial full
        // Steady regime: constant 0.4% growth — distributions identical,
        // deltas only. (Drift needs two observations, so the earliest
        // possible trigger is iteration 3.)
        for it in 1..=6u64 {
            vars = grow(&vars, 0.004);
            let out = mgr.checkpoint(it, &vars).unwrap();
            if it >= 2 {
                assert!(
                    matches!(out, CheckpointOutcome::Delta(_)),
                    "steady regime at {it} must stay delta"
                );
            }
        }
        // Regime change: sudden 30% jump — change distribution teleports.
        vars = grow(&vars, 0.30);
        let out = mgr.checkpoint(7, &vars).unwrap();
        match out {
            CheckpointOutcome::FullOnDrift { drift_l1, .. } => {
                assert!(drift_l1 > 0.5, "reported drift {drift_l1}");
            }
            other => panic!("expected FullOnDrift, got {other:?}"),
        }
        // Back to steady: deltas resume after one more observation.
        vars = grow(&vars, 0.004);
        mgr.checkpoint(8, &vars).unwrap();
        vars = grow(&vars, 0.004);
        let out = mgr.checkpoint(9, &vars).unwrap();
        assert!(matches!(out, CheckpointOutcome::Delta(_)), "steady regime resumes deltas");
    }

    #[test]
    fn list_iterations_and_latest_restartable_track_the_store() {
        let tmp = TempDir::new("mgr-queries");
        let mut mgr = manager(&tmp, 4);
        assert!(mgr.list_iterations().unwrap().is_empty());
        assert_eq!(mgr.latest_restartable(), None);
        for i in 1..=6 {
            mgr.checkpoint(i, &vars_at(i, 100)).unwrap();
        }
        let listed = mgr.list_iterations().unwrap();
        assert_eq!(listed.iter().map(|e| e.iteration).collect::<Vec<_>>(), vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(mgr.latest_restartable(), Some(6));
        // Damage the newest delta: the answer falls back to the newest
        // iteration whose chain still replays.
        crate::fault::inject(
            &mgr.store().path_of(6, false),
            crate::fault::Fault::BitFlip { offset: 40, mask: 0x08 },
        )
        .unwrap();
        assert_eq!(mgr.latest_restartable(), Some(5));
    }

    /// A clock that records requested sleeps instead of performing them.
    #[derive(Debug, Default)]
    struct RecordingClock(std::sync::Mutex<Vec<Duration>>);

    impl Clock for RecordingClock {
        fn sleep(&self, d: Duration) {
            self.0.lock().unwrap().push(d);
        }
    }

    fn retrying_manager(
        tmp: &TempDir,
        schedule: crate::backend::FaultSchedule,
        retry: RetryPolicy,
    ) -> (CheckpointManager, Arc<RecordingClock>, Arc<crate::backend::FaultyBackend>) {
        let backend = Arc::new(crate::backend::FaultyBackend::new(schedule));
        let store = CheckpointStore::open_with(&tmp.0, backend.clone()).unwrap();
        let cfg = Config::new(8, 0.001, Strategy::Clustering).unwrap();
        let clock = Arc::new(RecordingClock::default());
        let mgr = CheckpointManager::with_retry(
            store,
            cfg,
            ManagerPolicy::fixed(10),
            retry,
            clock.clone(),
        );
        (mgr, clock, backend)
    }

    #[test]
    fn transient_enospc_is_retried_with_exponential_backoff() {
        use crate::backend::{FaultSchedule, WriteFault};
        let tmp = TempDir::new("mgr-retry-enospc");
        // Writes 1 and 2 fail with ENOSPC; write 3 (second retry) lands.
        let schedule = FaultSchedule::new()
            .fail_write(1, WriteFault::Error(std::io::ErrorKind::StorageFull))
            .fail_write(2, WriteFault::Error(std::io::ErrorKind::StorageFull));
        let (mut mgr, clock, backend) =
            retrying_manager(&tmp, schedule, RetryPolicy::default());
        let report = mgr.checkpoint_with_report(1, &vars_at(1, 100)).unwrap();
        assert!(matches!(report.outcome, CheckpointOutcome::Full));
        assert_eq!(report.retries, 2);
        assert_eq!(backend.writes_attempted(), 3);
        // Backoff doubled: 10ms then 20ms, recorded not slept.
        let sleeps = clock.0.lock().unwrap().clone();
        assert_eq!(sleeps, vec![Duration::from_millis(10), Duration::from_millis(20)]);
        assert_eq!(report.backoff, Duration::from_millis(30));
        // The checkpoint is genuinely on disk and readable.
        assert!(mgr.store().read(1, true).is_ok());
    }

    #[test]
    fn torn_write_is_retried_and_the_retry_overwrites_the_partial() {
        use crate::backend::{FaultSchedule, WriteFault};
        let tmp = TempDir::new("mgr-retry-torn");
        let schedule = FaultSchedule::new().fail_write(1, WriteFault::Torn { keep: 7 });
        let (mut mgr, _clock, _backend) =
            retrying_manager(&tmp, schedule, RetryPolicy::default());
        let report = mgr.checkpoint_with_report(1, &vars_at(1, 100)).unwrap();
        assert_eq!(report.retries, 1);
        assert!(mgr.store().read(1, true).is_ok());
    }

    #[test]
    fn exhausted_retries_surface_as_io_error() {
        use crate::backend::{FaultSchedule, WriteFault};
        let tmp = TempDir::new("mgr-retry-exhausted");
        let schedule = (1..=4).fold(FaultSchedule::new(), |s, n| {
            s.fail_write(n, WriteFault::Error(std::io::ErrorKind::StorageFull))
        });
        let (mut mgr, clock, _backend) =
            retrying_manager(&tmp, schedule, RetryPolicy::default());
        let err = mgr.checkpoint_with_report(1, &vars_at(1, 100)).unwrap_err();
        assert!(matches!(err, NumarckError::Io(_)), "got {err:?}");
        assert!(err.to_string().contains("4 attempt(s)"), "got: {err}");
        assert_eq!(clock.0.lock().unwrap().len(), 3);
    }

    #[test]
    fn permanent_errors_fail_fast_without_sleeping() {
        use crate::backend::{FaultSchedule, WriteFault};
        let tmp = TempDir::new("mgr-retry-permanent");
        let schedule = FaultSchedule::new()
            .fail_write(1, WriteFault::Error(std::io::ErrorKind::PermissionDenied));
        let (mut mgr, clock, backend) =
            retrying_manager(&tmp, schedule, RetryPolicy::default());
        let err = mgr.checkpoint_with_report(1, &vars_at(1, 100)).unwrap_err();
        assert!(matches!(err, NumarckError::Io(_)));
        assert_eq!(backend.writes_attempted(), 1, "no retry on permanent error");
        assert!(clock.0.lock().unwrap().is_empty(), "no backoff slept");
    }

    #[test]
    fn retry_none_fails_on_first_transient_error() {
        use crate::backend::{FaultSchedule, WriteFault};
        let tmp = TempDir::new("mgr-retry-none");
        let schedule = FaultSchedule::new()
            .fail_write(1, WriteFault::Error(std::io::ErrorKind::StorageFull));
        let (mut mgr, clock, _backend) = retrying_manager(&tmp, schedule, RetryPolicy::none());
        assert!(mgr.checkpoint_with_report(1, &vars_at(1, 100)).is_err());
        assert!(clock.0.lock().unwrap().is_empty());
    }

    #[test]
    fn lifetime_retry_totals_accumulate_across_plain_checkpoint_calls() {
        use crate::backend::{FaultSchedule, WriteFault};
        let tmp = TempDir::new("mgr-lifetime-totals");
        // Write 1 fails once; write 3 (iteration 2's first attempt) fails
        // once more — both land through the plain checkpoint() API that
        // discards per-call reports.
        let schedule = FaultSchedule::new()
            .fail_write(1, WriteFault::Error(std::io::ErrorKind::StorageFull))
            .fail_write(3, WriteFault::Error(std::io::ErrorKind::StorageFull));
        let (mut mgr, _clock, _backend) =
            retrying_manager(&tmp, schedule, RetryPolicy::default());
        assert_eq!(mgr.retry_totals(), RetryTotals::default());
        let global_retries_before =
            numarck_obs::Registry::global().counter("ckpt_write_retries_total").get();
        mgr.checkpoint(1, &vars_at(1, 100)).unwrap();
        mgr.checkpoint(2, &vars_at(2, 100)).unwrap();
        let totals = mgr.retry_totals();
        assert_eq!(totals.retries, 2);
        // Both were first retries: 10ms backoff each.
        assert_eq!(totals.backoff, Duration::from_millis(20));
        // The same retries are visible in the global registry.
        let global_retries =
            numarck_obs::Registry::global().counter("ckpt_write_retries_total").get();
        assert!(global_retries >= global_retries_before + 2);
    }

    #[test]
    fn failed_checkpoint_still_accumulates_its_retries() {
        use crate::backend::{FaultSchedule, WriteFault};
        let tmp = TempDir::new("mgr-lifetime-failed");
        let schedule = (1..=4).fold(FaultSchedule::new(), |s, n| {
            s.fail_write(n, WriteFault::Error(std::io::ErrorKind::StorageFull))
        });
        let (mut mgr, _clock, _backend) =
            retrying_manager(&tmp, schedule, RetryPolicy::default());
        assert!(mgr.checkpoint(1, &vars_at(1, 100)).is_err());
        // 3 retries were spent even though the call failed.
        assert_eq!(mgr.retry_totals().retries, 3);
        assert_eq!(mgr.retry_totals().backoff, Duration::from_millis(10 + 20 + 40));
    }

    #[test]
    fn backoff_is_capped_at_max_backoff() {
        let policy = RetryPolicy {
            max_retries: 40,
            base_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_secs(2),
        };
        assert_eq!(policy.backoff_for(0), Duration::from_millis(100));
        assert_eq!(policy.backoff_for(3), Duration::from_millis(800));
        assert_eq!(policy.backoff_for(10), Duration::from_secs(2));
        // Shift amounts far past the cap don't overflow.
        assert_eq!(policy.backoff_for(39), Duration::from_secs(2));
    }

    #[test]
    fn prepare_commit_crc_matches_the_bytes_on_disk() {
        let tmp = TempDir::new("mgr-prepare-crc");
        let mut mgr = manager(&tmp, 4);
        mgr.checkpoint(1, &vars_at(1, 100)).unwrap();
        let prepared = mgr.prepare(2, &vars_at(2, 100)).unwrap();
        assert_eq!(prepared.iteration(), 2);
        assert!(!prepared.is_full(), "second call in the interval is a delta");
        assert!(prepared.len_bytes() > 0);
        let crc = prepared.content_crc();
        // Nothing on disk yet.
        assert_eq!(mgr.store().list().unwrap().len(), 1);
        mgr.commit(prepared).unwrap();
        let bytes = mgr.store().read_raw(2, false).unwrap();
        assert_eq!(numarck::serialize::crc32(&bytes), crc);
        assert!(mgr.store().read(2, false).is_ok());
    }

    #[test]
    fn dropped_prepare_leaves_the_chain_consistent() {
        let tmp = TempDir::new("mgr-prepare-drop");
        let mut mgr = manager(&tmp, 100);
        mgr.checkpoint(1, &vars_at(1, 100)).unwrap();
        // Prepare iteration 2 and abandon it: the chain must not have
        // advanced, so re-preparing 2 still yields a valid delta...
        drop(mgr.prepare(2, &vars_at(2, 100)).unwrap());
        let out = mgr.checkpoint(2, &vars_at(2, 100)).unwrap();
        assert!(matches!(out, CheckpointOutcome::Delta(_)));
        // ...and after abandoning 3, the gap to 4 forces a full, exactly
        // as if the encode had never happened.
        drop(mgr.prepare(3, &vars_at(3, 100)).unwrap());
        let out = mgr.checkpoint(4, &vars_at(4, 100)).unwrap();
        assert!(matches!(out, CheckpointOutcome::Full));
    }

    #[test]
    fn fixed_policy_never_reports_drift() {
        let tmp = TempDir::new("mgr-fixed-nodrift");
        let mut mgr = manager(&tmp, 50);
        let mut vars = vars_at(0, 200);
        mgr.checkpoint(0, &vars).unwrap();
        for it in 1..=5u64 {
            // Wild swings, but no adaptive policy configured.
            vars = grow(&vars, if it % 2 == 0 { 0.5 } else { -0.3 });
            let out = mgr.checkpoint(it, &vars).unwrap();
            assert!(
                !matches!(out, CheckpointOutcome::FullOnDrift { .. }),
                "fixed policy must not drift-trigger"
            );
        }
    }
}

/// Small helpers shared with sibling modules' tests.
#[cfg(test)]
pub(crate) mod test_support {
    use numarck::{Config, Strategy};

    /// A valid default config for building trivial deltas in tests.
    pub fn trivial_config() -> Config {
        Config::new(8, 0.001, Strategy::Clustering).expect("valid test config")
    }
}
